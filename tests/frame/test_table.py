"""Unit tests for the ColumnTable substrate."""

import numpy as np
import pytest

from repro.frame import ColumnTable, concat


@pytest.fixture
def small():
    return ColumnTable(
        {
            "city": ["A", "A", "B", "B", "C"],
            "speed": [10.0, 20.0, 30.0, 40.0, 50.0],
            "tier": [1, 2, 1, 2, 3],
        }
    )


class TestConstruction:
    def test_empty_table(self):
        t = ColumnTable()
        assert len(t) == 0
        assert t.column_names == []

    def test_lengths_recorded(self, small):
        assert len(small) == 5
        assert small.num_rows == 5
        assert small.num_columns == 3

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="length"):
            ColumnTable({"a": [1, 2], "b": [1, 2, 3]})

    def test_scalar_column_rejected(self):
        with pytest.raises(ValueError, match="sequence"):
            ColumnTable({"a": 5})

    def test_2d_column_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            ColumnTable({"a": np.zeros((2, 2))})

    def test_strings_become_object_dtype(self):
        t = ColumnTable({"s": np.asarray(["x", "longer"], dtype="U10")})
        assert t["s"].dtype == object

    def test_int_column_keeps_int_dtype(self, small):
        assert small["tier"].dtype.kind == "i"

    def test_from_dicts_round_trip(self, small):
        rebuilt = ColumnTable.from_dicts(small.to_dicts())
        assert rebuilt == small

    def test_from_dicts_empty(self):
        assert len(ColumnTable.from_dicts([])) == 0

    def test_from_dicts_mismatched_keys(self):
        with pytest.raises(ValueError, match="keys"):
            ColumnTable.from_dicts([{"a": 1}, {"b": 2}])

    def test_copy_is_deep(self, small):
        cloned = small.copy()
        cloned["speed"][0] = 999.0
        assert small["speed"][0] == 10.0


class TestAccess:
    def test_getitem_missing_column(self, small):
        with pytest.raises(KeyError, match="available"):
            small["nope"]

    def test_contains(self, small):
        assert "city" in small
        assert "nope" not in small

    def test_iteration_yields_names(self, small):
        assert list(small) == ["city", "speed", "tier"]

    def test_row_access(self, small):
        assert small.row(0) == {"city": "A", "speed": 10.0, "tier": 1}

    def test_row_negative_index(self, small):
        assert small.row(-1)["city"] == "C"

    def test_row_out_of_range(self, small):
        with pytest.raises(IndexError):
            small.row(5)

    def test_unique(self, small):
        assert small.unique("city").tolist() == ["A", "B", "C"]

    def test_value_counts(self, small):
        assert small.value_counts("tier") == {1: 2, 2: 2, 3: 1}

    def test_repr_mentions_rows(self, small):
        assert "5 rows" in repr(small)


class TestMutationStyleOps:
    def test_with_column_adds(self, small):
        t = small.with_column("double", small["speed"] * 2)
        assert "double" in t
        assert "double" not in small  # original untouched

    def test_with_column_replaces(self, small):
        t = small.with_column("speed", [1.0] * 5)
        assert t["speed"].tolist() == [1.0] * 5

    def test_with_column_length_checked(self, small):
        with pytest.raises(ValueError, match="length"):
            small.with_column("x", [1, 2])

    def test_without_columns(self, small):
        t = small.without_columns(["tier"])
        assert t.column_names == ["city", "speed"]

    def test_without_missing_column_raises(self, small):
        with pytest.raises(KeyError, match="missing"):
            small.without_columns(["ghost"])

    def test_rename(self, small):
        t = small.rename({"speed": "mbps"})
        assert "mbps" in t and "speed" not in t

    def test_rename_missing_raises(self, small):
        with pytest.raises(KeyError):
            small.rename({"ghost": "x"})

    def test_select_reorders(self, small):
        t = small.select(["tier", "city"])
        assert t.column_names == ["tier", "city"]


class TestFilterTakeSort:
    def test_filter_by_mask(self, small):
        t = small.filter(small["speed"] > 25)
        assert len(t) == 3

    def test_filter_by_callable(self, small):
        t = small.filter(lambda tab: tab["city"] == "A")
        assert len(t) == 2

    def test_filter_empty_result(self, small):
        t = small.filter(small["speed"] > 1000)
        assert len(t) == 0
        assert t.column_names == small.column_names

    def test_filter_non_boolean_rejected(self, small):
        with pytest.raises(TypeError, match="boolean"):
            small.filter(np.asarray([1, 0, 1, 0, 1]))

    def test_filter_wrong_length_rejected(self, small):
        with pytest.raises(ValueError, match="length"):
            small.filter(np.asarray([True, False]))

    def test_take(self, small):
        t = small.take([4, 0])
        assert t["city"].tolist() == ["C", "A"]

    def test_head(self, small):
        assert len(small.head(2)) == 2
        assert len(small.head(99)) == 5

    def test_sort_by_single_key(self, small):
        t = small.sort_by("speed", descending=True)
        assert t["speed"].tolist() == [50.0, 40.0, 30.0, 20.0, 10.0]

    def test_sort_by_multiple_keys(self):
        t = ColumnTable({"a": [2, 1, 2, 1], "b": [1, 2, 0, 1]})
        s = t.sort_by(["a", "b"])
        assert s["a"].tolist() == [1, 1, 2, 2]
        assert s["b"].tolist() == [1, 2, 0, 1]

    def test_sort_requires_keys(self, small):
        with pytest.raises(ValueError):
            small.sort_by([])

    def test_sort_is_stable(self):
        t = ColumnTable({"k": [1, 1, 1], "v": [3, 1, 2]})
        assert t.sort_by("k")["v"].tolist() == [3, 1, 2]


class TestGroupBy:
    def test_group_count(self, small):
        assert len(small.groupby("city")) == 3

    def test_size(self, small):
        sizes = small.groupby("city").size()
        assert dict(zip(sizes["city"], sizes["count"])) == {
            "A": 2, "B": 2, "C": 1,
        }

    def test_agg_mean(self, small):
        out = small.groupby("city").agg(mean_speed=("speed", "mean"))
        assert dict(zip(out["city"], out["mean_speed"])) == {
            "A": 15.0, "B": 35.0, "C": 50.0,
        }

    def test_agg_multiple(self, small):
        out = small.groupby("city").agg(
            lo=("speed", "min"), hi=("speed", "max"), n=("*", "count")
        )
        assert out["lo"].tolist() == [10.0, 30.0, 50.0]
        assert out["hi"].tolist() == [20.0, 40.0, 50.0]
        assert out["n"].tolist() == [2, 2, 1]

    def test_agg_callable(self, small):
        out = small.groupby("city").agg(
            spread=("speed", lambda v: float(v.max() - v.min()))
        )
        assert out["spread"].tolist() == [10.0, 10.0, 0.0]

    def test_agg_unknown_reducer(self, small):
        with pytest.raises(ValueError, match="unknown aggregation"):
            small.groupby("city").agg(x=("speed", "mode"))

    def test_agg_requires_aggregations(self, small):
        with pytest.raises(ValueError):
            small.groupby("city").agg()

    def test_groupby_missing_key(self, small):
        with pytest.raises(KeyError):
            small.groupby("ghost")

    def test_groupby_multi_key(self, small):
        groups = small.groupby(["city", "tier"]).groups()
        assert ("A", 1) in groups
        assert len(groups) == 5

    def test_iteration(self, small):
        seen = {key for key, _ in small.groupby("city")}
        assert seen == {("A",), ("B",), ("C",)}

    def test_apply(self, small):
        out = small.groupby("city").apply(len)
        assert out == {("A",): 2, ("B",): 2, ("C",): 1}


class TestJoin:
    def test_inner_join(self, small):
        plans = ColumnTable({"tier": [1, 2, 3], "down": [25, 100, 200]})
        joined = small.join(plans, on="tier")
        assert len(joined) == 5
        assert "down" in joined

    def test_inner_join_drops_unmatched(self, small):
        plans = ColumnTable({"tier": [1], "down": [25]})
        joined = small.join(plans, on="tier")
        assert len(joined) == 2

    def test_left_join_keeps_unmatched(self, small):
        plans = ColumnTable({"tier": [1], "down": [25.0]})
        joined = small.join(plans, on="tier", how="left")
        assert len(joined) == 5
        unmatched = joined.filter(joined["tier"] != 1)
        assert np.isnan(unmatched["down"]).all()

    def test_left_join_object_fill(self, small):
        names = ColumnTable({"tier": [1], "label": ["bronze"]})
        joined = small.join(names, on="tier", how="left")
        missing = joined.filter(joined["tier"] == 3)
        assert missing["label"].tolist() == [None]

    def test_join_duplicate_right_rows_multiply(self):
        left = ColumnTable({"k": [1], "v": [10]})
        right = ColumnTable({"k": [1, 1], "w": [5, 6]})
        joined = left.join(right, on="k")
        assert len(joined) == 2
        assert sorted(joined["w"].tolist()) == [5, 6]

    def test_join_collision_suffix(self):
        left = ColumnTable({"k": [1], "v": [10]})
        right = ColumnTable({"k": [1], "v": [99]})
        joined = left.join(right, on="k")
        assert joined["v"].tolist() == [10]
        assert joined["v_right"].tolist() == [99]

    def test_join_multi_key(self):
        left = ColumnTable({"a": [1, 1], "b": ["x", "y"], "v": [1, 2]})
        right = ColumnTable({"a": [1], "b": ["y"], "w": [7]})
        joined = left.join(right, on=["a", "b"])
        assert joined["v"].tolist() == [2]

    def test_join_missing_key_raises(self, small):
        with pytest.raises(KeyError):
            small.join(small, on="ghost")

    def test_join_bad_how(self, small):
        with pytest.raises(ValueError, match="join type"):
            small.join(small, on="tier", how="outer")


class TestConcat:
    def test_concat_two(self, small):
        doubled = concat([small, small])
        assert len(doubled) == 10

    def test_concat_empty_list(self):
        assert len(concat([])) == 0

    def test_concat_schema_mismatch(self, small):
        other = ColumnTable({"x": [1]})
        with pytest.raises(ValueError, match="columns"):
            concat([small, other])

    def test_concat_preserves_order(self, small):
        out = concat([small.head(1), small.take([4])])
        assert out["city"].tolist() == ["A", "C"]


class TestEquality:
    def test_equal_tables(self, small):
        assert small == small.copy()

    def test_unequal_values(self, small):
        other = small.with_column("speed", [0.0] * 5)
        assert small != other

    def test_nan_aware_float_equality(self):
        a = ColumnTable({"x": [1.0, np.nan]})
        b = ColumnTable({"x": [1.0, np.nan]})
        assert a == b

    def test_non_table_comparison(self, small):
        assert (small == 42) is False
