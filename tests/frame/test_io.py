"""CSV round-trip and type-inference tests."""

import numpy as np
import pytest

from repro.frame import ColumnTable, read_csv, write_csv


def test_round_trip_basic(tmp_path):
    t = ColumnTable(
        {"name": ["a", "b"], "n": [1, 2], "speed": [1.5, 2.5]}
    )
    path = tmp_path / "t.csv"
    write_csv(t, path)
    assert read_csv(path) == t


def test_int_column_inferred(tmp_path):
    path = tmp_path / "t.csv"
    path.write_text("n\n1\n2\n3\n")
    t = read_csv(path)
    assert t["n"].dtype.kind == "i"


def test_float_column_inferred(tmp_path):
    path = tmp_path / "t.csv"
    path.write_text("x\n1.5\n2\n")
    assert read_csv(path)["x"].dtype.kind == "f"


def test_missing_cells_become_nan(tmp_path):
    path = tmp_path / "t.csv"
    path.write_text("x\n1.5\n\n2.5\n")
    values = read_csv(path)["x"]
    assert np.isnan(values[1])
    assert values[0] == 1.5


def test_int_with_missing_promotes_to_float(tmp_path):
    path = tmp_path / "t.csv"
    path.write_text("n\n1\n\n3\n")
    assert read_csv(path)["n"].dtype.kind == "f"


def test_string_column_stays_object(tmp_path):
    path = tmp_path / "t.csv"
    path.write_text("s\nhello\n12x\n")
    assert read_csv(path)["s"].dtype == object


def test_nan_round_trips_as_empty(tmp_path):
    t = ColumnTable({"x": [1.0, np.nan]})
    path = tmp_path / "t.csv"
    write_csv(t, path)
    assert "nan" not in path.read_text().lower()
    back = read_csv(path)
    assert np.isnan(back["x"][1])


def test_empty_file(tmp_path):
    path = tmp_path / "t.csv"
    path.write_text("")
    assert len(read_csv(path)) == 0


def test_header_only(tmp_path):
    path = tmp_path / "t.csv"
    path.write_text("a,b\n")
    t = read_csv(path)
    assert t.column_names == ["a", "b"]
    assert len(t) == 0


def test_quoted_commas_survive(tmp_path):
    t = ColumnTable({"s": ["x,y", "plain"]})
    path = tmp_path / "t.csv"
    write_csv(t, path)
    assert read_csv(path)["s"].tolist() == ["x,y", "plain"]


def test_ragged_row_padded(tmp_path):
    path = tmp_path / "t.csv"
    path.write_text("a,b\n1,2\n3\n")
    t = read_csv(path)
    assert len(t) == 2
    assert np.isnan(t["b"][1])


def test_none_rendered_as_empty(tmp_path):
    t = ColumnTable({"s": np.asarray(["x", None], dtype=object)})
    path = tmp_path / "t.csv"
    write_csv(t, path)
    assert read_csv(path)["s"].tolist() == ["x", ""]
