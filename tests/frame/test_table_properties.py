"""Property-based tests of ColumnTable invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frame import ColumnTable, concat


@st.composite
def tables(draw, max_rows=30):
    n = draw(st.integers(min_value=0, max_value=max_rows))
    keys = draw(
        st.lists(
            st.sampled_from(["g", "h", "k"]),
            min_size=1,
            max_size=2,
            unique=True,
        )
    )
    columns = {
        key: draw(
            st.lists(
                st.integers(min_value=0, max_value=4),
                min_size=n,
                max_size=n,
            )
        )
        for key in keys
    }
    columns["value"] = draw(
        st.lists(
            st.floats(
                min_value=-1e6, max_value=1e6, allow_nan=False
            ),
            min_size=n,
            max_size=n,
        )
    )
    return ColumnTable(columns)


@given(tables())
def test_filter_true_mask_is_identity(t):
    assert t.filter(np.ones(len(t), dtype=bool)) == t


@given(tables())
def test_filter_false_mask_is_empty(t):
    assert len(t.filter(np.zeros(len(t), dtype=bool))) == 0


@given(tables())
def test_filter_partitions_rows(t):
    if len(t) == 0:
        return
    mask = t["value"] >= 0
    kept = t.filter(mask)
    dropped = t.filter(~mask)
    assert len(kept) + len(dropped) == len(t)


@given(tables())
def test_groupby_sizes_sum_to_total(t):
    if len(t) == 0:
        return
    sizes = t.groupby("value").size()
    assert int(np.sum(sizes["count"])) == len(t)


@given(tables())
def test_sort_preserves_multiset(t):
    if len(t) == 0:
        return
    s = t.sort_by("value")
    assert sorted(s["value"].tolist()) == sorted(t["value"].tolist())
    assert np.all(np.diff(s["value"]) >= 0)


@given(tables(), tables())
def test_concat_length_adds(a, b):
    if set(a.column_names) != set(b.column_names):
        return
    b = b.select(a.column_names)
    assert len(concat([a, b])) == len(a) + len(b)


@given(tables())
def test_to_dicts_round_trip(t):
    if len(t) == 0:
        return
    assert ColumnTable.from_dicts(t.to_dicts()) == t


@given(tables())
@settings(max_examples=50)
def test_self_join_on_unique_key_preserves_rows(t):
    if len(t) == 0:
        return
    unique_key = t.with_column("uid", np.arange(len(t)))
    joined = unique_key.join(unique_key, on="uid")
    assert len(joined) == len(t)
