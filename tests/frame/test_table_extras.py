"""Tests for ColumnTable convenience methods (sample/describe/crosstab)."""

import numpy as np
import pytest

from repro.frame import ColumnTable


@pytest.fixture
def table():
    return ColumnTable(
        {
            "city": ["A", "A", "B", "B", "B"],
            "speed": [10.0, np.nan, 30.0, 40.0, 50.0],
            "tier": [1, 1, 2, 2, 3],
        }
    )


class TestSample:
    def test_size(self, table):
        assert len(table.sample(3, seed=1)) == 3

    def test_caps_at_length(self, table):
        assert len(table.sample(100, seed=1)) == 5

    def test_without_replacement(self, table):
        sampled = table.sample(5, seed=2)
        assert sorted(sampled["tier"].tolist()) == sorted(
            table["tier"].tolist()
        )

    def test_deterministic(self, table):
        assert table.sample(3, seed=4) == table.sample(3, seed=4)

    def test_negative_rejected(self, table):
        with pytest.raises(ValueError):
            table.sample(-1)


class TestDescribe:
    def test_one_row_per_column(self, table):
        summary = table.describe()
        assert summary["column"].tolist() == ["city", "speed", "tier"]

    def test_numeric_summary(self, table):
        summary = table.describe()
        row = summary.row(1)  # "speed"
        assert row["non_null"] == 4
        assert row["min"] == 10.0
        assert row["max"] == 50.0
        assert row["median"] == 35.0

    def test_object_summary(self, table):
        row = table.describe().row(0)  # "city"
        assert row["non_null"] == 5
        assert row["distinct"] == 2
        assert np.isnan(row["min"])

    def test_empty_numeric_column(self):
        summary = ColumnTable({"x": [np.nan, np.nan]}).describe()
        assert np.isnan(summary.row(0)["median"])


class TestCrosstab:
    def test_counts(self, table):
        counts = table.crosstab("city", "tier")
        assert counts[("A", 1)] == 2
        assert counts[("B", 2)] == 2
        assert counts[("B", 3)] == 1

    def test_total_preserved(self, table):
        assert sum(table.crosstab("city", "tier").values()) == len(table)

    def test_missing_key(self, table):
        with pytest.raises(KeyError):
            table.crosstab("city", "ghost")
