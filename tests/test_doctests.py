"""Run the doctest examples embedded in module docstrings.

Every public-API usage example in the docs must actually work; this
keeps the documentation honest as the code evolves.
"""

import doctest

import pytest

import repro.core.bst
import repro.frame.table
import repro.market.plans
import repro.market.population
import repro.pipeline.report
import repro.serve.engine
import repro.stats.gmm
import repro.stats.gmm2d
import repro.stats.kde
import repro.vendors.ookla

MODULES = [
    repro.frame.table,
    repro.stats.kde,
    repro.stats.gmm,
    repro.stats.gmm2d,
    repro.market.plans,
    repro.market.population,
    repro.core.bst,
    repro.serve.engine,
    repro.vendors.ookla,
    repro.pipeline.report,
]


@pytest.mark.parametrize(
    "module", MODULES, ids=[m.__name__ for m in MODULES]
)
def test_module_doctests(module):
    results = doctest.testmod(
        module, optionflags=doctest.NORMALIZE_WHITESPACE, verbose=False
    )
    assert results.failed == 0, f"{results.failed} doctest failures"
    assert results.attempted > 0, "module has no doctest examples"
