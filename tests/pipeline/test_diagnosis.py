"""Tests for the local-factor diagnosis analyses."""

import numpy as np
import pytest

from repro.pipeline import (
    access_type_comparison,
    bottleneck_comparison,
    memory_comparison,
    rssi_comparison,
    wifi_band_comparison,
)
from repro.pipeline.diagnosis import (
    MEMORY_BIN_LABELS,
    RSSI_BIN_LABELS,
    rssi_bin_label,
)


class TestRssiBins:
    @pytest.mark.parametrize(
        "rssi,label",
        [
            (-25.0, ">= -30 dBm"),
            (-30.0, ">= -30 dBm"),
            (-40.0, "-50 dBm - -30 dBm"),
            (-50.0, "-50 dBm - -30 dBm"),
            (-60.0, "-70 dBm - -50 dBm"),
            (-75.0, "< -70 dBm"),
        ],
    )
    def test_bin_labels(self, rssi, label):
        assert rssi_bin_label(rssi) == label

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            rssi_bin_label(float("nan"))


class TestComparisons:
    def test_access_split_shapes(self, ookla_ctx_a):
        comparison = access_type_comparison(ookla_ctx_a.table)
        assert set(comparison.groups) == {"WiFi", "Ethernet"}
        shares = comparison.shares()
        assert shares["WiFi"] > 0.8  # WiFi dominates native tests
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_ethernet_beats_wifi(self, ookla_ctx_a):
        medians = access_type_comparison(ookla_ctx_a.table).medians()
        assert medians["Ethernet"] > medians["WiFi"] * 1.5

    def test_band_split(self, ookla_ctx_a):
        comparison = wifi_band_comparison(ookla_ctx_a.table)
        medians = comparison.medians()
        assert medians["5 GHz"] > medians["2.4 GHz"] * 2

    def test_rssi_bins_monotone_overall(self, ookla_ctx_a):
        medians = rssi_comparison(ookla_ctx_a.table).medians()
        assert medians[RSSI_BIN_LABELS[0]] > medians[RSSI_BIN_LABELS[3]]

    def test_rssi_covers_all_bins(self, ookla_ctx_a):
        comparison = rssi_comparison(ookla_ctx_a.table)
        assert set(comparison.groups) == set(RSSI_BIN_LABELS)

    def test_memory_low_bin_capped(self, ookla_ctx_a):
        medians = memory_comparison(ookla_ctx_a.table).medians()
        top_bins = [medians[label] for label in MEMORY_BIN_LABELS[2:]]
        assert medians["< 2 GB"] < min(top_bins)

    def test_bottleneck_majority(self, ookla_ctx_a):
        comparison = bottleneck_comparison(ookla_ctx_a.table)
        shares = comparison.shares()
        medians = comparison.medians()
        assert shares["Local-bottleneck"] > 0.5
        # Small fixture (~450 Android tests): assert the ordering; the
        # MEDIUM-scale bench asserts the paper's >2x gap.
        assert medians["Best"] > medians["Local-bottleneck"] * 1.3

    def test_counts_and_shares_consistent(self, ookla_ctx_a):
        comparison = bottleneck_comparison(ookla_ctx_a.table)
        counts = comparison.counts()
        shares = comparison.shares()
        total = sum(counts.values())
        for label in counts:
            assert shares[label] == pytest.approx(counts[label] / total)

    def test_group_median_accessor(self, ookla_ctx_a):
        comparison = access_type_comparison(ookla_ctx_a.table)
        assert comparison.group_median("WiFi") == (
            comparison.medians()["WiFi"]
        )

    def test_empty_groups_yield_nan(self):
        from repro.frame import ColumnTable

        table = ColumnTable(
            {
                "origin": ["native"],
                "access": ["wifi"],
                "platform": ["ios"],
                "wifi_band_ghz": [np.nan],
                "rssi_dbm": [np.nan],
                "memory_gb": [np.nan],
                "normalized_download": [0.5],
            }
        )
        comparison = access_type_comparison(table)
        assert np.isnan(comparison.medians()["Ethernet"])
