"""Tests for the latency/QoS analysis."""

import numpy as np
import pytest

from repro.frame import ColumnTable
from repro.pipeline.qos import latency_by_access, latency_by_band


def test_wifi_latency_exceeds_ethernet(ookla_ctx_a):
    comparison = latency_by_access(ookla_ctx_a.table)
    medians = comparison.medians()
    assert medians["WiFi"] > medians["Ethernet"]


def test_24ghz_latency_exceeds_5ghz(ookla_ctx_a):
    comparison = latency_by_band(ookla_ctx_a.table)
    medians = comparison.medians()
    assert medians["2.4 GHz"] > medians["5 GHz"]


def test_latencies_physical(ookla_ctx_a):
    comparison = latency_by_access(ookla_ctx_a.table)
    for values in comparison.groups.values():
        assert (values > 0).all()
        assert np.median(values) < 100  # metro-scale RTTs


def test_missing_latency_column_rejected():
    table = ColumnTable({"origin": ["native"], "access": ["wifi"]})
    with pytest.raises(KeyError, match="latency_ms"):
        latency_by_access(table)
    with pytest.raises(KeyError, match="latency_ms"):
        latency_by_band(table)
