"""Tests for the metadata audit / recommendations module."""

import numpy as np
import pytest

from repro.frame import ColumnTable
from repro.pipeline import CONTEXT_FIELDS, audit_metadata, recommend


def test_field_weights_sum_to_one():
    assert sum(f.weight for f in CONTEXT_FIELDS) == pytest.approx(1.0)


def test_empty_table_scores_zero():
    audit = audit_metadata(ColumnTable())
    assert audit.interpretability == 0.0
    assert len(audit.missing_fields()) == len(CONTEXT_FIELDS)


def test_fully_contextualised_table_scores_high(ookla_ctx_a):
    audit = audit_metadata(ookla_ctx_a.table)
    # Tier/access/origin fully covered; band/RSSI/memory only on
    # Android rows (~9% of tests), so the score is partial but > 0.5.
    assert audit.interpretability > 0.5
    assert "subscription plan" not in audit.missing_fields()


def test_raw_mlab_table_scores_low(mlab_joined_a):
    audit = audit_metadata(mlab_joined_a)
    # NDT carries no plan, device, or access context.
    assert audit.interpretability < 0.2
    missing = audit.missing_fields()
    assert "subscription plan" in missing
    assert "access link type" in missing


def test_coverage_counts_unknown_as_missing():
    table = ColumnTable({"access": ["wifi", "unknown", "ethernet"]})
    audit = audit_metadata(table)
    access = next(
        fp for fp in audit.fields if fp.field.column == "access"
    )
    assert access.coverage == pytest.approx(2 / 3)


def test_nan_counts_as_missing():
    table = ColumnTable({"rssi_dbm": [np.nan, -50.0]})
    audit = audit_metadata(table)
    rssi = next(
        fp for fp in audit.fields if fp.field.column == "rssi_dbm"
    )
    assert rssi.coverage == pytest.approx(0.5)


def test_recommend_orders_by_weight():
    audit = audit_metadata(ColumnTable({"x": [1]}))
    recs = recommend(audit)
    assert len(recs) == len(CONTEXT_FIELDS)
    # The subscription-plan recommendation (weight 0.30) comes first.
    assert "subscription plan" in recs[0] or "infer it" in recs[0]


def test_recommend_skips_covered_fields(ookla_ctx_a):
    audit = audit_metadata(ookla_ctx_a.table)
    recs = recommend(audit)
    assert all("subscription plan" not in r for r in recs)


def test_interpretability_bounded(ookla_ctx_a, mlab_joined_a):
    for table in (ookla_ctx_a.table, mlab_joined_a):
        score = audit_metadata(table).interpretability
        assert 0.0 <= score <= 1.0
