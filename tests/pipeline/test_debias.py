"""Tests for tier reweighting / debiasing."""

import numpy as np
import pytest

from repro.frame import ColumnTable
from repro.pipeline.debias import (
    debiased_summary,
    reweight_by_tier,
    weighted_median,
)


def _table(tiers, speeds):
    return ColumnTable(
        {"bst_tier": tiers, "download_mbps": [float(s) for s in speeds]}
    )


class TestWeightedMedian:
    def test_uniform_weights_match_plain_median(self):
        values = np.asarray([1.0, 5.0, 3.0, 9.0, 7.0])
        assert weighted_median(values, np.ones(5)) == np.median(values)

    def test_weights_shift_median(self):
        values = np.asarray([1.0, 10.0])
        assert weighted_median(values, [3.0, 1.0]) == 1.0
        assert weighted_median(values, [1.0, 3.0]) == 10.0

    def test_nan_dropped(self):
        assert weighted_median([np.nan, 4.0], [1.0, 1.0]) == 4.0

    def test_empty_is_nan(self):
        assert np.isnan(weighted_median([], []))

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            weighted_median([1.0], [-1.0])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            weighted_median([1.0, 2.0], [1.0])


class TestReweight:
    def test_uniform_target(self):
        table = _table([1] * 80 + [6] * 20, range(100))
        tw = reweight_by_tier(table)
        assert tw.sample_shares == {1: 0.8, 6: 0.2}
        # Weighted tier shares become equal.
        tiers = np.asarray(table["bst_tier"])
        w1 = tw.weights[tiers == 1].sum()
        w6 = tw.weights[tiers == 6].sum()
        assert w1 == pytest.approx(w6)

    def test_explicit_target(self):
        table = _table([1] * 50 + [6] * 50, range(100))
        tw = reweight_by_tier(table, target_shares={1: 0.9, 6: 0.1})
        tiers = np.asarray(table["bst_tier"])
        assert tw.weights[tiers == 1].sum() == pytest.approx(
            9 * tw.weights[tiers == 6].sum()
        )

    def test_absent_target_tiers_dropped(self):
        table = _table([1] * 10, range(10))
        tw = reweight_by_tier(table, target_shares={1: 0.5, 6: 0.5})
        assert set(tw.target_shares) == {1}
        assert tw.target_shares[1] == pytest.approx(1.0)

    def test_no_overlap_rejected(self):
        table = _table([1] * 10, range(10))
        with pytest.raises(ValueError, match="overlap"):
            reweight_by_tier(table, target_shares={6: 1.0})

    def test_missing_column(self):
        with pytest.raises(KeyError):
            reweight_by_tier(ColumnTable({"x": [1]}))

    def test_empty_table(self):
        with pytest.raises(ValueError):
            reweight_by_tier(
                ColumnTable({"bst_tier": np.asarray([], dtype=np.int64)})
            )


class TestDebiasedSummary:
    def test_low_tier_skew_corrected_upward(self):
        # 80% of tests on a 25 Mbps plan, 20% on a gigabit plan: the
        # raw median reflects the slow plan, the rebalanced one rises.
        table = _table(
            [1] * 80 + [6] * 20, [25.0] * 80 + [900.0] * 20
        )
        summary = debiased_summary(table)
        assert summary["raw_median"] == 25.0
        assert summary["debiased_median"] > summary["raw_median"]

    def test_on_simulated_city(self, ookla_ctx_a):
        summary = debiased_summary(ookla_ctx_a.table)
        # Rebalancing the low-tier skew raises the estimated city
        # median -- the paper's Section 5.1 warning, quantified.
        assert summary["debiased_median"] > summary["raw_median"]

    def test_balanced_sample_unchanged(self):
        table = _table([1, 6] * 50, [25.0, 900.0] * 50)
        summary = debiased_summary(table)
        assert summary["debiased_median"] == pytest.approx(
            summary["raw_median"]
        )
