"""Tests for the 120-second NDT upload/download association."""

import numpy as np
import pytest

from repro.frame import ColumnTable
from repro.pipeline import join_ndt_tests


def _ndt(rows):
    """rows: (direction, client, server, t, speed)."""
    return ColumnTable(
        {
            "test_id": [f"t{i}" for i in range(len(rows))],
            "direction": [r[0] for r in rows],
            "client_ip": [r[1] for r in rows],
            "server_ip": [r[2] for r in rows],
            "timestamp_s": [float(r[3]) for r in rows],
            "speed_mbps": [float(r[4]) for r in rows],
        }
    )


def test_basic_pairing():
    table = _ndt(
        [
            ("download", "c1", "s1", 100, 200.0),
            ("upload", "c1", "s1", 130, 11.0),
        ]
    )
    joined = join_ndt_tests(table)
    assert len(joined) == 1
    assert joined["download_mbps"][0] == 200.0
    assert joined["upload_mbps"][0] == 11.0


def test_earliest_upload_wins():
    table = _ndt(
        [
            ("download", "c1", "s1", 100, 200.0),
            ("upload", "c1", "s1", 160, 12.0),
            ("upload", "c1", "s1", 120, 11.0),
        ]
    )
    joined = join_ndt_tests(table)
    assert joined["upload_mbps"][0] == 11.0


def test_window_boundary_inclusive():
    table = _ndt(
        [
            ("download", "c1", "s1", 100, 200.0),
            ("upload", "c1", "s1", 220, 11.0),
        ]
    )
    assert len(join_ndt_tests(table, window_s=120)) == 1


def test_upload_outside_window_dropped():
    table = _ndt(
        [
            ("download", "c1", "s1", 100, 200.0),
            ("upload", "c1", "s1", 221, 11.0),
        ]
    )
    assert len(join_ndt_tests(table, window_s=120)) == 0


def test_upload_before_download_not_matched():
    table = _ndt(
        [
            ("download", "c1", "s1", 100, 200.0),
            ("upload", "c1", "s1", 99, 11.0),
        ]
    )
    assert len(join_ndt_tests(table)) == 0


def test_client_ip_must_match():
    table = _ndt(
        [
            ("download", "c1", "s1", 100, 200.0),
            ("upload", "c2", "s1", 110, 11.0),
        ]
    )
    assert len(join_ndt_tests(table)) == 0


def test_server_ip_must_match():
    table = _ndt(
        [
            ("download", "c1", "s1", 100, 200.0),
            ("upload", "c1", "s2", 110, 11.0),
        ]
    )
    assert len(join_ndt_tests(table)) == 0


def test_multiple_downloads_share_upload_candidates():
    # Two downloads, one upload in both windows: both may claim it (the
    # paper associates per-download independently).
    table = _ndt(
        [
            ("download", "c1", "s1", 100, 200.0),
            ("download", "c1", "s1", 110, 210.0),
            ("upload", "c1", "s1", 115, 11.0),
        ]
    )
    joined = join_ndt_tests(table)
    assert len(joined) == 2


def test_direction_column_removed():
    table = _ndt(
        [
            ("download", "c1", "s1", 100, 200.0),
            ("upload", "c1", "s1", 110, 11.0),
        ]
    )
    joined = join_ndt_tests(table)
    assert "direction" not in joined
    assert "speed_mbps" not in joined


def test_missing_columns_rejected():
    table = ColumnTable({"direction": ["download"]})
    with pytest.raises(KeyError, match="missing"):
        join_ndt_tests(table)


def test_invalid_window():
    table = _ndt([("download", "c1", "s1", 100, 200.0)])
    with pytest.raises(ValueError):
        join_ndt_tests(table, window_s=0)


def test_empty_table():
    table = _ndt([])
    assert len(join_ndt_tests(table)) == 0


def test_simulator_join_rate(mlab_raw_a, mlab_joined_a):
    downloads = int((mlab_raw_a["direction"] == "download").sum())
    # ~92% of sessions emit an in-window upload.
    assert 0.85 < len(mlab_joined_a) / downloads <= 1.0
