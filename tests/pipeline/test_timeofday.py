"""Tests for the time-of-day analysis."""

import numpy as np
import pytest

from repro.pipeline import TIME_BINS, normalized_speed_by_bin, time_bin_label
from repro.pipeline import test_share_by_bin as share_by_bin


class TestBins:
    @pytest.mark.parametrize(
        "hour,label",
        [(0, "00-06"), (5, "00-06"), (6, "06-12"), (12, "12-18"),
         (18, "18-24"), (23, "18-24")],
    )
    def test_labels(self, hour, label):
        assert time_bin_label(hour) == label

    def test_invalid_hour(self):
        with pytest.raises(ValueError):
            time_bin_label(24)


class TestShares:
    def test_shares_sum_to_100(self, ookla_ctx_a):
        shares = share_by_bin(ookla_ctx_a.table)
        for group, bins in shares.items():
            assert sum(bins.values()) == pytest.approx(100.0)

    def test_all_groups_reported(self, ookla_ctx_a):
        shares = share_by_bin(ookla_ctx_a.table)
        assert set(shares) == set(ookla_ctx_a.group_labels)

    def test_overnight_smallest_for_every_group(self, ookla_ctx_a):
        shares = share_by_bin(ookla_ctx_a.table)
        for bins in shares.values():
            assert bins["00-06"] == min(bins.values())


class TestSpeedByBin:
    def test_bins_partition_group(self, ookla_ctx_a):
        by_bin = normalized_speed_by_bin(
            ookla_ctx_a.table, group_label="Tier 4"
        )
        total = sum(len(v) for v in by_bin.values())
        assert total == len(ookla_ctx_a.rows_for_group("Tier 4"))

    def test_all_bins_present(self, ookla_ctx_a):
        by_bin = normalized_speed_by_bin(ookla_ctx_a.table)
        assert set(by_bin) == set(TIME_BINS)

    def test_effect_is_marginal(self, ookla_ctx_a):
        # Section 6.2's conclusion: medians across bins stay close.
        by_bin = normalized_speed_by_bin(ookla_ctx_a.table)
        medians = [
            float(np.median(v)) for v in by_bin.values() if len(v) > 50
        ]
        assert max(medians) < 1.6 * min(medians)

    def test_unknown_group_is_empty(self, ookla_ctx_a):
        by_bin = normalized_speed_by_bin(
            ookla_ctx_a.table, group_label="Tier 99"
        )
        assert all(len(v) == 0 for v in by_bin.values())
