"""Tests for the text rendering helpers."""

import numpy as np
import pytest

from repro.pipeline import cdf_series, format_table, render_comparison


class TestFormatTable:
    def test_basic_render(self):
        text = format_table([["a", 1], ["bb", 22]], ["name", "n"])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert len(lines) == 4

    def test_alignment(self):
        text = format_table([["x", 1]], ["long-header", "n"])
        header, sep, row = text.splitlines()
        assert len(header) == len(sep) == len(row)

    def test_nan_rendered_as_dash(self):
        text = format_table([[float("nan")]], ["v"])
        assert "-" in text.splitlines()[2]

    def test_float_precision(self):
        text = format_table([[0.123456]], ["v"])
        assert "0.123" in text

    def test_empty_rows(self):
        text = format_table([], ["a", "b"])
        assert "a" in text

    def test_headers_required(self):
        with pytest.raises(ValueError):
            format_table([[1]], [])

    def test_cell_count_checked(self):
        with pytest.raises(ValueError, match="cells"):
            format_table([[1, 2]], ["only"])


class TestCdfSeries:
    def test_default_grid(self):
        series = cdf_series([1.0, 2.0, 3.0], num=5)
        assert len(series) == 5
        assert series[-1][1] == 1.0

    def test_explicit_points(self):
        series = cdf_series([1.0, 2.0, 3.0, 4.0], points=[2.5])
        assert series[0] == (2.5, 0.5)

    def test_monotone(self):
        rng = np.random.default_rng(0)
        series = cdf_series(rng.normal(0, 1, 500))
        fractions = [f for _, f in series]
        assert fractions == sorted(fractions)

    def test_nan_dropped(self):
        series = cdf_series([1.0, np.nan], points=[1.5])
        assert series[0][1] == 1.0


class TestRenderComparison:
    def test_contains_medians(self):
        text = render_comparison(
            "demo", {"a": np.asarray([1.0, 3.0]), "b": np.asarray([2.0])}
        )
        assert "demo" in text
        assert "median" in text

    def test_optional_cdf_block(self):
        text = render_comparison(
            "demo",
            {"a": np.asarray([1.0, 3.0])},
            points=[0.0, 2.0, 4.0],
        )
        assert text.count("\n") > 5
