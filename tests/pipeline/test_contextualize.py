"""Tests for BST contextualisation of measurement tables."""

import numpy as np
import pytest

from repro.core import upload_group_accuracy
from repro.frame import ColumnTable
from repro.pipeline import contextualize
from repro.pipeline.contextualize import CONTEXT_COLUMNS


class TestAugmentation:
    def test_context_columns_added(self, ookla_ctx_a):
        for column in CONTEXT_COLUMNS:
            assert column in ookla_ctx_a.table

    def test_row_count_preserved(self, ookla_a, ookla_ctx_a):
        assert len(ookla_ctx_a) == len(ookla_a)

    def test_tiers_in_catalog(self, ookla_ctx_a, catalog_a):
        tiers = set(
            np.asarray(ookla_ctx_a.table["bst_tier"], dtype=int).tolist()
        )
        assert tiers <= set(catalog_a.tiers)

    def test_plan_speeds_consistent_with_tier(self, ookla_ctx_a, catalog_a):
        table = ookla_ctx_a.table
        for tier in set(table["bst_tier"].tolist()):
            rows = ookla_ctx_a.rows_for_tier(int(tier))
            plan = catalog_a.plan_for_tier(int(tier))
            assert set(rows["plan_download_mbps"].tolist()) == {
                plan.download_mbps
            }

    def test_normalized_download_definition(self, ookla_ctx_a):
        table = ookla_ctx_a.table
        expected = np.asarray(table["download_mbps"]) / np.asarray(
            table["plan_download_mbps"]
        )
        assert np.allclose(
            np.asarray(table["normalized_download"]), expected
        )

    def test_group_labels_match_catalog(self, ookla_ctx_a):
        assert ookla_ctx_a.group_labels == [
            "Tier 1-3", "Tier 4", "Tier 5", "Tier 6",
        ]

    def test_rows_for_group(self, ookla_ctx_a):
        total = sum(
            len(ookla_ctx_a.rows_for_group(g))
            for g in ookla_ctx_a.group_labels
        )
        assert total == len(ookla_ctx_a)

    def test_assignment_accuracy_against_simulation_truth(
        self, ookla_ctx_a
    ):
        accuracy = upload_group_accuracy(
            ookla_ctx_a.bst_result, ookla_ctx_a.table["true_tier"]
        )
        assert accuracy > 0.85  # crowdsourced WiFi data is noisy

    def test_mlab_contextualization(self, mlab_ctx_a):
        assert "bst_tier" in mlab_ctx_a.table
        assert len(mlab_ctx_a) > 0


class TestEdgeCases:
    def test_nan_rows_dropped(self, catalog_a):
        table = ColumnTable(
            {
                "download_mbps": [110.0, np.nan] + [110.0] * 50,
                "upload_mbps": [5.5] * 51 + [np.nan],
            }
        )
        ctx = contextualize(table, catalog_a)
        assert len(ctx) == 50

    def test_all_nan_rejected(self, catalog_a):
        table = ColumnTable(
            {
                "download_mbps": [np.nan, np.nan],
                "upload_mbps": [1.0, 2.0],
            }
        )
        with pytest.raises(ValueError, match="no finite"):
            contextualize(table, catalog_a)

    def test_custom_column_names(self, catalog_a):
        rng = np.random.default_rng(0)
        table = ColumnTable(
            {
                "down": rng.normal(110, 8, 100),
                "up": rng.normal(5.5, 0.3, 100),
            }
        )
        ctx = contextualize(
            table, catalog_a, download_column="down", upload_column="up"
        )
        assert set(ctx.table["bst_tier"].tolist()) <= {1, 2, 3}


class TestReusePrefittedModel:
    """contextualize() with bst_result= / registry= skips the fit."""

    def test_prefitted_result_parity(self, ookla_a, catalog_a, ookla_ctx_a):
        reused = contextualize(
            ookla_a, catalog_a, bst_result=ookla_ctx_a.bst_result
        )
        for column in CONTEXT_COLUMNS:
            fresh = np.asarray(ookla_ctx_a.table[column])
            replay = np.asarray(reused.table[column])
            if fresh.dtype.kind == "f":
                assert np.array_equal(fresh, replay, equal_nan=True), column
            else:
                assert np.array_equal(fresh, replay), column

    def test_prefitted_result_on_fresh_data(
        self, ookla_a, catalog_a, ookla_ctx_a
    ):
        fresh = ookla_a.head(500)
        reused = contextualize(
            fresh, catalog_a, bst_result=ookla_ctx_a.bst_result
        )
        assert len(reused) == 500
        head = np.asarray(ookla_ctx_a.table["bst_tier"])[:500]
        assert np.array_equal(
            np.asarray(reused.table["bst_tier"], dtype=int), head
        )

    def test_catalog_mismatch_rejected(self, ookla_a, ookla_ctx_a):
        from repro.market.isps import city_catalog

        with pytest.raises(ValueError, match="different plan catalog"):
            contextualize(
                ookla_a,
                city_catalog("B"),
                bst_result=ookla_ctx_a.bst_result,
            )

    def test_result_and_registry_mutually_exclusive(
        self, tmp_path, ookla_a, catalog_a, ookla_ctx_a
    ):
        from repro.serve.registry import ModelRegistry

        with pytest.raises(ValueError, match="not both"):
            contextualize(
                ookla_a,
                catalog_a,
                bst_result=ookla_ctx_a.bst_result,
                registry=ModelRegistry(tmp_path),
            )

    def test_registry_miss_fits_and_registers(
        self, tmp_path, ookla_a, catalog_a
    ):
        from repro.serve.registry import ModelRegistry

        registry = ModelRegistry(tmp_path / "models")
        ctx = contextualize(
            ookla_a, catalog_a, registry=registry, city="A"
        )
        key = registry.key_for("A", catalog_a)
        record = registry.lookup(key)
        assert record is not None
        assert record.train_size == len(ctx)
        assert "download_mbps" in record.training_stats

    def test_registry_hit_is_byte_identical(
        self, tmp_path, ookla_a, catalog_a
    ):
        from repro.frame import write_csv
        from repro.serve.registry import ModelRegistry

        registry = ModelRegistry(tmp_path / "models")
        cold = contextualize(ookla_a, catalog_a, registry=registry, city="A")
        warm = contextualize(ookla_a, catalog_a, registry=registry, city="A")
        cold_csv = tmp_path / "cold.csv"
        warm_csv = tmp_path / "warm.csv"
        write_csv(cold.table, cold_csv)
        write_csv(warm.table, warm_csv)
        assert cold_csv.read_bytes() == warm_csv.read_bytes()
