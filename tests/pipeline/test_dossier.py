"""Tests for the city dossier composite report."""

import pytest

from repro.pipeline.dossier import city_dossier


@pytest.fixture(scope="module")
def dossier_text(request):
    ctx = request.getfixturevalue("ookla_ctx_a")
    return city_dossier(ctx, city_label="City-A")


def test_title_and_count(dossier_text, ookla_ctx_a):
    assert "City-A" in dossier_text
    assert str(len(ookla_ctx_a.table)) in dossier_text


def test_all_sections_present(dossier_text):
    for heading in (
        "headline medians",
        "subscription mix",
        "local factors",
        "challenge triage",
        "metadata: interpretability",
    ):
        assert heading in dossier_text, heading


def test_every_tier_group_listed(dossier_text, ookla_ctx_a):
    for label in ookla_ctx_a.group_labels:
        assert label in dossier_text


def test_recommendations_enumerated(dossier_text):
    assert "1. " in dossier_text


def test_default_label_uses_isp(ookla_ctx_a):
    text = city_dossier(ookla_ctx_a)
    assert "ISP-A" in text


def test_mlab_dossier_skips_device_sections(mlab_ctx_a):
    text = city_dossier(mlab_ctx_a, city_label="City-A (M-Lab)")
    # NDT data has no platform/access columns: local factors omitted,
    # the rest still renders.
    assert "local factors" not in text
    assert "challenge triage" in text


def test_catalog_from_menu_integration():
    """A custom-menu catalog flows through the whole dossier path."""
    import numpy as np

    from repro.frame import ColumnTable
    from repro.market import catalog_from_menu
    from repro.pipeline import contextualize

    catalog = catalog_from_menu(
        "Custom-ISP", [(100, 10), (500, 50)]
    )
    rng = np.random.default_rng(0)
    table = ColumnTable(
        {
            "download_mbps": np.concatenate(
                [rng.normal(105, 8, 150), rng.normal(520, 30, 150)]
            ),
            "upload_mbps": np.concatenate(
                [rng.normal(11, 0.6, 150), rng.normal(54, 2.5, 150)]
            ),
        }
    )
    ctx = contextualize(table, catalog)
    text = city_dossier(ctx)
    assert "Custom-ISP" in text
    assert set(ctx.table["bst_tier"].tolist()) == {1, 2}
