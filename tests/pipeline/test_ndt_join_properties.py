"""Property-based tests of the NDT 120-second join."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frame import ColumnTable
from repro.pipeline import join_ndt_tests


@st.composite
def ndt_tables(draw):
    """Random direction-separated NDT record sets."""
    n = draw(st.integers(min_value=0, max_value=60))
    directions = draw(
        st.lists(
            st.sampled_from(["download", "upload"]),
            min_size=n,
            max_size=n,
        )
    )
    clients = draw(
        st.lists(
            st.sampled_from(["c1", "c2", "c3"]), min_size=n, max_size=n
        )
    )
    servers = draw(
        st.lists(st.sampled_from(["s1", "s2"]), min_size=n, max_size=n)
    )
    times = draw(
        st.lists(
            st.floats(min_value=0, max_value=5000, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    speeds = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=1000, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    return ColumnTable(
        {
            "test_id": [f"t{i}" for i in range(n)],
            "direction": directions,
            "client_ip": clients,
            "server_ip": servers,
            "timestamp_s": times,
            "speed_mbps": speeds,
        }
    )


@given(ndt_tables())
@settings(max_examples=60, deadline=None)
def test_join_never_exceeds_download_count(table):
    joined = join_ndt_tests(table)
    downloads = int((table["direction"] == "download").sum()) if len(
        table
    ) else 0
    assert len(joined) <= downloads


@given(ndt_tables())
@settings(max_examples=60, deadline=None)
def test_joined_upload_is_a_real_matching_record(table):
    joined = join_ndt_tests(table)
    uploads = table.filter(table["direction"] == "upload") if len(
        table
    ) else table
    for i in range(len(joined)):
        row = joined.row(i)
        candidates = [
            j
            for j in range(len(uploads))
            if uploads["client_ip"][j] == row["client_ip"]
            and uploads["server_ip"][j] == row["server_ip"]
            and row["timestamp_s"]
            <= uploads["timestamp_s"][j]
            <= row["timestamp_s"] + 120.0
        ]
        assert candidates, "joined upload has no valid source record"
        speeds = {float(uploads["speed_mbps"][j]) for j in candidates}
        assert float(row["upload_mbps"]) in speeds


@given(ndt_tables())
@settings(max_examples=60, deadline=None)
def test_joined_upload_is_the_earliest_candidate(table):
    joined = join_ndt_tests(table)
    uploads = table.filter(table["direction"] == "upload") if len(
        table
    ) else table
    for i in range(len(joined)):
        row = joined.row(i)
        in_window = [
            (float(uploads["timestamp_s"][j]), float(uploads["speed_mbps"][j]))
            for j in range(len(uploads))
            if uploads["client_ip"][j] == row["client_ip"]
            and uploads["server_ip"][j] == row["server_ip"]
            and row["timestamp_s"]
            <= uploads["timestamp_s"][j]
            <= row["timestamp_s"] + 120.0
        ]
        earliest_time = min(t for t, _ in in_window)
        earliest_speeds = {s for t, s in in_window if t == earliest_time}
        assert float(row["upload_mbps"]) in earliest_speeds


@given(ndt_tables())
@settings(max_examples=40, deadline=None)
def test_join_is_deterministic(table):
    assert join_ndt_tests(table) == join_ndt_tests(table)
