"""Tests for challenge-process triage."""

import numpy as np
import pytest

from repro.frame import ColumnTable
from repro.pipeline import ChallengeConfig, classify_tests
from repro.pipeline.challenge import CATEGORIES


def _ctx_table(rows):
    """rows: (download, normalized, band, rssi, memory)."""
    return ColumnTable(
        {
            "download_mbps": [float(r[0]) for r in rows],
            "normalized_download": [float(r[1]) for r in rows],
            "wifi_band_ghz": [float(r[2]) for r in rows],
            "rssi_dbm": [float(r[3]) for r in rows],
            "memory_gb": [float(r[4]) for r in rows],
        }
    )


class TestClassification:
    def test_meets_plan(self):
        table = _ctx_table([(110, 1.1, 5.0, -45, 8)])
        summary = classify_tests(table)
        assert summary.table["challenge_category"][0] == "meets-plan"

    def test_plan_limited(self):
        # 22 Mbps on a 25 Mbps plan: slow in absolute terms, as sold.
        table = _ctx_table([(22, 0.88, 5.0, -45, 8)])
        summary = classify_tests(table)
        assert summary.table["challenge_category"][0] == "plan-limited"

    def test_local_bottleneck_band(self):
        table = _ctx_table([(40, 0.1, 2.4, -45, 8)])
        summary = classify_tests(table)
        assert (
            summary.table["challenge_category"][0] == "local-bottleneck"
        )

    def test_local_bottleneck_rssi(self):
        table = _ctx_table([(40, 0.1, 5.0, -80, 8)])
        summary = classify_tests(table)
        assert (
            summary.table["challenge_category"][0] == "local-bottleneck"
        )

    def test_local_bottleneck_memory(self):
        table = _ctx_table([(40, 0.1, 5.0, -45, 1.0)])
        summary = classify_tests(table)
        assert (
            summary.table["challenge_category"][0] == "local-bottleneck"
        )

    def test_challenge_worthy(self):
        table = _ctx_table([(40, 0.1, 5.0, -45, 8)])
        summary = classify_tests(table)
        assert (
            summary.table["challenge_category"][0] == "challenge-worthy"
        )

    def test_missing_metadata_defaults_to_challenge_worthy(self):
        table = ColumnTable(
            {
                "download_mbps": [40.0],
                "normalized_download": [0.1],
            }
        )
        summary = classify_tests(table)
        assert (
            summary.table["challenge_category"][0] == "challenge-worthy"
        )

    def test_counts_sum(self):
        table = _ctx_table(
            [
                (110, 1.1, 5.0, -45, 8),
                (22, 0.88, 5.0, -45, 8),
                (40, 0.1, 2.4, -45, 8),
                (40, 0.1, 5.0, -45, 8),
            ]
        )
        summary = classify_tests(table)
        assert sum(summary.counts.values()) == 4
        assert summary.n_tests == 4

    def test_share_and_rows(self):
        table = _ctx_table(
            [(40, 0.1, 5.0, -45, 8), (110, 1.1, 5.0, -45, 8)]
        )
        summary = classify_tests(table)
        assert summary.share("challenge-worthy") == 0.5
        assert len(summary.challenge_rows()) == 1

    def test_unknown_category_rejected(self):
        table = _ctx_table([(110, 1.1, 5.0, -45, 8)])
        with pytest.raises(KeyError):
            classify_tests(table).share("bogus")


class TestConfigAndInputs:
    def test_requires_contextualised_table(self):
        with pytest.raises(KeyError, match="contextualised"):
            classify_tests(ColumnTable({"download_mbps": [1.0]}))

    def test_requires_download_column(self):
        with pytest.raises(KeyError, match="download_mbps"):
            classify_tests(ColumnTable({"normalized_download": [1.0]}))

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            ChallengeConfig(underperformance_ratio=0.0)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            ChallengeConfig(slow_threshold_mbps=-1)

    def test_custom_thresholds_shift_categories(self):
        table = _ctx_table([(40, 0.55, 5.0, -45, 8)])
        default = classify_tests(table)
        strict = classify_tests(
            table, ChallengeConfig(underperformance_ratio=0.6)
        )
        assert default.table["challenge_category"][0] == "meets-plan"
        assert (
            strict.table["challenge_category"][0] == "challenge-worthy"
        )


class TestOnSimulatedCity:
    def test_category_mix(self, ookla_ctx_a):
        summary = classify_tests(ookla_ctx_a.table)
        assert set(summary.counts) <= set(CATEGORIES)
        # The paper's story: a visible slice of slow tests are merely
        # plan-limited or locally bottlenecked -- and because only
        # Android rows carry local metadata, most under-performing
        # tests cannot be excused (exactly why Section 8 recommends
        # collecting the metadata everywhere).
        assert summary.share("local-bottleneck") > 0.01
        assert summary.share("plan-limited") > 0.05
        assert summary.share("meets-plan") > 0.2
        assert summary.share("challenge-worthy") > 0.2

    def test_augmented_column_added_not_mutated(self, ookla_ctx_a):
        classify_tests(ookla_ctx_a.table)
        assert "challenge_category" not in ookla_ctx_a.table
