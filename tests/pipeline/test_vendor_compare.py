"""Tests for the Ookla vs M-Lab comparison."""

import numpy as np
import pytest

from repro.market import city_catalog
from repro.pipeline import compare_vendors, contextualize


@pytest.fixture(scope="module")
def comparison(request):
    ookla = request.getfixturevalue("ookla_ctx_a")
    mlab = request.getfixturevalue("mlab_ctx_a")
    return compare_vendors(ookla, mlab)


def test_groups_covered(comparison):
    assert comparison.group_labels == [
        "Tier 1-3", "Tier 4", "Tier 5", "Tier 6",
    ]
    for label in comparison.group_labels:
        assert label in comparison.ookla
        assert label in comparison.mlab


def test_mlab_lags_in_every_tier(comparison):
    for label, (ookla_med, mlab_med) in comparison.medians().items():
        assert mlab_med < ookla_med, label


def test_lag_factors_in_paper_band(comparison):
    lags = comparison.lag_factors()
    for label, lag in lags.items():
        assert 1.0 < lag < 3.5, (label, lag)


def test_lag_definition(comparison):
    medians = comparison.medians()
    lags = comparison.lag_factors()
    for label in comparison.group_labels:
        ookla_med, mlab_med = medians[label]
        assert lags[label] == pytest.approx(ookla_med / mlab_med)


def test_catalog_mismatch_rejected(ookla_ctx_a, mlab_joined_a):
    other = contextualize(mlab_joined_a, city_catalog("B"))
    with pytest.raises(ValueError, match="same city"):
        compare_vendors(ookla_ctx_a, other)


def test_empty_group_lag_is_inf_or_nan():
    from repro.pipeline.vendor_compare import VendorComparison

    comparison = VendorComparison(
        group_labels=["Tier 1"],
        ookla={"Tier 1": np.asarray([0.5])},
        mlab={"Tier 1": np.asarray([])},
    )
    lag = comparison.lag_factors()["Tier 1"]
    assert np.isnan(lag) or np.isinf(lag)
