"""Regression tests for the serving-path correctness fixes.

Each test here failed against the pre-fix behaviour: a drift counter
inflated by /healthz polling, a MicroBatcher close race that lost
futures, drift statistics polluted by 400-rejected batches, and queue
backpressure surfacing as a generic 500.
"""

from __future__ import annotations

import json
import queue
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError

import numpy as np
import pytest

from repro.serve.engine import BatcherClosedError, MicroBatcher, TierAssigner
from repro.serve.registry import ModelRegistry
from repro.serve.server import AssignmentService, ServeConfig, build_server


@pytest.fixture
def service(tmp_path, fitted_a, ookla_a, catalog_a):
    """A fresh (non-HTTP) assignment service over a one-model registry."""
    registry = ModelRegistry(tmp_path / "registry")
    registry.register(
        registry.key_for("A", catalog_a),
        fitted_a,
        downloads=np.asarray(ookla_a["download_mbps"], dtype=float),
        uploads=np.asarray(ookla_a["upload_mbps"], dtype=float),
    )
    svc = AssignmentService(
        registry,
        ServeConfig(default_city="A", drift_min_samples=20),
    )
    yield svc
    svc.close()


# ---------------------------------------------------------------------------
# Fix 1: drift counter must count transitions, not polls
# ---------------------------------------------------------------------------
def test_drift_counter_is_poll_stable(service):
    # Push traffic far from the training mean until the model drifts.
    out = service.assign_payload(
        {"downloads": [100_000.0] * 30, "uploads": [90_000.0] * 30}
    )
    assert out["tiers"]
    first = service.drift_status()
    assert any(row["drifted"] for row in first)
    flagged = service.metrics.counter("serve.drift_flags").value
    assert flagged == 1
    # /healthz and the alert evaluator both poll drift_status; polling
    # while the model stays drifted must not move the counter.
    for _ in range(5):
        again = service.drift_status()
        assert any(row["drifted"] for row in again)
    assert service.metrics.counter("serve.drift_flags").value == flagged


# ---------------------------------------------------------------------------
# Fix 2: submit racing close never loses a future
# ---------------------------------------------------------------------------
def test_close_race_loses_no_futures(fitted_a):
    assigner = TierAssigner(fitted_a)
    futures: list[Future] = []
    rejected = 0
    lock = threading.Lock()
    stop = threading.Event()

    batcher = MicroBatcher(assigner, max_batch=16, flush_interval_s=0.001)

    def producer() -> None:
        nonlocal rejected
        while not stop.is_set():
            try:
                fut = batcher.submit(110.0, 5.5, timeout_s=1.0)
            except BatcherClosedError:
                with lock:
                    rejected += 1
                return
            with lock:
                futures.append(fut)

    threads = [threading.Thread(target=producer) for _ in range(8)]
    for thread in threads:
        thread.start()
    time.sleep(0.05)  # let producers overlap the close
    batcher.close()
    stop.set()
    for thread in threads:
        thread.join(timeout=10)
        assert not thread.is_alive()
    # Every accepted submission resolved; none hangs past close().
    assert futures
    for fut in futures:
        tier, group = fut.result(timeout=5)
        assert isinstance(tier, int) and isinstance(group, int)
    # Post-close submissions fail fast and explicitly.
    with pytest.raises(BatcherClosedError):
        batcher.submit(110.0, 5.5)


def test_assign_one_timeout_is_a_single_budget(fitted_a):
    """Enqueue wait and result wait share one deadline, not two."""

    class _StuckBatcher(MicroBatcher):
        def submit(self, download, upload, timeout_s=None):
            time.sleep(0.3)  # slow enqueue eats into the budget
            return Future()  # never resolves

    batcher = _StuckBatcher(TierAssigner(fitted_a))
    try:
        start = time.monotonic()
        with pytest.raises(FutureTimeoutError):
            batcher.assign_one(110.0, 5.5, timeout_s=0.5)
        elapsed = time.monotonic() - start
        # Pre-fix this waited 0.3s + a full 0.5s result timeout.
        assert elapsed < 0.75
    finally:
        MicroBatcher.close(batcher)


# ---------------------------------------------------------------------------
# Fix 3: rejected batches must not pollute drift statistics
# ---------------------------------------------------------------------------
def test_rejected_batch_leaves_drift_stats_untouched(service):
    loaded = service.resolve()
    field = service.quality.field(
        f"serve.{loaded.key.slug}.download_mbps"
    )
    before = field.snapshot().count
    with pytest.raises(ValueError):
        service.assign_payload(
            {
                "downloads": [float("nan")] * 500,
                "uploads": [5.5] * 500,
            }
        )
    with pytest.raises(ValueError):
        service.assign_payload(
            {"downloads": [110.0, 120.0], "uploads": [5.5]}
        )
    assert field.snapshot().count == before
    # A valid batch still observes.
    service.assign_payload({"downloads": [110.0], "uploads": [5.5]})
    assert field.snapshot().count == before + 1


# ---------------------------------------------------------------------------
# Fix 4: queue saturation answers a structured 503, not a 500
# ---------------------------------------------------------------------------
class _SaturatedBatcher:
    """Stands in for a micro-batcher whose queue never drains."""

    def assign_one(self, download, upload, timeout_s=30.0):
        raise queue.Full

    def close(self) -> None:
        pass


def test_saturated_queue_maps_to_503(tmp_path, fitted_a, ookla_a, catalog_a):
    registry = ModelRegistry(tmp_path / "registry")
    registry.register(registry.key_for("A", catalog_a), fitted_a)
    server = build_server(registry, ServeConfig(port=0, default_city="A"))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        loaded = server.service.resolve()
        with loaded.lock:
            loaded.batcher = _SaturatedBatcher()
        body = json.dumps(
            {"downloads": [110.0], "uploads": [5.5], "stream": True}
        ).encode()
        request = urllib.request.Request(
            f"http://{host}:{port}/assign",
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        response = excinfo.value
        assert response.code == 503
        assert response.headers.get("Retry-After") == "1"
        payload = json.loads(response.read())
        assert "saturated" in payload["error"]["message"]
        assert payload["error"]["code"] == 503
        assert payload["error"]["trace_id"]
        assert (
            server.service.metrics.counter("serve.queue_rejections").value
            == 1
        )
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)
