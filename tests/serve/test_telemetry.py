"""End-to-end telemetry through the serving tier.

Covers the ``/metrics`` exposition, trace-id propagation (response
header, assign payloads, error bodies, and spans), the per-endpoint
instruments, the ``obs watch`` snapshot, and the full drift-alert
lifecycle against a live in-process server: shifted traffic fires the
``model_drift`` alert (visible in the watch output and the JSONL alert
log) and normalizing traffic resolves it.
"""

from __future__ import annotations

import json
import math
import os
import re
import subprocess
import sys
import threading
import time
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.obs.metrics import parse_prometheus_text
from repro.obs.trace import use_collector
from repro.obs.watch import render_snapshot, take_snapshot, watch
from repro.serve.client import ServeClient, ServeError
from repro.serve.registry import ModelRegistry
from repro.serve.server import ServeConfig, build_server

REPO_ROOT = Path(__file__).resolve().parents[2]
TRACE_ID = re.compile(r"^[0-9a-f]{16}$")


def _build(tmp_dir, fitted_a, ookla_a, catalog_a, **config_kwargs):
    """A live server + client over a one-model registry."""
    registry = ModelRegistry(tmp_dir / "registry")
    registry.register(
        registry.key_for("A", catalog_a),
        fitted_a,
        downloads=np.asarray(ookla_a["download_mbps"], dtype=float),
        uploads=np.asarray(ookla_a["upload_mbps"], dtype=float),
    )
    config = ServeConfig(
        port=0,
        default_city="A",
        drift_min_samples=50,
        alert_interval_s=0.0,  # tests drive evaluate() themselves
        **config_kwargs,
    )
    server = build_server(registry, config)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    return ServeClient(f"http://{host}:{port}"), server, thread


@pytest.fixture(scope="module")
def served_telemetry(tmp_path_factory, fitted_a, request):
    ookla_a = request.getfixturevalue("ookla_a")
    catalog_a = request.getfixturevalue("catalog_a")
    client, server, thread = _build(
        tmp_path_factory.mktemp("telemetry"), fitted_a, ookla_a, catalog_a
    )
    yield client, server
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)


class TestMetricsEndpoint:
    def test_exposition_parses_with_windowed_families(
        self, served_telemetry
    ):
        client, server = served_telemetry
        client.assign([110.0, 900.0], [5.5, 40.0])
        server.service.alerts.evaluate()
        series = parse_prometheus_text(client.metrics_text())
        assert series["serve_requests_total"][0][1] > 0.0
        labels, rate = series["serve_requests_rate"][0]
        assert labels == {"window": "60s"}
        assert rate > 0.0
        quantiles = {
            lbl["quantile"]: val
            for lbl, val in series["serve_request_latency_s_window"]
            if "quantile" in lbl
        }
        assert set(quantiles) == {"0.5", "0.95", "0.99"}
        assert all(not math.isnan(v) for v in quantiles.values())
        # Alert activity is itself a metric.
        assert series["serve_alerts_active"][0][1] == 0.0

    def test_metrics_content_type_and_trace_header(
        self, served_telemetry
    ):
        client, _ = served_telemetry
        with urllib.request.urlopen(
            client.base_url + "/metrics", timeout=10
        ) as response:
            assert response.headers["Content-Type"].startswith(
                "text/plain; version=0.0.4"
            )
            assert TRACE_ID.match(response.headers["X-Trace-Id"])

    def test_per_endpoint_and_status_class_instruments(
        self, served_telemetry
    ):
        client, _ = served_telemetry
        client.assign([110.0], [5.5])
        with pytest.raises(ServeError):
            client._request("GET", "/nope")
        series = parse_prometheus_text(client.metrics_text())
        assert series["serve_status_2xx_total"][0][1] > 0.0
        assert series["serve_status_4xx_total"][0][1] > 0.0
        assert series["serve_errors_4xx_total"][0][1] > 0.0
        assert series["serve_latency_assign_count"][0][1] > 0.0
        # Unknown paths collapse into the low-cardinality "other" slug.
        assert series["serve_latency_other_count"][0][1] > 0.0
        assert "serve_errors_5xx_total" not in series


class TestTracePropagation:
    def test_assign_response_echoes_header_trace_id(
        self, served_telemetry
    ):
        client, _ = served_telemetry
        body = json.dumps(
            {"downloads": [110.0], "uploads": [5.5]}
        ).encode()
        request = urllib.request.Request(
            client.base_url + "/assign",
            data=body,
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            header_id = response.headers["X-Trace-Id"]
            payload = json.loads(response.read())
        assert TRACE_ID.match(header_id)
        assert payload["trace_id"] == header_id

    def test_error_body_carries_code_message_trace_id(
        self, served_telemetry
    ):
        client, _ = served_telemetry
        with pytest.raises(ServeError) as err:
            client.assign([], [])
        assert err.value.status == 400
        assert err.value.code == 400
        assert err.value.message
        assert TRACE_ID.match(err.value.trace_id)
        assert f"[trace {err.value.trace_id}]" in str(err.value)

    def test_trace_id_reaches_request_and_assign_spans(
        self, served_telemetry
    ):
        client, _ = served_telemetry
        with use_collector() as collector:
            out = client.assign([110.0, 900.0], [5.5, 40.0])
            trace_id = out["trace_id"]
            # The handler thread records serve.request after the
            # response body is already on the wire; wait for it.
            deadline = time.monotonic() + 10.0
            request_spans: list = []
            while not request_spans and time.monotonic() < deadline:
                request_spans = [
                    sp
                    for sp in collector.find("serve.request")
                    if sp.attributes.get("trace_id") == trace_id
                ]
                if not request_spans:
                    time.sleep(0.01)
        assert len(request_spans) == 1
        assert request_spans[0].attributes["status"] == 200
        assert request_spans[0].attributes["path"] == "/assign"
        assign_spans = [
            sp
            for sp in collector.find("serve.assign")
            if sp.attributes.get("trace_id") == trace_id
        ]
        assert len(assign_spans) == 1

    def test_sampling_off_skips_spans_but_keeps_trace_ids(
        self, tmp_path, fitted_a, ookla_a, catalog_a
    ):
        client, server, thread = _build(
            tmp_path, fitted_a, ookla_a, catalog_a, trace_sample_rate=0.0
        )
        try:
            with use_collector() as collector:
                out = client.assign([110.0], [5.5])
            assert TRACE_ID.match(out["trace_id"])
            assert collector.find("serve.request") == []
            series = parse_prometheus_text(client.metrics_text())
            assert "serve_traces_sampled_total" not in series
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)


class TestClientTimeouts:
    def test_per_request_timeout_override_works(self, served_telemetry):
        client, _ = served_telemetry
        assert client.healthz(timeout_s=30.0)["status"] == "ok"
        assert client.models(timeout_s=30.0)

    def test_unreachable_server_raises_status_zero(self):
        client = ServeClient("http://127.0.0.1:1", timeout_s=0.5)
        with pytest.raises(ServeError) as err:
            client.healthz()
        assert err.value.status == 0
        assert err.value.trace_id is None


class TestWatch:
    def test_snapshot_and_render(self, served_telemetry):
        client, _ = served_telemetry
        client.assign([110.0], [5.5])
        snap = take_snapshot(client)
        assert snap["requests_total"] > 0.0
        assert snap["models_loaded"] >= 1
        text = render_snapshot(snap)
        assert "serve watch" in text
        assert "requests" in text
        assert "latency" in text

    def test_watch_loop_with_injected_sleep(self, served_telemetry):
        client, _ = served_telemetry
        outputs: list[str] = []
        slept: list[float] = []
        n = watch(
            client,
            interval_s=0.25,
            max_polls=3,
            clear=True,
            out=outputs.append,
            sleep=slept.append,
        )
        assert n == 3
        assert slept == [0.25, 0.25]
        assert not outputs[0].startswith("\x1b")  # first frame: no clear
        assert outputs[1].startswith("\x1b[2J")
        assert all("requests" in frame for frame in outputs)

    def test_cli_obs_watch_single_poll(self, served_telemetry, tmp_path):
        client, _ = served_telemetry
        env = dict(
            os.environ,
            PYTHONPATH=str(REPO_ROOT / "src"),
            REPRO_LEDGER="0",
        )
        out = subprocess.run(
            [
                sys.executable, "-m", "repro.cli", "obs", "watch",
                "--url", client.base_url,
                "--count", "1",
                "--no-clear",
            ],
            capture_output=True,
            text=True,
            env=env,
            cwd=str(tmp_path),
            timeout=60,
            check=True,
        )
        assert "serve watch" in out.stdout
        assert "alerts" in out.stdout


class TestDriftAlertLifecycle:
    def test_drift_fires_shows_in_watch_and_log_then_resolves(
        self, tmp_path, fitted_a, ookla_a, catalog_a
    ):
        log_path = tmp_path / "alerts.jsonl"
        client, server, thread = _build(
            tmp_path,
            fitted_a,
            ookla_a,
            catalog_a,
            alert_log=str(log_path),
        )
        service = server.service
        try:
            # Baseline traffic near the training distribution.
            stats = service.registry.records()[0].training_stats
            mean_down = stats["download_mbps"]["mean"]
            mean_up = stats["upload_mbps"]["mean"]
            client.assign([mean_down] * 10, [mean_up] * 10)
            assert service.alerts.evaluate() == []

            # Shifted traffic past drift_min_samples flags the model...
            client.assign([4_000.0] * 50, [300.0] * 50)
            events = service.alerts.evaluate()
            fired = [e for e in events if e["event"] == "fired"]
            assert [e["rule"] for e in fired] == ["model_drift"]

            # ...which the watch snapshot surfaces...
            snap = take_snapshot(client)
            assert snap["alerts"]["active"]
            text = render_snapshot(snap)
            assert "model_drift" in text
            assert "[critical]" in text

            # ...and /metrics counts.
            series = parse_prometheus_text(client.metrics_text())
            assert series["serve_alerts_fired_total"][0][1] == 1.0
            assert series["serve_alerts_active"][0][1] == 1.0

            # Normal traffic pulls the observed means back under the
            # drift threshold; the alert resolves.
            resolved: list[dict] = []
            for _ in range(40):
                client.assign([mean_down] * 1_000, [mean_up] * 1_000)
                events = service.alerts.evaluate()
                resolved = [
                    e for e in events if e["event"] == "resolved"
                ]
                if resolved:
                    break
            assert [e["rule"] for e in resolved] == ["model_drift"]
            assert service.alerts.active() == []
            assert "active=0" in render_snapshot(take_snapshot(client))

            # The JSONL log recorded the whole lifecycle.
            rows = [
                json.loads(line)
                for line in log_path.read_text().splitlines()
            ]
            assert [row["event"] for row in rows] == [
                "start",
                "fired",
                "resolved",
            ]
            assert rows[1]["rule"] == "model_drift"
            assert rows[1]["severity"] == "critical"
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)
