"""Hot-swap (`POST /reload`) under load, and client 503 retry behavior.

The torn-read contract: while a reload is in flight, every concurrent
``/assign`` response must be computed by one complete model — either
the old or the new — never a mixture, and never a 5xx burst.
"""

from __future__ import annotations

import http.server
import threading

import numpy as np
import pytest

from repro.core.bst import BSTModel
from repro.obs import metrics as obs_metrics
from repro.serve.client import ServeClient, ServeError
from repro.serve.engine import TierAssigner
from repro.serve.registry import ModelRegistry
from repro.serve.server import ServeConfig, build_server


@pytest.fixture
def swap_env(tmp_path, fitted_a, ookla_a, catalog_a):
    """A live server plus the ingredients to re-register its model."""
    registry = ModelRegistry(tmp_path / "registry")
    downs = np.asarray(ookla_a["download_mbps"], dtype=float)
    ups = np.asarray(ookla_a["upload_mbps"], dtype=float)
    key = registry.key_for("A", catalog_a)
    registry.register(key, fitted_a, downloads=downs, uploads=ups)
    server = build_server(
        registry, ServeConfig(port=0, default_city="A")
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    client = ServeClient(f"http://{host}:{port}")
    yield registry, key, client, (downs, ups)
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)


class TestReloadEndpoint:
    def test_reload_evicts_and_repopulates(self, swap_env):
        registry, key, client, _ = swap_env
        client.assign([110.0], [5.5])
        out = client.reload()
        assert out["reloaded"] == [key.slug]
        assert out["models_loaded"] == 0
        client.assign([110.0], [5.5])  # lazily re-resolves
        assert client.healthz()["models_loaded"] == 1

    def test_reload_unknown_slug_is_a_noop(self, swap_env):
        _, _, client, _ = swap_env
        client.assign([110.0], [5.5])
        out = client.reload(slugs=["Z|ISP-Z|" + "f" * 64])
        assert out["reloaded"] == []
        assert out["models_loaded"] == 1

    def test_reload_rejects_malformed_body(self, swap_env):
        _, _, client, _ = swap_env
        with pytest.raises(ServeError) as exc_info:
            client.reload(slugs=[123])  # type: ignore[list-item]
        assert exc_info.value.status == 400

    def test_reload_counter_moves(self, swap_env):
        _, _, client, _ = swap_env
        previous = obs_metrics.set_registry(obs_metrics.MetricsRegistry())
        try:
            client.reload()
            assert obs_metrics.counter("serve.reloads").value == 1
        finally:
            obs_metrics.set_registry(previous)


class TestHotSwapUnderLoad:
    N_THREADS = 8
    N_REQUESTS = 25

    def test_no_torn_reads_no_5xx(
        self, swap_env, fitted_a, fresh_sample, catalog_a
    ):
        registry, key, client, (downs, ups) = swap_env
        probe_d, probe_u = fresh_sample
        probe_d, probe_u = probe_d[:40], probe_u[:40]
        old_expected = TierAssigner(fitted_a).assign(probe_d, probe_u)
        # A genuinely different model: refit on congested (scaled-down)
        # traffic, which moves the tier boundaries.
        new_fit = BSTModel(catalog_a).fit(downs * 0.35, ups * 0.35)
        new_expected = TierAssigner(new_fit).assign(probe_d, probe_u)
        legal = {
            tuple(old_expected.tiers.tolist()),
            tuple(new_expected.tiers.tolist()),
        }
        assert len(legal) == 2, "fixture models must assign differently"

        errors: list[BaseException] = []
        results: list[tuple[int, ...]] = []
        start = threading.Barrier(self.N_THREADS + 1)
        done = threading.Event()

        def hammer():
            # Per-thread client: separate connections stress the swap.
            local = ServeClient(client.base_url, retries=0)
            try:
                start.wait()
                n = 0
                while n < self.N_REQUESTS or not done.is_set():
                    out = local.assign(
                        probe_d.tolist(), probe_u.tolist()
                    )
                    results.append(tuple(out["tiers"]))
                    n += 1
                    if n >= 10 * self.N_REQUESTS:
                        break  # safety valve if the swapper stalls
            except BaseException as exc:  # noqa: BLE001 - recorded
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer)
            for _ in range(self.N_THREADS)
        ]
        for t in threads:
            t.start()
        start.wait()
        try:
            # Swap old -> new -> old -> new while the hammer runs.
            for fit in (new_fit, fitted_a, new_fit):
                registry.register(
                    key, fit, downloads=downs, uploads=ups
                )
                client.reload([key.slug])
        finally:
            done.set()
        for t in threads:
            t.join(timeout=60)
        assert not errors, f"requests failed during swap: {errors[:3]}"
        assert len(results) >= self.N_THREADS * self.N_REQUESTS
        torn = [r for r in results if r not in legal]
        assert not torn, f"mixed-model responses detected: {torn[:3]}"
        # Both generations actually served during the window.
        assert len(set(results)) == 2

    def test_streamed_assign_survives_reload(self, swap_env):
        """The single-tuple path retries once through a closed batcher."""
        _, key, client, _ = swap_env
        client.assign_one(110.0, 5.5)
        client.reload([key.slug])
        tier, label = client.assign_one(110.0, 5.5)
        assert isinstance(tier, int)
        assert label


class _FlakyHandler(http.server.BaseHTTPRequestHandler):
    """503s with Retry-After until the configured attempt succeeds."""

    n_failures = 2
    retry_after = "0.01"
    seen: list[str] = []

    def do_POST(self):
        self.__class__.seen.append(self.path)
        body = self.rfile.read(int(self.headers.get("Content-Length", 0)))
        assert body
        if len(self.seen) <= self.n_failures:
            self.send_response(503)
            if self.retry_after is not None:
                self.send_header("Retry-After", self.retry_after)
            self.send_header("Content-Length", "2")
            self.end_headers()
            self.wfile.write(b"{}")
            return
        payload = b'{"tiers": [1], "group_indices": [0], "group_labels": ["T"]}'
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, *args):  # quiet
        pass


@pytest.fixture
def flaky_server():
    handler = type(
        "Handler", (_FlakyHandler,), {"seen": [], "n_failures": 2}
    )
    server = http.server.ThreadingHTTPServer(("127.0.0.1", 0), handler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}", handler
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)


class TestClient503Retry:
    def test_retries_honor_retry_after(self, flaky_server):
        url, handler = flaky_server
        slept: list[float] = []
        client = ServeClient(url, retries=2, sleep=slept.append)
        out = client.assign([100.0], [10.0])
        assert out["tiers"] == [1]
        assert client.n_retries == 2
        assert slept == [0.01, 0.01]  # the server's Retry-After verbatim
        assert len(handler.seen) == 3

    def test_backoff_doubles_without_retry_after(self, flaky_server):
        url, handler = flaky_server
        handler.retry_after = None
        slept: list[float] = []
        client = ServeClient(
            url, retries=3, backoff_s=0.05, sleep=slept.append
        )
        client.assign([100.0], [10.0])
        assert slept == [0.05, 0.1]  # deterministic exponential, no jitter

    def test_backoff_is_capped(self, flaky_server):
        url, handler = flaky_server
        handler.retry_after = "999"
        slept: list[float] = []
        client = ServeClient(
            url, retries=2, max_backoff_s=1.5, sleep=slept.append
        )
        client.assign([100.0], [10.0])
        assert slept == [1.5, 1.5]

    def test_retries_zero_opts_out(self, flaky_server):
        url, handler = flaky_server
        slept: list[float] = []
        client = ServeClient(url, retries=0, sleep=slept.append)
        with pytest.raises(ServeError) as exc_info:
            client.assign([100.0], [10.0])
        assert exc_info.value.status == 503
        assert slept == []
        assert client.n_retries == 0

    def test_exhausted_retries_surface_the_503(self, flaky_server):
        url, handler = flaky_server
        handler.n_failures = 99
        client = ServeClient(url, retries=1, sleep=lambda _s: None)
        with pytest.raises(ServeError) as exc_info:
            client.assign([100.0], [10.0])
        assert exc_info.value.status == 503
        assert client.n_retries == 1

    def test_retry_counter_moves(self, flaky_server):
        url, _ = flaky_server
        previous = obs_metrics.set_registry(obs_metrics.MetricsRegistry())
        try:
            client = ServeClient(url, retries=2, sleep=lambda _s: None)
            client.assign([100.0], [10.0])
            counter = obs_metrics.counter("serve.client.retries")
            assert counter.value == 2
        finally:
            obs_metrics.set_registry(previous)
