"""Threading stress tests: registry LRU cache and the micro-batcher.

Eight worker threads hammer the shared structures; the assertions are
about *integrity* (no lost updates, every future resolved, results
identical to the single-threaded answers) and *liveness* (everything
finishes well inside a timeout -- a deadlock fails the join, not the
whole pytest run).
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor, as_completed

import numpy as np
import pytest

from repro.core.bst import BSTModel
from repro.serve.engine import MicroBatcher, TierAssigner
from repro.serve.registry import ModelRegistry

N_THREADS = 8
JOIN_TIMEOUT_S = 60.0


@pytest.fixture
def small_registry(tmp_path):
    """Cache far smaller than the key space, to force constant eviction."""
    return ModelRegistry(tmp_path / "models", cache_size=2)


@pytest.fixture(scope="module")
def fits(catalog_a, ookla_a):
    """Six distinguishable fits (different training subsets)."""
    downs = np.asarray(ookla_a["download_mbps"], dtype=float)
    ups = np.asarray(ookla_a["upload_mbps"], dtype=float)
    out = []
    for i in range(6):
        lo = i * 150
        sample = slice(lo, lo + 2_000)
        out.append(BSTModel(catalog_a).fit(downs[sample], ups[sample]))
    return out


def _run_threads(worker, n_threads=N_THREADS):
    """Run ``worker(thread_index)`` on N threads; fail on hang or error."""
    with ThreadPoolExecutor(max_workers=n_threads) as pool:
        futures = [pool.submit(worker, i) for i in range(n_threads)]
        done = []
        for fut in as_completed(futures, timeout=JOIN_TIMEOUT_S):
            done.append(fut.result())  # re-raises worker exceptions
    assert len(done) == n_threads
    return done


class TestRegistryStress:
    def test_concurrent_load_with_eviction(
        self, small_registry, fits, catalog_a
    ):
        """Concurrent loads across 6 keys against a 2-slot LRU cache."""
        keys = []
        expected = {}
        for i, fitted in enumerate(fits):
            key = small_registry.key_for(chr(ord("A") + i), catalog_a)
            record = small_registry.register(key, fitted)
            keys.append(key)
            expected[key.slug] = record.digest

        def worker(tid: int):
            rng = np.random.default_rng(tid)
            checked = 0
            for pick in rng.integers(0, len(keys), 40):
                key = keys[int(pick)]
                result, record = small_registry.load(key)
                # Integrity: the cache never hands back the wrong model.
                assert record.digest == expected[key.slug]
                assert len(result) == len(fits[int(pick)])
                checked += 1
            return checked

        assert sum(_run_threads(worker)) == N_THREADS * 40
        # The LRU bound held under concurrency.
        assert len(small_registry.cached_digests) <= 2

    def test_concurrent_register_and_load(self, small_registry, fits,
                                          catalog_a):
        """Writers registering while readers load: no lost registrations."""
        barrier = threading.Barrier(N_THREADS)

        def worker(tid: int):
            barrier.wait(timeout=JOIN_TIMEOUT_S)
            fitted = fits[tid % len(fits)]
            key = small_registry.key_for(chr(ord("A") + tid), catalog_a)
            record = small_registry.register(key, fitted)
            result, loaded_record = small_registry.load(key)
            assert loaded_record.digest == record.digest
            return key.slug

        slugs = _run_threads(worker)
        # Every thread's registration survived (no lost index updates).
        assert len(set(slugs)) == N_THREADS
        recorded = {record.key.slug for record in small_registry.records()}
        assert set(slugs) <= recorded

    def test_concurrent_eviction_is_safe(self, small_registry, fits,
                                         catalog_a):
        """evict_cache racing loads never corrupts results."""
        key = small_registry.key_for("A", catalog_a)
        small_registry.register(key, fits[0])
        stop = threading.Event()

        def evictor(_tid: int):
            while not stop.is_set():
                small_registry.evict_cache()
            return 0

        def loader(_tid: int):
            for _ in range(60):
                result, record = small_registry.load(key)
                assert len(result) == len(fits[0])
            stop.set()
            return 60

        with ThreadPoolExecutor(max_workers=2) as pool:
            ev = pool.submit(evictor, 0)
            ld = pool.submit(loader, 1)
            assert ld.result(timeout=JOIN_TIMEOUT_S) == 60
            assert ev.result(timeout=JOIN_TIMEOUT_S) == 0


class TestMicroBatcherStress:
    def test_eight_producers_no_lost_futures(self, fits, fresh_sample):
        """8 producers * 50 tuples; every future resolves correctly."""
        assigner = TierAssigner(fits[0])
        downs, ups = fresh_sample
        per_thread = 50
        batcher = MicroBatcher(assigner, max_batch=32,
                               flush_interval_s=0.002)
        try:
            def worker(tid: int):
                futures = []
                for j in range(per_thread):
                    idx = (tid * per_thread + j) % len(downs)
                    futures.append(
                        (idx, batcher.submit(downs[idx], ups[idx],
                                             timeout_s=JOIN_TIMEOUT_S))
                    )
                out = []
                for idx, fut in futures:
                    out.append((idx, fut.result(timeout=JOIN_TIMEOUT_S)))
                return out

            results = [
                pair for chunk in _run_threads(worker) for pair in chunk
            ]
        finally:
            batcher.close()
        assert len(results) == N_THREADS * per_thread
        # Integrity: batched answers match the direct single assignment.
        for idx, (tier, group) in results[::17]:
            assert (tier, group) == assigner.assign_one(downs[idx], ups[idx])

    def test_close_after_producers_finish_flushes_everything(
        self, fits, fresh_sample
    ):
        """close() drains the queue; pre-close submissions all resolve."""
        assigner = TierAssigner(fits[0])
        downs, ups = fresh_sample
        batcher = MicroBatcher(assigner, max_batch=64,
                               flush_interval_s=5.0)  # only close flushes
        futures = [
            batcher.submit(downs[i], ups[i], timeout_s=JOIN_TIMEOUT_S)
            for i in range(40)
        ]
        batcher.close()
        for i, fut in enumerate(futures):
            tier, group = fut.result(timeout=JOIN_TIMEOUT_S)
            assert (tier, group) == assigner.assign_one(downs[i], ups[i])

    def test_submit_after_close_raises(self, fits):
        batcher = MicroBatcher(TierAssigner(fits[0]))
        batcher.close()
        with pytest.raises(RuntimeError, match="closed"):
            batcher.submit(100.0, 5.0)

    def test_concurrent_close_is_idempotent(self, fits):
        batcher = MicroBatcher(TierAssigner(fits[0]))

        def worker(_tid: int):
            batcher.close()
            return 1

        assert sum(_run_threads(worker)) == N_THREADS
