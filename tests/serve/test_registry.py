"""Tests for the content-addressed model registry."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.config import BSTConfig
from repro.serve.registry import ModelKey, ModelRecord, ModelRegistry


@pytest.fixture
def registry(tmp_path):
    return ModelRegistry(tmp_path / "models", cache_size=2)


def test_round_trip(registry, fitted_a, catalog_a):
    key = registry.key_for("A", catalog_a)
    record = registry.register(key, fitted_a)
    loaded, loaded_record = registry.load(key)
    assert np.array_equal(loaded.tiers, fitted_a.tiers)
    assert loaded_record.digest == record.digest
    assert loaded_record.train_size == len(fitted_a)


def test_key_includes_config_fingerprint(registry, catalog_a):
    default = registry.key_for("A", catalog_a)
    binned = registry.key_for("A", catalog_a, BSTConfig(kde_method="binned"))
    assert default.config_hash != binned.config_hash
    assert default.slug != binned.slug
    assert ModelKey.from_slug(default.slug) == default


def test_registration_is_content_addressed(registry, fitted_a, catalog_a):
    key_a = registry.key_for("A", catalog_a)
    key_b = registry.key_for("B", catalog_a)  # same fit, different city
    rec_a = registry.register(key_a, fitted_a)
    rec_b = registry.register(key_b, fitted_a)
    assert rec_a.digest == rec_b.digest
    objects = list(registry.objects_dir.glob("*.json"))
    assert len(objects) == 1  # one object, two index entries
    assert len(registry.records()) == 2


def test_reregistration_updates_record(registry, fitted_a, catalog_a):
    key = registry.key_for("A", catalog_a)
    first = registry.register(key, fitted_a)
    second = registry.register(key, fitted_a)
    assert second.digest == first.digest
    assert len(registry.records()) == 1
    assert second.created_s >= first.created_s


def test_lookup_miss_returns_none_load_raises(registry, catalog_a):
    key = registry.key_for("Z", catalog_a)
    assert registry.lookup(key) is None
    with pytest.raises(KeyError, match="no model registered"):
        registry.load(key)


def test_training_stats_recorded(registry, fitted_a, catalog_a, ookla_a):
    downs = np.asarray(ookla_a["download_mbps"], dtype=float)
    ups = np.asarray(ookla_a["upload_mbps"], dtype=float)
    key = registry.key_for("A", catalog_a)
    record = registry.register(key, fitted_a, downloads=downs, uploads=ups)
    stats = record.training_stats["download_mbps"]
    finite = downs[np.isfinite(downs)]
    assert stats["n"] == finite.size
    assert stats["mean"] == pytest.approx(finite.mean())
    assert "p95" in stats
    assert "upload_mbps" in record.training_stats


def test_staleness_metadata(registry, fitted_a, catalog_a):
    key = registry.key_for("A", catalog_a)
    record = registry.register(key, fitted_a)
    assert record.age_s() < 60.0
    assert not record.is_stale(max_age_s=3600.0)
    assert record.is_stale(max_age_s=0.0, now=record.created_s + 1.0)
    assert record.created_utc.endswith("Z")


def test_lru_cache_bounded_and_hit(registry, fitted_a, catalog_a):
    keys = [registry.key_for(city, catalog_a) for city in ("A", "B", "C")]
    # Same result object -> same digest -> one cache slot for all three.
    for key in keys:
        registry.register(key, fitted_a)
    assert len(registry.cached_digests) == 1
    registry.evict_cache()
    assert registry.cached_digests == []
    loaded, _ = registry.load(keys[0])
    again, _ = registry.load(keys[0])
    assert again is loaded  # second load served from cache


def test_index_survives_new_registry_instance(
    tmp_path, fitted_a, catalog_a
):
    root = tmp_path / "models"
    first = ModelRegistry(root)
    key = first.key_for("A", catalog_a)
    first.register(key, fitted_a)
    second = ModelRegistry(root)
    loaded, record = second.load(key)
    assert np.array_equal(loaded.tiers, fitted_a.tiers)
    assert record.key == key


def test_corrupt_index_raises_value_error(registry, fitted_a, catalog_a):
    key = registry.key_for("A", catalog_a)
    registry.register(key, fitted_a)
    registry.index_path.write_text("{not json")
    with pytest.raises(ValueError, match="corrupt registry index"):
        registry.lookup(key)


def test_unknown_index_schema_raises(registry):
    registry.root.mkdir(parents=True, exist_ok=True)
    registry.index_path.write_text(
        json.dumps({"index_schema": 99, "entries": {}})
    )
    with pytest.raises(ValueError, match="index schema"):
        registry.records()


def test_missing_object_raises_value_error(registry, fitted_a, catalog_a):
    key = registry.key_for("A", catalog_a)
    record = registry.register(key, fitted_a)
    registry.evict_cache()
    registry.object_path(record.digest).unlink()
    with pytest.raises(ValueError, match="missing object"):
        registry.load(key)


def test_corrupt_object_raises_value_error(registry, fitted_a, catalog_a):
    key = registry.key_for("A", catalog_a)
    record = registry.register(key, fitted_a)
    registry.evict_cache()
    registry.object_path(record.digest).write_text("{truncated")
    with pytest.raises(ValueError, match="corrupt model object"):
        registry.load(key)


def test_record_round_trips_through_dict(registry, fitted_a, catalog_a):
    key = registry.key_for("A", catalog_a)
    record = registry.register(key, fitted_a)
    assert ModelRecord.from_dict(record.to_dict()) == record
    with pytest.raises(ValueError, match="truncated model record"):
        ModelRecord.from_dict({"city": "A"})


def test_no_tmp_files_left_behind(registry, fitted_a, catalog_a):
    registry.register(registry.key_for("A", catalog_a), fitted_a)
    leftovers = [
        p for p in registry.root.rglob("*") if ".tmp." in p.name
    ]
    assert leftovers == []


# ---------------------------------------------------------------------------
# mmap sidecar + quantized lookup persistence + shard hashing
# ---------------------------------------------------------------------------
def _speeds(table):
    return (
        np.asarray(table["download_mbps"], dtype=float),
        np.asarray(table["upload_mbps"], dtype=float),
    )


def test_register_writes_mmap_sidecar(registry, fitted_a, catalog_a):
    record = registry.register(registry.key_for("A", catalog_a), fitted_a)
    sidecar = registry.shared_path(record.digest)
    assert sidecar.exists()
    assert sidecar.read_bytes().startswith(b"RPROARR1")


def test_load_shared_equals_load(registry, fitted_a, catalog_a):
    key = registry.key_for("A", catalog_a)
    registry.register(key, fitted_a)
    registry.evict_cache()
    shared, record = registry.load_shared(key)
    assert np.array_equal(shared.tiers, fitted_a.tiers)
    assert np.array_equal(shared.group_indices, fitted_a.group_indices)
    # The big arrays are views into the mapped file, not copies.
    assert not shared.tiers.flags.owndata
    assert not shared.tiers.flags.writeable


def test_load_shared_backfills_missing_sidecar(
    registry, fitted_a, catalog_a
):
    key = registry.key_for("A", catalog_a)
    record = registry.register(key, fitted_a)
    registry.shared_path(record.digest).unlink()
    registry.evict_cache()
    shared, _ = registry.load_shared(key)
    assert np.array_equal(shared.tiers, fitted_a.tiers)
    assert registry.shared_path(record.digest).exists()


def test_load_shared_rejects_corrupt_sidecar(
    registry, fitted_a, catalog_a
):
    key = registry.key_for("A", catalog_a)
    record = registry.register(key, fitted_a)
    registry.shared_path(record.digest).write_bytes(b"NOTMAGIC" + b"x" * 64)
    registry.evict_cache()
    with pytest.raises(ValueError, match="magic"):
        registry.load_shared(key)


def test_lookup_table_persisted_with_training_sample(
    registry, fitted_a, catalog_a, ookla_a
):
    downs, ups = _speeds(ookla_a)
    key = registry.key_for("A", catalog_a)
    record = registry.register(key, fitted_a, downloads=downs, uploads=ups)
    assert record.lookup is not None
    assert record.lookup["verified_n"] == downs.size
    # The table survives the index round trip.
    reloaded = registry.lookup(key)
    assert reloaded.lookup == record.lookup
    # Without a training sample there is nothing to prove against.
    bare = registry.register(
        registry.key_for("A", catalog_a, BSTConfig(kde_method="binned")),
        fitted_a,
    )
    assert bare.lookup is None


def test_shard_for_is_deterministic_and_total():
    from repro.serve.registry import shard_for

    assert shard_for("A", "MetroNet", 4) == shard_for("A", "MetroNet", 4)
    for n in (1, 2, 3, 8):
        assert 0 <= shard_for("A", "MetroNet", n) < n
    assert shard_for("A", "MetroNet", 1) == 0
    with pytest.raises(ValueError, match="n_shards"):
        shard_for("A", "MetroNet", 0)
