"""Tests for the assignment HTTP service and its client.

In-process servers run on an ephemeral port per test module; one test
drives the real CLI in a subprocess and checks SIGTERM drains cleanly.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import threading
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.serve.client import ServeClient, ServeError
from repro.serve.engine import TierAssigner
from repro.serve.registry import ModelRegistry
from repro.serve.server import ServeConfig, build_server

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def served(tmp_path_factory, fitted_a, request):
    """A live in-process server over a one-model registry."""
    ookla_a = request.getfixturevalue("ookla_a")
    catalog_a = request.getfixturevalue("catalog_a")
    registry = ModelRegistry(tmp_path_factory.mktemp("registry"))
    downs = np.asarray(ookla_a["download_mbps"], dtype=float)
    ups = np.asarray(ookla_a["upload_mbps"], dtype=float)
    registry.register(
        registry.key_for("A", catalog_a),
        fitted_a,
        downloads=downs,
        uploads=ups,
    )
    config = ServeConfig(port=0, default_city="A", drift_min_samples=50)
    server = build_server(registry, config)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    client = ServeClient(f"http://{host}:{port}")
    yield client, server
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)


def test_assign_endpoint_matches_engine(served, fitted_a, fresh_sample):
    client, _ = served
    downs, ups = fresh_sample
    expected = TierAssigner(fitted_a).assign(downs[:30], ups[:30])
    out = client.assign(downs[:30].tolist(), ups[:30].tolist())
    assert out["tiers"] == expected.tiers.tolist()
    assert out["group_indices"] == expected.group_indices.tolist()
    assert len(out["group_labels"]) == 30
    assert out["model"]["city"] == "A"


def test_streamed_single_tuple(served, fitted_a):
    client, _ = served
    tier, label = client.assign_one(110.0, 5.5)
    expected_tier, expected_group = TierAssigner(fitted_a).assign_one(
        110.0, 5.5
    )
    assert tier == expected_tier
    labels = [g.tier_label for g in fitted_a.upload_stage.groups]
    assert label == labels[expected_group]


def test_models_endpoint(served):
    client, _ = served
    models = client.models()
    assert len(models) == 1
    assert models[0]["city"] == "A"
    assert models[0]["train_size"] > 0
    assert models[0]["age_s"] >= 0
    assert "training_stats" in models[0]


def test_healthz_reports_counts_and_drift(served):
    client, _ = served
    client.assign([110.0], [5.5])  # ensure at least one model is loaded
    health = client.healthz()
    assert health["status"] == "ok"
    assert health["models_registered"] == 1
    assert health["models_loaded"] == 1
    assert health["requests"] > 0
    assert isinstance(health["drift"], list)
    verdict = health["drift"][0]
    assert {"model", "drifted", "directions"} <= set(verdict)


def test_drift_flags_shifted_traffic(served):
    client, server = served
    # Flood with traffic ~20x the training mean; the drift check must
    # flag the model once past drift_min_samples observations.
    downs = [20_000.0 / 4.0] * 60  # still below the outlier threshold
    ups = [600.0] * 60
    client.assign(downs, ups)
    drifted = [d for d in server.service.drift_status() if d["drifted"]]
    assert drifted, "shifted traffic not flagged as drift"
    directions = drifted[0]["directions"]
    assert directions["download_mbps"]["status"] == "drifted"
    assert directions["download_mbps"]["rel_deviation"] > 0.5


def test_bad_payloads_are_400(served):
    client, _ = served
    with pytest.raises(ServeError) as err:
        client.assign([1.0, 2.0], [1.0])
    assert err.value.status == 400
    with pytest.raises(ServeError) as err:
        client.assign([float("nan")], [1.0])
    assert err.value.status == 400
    with pytest.raises(ServeError) as err:
        client.assign([], [])
    assert err.value.status == 400


def test_malformed_json_is_400(served):
    client, _ = served
    request = urllib.request.Request(
        client.base_url + "/assign",
        data=b"{not json",
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with pytest.raises(urllib.error.HTTPError) as err:
        urllib.request.urlopen(request, timeout=10)
    assert err.value.code == 400


def test_unknown_model_is_404(served):
    client, _ = served
    with pytest.raises(ServeError) as err:
        client.assign([100.0], [5.0], city="Z")
    assert err.value.status == 404


def test_unknown_path_is_404(served):
    client, _ = served
    with pytest.raises(ServeError) as err:
        client._request("GET", "/nope")
    assert err.value.status == 404


def test_oversized_body_is_413(tmp_path, fitted_a, catalog_a):
    registry = ModelRegistry(tmp_path / "models")
    registry.register(registry.key_for("A", catalog_a), fitted_a)
    config = ServeConfig(port=0, default_city="A", max_body_bytes=128)
    server = build_server(registry, config)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        host, port = server.server_address[:2]
        client = ServeClient(f"http://{host}:{port}")
        with pytest.raises(ServeError) as err:
            client.assign([100.0] * 64, [5.0] * 64)
        assert err.value.status == 413
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


def test_cli_serve_sigterm_drains_cleanly(tmp_path):
    """`repro serve` fits on miss, answers requests, exits 0 on SIGTERM."""
    env = dict(
        os.environ,
        PYTHONPATH=str(REPO_ROOT / "src"),
        REPRO_LEDGER="0",
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--city", "A",
            "--registry", str(tmp_path / "models"),
            "--port", "0",
            "--n", "2000",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=env,
        cwd=str(tmp_path),
    )
    try:
        url = None
        for line in proc.stdout:
            match = re.search(r"serving on (http://\S+)", line)
            if match:
                url = match.group(1)
                break
        assert url, "server never printed its address"
        body = json.dumps(
            {"downloads": [110.0, 900.0], "uploads": [5.5, 40.0]}
        ).encode()
        request = urllib.request.Request(
            url + "/assign",
            data=body,
            headers={"Content-Type": "application/json"},
        )
        out = json.loads(urllib.request.urlopen(request, timeout=30).read())
        assert len(out["tiers"]) == 2
        health = json.loads(
            urllib.request.urlopen(url + "/healthz", timeout=30).read()
        )
        assert health["status"] == "ok"
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


def test_incoming_trace_id_is_honored(served):
    client, _ = served
    request = urllib.request.Request(
        f"{client.base_url}/healthz",
        headers={"X-Trace-Id": "00deadbeef00aa11"},
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        assert response.headers["X-Trace-Id"] == "00deadbeef00aa11"
    # Malformed ids are ignored; a fresh well-formed id is minted.
    request = urllib.request.Request(
        f"{client.base_url}/healthz",
        headers={"X-Trace-Id": "not-a-trace-id"},
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        echoed = response.headers["X-Trace-Id"]
        assert re.fullmatch(r"[0-9a-f]{16}", echoed)
        assert echoed != "not-a-trace-id"
