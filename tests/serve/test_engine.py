"""Tests for the tier-assignment engine (TierAssigner + MicroBatcher)."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.bst import BSTModel, DownloadStageFit
from repro.core.config import BSTConfig
from repro.serve.engine import MicroBatcher, TierAssigner


def _speeds(table):
    return (
        np.asarray(table["download_mbps"], dtype=float),
        np.asarray(table["upload_mbps"], dtype=float),
    )


# ---------------------------------------------------------------------------
# TierAssigner
# ---------------------------------------------------------------------------
def test_training_sample_replay_is_byte_identical(fitted_a, ookla_a):
    downs, ups = _speeds(ookla_a)
    batch = TierAssigner(fitted_a).assign(downs, ups)
    assert np.array_equal(batch.tiers, fitted_a.tiers)
    assert np.array_equal(batch.group_indices, fitted_a.group_indices)


def test_kmeans_fit_replays_identically(ookla_a, catalog_a):
    downs, ups = _speeds(ookla_a)
    fitted = BSTModel(catalog_a, BSTConfig(clustering="kmeans")).fit(
        downs, ups
    )
    batch = TierAssigner(fitted).assign(downs, ups)
    assert np.array_equal(batch.tiers, fitted.tiers)


def test_fresh_data_assignments_are_valid(fitted_a, fresh_sample):
    downs, ups = fresh_sample
    batch = TierAssigner(fitted_a).assign(downs, ups)
    assert len(batch) == downs.size
    valid_tiers = {p.tier for p in fitted_a.catalog.plans}
    assert set(np.unique(batch.tiers)) <= valid_tiers
    n_groups = len(fitted_a.upload_stage.groups)
    assert batch.group_indices.min() >= 0
    assert batch.group_indices.max() < n_groups


def test_assign_one_matches_batch(fitted_a, fresh_sample):
    downs, ups = fresh_sample
    assigner = TierAssigner(fitted_a)
    batch = assigner.assign(downs[:5], ups[:5])
    for i in range(5):
        tier, group = assigner.assign_one(downs[i], ups[i])
        assert tier == batch.tiers[i]
        assert group == batch.group_indices[i]


def test_to_result_shares_stage_fits(fitted_a, fresh_sample):
    downs, ups = fresh_sample
    result = TierAssigner(fitted_a).to_result(downs, ups)
    assert result.upload_stage is fitted_a.upload_stage
    assert result.download_stages is fitted_a.download_stages
    assert len(result) == downs.size


def test_non_finite_input_rejected(fitted_a):
    assigner = TierAssigner(fitted_a)
    with pytest.raises(ValueError, match="finite"):
        assigner.assign([100.0, float("nan")], [5.0, 5.0])
    with pytest.raises(ValueError, match="pair"):
        assigner.assign([100.0, 200.0], [5.0])
    with pytest.raises(ValueError, match="empty"):
        assigner.assign([], [])


def test_missing_download_stage_falls_back(fitted_a, fresh_sample):
    # Amputate one fitted download stage: its rows must flow through the
    # log-nearest-plan fallback, not crash.
    stages = dict(fitted_a.download_stages)
    gi, _ = stages.popitem()
    amputated = type(fitted_a)(
        catalog=fitted_a.catalog,
        upload_stage=fitted_a.upload_stage,
        download_stages=stages,
        group_indices=fitted_a.group_indices,
        tiers=fitted_a.tiers,
    )
    downs, ups = fresh_sample
    batch = TierAssigner(amputated).assign(downs, ups)
    rows = batch.group_indices == gi
    assert batch.n_fallback == int(rows.sum())
    valid_tiers = {p.tier for p in fitted_a.catalog.plans}
    assert set(np.unique(batch.tiers[rows])) <= valid_tiers


# ---------------------------------------------------------------------------
# MicroBatcher
# ---------------------------------------------------------------------------
def test_microbatch_results_match_direct_assignment(fitted_a, fresh_sample):
    downs, ups = fresh_sample
    assigner = TierAssigner(fitted_a)
    direct = assigner.assign(downs[:50], ups[:50])
    with MicroBatcher(assigner, max_batch=16) as batcher:
        futures = [
            batcher.submit(downs[i], ups[i]) for i in range(50)
        ]
        got = [fut.result(timeout=10) for fut in futures]
    assert [t for t, _ in got] == direct.tiers.tolist()
    assert [g for _, g in got] == direct.group_indices.tolist()


def test_microbatch_concurrent_submitters(fitted_a, fresh_sample):
    downs, ups = fresh_sample
    assigner = TierAssigner(fitted_a)
    expected = assigner.assign(downs[:200], ups[:200])
    results: dict[int, tuple[int, int]] = {}
    lock = threading.Lock()

    def worker(lo: int, hi: int, batcher: MicroBatcher) -> None:
        for i in range(lo, hi):
            out = batcher.assign_one(downs[i], ups[i], timeout_s=10)
            with lock:
                results[i] = out

    with MicroBatcher(assigner, max_batch=32) as batcher:
        threads = [
            threading.Thread(target=worker, args=(lo, lo + 50, batcher))
            for lo in range(0, 200, 50)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
    assert len(results) == 200
    for i, (tier, group) in results.items():
        assert tier == expected.tiers[i]
        assert group == expected.group_indices[i]


def test_close_drains_pending_futures(fitted_a, fresh_sample):
    downs, ups = fresh_sample
    # A huge flush interval: nothing flushes until close() drains.
    batcher = MicroBatcher(
        TierAssigner(fitted_a), max_batch=1024, flush_interval_s=60.0
    )
    futures = [batcher.submit(downs[i], ups[i]) for i in range(20)]
    batcher.close()
    assert all(fut.done() for fut in futures)
    assert all(isinstance(fut.result()[0], int) for fut in futures)


def test_submit_after_close_raises(fitted_a):
    batcher = MicroBatcher(TierAssigner(fitted_a))
    batcher.close()
    with pytest.raises(RuntimeError, match="closed"):
        batcher.submit(100.0, 5.0)
    batcher.close()  # idempotent


def test_bad_tuple_propagates_exception(fitted_a):
    with MicroBatcher(
        TierAssigner(fitted_a), max_batch=1, flush_interval_s=0.001
    ) as batcher:
        fut = batcher.submit(float("nan"), 5.0)
        with pytest.raises(ValueError, match="finite"):
            fut.result(timeout=10)


def test_constructor_validation(fitted_a):
    assigner = TierAssigner(fitted_a)
    with pytest.raises(ValueError, match="max_batch"):
        MicroBatcher(assigner, max_batch=0)
    with pytest.raises(ValueError, match="max_pending"):
        MicroBatcher(assigner, max_batch=64, max_pending=8)


# ---------------------------------------------------------------------------
# Grouped download pass + QuantizedLookup
# ---------------------------------------------------------------------------
def _reference_assign(assigner, downloads, uploads):
    """The pre-vectorization per-group masking loop, kept as an oracle."""
    labels = assigner._upload_predict(np.asarray(uploads, dtype=float))
    group_indices = assigner._component_groups[labels]
    downloads = np.asarray(downloads, dtype=float)
    tiers = np.empty(downloads.size, dtype=np.int64)
    for gi in np.unique(group_indices):
        gi = int(gi)
        rows = np.flatnonzero(group_indices == gi)
        predict = assigner._download_predict.get(gi)
        if predict is None:
            tiers[rows] = assigner._fallback_assign(gi, downloads[rows])
        else:
            tiers[rows] = assigner._download_tiers[gi][
                predict(downloads[rows])
            ]
    return tiers, group_indices


def test_grouped_pass_matches_reference_loop(fitted_a, fresh_sample):
    downs, ups = fresh_sample
    assigner = TierAssigner(fitted_a)
    batch = assigner.assign(downs, ups)
    ref_tiers, ref_groups = _reference_assign(assigner, downs, ups)
    assert np.array_equal(batch.tiers, ref_tiers)
    assert np.array_equal(batch.group_indices, ref_groups)


def test_quantized_lookup_proof_on_training_sample(fitted_a, ookla_a):
    from repro.serve.engine import QuantizedLookup

    downs, ups = _speeds(ookla_a)
    lookup = QuantizedLookup.build(TierAssigner(fitted_a), downs, ups)
    assert lookup.verified_n == downs.size
    batch = lookup.assign(downs, ups)
    assert np.array_equal(batch.tiers, fitted_a.tiers)
    assert np.array_equal(batch.group_indices, fitted_a.group_indices)


def test_quantized_lookup_matches_exact_on_fresh_data(
    fitted_a, ookla_a, fresh_sample
):
    from repro.serve.engine import QuantizedLookup

    downs, ups = _speeds(ookla_a)
    assigner = TierAssigner(fitted_a)
    lookup = QuantizedLookup.build(assigner, downs, ups)
    fresh_downs, fresh_ups = fresh_sample
    exact = assigner.assign(fresh_downs, fresh_ups)
    table = lookup.assign(fresh_downs, fresh_ups)
    assert np.array_equal(table.tiers, exact.tiers)
    assert np.array_equal(table.group_indices, exact.group_indices)


def test_quantized_lookup_round_trips_through_json(fitted_a, ookla_a):
    import json

    from repro.serve.engine import QuantizedLookup

    downs, ups = _speeds(ookla_a)
    assigner = TierAssigner(fitted_a)
    lookup = QuantizedLookup.build(assigner, downs, ups)
    payload = json.loads(json.dumps(lookup.to_dict()))
    revived = QuantizedLookup.from_dict(assigner, payload)
    assert revived.verify(downs, ups)
    assert revived.verified_n == lookup.verified_n


def test_quantized_lookup_rejects_unknown_schema(fitted_a):
    from repro.serve.engine import QuantizedLookup

    with pytest.raises(ValueError, match="lookup_schema"):
        QuantizedLookup.from_dict(
            TierAssigner(fitted_a), {"lookup_schema": 99}
        )
