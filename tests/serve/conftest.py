"""Shared fixtures for the serving subsystem tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bst import BSTModel


@pytest.fixture(scope="package")
def fitted_a(ookla_a, catalog_a):
    """A City-A BST fit over the shared Ookla sample."""
    return BSTModel(catalog_a).fit(
        np.asarray(ookla_a["download_mbps"], dtype=float),
        np.asarray(ookla_a["upload_mbps"], dtype=float),
    )


@pytest.fixture
def fresh_sample(catalog_a):
    """2k plausible City-A tuples the model never saw."""
    rng = np.random.default_rng(77)
    plans = catalog_a.plans
    picks = rng.integers(0, len(plans), 2_000)
    downs = np.abs(
        np.asarray([plans[i].download_mbps for i in picks])
        * rng.normal(0.9, 0.08, picks.size)
    ) + 0.1
    ups = np.abs(
        np.asarray([plans[i].upload_mbps for i in picks])
        * rng.normal(0.95, 0.05, picks.size)
    ) + 0.1
    return downs, ups
