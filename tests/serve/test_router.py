"""Tests for the sharded worker fleet behind the front router.

One module-scoped two-worker fleet serves two cities whose ``(city,
isp)`` hashes land on different shards; tests cover routing
byte-identity, worker failover, telemetry aggregation, and error
relay.  Workers are real subprocesses, so this module is the slowest
in the serving suite.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.bst import BSTModel
from repro.market.isps import city_catalog
from repro.obs.metrics import parse_prometheus_text
from repro.serve.client import ServeClient, ServeError
from repro.serve.engine import TierAssigner
from repro.serve.registry import ModelRegistry, shard_for
from repro.serve.router import RouterConfig, build_router
from repro.vendors.ookla import OoklaSimulator

N_WORKERS = 2


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    """(client, server, {city: (result, downloads, uploads)})."""
    root = tmp_path_factory.mktemp("router-registry")
    registry = ModelRegistry(root)
    models = {}
    for city in ("A", "B"):
        table = OoklaSimulator(city, seed=11).generate(3_000)
        catalog = city_catalog(city)
        downs = np.asarray(table["download_mbps"], dtype=float)
        ups = np.asarray(table["upload_mbps"], dtype=float)
        result = BSTModel(catalog).fit(downs, ups)
        registry.register(
            registry.key_for(city, catalog),
            result,
            downloads=downs,
            uploads=ups,
        )
        models[city] = (result, downs, ups)
    server = build_router(
        root,
        RouterConfig(port=0, n_workers=N_WORKERS, default_city="A"),
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    client = ServeClient(f"http://{host}:{port}", timeout_s=60.0)
    yield client, server, models
    server.shutdown()
    server.server_close()
    thread.join(timeout=30)


def test_cities_land_on_distinct_shards():
    shards = {
        city: shard_for(city, city_catalog(city).isp_name, N_WORKERS)
        for city in ("A", "B")
    }
    assert set(shards.values()) == set(range(N_WORKERS))


def test_routed_assignment_is_byte_identical(fleet):
    client, _, models = fleet
    for city, (result, downs, ups) in models.items():
        exact = TierAssigner(result).assign(downs[:400], ups[:400])
        out = client.assign(
            downs[:400].tolist(), ups[:400].tolist(), city=city
        )
        assert out["tiers"] == exact.tiers.tolist()
        assert out["group_indices"] == exact.group_indices.tolist()
        assert out["model"]["city"] == city


def test_default_city_routes_without_selector(fleet):
    client, _, models = fleet
    result, downs, ups = models["A"]
    out = client.assign(downs[:5].tolist(), ups[:5].tolist())
    assert out["model"]["city"] == "A"


def test_healthz_reports_fleet(fleet):
    client, _, _ = fleet
    health = client.healthz()
    assert health["status"] == "ok"
    assert health["router"]["n_workers"] == N_WORKERS
    assert health["router"]["workers_alive"] == N_WORKERS
    assert len(health["workers"]) == N_WORKERS
    for worker_health in health["workers"]:
        assert worker_health["status"] == "ok"


def test_models_endpoint_lists_both_cities(fleet):
    client, _, _ = fleet
    cities = {record["city"] for record in client.models()}
    assert cities == {"A", "B"}


def test_metrics_aggregate_across_workers(fleet):
    client, _, models = fleet
    # Touch both shards so both workers hold traffic counters.
    for city, (_, downs, ups) in models.items():
        client.assign(downs[:3].tolist(), ups[:3].tolist(), city=city)
    families = parse_prometheus_text(client.metrics_text())
    # Worker families survive aggregation and keep their sample shape.
    assert families["serve_requests_total"][0][1] > 0
    assert families["serve_status_2xx_total"][0][1] > 0
    assert "serve_request_latency_s_window" in families
    # The router's own instruments ride along in the same exposition.
    assert families["serve_router_requests_total"][0][1] > 0
    assert families["serve_router_forwarded_total"][0][1] > 0
    assert families["serve_router_workers_alive"][0][1] == N_WORKERS


def test_error_relay_keeps_structured_body(fleet):
    client, _, _ = fleet
    with pytest.raises(ServeError) as excinfo:
        client.assign([1.0], [1.0], city="Z")
    assert excinfo.value.status == 404
    assert excinfo.value.trace_id
    with pytest.raises(ServeError) as excinfo:
        client.assign([float("nan")], [1.0], city="A")
    assert excinfo.value.status == 400
    assert excinfo.value.trace_id


def test_dead_worker_restarts_on_next_request(fleet):
    client, server, models = fleet
    result, downs, ups = models["A"]
    shard = shard_for("A", city_catalog("A").isp_name, N_WORKERS)
    handle = server.router.workers[shard]
    old_pid = handle.pid
    handle.proc.kill()
    handle.proc.wait()
    assert not handle.alive
    out = client.assign(downs[:10].tolist(), ups[:10].tolist(), city="A")
    exact = TierAssigner(result).assign(downs[:10], ups[:10])
    assert out["tiers"] == exact.tiers.tolist()
    assert handle.alive
    assert handle.pid != old_pid
    assert handle.restarts >= 1


def test_reload_fans_out_to_owning_shard(fleet, tmp_path):
    """POST /reload re-registers + hot-swaps through the router."""
    client, server, models = fleet
    registry = server.router.registry
    result, downs, ups = models["A"]
    catalog = city_catalog("A")
    key = registry.key_for("A", catalog)
    slug = key.slug
    new_fit = BSTModel(catalog).fit(downs * 0.35, ups * 0.35)
    new_expected = TierAssigner(new_fit).assign(downs[:50], ups[:50])
    old_expected = TierAssigner(result).assign(downs[:50], ups[:50])
    assert new_expected.tiers.tolist() != old_expected.tiers.tolist()
    try:
        registry.register(key, new_fit, downloads=downs, uploads=ups)
        out = client.reload([slug])
        assert slug in out["reloaded"]
        assert len(out["workers"]) == 1  # only the owning shard
        assert out["workers"][0]["status"] == 200
        swapped = client.assign(
            downs[:50].tolist(), ups[:50].tolist(), city="A"
        )
        assert swapped["tiers"] == new_expected.tiers.tolist()
    finally:
        # Restore the original generation for any later test.
        registry.register(key, result, downloads=downs, uploads=ups)
        client.reload([slug])
    back = client.assign(downs[:50].tolist(), ups[:50].tolist(), city="A")
    assert back["tiers"] == old_expected.tiers.tolist()
