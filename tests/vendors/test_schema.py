"""Tests for vendor schemas and shared samplers."""

import numpy as np
import pytest

from repro.vendors.schema import (
    DIURNAL_BIN_WEIGHTS,
    sample_test_hour,
    sample_test_month,
)


def test_diurnal_weights_sum_to_one():
    assert sum(DIURNAL_BIN_WEIGHTS) == pytest.approx(1.0)


def test_hours_in_range():
    rng = np.random.default_rng(0)
    hours = [sample_test_hour(rng) for _ in range(500)]
    assert all(0 <= h <= 23 for h in hours)


def test_overnight_is_least_popular():
    rng = np.random.default_rng(1)
    hours = np.asarray([sample_test_hour(rng) for _ in range(5000)])
    bins = [np.mean((hours >= 6 * i) & (hours < 6 * (i + 1))) for i in range(4)]
    assert bins[0] == min(bins)


def test_months_in_range():
    rng = np.random.default_rng(2)
    months = [sample_test_month(rng) for _ in range(300)]
    assert all(1 <= m <= 12 for m in months)


def test_month_exclusion():
    rng = np.random.default_rng(3)
    months = [
        sample_test_month(rng, excluded_months=(9, 10)) for _ in range(500)
    ]
    assert 9 not in months and 10 not in months


def test_all_months_excluded():
    rng = np.random.default_rng(4)
    with pytest.raises(ValueError):
        sample_test_month(rng, excluded_months=tuple(range(1, 13)))
