"""Tests for the MBA panel simulator."""

import numpy as np
import pytest

from repro.vendors import MBASimulator
from repro.vendors.mba import MBA_MONTHS, MBA_UNITS_PER_STATE
from repro.vendors.schema import MBA_COLUMNS


class TestPanel:
    def test_schema(self, mba_a):
        assert set(mba_a.column_names) == set(MBA_COLUMNS)

    def test_default_unit_count(self):
        sim = MBASimulator("A", seed=0)
        assert len({u.user_id for u in sim.build_units()}) == (
            MBA_UNITS_PER_STATE["A"]
        )

    def test_every_catalog_tier_has_a_unit(self):
        sim = MBASimulator("A", seed=0)
        tiers = {u.tier for u in sim.build_units()}
        assert tiers == {2, 3, 4, 5, 6}  # State-A panel lacks tier 1

    def test_units_are_wired(self):
        units = MBASimulator("B", seed=0).build_units()
        assert all(u.access == "ethernet" for u in units)

    def test_tiny_panel_allowed(self):
        sim = MBASimulator("A", n_units=2, seed=0)
        assert len(sim.build_units()) == 2

    def test_invalid_units(self):
        with pytest.raises(ValueError):
            MBASimulator("A", n_units=0)

    def test_invalid_tests_per_day(self):
        with pytest.raises(ValueError):
            MBASimulator("A", tests_per_day=0)


class TestMeasurements:
    def test_requested_count_honoured(self, mba_a):
        assert len(mba_a) == 5_000

    def test_default_volume_matches_paper_scale(self):
        # ~20 units x 4/day x 30 days x 10 months ~ 24k (Table 1: 25.9k).
        table = MBASimulator("A", seed=3).generate()
        assert 20_000 < len(table) < 28_000

    def test_september_october_missing(self, mba_a):
        months = set(np.asarray(mba_a["month"], dtype=int).tolist())
        assert months <= set(MBA_MONTHS)
        assert 9 not in months and 10 not in months

    def test_ground_truth_tier_present(self, mba_a):
        tiers = set(np.asarray(mba_a["tier"], dtype=int).tolist())
        assert tiers <= {2, 3, 4, 5, 6}

    def test_deterministic(self):
        a = MBASimulator("A", seed=9).generate(500)
        b = MBASimulator("A", seed=9).generate(500)
        assert a == b

    def test_wired_overprovisioning_visible(self, mba_a):
        # Low tiers should measure above their advertised rate wired.
        downloads = np.asarray(mba_a["download_mbps"], dtype=float)
        tiers = np.asarray(mba_a["tier"], dtype=int)
        med_t2 = np.median(downloads[tiers == 2])
        assert med_t2 > 100  # the 100 Mbps plan over-delivers

    def test_gigabit_tier_undershoots(self, mba_a):
        downloads = np.asarray(mba_a["download_mbps"], dtype=float)
        tiers = np.asarray(mba_a["tier"], dtype=int)
        med_t6 = np.median(downloads[tiers == 6])
        assert med_t6 < 1100  # saturation shortfall on the 1200 plan

    def test_units_round_robin_evenly(self, mba_a):
        counts = mba_a.value_counts("unit_id")
        assert max(counts.values()) - min(counts.values()) <= 1
