"""Tests for the Ookla simulator."""

import numpy as np
import pytest

from repro.vendors import OoklaSimulator
from repro.vendors.schema import OOKLA_COLUMNS


class TestGeneration:
    def test_schema(self, ookla_a):
        assert set(ookla_a.column_names) == set(OOKLA_COLUMNS)

    def test_at_least_requested_rows(self, ookla_a):
        assert len(ookla_a) >= 5_000

    def test_deterministic(self):
        a = OoklaSimulator("A", seed=42).generate(300)
        b = OoklaSimulator("A", seed=42).generate(300)
        assert a == b

    def test_seeds_differ(self):
        a = OoklaSimulator("A", seed=1).generate(300)
        b = OoklaSimulator("A", seed=2).generate(300)
        assert a != b

    def test_zero_tests(self):
        t = OoklaSimulator("A", seed=0).generate(0)
        assert len(t) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            OoklaSimulator("A", seed=0).generate(-1)

    def test_test_ids_unique(self, ookla_a):
        ids = ookla_a["test_id"]
        assert len(set(ids.tolist())) == len(ids)


class TestMetadataRules:
    def test_web_tests_have_no_access_metadata(self, ookla_a):
        web = ookla_a.filter(ookla_a["platform"] == "web")
        assert set(web["access"].tolist()) == {"unknown"}
        assert set(web["origin"].tolist()) == {"web"}

    def test_only_android_has_wifi_metadata(self, ookla_a):
        non_android = ookla_a.filter(ookla_a["platform"] != "android")
        assert np.isnan(
            np.asarray(non_android["rssi_dbm"], dtype=float)
        ).all()
        assert np.isnan(
            np.asarray(non_android["memory_gb"], dtype=float)
        ).all()

    def test_android_metadata_complete(self, ookla_a):
        android = ookla_a.filter(ookla_a["platform"] == "android")
        rssi = np.asarray(android["rssi_dbm"], dtype=float)
        memory = np.asarray(android["memory_gb"], dtype=float)
        band = np.asarray(android["wifi_band_ghz"], dtype=float)
        assert np.isfinite(rssi).all()
        assert np.isfinite(memory).all()
        assert set(np.unique(band).tolist()) <= {2.4, 5.0}

    def test_android_always_wifi(self, ookla_a):
        android = ookla_a.filter(ookla_a["platform"] == "android")
        assert set(android["access"].tolist()) == {"wifi"}

    def test_city_and_isp_stamped(self, ookla_a):
        assert set(ookla_a["city"].tolist()) == {"A"}
        assert set(ookla_a["isp"].tolist()) == {"ISP-A"}

    def test_hours_and_months_in_range(self, ookla_a):
        hours = np.asarray(ookla_a["hour"], dtype=int)
        months = np.asarray(ookla_a["month"], dtype=int)
        assert ((hours >= 0) & (hours <= 23)).all()
        assert ((months >= 1) & (months <= 12)).all()


class TestPhysicsShape:
    def test_uploads_cluster_near_plan_rates(self, ookla_a):
        uploads = np.asarray(ookla_a["upload_mbps"], dtype=float)
        tiers = np.asarray(ookla_a["true_tier"], dtype=int)
        t6 = uploads[tiers == 6]
        # 35 Mbps plan with ~14% headroom and small noise.
        assert 30 < np.median(t6) < 45

    def test_tier_skews_low(self, ookla_a):
        tiers = np.asarray(ookla_a["true_tier"], dtype=int)
        assert np.mean(tiers <= 3) > 0.3

    def test_download_medians_ordered_by_tier(self, ookla_a):
        downloads = np.asarray(ookla_a["download_mbps"], dtype=float)
        tiers = np.asarray(ookla_a["true_tier"], dtype=int)
        med1 = np.median(downloads[tiers == 1])
        med6 = np.median(downloads[tiers == 6])
        assert med6 > med1 * 3

    def test_repeated_users_share_household(self, ookla_a):
        users = ookla_a["user_id"]
        counts = ookla_a.value_counts("user_id")
        repeat_user = next(u for u, c in counts.items() if c >= 5)
        rows = ookla_a.filter(users == repeat_user)
        assert len(set(rows["true_tier"].tolist())) == 1
