"""Tests for the M-Lab NDT simulator."""

import numpy as np
import pytest

from repro.vendors import MLabSimulator
from repro.vendors.schema import MLAB_COLUMNS


class TestGeneration:
    def test_schema(self, mlab_raw_a):
        assert set(mlab_raw_a.column_names) == set(MLAB_COLUMNS)

    def test_directions_are_separate_records(self, mlab_raw_a):
        directions = set(mlab_raw_a["direction"].tolist())
        assert directions == {"download", "upload"}

    def test_one_download_per_session(self, mlab_raw_a):
        downloads = mlab_raw_a.filter(
            mlab_raw_a["direction"] == "download"
        )
        assert len(downloads) == 4_000

    def test_most_downloads_have_followup_upload(self, mlab_raw_a):
        downloads = (mlab_raw_a["direction"] == "download").sum()
        uploads = (mlab_raw_a["direction"] == "upload").sum()
        assert 0.85 * downloads < uploads < 1.15 * downloads

    def test_deterministic(self):
        a = MLabSimulator("A", seed=5).generate(200)
        b = MLabSimulator("A", seed=5).generate(200)
        assert a == b

    def test_zero_sessions(self):
        assert len(MLabSimulator("A", seed=0).generate(0)) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            MLabSimulator("A", seed=0).generate(-5)


class TestRecords:
    def test_client_ips_stable_per_user(self, mlab_raw_a):
        # One public IP per user: every record pair of a session shares it.
        downloads = mlab_raw_a.filter(
            mlab_raw_a["direction"] == "download"
        )
        assert len(set(downloads["client_ip"].tolist())) > 100

    def test_timestamps_within_year(self, mlab_raw_a):
        ts = np.asarray(mlab_raw_a["timestamp_s"], dtype=float)
        assert (ts >= 0).all()
        assert (ts < 366 * 86_400 + 3_600).all()

    def test_no_device_metadata_columns(self, mlab_raw_a):
        # NDT archives no platform/RSSI/memory context (Section 3.2).
        for column in ("platform", "rssi_dbm", "memory_gb", "access"):
            assert column not in mlab_raw_a

    def test_asn_constant_per_isp(self, mlab_raw_a):
        assert len(set(mlab_raw_a["asn"].tolist())) == 1

    def test_rtt_positive(self, mlab_raw_a):
        assert (np.asarray(mlab_raw_a["rtt_ms"], dtype=float) > 0).all()


class TestSingleFlowEffect:
    def test_high_tier_downloads_capped_below_plan(self, mlab_raw_a):
        downloads = mlab_raw_a.filter(
            (mlab_raw_a["direction"] == "download")
            & (mlab_raw_a["true_tier"] == 6)
        )
        speeds = np.asarray(downloads["speed_mbps"], dtype=float)
        # Single-flow NDT cannot come close to a 1.2 Gbps plan.
        assert np.median(speeds) < 400
