"""The M-Lab off-menu upload cluster (Figure 6's ~1 Mbps cluster).

Section 5.1 observes "an additional upload speed cluster in the 1 Mbps
region in the M-Lab data" -- uploads whose WiFi hop capped them far
below every advertised rate.  These tests verify the simulated NDT data
reproduces that mass and that BST absorbs it into extra components
mapped to the lowest group instead of corrupting the menu clusters.
"""

import numpy as np

from repro.core.bst import BSTModel
from repro.market import city_catalog


def test_offmenu_low_upload_mass_exists(mlab_joined_a):
    uploads = np.asarray(mlab_joined_a["upload_mbps"], dtype=float)
    offered_min = min(city_catalog("A").upload_speeds)
    # A visible share of uploads lands well below the slowest plan rate.
    assert np.mean(uploads < 0.6 * offered_min) > 0.01


def test_bst_gives_offmenu_mass_extra_components(mlab_joined_a):
    catalog = city_catalog("A")
    model = BSTModel(catalog)
    uploads = np.asarray(mlab_joined_a["upload_mbps"], dtype=float)
    fit, groups = model.fit_upload_stage(uploads)
    low = uploads < 0.6 * min(catalog.upload_speeds)
    if low.sum() >= 20 and len(fit.component_means) > len(fit.groups):
        # The off-menu mass maps to the lowest upload group.
        assert set(np.asarray(groups)[low].tolist()) == {0}


def test_menu_cluster_means_unaffected_by_offmenu_mass(mlab_joined_a):
    catalog = city_catalog("A")
    fit, _ = BSTModel(catalog).fit_upload_stage(
        np.asarray(mlab_joined_a["upload_mbps"], dtype=float)
    )
    for group, mean in zip(fit.groups, fit.cluster_means):
        assert group.upload_mbps * 0.8 < mean < group.upload_mbps * 1.4
