"""Tests for paired same-household vendor generation."""

import numpy as np
import pytest

from repro.vendors.paired import generate_paired_tests


@pytest.fixture(scope="module")
def paired():
    return generate_paired_tests("A", 800, seed=5)


def test_one_row_per_user(paired):
    assert len(paired) == 800
    assert len(set(paired["user_id"].tolist())) == 800


def test_both_vendors_present(paired):
    for column in (
        "ookla_download_mbps",
        "mlab_download_mbps",
        "ookla_upload_mbps",
        "mlab_upload_mbps",
    ):
        values = np.asarray(paired[column], dtype=float)
        assert (values > 0).all()


def test_ookla_wins_majority_of_households(paired):
    ookla = np.asarray(paired["ookla_download_mbps"], dtype=float)
    mlab = np.asarray(paired["mlab_download_mbps"], dtype=float)
    assert np.mean(ookla > mlab) > 0.6


def test_gap_grows_with_tier(paired):
    ookla = np.asarray(paired["ookla_download_mbps"], dtype=float)
    mlab = np.asarray(paired["mlab_download_mbps"], dtype=float)
    tiers = np.asarray(paired["true_tier"], dtype=int)
    ratio = ookla / mlab
    low = float(np.median(ratio[tiers <= 3]))
    high = float(np.median(ratio[tiers == 6]))
    assert high >= low


def test_uploads_similar_across_vendors(paired):
    # Uploads are too slow for the methodology to matter much; the
    # per-household upload ratio stays near 1.
    ookla = np.asarray(paired["ookla_upload_mbps"], dtype=float)
    mlab = np.asarray(paired["mlab_upload_mbps"], dtype=float)
    ratio = np.median(ookla / mlab)
    assert 0.9 < ratio < 1.5


def test_plan_ground_truth_consistent(paired):
    from repro.market import city_catalog

    lookup = {
        p.tier: (p.download_mbps, p.upload_mbps)
        for p in city_catalog("A").plans
    }
    for i in range(0, len(paired), 97):
        row = paired.row(i)
        down, up = lookup[row["true_tier"]]
        assert row["plan_download_mbps"] == down
        assert row["plan_upload_mbps"] == up


def test_deterministic():
    a = generate_paired_tests("A", 50, seed=9)
    b = generate_paired_tests("A", 50, seed=9)
    assert a == b


def test_invalid_user_count():
    with pytest.raises(ValueError):
        generate_paired_tests("A", 0)
