"""Monitor tests: windowed stats, drift verdicts, disruption detection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve.registry import ModelRegistry
from repro.stream.firehose import MeasurementStream
from repro.stream.monitor import GroupStats, StreamMonitor, _WindowedMoments
from repro.stream.run import warmup_and_register


@pytest.fixture(scope="module")
def registered(tmp_path_factory):
    """A registry holding one warmup model plus its source stream spec."""
    registry = ModelRegistry(tmp_path_factory.mktemp("stream-registry"))
    stream = MeasurementStream(
        "ookla", "A", seed=7, events_per_s=500.0, batch_size=128,
        pool_size=1024, diurnal=False,
    )
    record = warmup_and_register(stream, registry)
    return registry, record


def _fresh_stream(**kwargs) -> MeasurementStream:
    defaults = dict(
        vendor="ookla", city="A", seed=7, events_per_s=500.0,
        batch_size=128, pool_size=1024, diurnal=False,
    )
    defaults.update(kwargs)
    return MeasurementStream(**defaults)


class TestWindowedMoments:
    def test_matches_numpy_inside_window(self):
        rng = np.random.default_rng(3)
        moments = _WindowedMoments(window_s=60.0)
        values = rng.normal(50.0, 10.0, 900).reshape(9, 100)
        for i, chunk in enumerate(values):
            moments.observe(float(i * 5), chunk)
        n, mean, std = moments.snapshot(40.0)
        flat = values.ravel()
        assert n == flat.size
        assert mean == pytest.approx(float(flat.mean()))
        assert std == pytest.approx(float(flat.std()))

    def test_old_buckets_expire(self):
        moments = _WindowedMoments(window_s=60.0)
        moments.observe(0.0, np.full(100, 10.0))
        moments.observe(100.0, np.full(50, 99.0))
        n, mean, _ = moments.snapshot(100.0)
        assert n == 50
        assert mean == pytest.approx(99.0)

    def test_empty_snapshot_is_nan(self):
        n, mean, std = _WindowedMoments(60.0).snapshot(0.0)
        assert n == 0
        assert np.isnan(mean) and np.isnan(std)


class TestRefitSampleRing:
    def test_wraparound_keeps_latest_oldest_first(self):
        group = GroupStats("A", "ISP-A", window_s=60.0, cap=8)
        group.push_sample(np.arange(5, dtype=float), np.zeros(5))
        group.push_sample(np.arange(5, 11, dtype=float), np.zeros(6))
        downs, _ = group.sample()
        np.testing.assert_array_equal(
            downs, np.asarray([3, 4, 5, 6, 7, 8, 9, 10], dtype=float)
        )

    def test_oversize_batch_keeps_tail(self):
        group = GroupStats("A", "ISP-A", window_s=60.0, cap=4)
        group.push_sample(np.arange(10, dtype=float), np.zeros(10))
        downs, _ = group.sample()
        np.testing.assert_array_equal(downs, [6.0, 7.0, 8.0, 9.0])


class TestVerdicts:
    def test_warming_up_below_min_samples(self, registered):
        registry, record = registered
        monitor = StreamMonitor(registry=registry, min_samples=10_000)
        monitor.observe(_fresh_stream().next_batch())
        (verdict,) = monitor.verdicts()
        assert verdict["model"] == record.key.slug
        assert not verdict["drifted"]
        assert all(
            d["status"] == "warming_up"
            for d in verdict["directions"].values()
        )

    def test_matching_traffic_is_ok(self, registered):
        registry, _ = registered
        monitor = StreamMonitor(
            registry=registry, window_s=30.0, min_samples=200
        )
        stream = _fresh_stream()
        for batch in stream.batches(10):
            monitor.observe(batch)
        (verdict,) = monitor.verdicts()
        assert not verdict["drifted"]
        assert all(
            d["status"] == "ok" for d in verdict["directions"].values()
        )

    def test_scaled_traffic_drifts(self, registered):
        registry, _ = registered
        monitor = StreamMonitor(
            registry=registry, window_s=30.0, min_samples=200
        )
        stream = _fresh_stream()
        for batch in stream.batches(10):
            monitor.observe_arrays(
                batch.city, batch.isp,
                batch.downloads * 0.3, batch.uploads * 0.3,
                t_s=batch.t_s,
            )
        (verdict,) = monitor.verdicts()
        assert verdict["drifted"]
        down = verdict["directions"]["download_mbps"]
        assert down["status"] == "drifted"
        assert down["relative_delta"] > 0.5
        assert down["n_observed"] >= 200
        assert down["observed_p95"] > down["observed_p50"] > 0

    def test_group_without_model_reports_nothing(self, registered):
        registry, _ = registered
        monitor = StreamMonitor(registry=registry)
        monitor.observe_arrays(
            "Z", "ISP-Z", np.full(300, 10.0), np.full(300, 1.0), t_s=1.0
        )
        assert monitor.verdicts() == []

    def test_drift_flag_counts_transitions_only(self, registered):
        registry, _ = registered
        monitor = StreamMonitor(
            registry=registry, window_s=30.0, min_samples=100
        )
        stream = _fresh_stream()
        for batch in stream.batches(6):
            monitor.observe_arrays(
                batch.city, batch.isp,
                batch.downloads * 0.2, batch.uploads * 0.2,
                t_s=batch.t_s,
            )
        before = monitor.verdicts()
        again = monitor.verdicts()
        assert before[0]["drifted"] and again[0]["drifted"]
        # The internal transition map holds, so repeated polls do not
        # re-count the same breach.
        assert monitor._drift_flagged[before[0]["model"]] is True


class TestRebaseline:
    def test_rebaseline_picks_up_new_registration(self, registered):
        registry, record = registered
        monitor = StreamMonitor(registry=registry)
        first = monitor._baseline("A", record.key.isp)
        assert first is not None
        monitor.rebaseline("A", record.key.isp)
        assert monitor._baseline("A", record.key.isp) == first


class TestDisruptions:
    def test_tier_shift_detected(self):
        monitor = StreamMonitor(
            window_s=10.0, min_samples=100, tier_shift_threshold=0.2
        )
        mixed = np.tile(np.asarray([1, 2, 3, 4]), 100)
        downs = np.full(mixed.size, 50.0)
        monitor.observe_arrays(
            "A", "ISP-A", downs, downs, tiers=mixed, t_s=1.0
        )
        # Long after the mixed window expired, only bottom tiers remain.
        low = np.full(400, 1)
        monitor.observe_arrays(
            "A", "ISP-A", downs, downs, tiers=low, t_s=500.0
        )
        events = monitor.disruptions()
        kinds = {e["kind"] for e in events}
        assert "tier_shift" in kinds
        shift = next(e for e in events if e["kind"] == "tier_shift")
        assert shift["observed_share"] == pytest.approx(0.0)
        assert shift["delta"] < -0.2

    def test_congestion_onset_detected(self):
        monitor = StreamMonitor(
            window_s=10.0, min_samples=100, congestion_drop_frac=0.4
        )
        hours = np.zeros(400, dtype=np.int64)  # all in diurnal bin 0
        monitor.observe_arrays(
            "A", "ISP-A",
            np.full(400, 100.0), np.full(400, 10.0),
            hours=hours, t_s=1.0,
        )
        monitor.observe_arrays(
            "A", "ISP-A",
            np.full(200, 20.0), np.full(200, 2.0),
            hours=hours[:200], t_s=500.0,
        )
        events = monitor.disruptions()
        congestion = next(e for e in events if e["kind"] == "congestion")
        assert congestion["observed_mean"] == pytest.approx(20.0)
        assert congestion["time_bin"] == 0

    def test_disruptions_count_transitions_only(self):
        monitor = StreamMonitor(window_s=10.0, min_samples=100)
        hours = np.zeros(400, dtype=np.int64)
        monitor.observe_arrays(
            "A", "ISP-A", np.full(400, 100.0), np.full(400, 10.0),
            hours=hours, t_s=1.0,
        )
        monitor.observe_arrays(
            "A", "ISP-A", np.full(200, 20.0), np.full(200, 2.0),
            hours=hours[:200], t_s=500.0,
        )
        first = monitor.disruptions()
        second = monitor.disruptions()
        assert len(first) == len(second) == 1
        key = ("A", "ISP-A", "congestion")
        assert key in monitor._active_disruptions


class TestRecentSample:
    def test_returns_pushed_pairs(self):
        monitor = StreamMonitor(sample_cap=512)
        downs = np.linspace(1.0, 100.0, 300)
        ups = np.linspace(0.1, 10.0, 300)
        monitor.observe_arrays("A", "ISP-A", downs, ups, t_s=1.0)
        got_d, got_u = monitor.recent_sample("A", "ISP-A")
        np.testing.assert_array_equal(got_d, downs)
        np.testing.assert_array_equal(got_u, ups)

    def test_unknown_group_is_empty(self):
        monitor = StreamMonitor()
        downs, ups = monitor.recent_sample("Q", "ISP-Q")
        assert downs.size == 0 and ups.size == 0
