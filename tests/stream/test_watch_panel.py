"""`repro obs watch` stream/lifecycle panel rendering."""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry, render_prometheus
from repro.obs.watch import render_snapshot, take_snapshot


class FakeClient:
    def __init__(self, registry: MetricsRegistry):
        self._registry = registry

    def metrics_text(self) -> str:
        return render_prometheus(self._registry)

    def healthz(self) -> dict:
        return {
            "status": "ok",
            "uptime_s": 12.0,
            "models_loaded": 1,
            "drift": [],
            "alerts": {"fired": 0, "resolved": 0, "active": []},
        }


def _serving_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("serve.requests").inc(10)
    registry.histogram("serve.request_latency_s").observe(0.01)
    return registry


def test_snapshot_without_stream_metrics_has_no_panel():
    snap = take_snapshot(FakeClient(_serving_registry()))
    assert snap["stream"] is None
    text = render_snapshot(snap)
    assert "stream" not in text
    assert "lifecycle" not in text


def test_snapshot_with_stream_metrics_renders_panel():
    registry = _serving_registry()
    registry.counter("stream.events").inc(5000)
    registry.counter("stream.refits").inc(2)
    registry.counter("stream.refit_failures").inc(0)
    registry.gauge("stream.lag_s").set(0.25)
    registry.gauge("stream.drifted_models").set(1)
    registry.gauge("stream.active_refits").set(0)
    registry.histogram("stream.refit_latency_s").observe(2.5)
    registry.counter("serve.reloads").inc(2)
    snap = take_snapshot(FakeClient(registry))
    stream = snap["stream"]
    assert stream is not None
    assert stream["events_total"] == 5000
    assert stream["refits_total"] == 2
    assert stream["lag_s"] == 0.25
    assert stream["drifted_models"] == 1
    assert stream["reloads_total"] == 2
    text = render_snapshot(snap)
    assert "stream     events=5000" in text
    assert "lifecycle  refits=2" in text
    assert "lag=0.25s" in text
    assert "drifted=1" in text
    assert "reloads=2" in text
