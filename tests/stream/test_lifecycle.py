"""End-to-end online lifecycle under the injected clock.

The acceptance scenario: a live server serves the warmup model; the
firehose drifts; the monitor's rolling verdict flags it; the
``model_drift`` alert fires; the scheduler refits exactly one shard
(debounced), registers it, and hot-swaps the server via ``POST
/reload``; the alert resolves; post-swap assignments are byte-identical
to a fresh offline fit on the same sample; and the refit lands in the
run ledger with full provenance.  Everything runs on a ``SimClock``, so
the timings (including drift-to-swap latency) are deterministic.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.bst import BSTModel
from repro.obs.alerts import AlertEngine, default_serve_rules
from repro.obs.metrics import MetricsRegistry
from repro.obs.runs import RunLedger
from repro.serve.client import ServeClient
from repro.serve.engine import TierAssigner
from repro.serve.registry import ModelRegistry
from repro.serve.server import ServeConfig, build_server
from repro.stream.clock import SimClock
from repro.stream.firehose import DriftSegment, MeasurementStream
from repro.stream.monitor import StreamMonitor
from repro.stream.run import StreamSession, warmup_and_register
from repro.stream.scheduler import RefitPolicy, RefitScheduler


@pytest.fixture(scope="module")
def lifecycle(tmp_path_factory):
    """Run the whole scenario once; tests assert its facets."""
    tmp = tmp_path_factory.mktemp("lifecycle")
    registry = ModelRegistry(tmp / "registry")
    segments = [
        # Congestion onset at t=30 (speeds drop to 40%), then a second,
        # deeper incident at t=75 while the refit is still cooling down.
        DriftSegment(
            start_s=30.0, duration_s=45.0,
            download_scale=0.4, upload_scale=0.4,
        ),
        DriftSegment(
            start_s=75.0, download_scale=0.15, upload_scale=0.15
        ),
    ]
    stream = MeasurementStream(
        "ookla", "A", seed=7, events_per_s=400.0, batch_size=128,
        pool_size=1024, diurnal=False, segments=segments,
    )
    record = warmup_and_register(stream, registry)

    server = build_server(
        registry,
        ServeConfig(port=0, default_city="A", alert_interval_s=0.0),
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    client = ServeClient(f"http://{host}:{port}")

    probe_d = stream.pool["downloads"][:32] * 0.4
    probe_u = stream.pool["uploads"][:32] * 0.4
    pre_assign = client.assign(probe_d.tolist(), probe_u.tolist())

    clock = SimClock()
    monitor = StreamMonitor(
        registry=registry, clock=clock, window_s=20.0,
        min_samples=150, sample_cap=1024,
    )
    captured: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    original_recent = monitor.recent_sample

    def capturing_recent(city, isp):
        downs, ups = original_recent(city, isp)
        captured.setdefault("sample", (downs.copy(), ups.copy()))
        return downs, ups

    monitor.recent_sample = capturing_recent  # type: ignore[method-assign]
    ledger_path = tmp / "runs.jsonl"
    scheduler = RefitScheduler(
        registry=registry,
        monitor=monitor,
        policy=RefitPolicy(min_hold_s=2.0, cooldown_s=300.0),
        clock=clock,
        reload_cb=lambda slugs: client.reload(slugs),
        ledger_path=str(ledger_path),
    )
    alerts = AlertEngine(
        default_serve_rules(),
        registry=MetricsRegistry(clock=clock),
        drift_provider=monitor.verdicts,
        clock=clock,
    )
    session = StreamSession(
        stream, monitor, clock, scheduler=scheduler, alerts=alerts,
        poll_interval_s=1.0,
    )

    healthy = session.run(duration_s=35.0)
    recovered = session.run(duration_s=30.0)  # drift -> refit -> ok
    post_assign = client.assign(probe_d.tolist(), probe_u.tolist())
    post_health = client.healthz()
    cooldown = session.run(duration_s=30.0)  # second breach, no refit

    yield {
        "registry": registry,
        "record": record,
        "stream": stream,
        "client": client,
        "session": session,
        "captured": captured,
        "ledger_path": ledger_path,
        "probe": (probe_d, probe_u),
        "pre_assign": pre_assign,
        "post_assign": post_assign,
        "post_health": post_health,
        "healthy": healthy,
        "recovered": recovered,
        "cooldown": cooldown,
    }
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)


def test_healthy_phase_has_no_drift_and_no_refit(lifecycle):
    healthy = lifecycle["healthy"]
    assert healthy["refits"] == []
    assert all(not v["drifted"] for v in healthy["verdicts"])
    assert healthy["alerts"]["fired"] == 0


def test_drift_fires_alert_then_resolves(lifecycle):
    events = lifecycle["session"].alert_events
    drift_events = [e for e in events if e["rule"] == "model_drift"]
    assert [e["event"] for e in drift_events][:2] == ["fired", "resolved"]
    recovered = lifecycle["recovered"]
    assert recovered["alerts"]["fired"] >= 1
    assert recovered["alerts"]["resolved"] >= 1


def test_exactly_one_debounced_refit(lifecycle):
    refits = lifecycle["recovered"]["refits"]
    assert len(refits) == 1
    refit = refits[0]
    assert refit["model"] == lifecycle["record"].key.slug
    assert refit["old_digest"] == lifecycle["record"].digest
    assert refit["new_digest"] != refit["old_digest"]
    # Deterministic debounce latency: min_hold (2.0) rounded up to the
    # poll cadence, plus the fit itself on the sim clock (zero-time).
    assert 2.0 <= refit["drift_to_swap_s"] <= 4.0


def test_verdict_recovers_after_rebaseline(lifecycle):
    final = lifecycle["recovered"]["verdicts"]
    assert len(final) == 1
    assert not final[0]["drifted"]


def test_hot_swap_reached_the_server(lifecycle):
    refit = lifecycle["recovered"]["refits"][0]
    post = lifecycle["post_assign"]
    assert lifecycle["pre_assign"]["model"]["digest"] == (
        lifecycle["record"].digest
    )
    assert post["model"]["digest"] == refit["new_digest"]
    assert lifecycle["post_health"]["status"] == "ok"


def test_post_swap_assignments_match_offline_fit(lifecycle):
    downs, ups = lifecycle["captured"]["sample"]
    offline = BSTModel(lifecycle["stream"].catalog).fit(downs, ups)
    probe_d, probe_u = lifecycle["probe"]
    expected = TierAssigner(offline).assign(probe_d, probe_u)
    post = lifecycle["post_assign"]
    assert post["tiers"] == expected.tiers.tolist()
    assert post["group_indices"] == expected.group_indices.tolist()


def test_second_breach_inside_cooldown_does_not_refit(lifecycle):
    cooldown = lifecycle["cooldown"]
    # The summary's refit list is cumulative: no NEW refit this phase.
    assert cooldown["refits"] == lifecycle["recovered"]["refits"]
    assert any(v["drifted"] for v in cooldown["verdicts"])
    assert len(lifecycle["session"].refits) == 1


def test_refit_recorded_in_ledger_with_provenance(lifecycle):
    ledger = RunLedger(str(lifecycle["ledger_path"]))
    manifests = ledger.matching(kind="refit")
    assert len(manifests) == 1
    manifest = manifests[0]
    refit = lifecycle["recovered"]["refits"][0]
    assert manifest.name == "stream.refit"
    assert manifest.params["model"] == refit["model"]
    assert manifest.params["old_digest"] == refit["old_digest"]
    assert manifest.params["new_digest"] == refit["new_digest"]
    assert manifest.params["trigger"]["download_mbps"]["status"] == (
        "drifted"
    )
    assert manifest.results["drift_to_swap_s"] == pytest.approx(
        refit["drift_to_swap_s"]
    )


def test_registry_now_serves_the_refit(lifecycle):
    registry = lifecycle["registry"]
    record = registry.lookup(lifecycle["record"].key)
    assert record.digest == (
        lifecycle["recovered"]["refits"][0]["new_digest"]
    )
