"""Scheduler debounce tests: min-hold, cooldown, max-concurrent, ledger."""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.obs.runs import RunLedger
from repro.stream.clock import SimClock
from repro.stream.scheduler import RefitPolicy, RefitScheduler

SLUG_A = "A|ISP-A|" + "0" * 64
SLUG_B = "B|ISP-B|" + "1" * 64


def _verdict(slug: str, drifted: bool = True) -> dict:
    city, isp, _ = slug.split("|")
    return {
        "model": slug,
        "city": city,
        "isp": isp,
        "drifted": drifted,
        "directions": {"download_mbps": {"status": "drifted"}},
    }


class StubMonitor:
    def __init__(self):
        self.verdict_list: list[dict] = []
        self.rebaselined: list[tuple[str, str]] = []
        self.metrics = None
        self.sample_n = 500

    def verdicts(self):
        return [dict(v) for v in self.verdict_list]

    def recent_sample(self, city, isp):
        return (
            np.ones(self.sample_n, dtype=float),
            np.ones(self.sample_n, dtype=float),
        )

    def rebaseline(self, city, isp):
        self.rebaselined.append((city, isp))


def _scheduler(monitor, clock, ledger_path=None, **policy_kwargs):
    defaults = dict(min_hold_s=5.0, cooldown_s=60.0, max_concurrent=1)
    defaults.update(policy_kwargs)
    scheduler = RefitScheduler(
        registry=object(),
        monitor=monitor,
        policy=RefitPolicy(**defaults),
        clock=clock,
        ledger_path=ledger_path,
    )
    return scheduler


def _stub_refits(scheduler, clock):
    """Replace the expensive fit with a provenance-shaped stub."""
    performed = []

    def fake_refit(verdict):
        now = clock()
        outcome = {
            "model": verdict["model"],
            "city": verdict["city"],
            "isp": verdict["isp"],
            "old_digest": "old",
            "new_digest": "new",
            "n_samples": 500,
            "breach_since": verdict["breach_since"],
            "refit_started": now,
            "refit_done": now,
            "drift_to_swap_s": now - verdict["breach_since"],
            "trigger": verdict["directions"],
        }
        performed.append(outcome)
        scheduler.n_refits += 1
        return outcome

    scheduler._refit_one = fake_refit
    return performed


class TestConstruction:
    def test_clock_is_required(self):
        with pytest.raises(ValueError, match="injected clock"):
            RefitScheduler(registry=object(), monitor=StubMonitor())

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RefitPolicy(min_hold_s=-1.0)
        with pytest.raises(ValueError):
            RefitPolicy(max_concurrent=0)


class TestMinHold:
    def test_breach_must_persist(self):
        monitor = StubMonitor()
        clock = SimClock()
        scheduler = _scheduler(monitor, clock)
        _stub_refits(scheduler, clock)
        monitor.verdict_list = [_verdict(SLUG_A)]
        assert scheduler.poll() == []  # breach recorded, not acted on
        clock.advance(4.9)
        assert scheduler.poll() == []
        clock.advance(0.1)
        refits = scheduler.poll()
        assert [r["model"] for r in refits] == [SLUG_A]
        assert refits[0]["drift_to_swap_s"] == pytest.approx(5.0)

    def test_recovery_resets_the_hold(self):
        monitor = StubMonitor()
        clock = SimClock()
        scheduler = _scheduler(monitor, clock)
        _stub_refits(scheduler, clock)
        monitor.verdict_list = [_verdict(SLUG_A)]
        scheduler.poll()
        clock.advance(3.0)
        monitor.verdict_list = [_verdict(SLUG_A, drifted=False)]
        scheduler.poll()  # healthy poll clears the breach
        monitor.verdict_list = [_verdict(SLUG_A)]
        clock.advance(3.0)
        assert scheduler.poll() == []  # hold restarts from the re-breach
        clock.advance(5.0)
        assert len(scheduler.poll()) == 1


class TestCooldown:
    def test_repeated_verdicts_inside_cooldown_do_not_refit(self):
        monitor = StubMonitor()
        clock = SimClock()
        scheduler = _scheduler(monitor, clock, cooldown_s=60.0)
        _stub_refits(scheduler, clock)
        monitor.verdict_list = [_verdict(SLUG_A)]
        scheduler.poll()
        clock.advance(5.0)
        assert len(scheduler.poll()) == 1
        for _ in range(10):  # keep shouting inside the cooldown
            clock.advance(5.0)
            assert scheduler.poll() == []
        clock.advance(60.0)  # past cooldown; breach persisted throughout
        assert len(scheduler.poll()) == 1

    def test_insufficient_sample_releases_the_reservation(self):
        monitor = StubMonitor()
        monitor.sample_n = 3  # below policy.min_samples
        clock = SimClock()
        scheduler = _scheduler(monitor, clock, min_samples=200)
        monitor.verdict_list = [_verdict(SLUG_A)]
        scheduler.poll()
        clock.advance(5.0)
        assert scheduler.poll() == []  # skipped: not enough data
        assert SLUG_A not in scheduler._last_refit  # no phantom cooldown
        monitor.sample_n = 500
        assert scheduler.poll() == []  # registry=object() -> fit fails
        assert scheduler.n_failures == 1


class TestMaxConcurrent:
    def test_one_refit_per_cycle(self):
        monitor = StubMonitor()
        clock = SimClock()
        scheduler = _scheduler(monitor, clock, max_concurrent=1)
        _stub_refits(scheduler, clock)
        monitor.verdict_list = [_verdict(SLUG_A), _verdict(SLUG_B)]
        scheduler.poll()
        clock.advance(5.0)
        first = scheduler.poll()
        assert [r["model"] for r in first] == [SLUG_A]
        second = scheduler.poll()  # B is still due, A now cooling down
        assert [r["model"] for r in second] == [SLUG_B]
        assert scheduler.poll() == []


class TestSideEffects:
    def test_reload_and_rebaseline_and_ledger(self, tmp_path):
        monitor = StubMonitor()
        clock = SimClock()
        ledger_path = tmp_path / "runs.jsonl"
        scheduler = _scheduler(monitor, clock, ledger_path=str(ledger_path))
        reloaded: list[list[str]] = []
        scheduler.reload_cb = reloaded.append
        _stub_refits(scheduler, clock)
        monitor.verdict_list = [_verdict(SLUG_A)]
        scheduler.poll()
        clock.advance(5.0)
        scheduler.poll()
        assert reloaded == [[SLUG_A]]
        assert monitor.rebaselined == [("A", "ISP-A")]
        rows = [
            json.loads(line)
            for line in ledger_path.read_text().splitlines()
        ]
        assert len(rows) == 1
        manifest = rows[0]
        assert manifest["kind"] == "refit"
        assert manifest["name"] == "stream.refit"
        assert manifest["params"]["model"] == SLUG_A
        assert manifest["params"]["old_digest"] == "old"
        assert manifest["params"]["new_digest"] == "new"
        assert manifest["params"]["policy"]["cooldown_s"] == 60.0
        assert manifest["results"]["drift_to_swap_s"] == pytest.approx(5.0)
        # And the ledger round-trips through the reader API.
        ledger = RunLedger(str(ledger_path))
        assert [m.kind for m in ledger.matching(kind="refit")] == ["refit"]

    def test_reload_failure_does_not_lose_the_refit(self):
        monitor = StubMonitor()
        clock = SimClock()
        scheduler = _scheduler(monitor, clock)

        def explode(slugs):
            raise OSError("worker gone")

        scheduler.reload_cb = explode
        _stub_refits(scheduler, clock)
        monitor.verdict_list = [_verdict(SLUG_A)]
        scheduler.poll()
        clock.advance(5.0)
        refits = scheduler.poll()
        assert len(refits) == 1  # swap failure is logged, refit survives
        assert monitor.rebaselined == [("A", "ISP-A")]


class TestDaemon:
    def test_start_poll_stop_with_injected_sleep(self):
        monitor = StubMonitor()
        clock = SimClock()
        scheduler = _scheduler(monitor, clock)
        _stub_refits(scheduler, clock)
        monitor.verdict_list = [_verdict(SLUG_A)]
        scheduler.start(interval_s=1.0, sleep=clock.sleep)
        deadline = time.monotonic() + 10.0
        while scheduler.n_refits == 0 and time.monotonic() < deadline:
            pass
        scheduler.stop()
        assert scheduler.n_refits >= 1
        assert scheduler._thread is None

    def test_start_is_idempotent(self):
        monitor = StubMonitor()
        clock = SimClock()
        scheduler = _scheduler(monitor, clock)
        scheduler.start(interval_s=0.01, sleep=clock.sleep)
        thread = scheduler._thread
        assert scheduler.start(interval_s=0.01) is scheduler
        assert scheduler._thread is thread
        scheduler.stop()
