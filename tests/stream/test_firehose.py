"""Firehose tests: determinism, drift injection, diurnal pacing, mux."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stream.clock import SimClock
from repro.stream.firehose import DriftSegment, MeasurementStream, StreamMux


def _stream(**kwargs) -> MeasurementStream:
    defaults = dict(
        vendor="ookla", city="A", seed=7, events_per_s=500.0,
        batch_size=128, pool_size=512, diurnal=False,
    )
    defaults.update(kwargs)
    return MeasurementStream(**defaults)


class TestDeterminism:
    def test_same_seed_byte_identical(self):
        a = [_stream().next_batch() for _ in range(3)]
        b = [_stream().next_batch() for _ in range(3)]
        for batch_a, batch_b in zip(a, b):
            np.testing.assert_array_equal(
                batch_a.timestamps_s, batch_b.timestamps_s
            )
            np.testing.assert_array_equal(batch_a.downloads, batch_b.downloads)
            np.testing.assert_array_equal(batch_a.uploads, batch_b.uploads)
            np.testing.assert_array_equal(batch_a.tiers, batch_b.tiers)

    def test_different_seeds_differ(self):
        a = _stream(seed=1).next_batch()
        b = _stream(seed=2).next_batch()
        assert not np.array_equal(a.downloads, b.downloads)

    def test_timestamps_ascend_across_batches(self):
        stream = _stream()
        previous = 0.0
        for batch in stream.batches(5):
            assert batch.timestamps_s[0] > previous
            assert np.all(np.diff(batch.timestamps_s) > 0)
            assert batch.t_s == batch.timestamps_s[-1]
            previous = batch.t_s


class TestValidation:
    def test_unknown_vendor(self):
        with pytest.raises(ValueError, match="unknown vendor"):
            MeasurementStream("comcast")

    def test_bad_rate(self):
        with pytest.raises(ValueError, match="events_per_s"):
            _stream(events_per_s=0.0)

    def test_bad_segment(self):
        with pytest.raises(ValueError, match="tier_share_shift"):
            DriftSegment(start_s=0.0, tier_share_shift=1.0)
        with pytest.raises(ValueError, match="scales"):
            DriftSegment(start_s=0.0, download_scale=0.0)


class TestDriftSegments:
    def test_download_scale_applies_inside_window(self):
        clean = _stream()
        segment = DriftSegment(
            start_s=0.0, download_scale=0.5, upload_scale=0.5
        )
        drifted = _stream(segments=[segment])
        a = clean.next_batch()
        b = drifted.next_batch()
        np.testing.assert_allclose(b.downloads, a.downloads * 0.5)
        np.testing.assert_allclose(b.uploads, a.uploads * 0.5)

    def test_segment_inactive_before_start(self):
        segment = DriftSegment(start_s=1e6, download_scale=0.5)
        a = _stream().next_batch()
        b = _stream(segments=[segment]).next_batch()
        np.testing.assert_array_equal(a.downloads, b.downloads)

    def test_tier_share_shift_drops_upper_tiers(self):
        stream = _stream()
        pool_median = np.median(stream.pool["tiers"])
        shifted = _stream(
            segments=[DriftSegment(start_s=0.0, tier_share_shift=0.9)]
        )

        def upper_share(source, n=20):
            tiers = np.concatenate(
                [batch.tiers for batch in source.batches(n)]
            )
            return float(np.mean(tiers > pool_median))

        assert upper_share(shifted) < upper_share(stream) * 0.5

    def test_dropped_rows_shrink_the_batch(self):
        stream = _stream(
            segments=[DriftSegment(start_s=0.0, tier_share_shift=0.9)]
        )
        batch = stream.next_batch()
        assert 0 < len(batch) < stream.batch_size


class TestDiurnal:
    def test_rate_modulation_changes_batch_duration(self):
        # Start at midnight vs mid-day: different diurnal bins, so the
        # same batch size spans different stream-time durations.
        night = _stream(diurnal=True, start_s=0.0).next_batch()
        day = _stream(diurnal=True, start_s=13 * 3600.0).next_batch()
        night_span = night.timestamps_s[-1] - night.timestamps_s[0]
        day_span = day.timestamps_s[-1] - day.timestamps_s[0]
        assert night_span != pytest.approx(day_span)

    def test_hours_derive_from_stream_time(self):
        batch = _stream(start_s=13 * 3600.0).next_batch()
        assert set(batch.hours) == {13}


class TestVendors:
    @pytest.mark.parametrize("vendor", ["ookla", "mlab", "mba"])
    def test_pool_builds_positive_pairs(self, vendor):
        stream = _stream(vendor=vendor, pool_size=256, batch_size=64)
        batch = stream.next_batch()
        assert np.all(batch.downloads > 0)
        assert np.all(batch.uploads > 0)
        assert stream.isp
        assert stream.catalog is not None


class TestStreamMux:
    def test_merged_timestamps_non_decreasing(self):
        mux = StreamMux(
            [
                _stream(seed=1, events_per_s=500.0),
                _stream(seed=2, events_per_s=200.0, vendor="mba"),
            ]
        )
        stamps = [batch.t_s for batch in mux.batches(12)]
        assert stamps == sorted(stamps)

    def test_buffer_bound_is_one_per_source(self):
        mux = StreamMux([_stream(seed=1), _stream(seed=2)])
        assert mux.max_buffered == 2

    def test_empty_mux_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            StreamMux([])


class TestSimClock:
    def test_advance_and_sleep(self):
        clock = SimClock()
        assert clock.now() == 0.0
        clock.advance(1.5)
        clock.sleep(0.5)
        assert clock() == 2.0

    def test_advance_to_is_monotonic(self):
        clock = SimClock(start_s=10.0)
        clock.advance_to(5.0)  # never goes backwards
        assert clock.now() == 10.0
        clock.advance_to(12.0)
        assert clock.now() == 12.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)
