"""CLI error-path tests."""

import pytest

from repro.cli import main
from repro.frame import ColumnTable, write_csv


def test_join_ndt_on_wrong_schema(tmp_path):
    path = tmp_path / "bad.csv"
    write_csv(ColumnTable({"x": [1, 2]}), path)
    with pytest.raises(KeyError, match="missing"):
        main(
            [
                "join-ndt", "--input", str(path),
                "--out", str(tmp_path / "out.csv"),
            ]
        )


def test_contextualize_on_empty_speeds(tmp_path):
    path = tmp_path / "empty.csv"
    write_csv(
        ColumnTable(
            {"download_mbps": [float("nan")], "upload_mbps": [1.0]}
        ),
        path,
    )
    with pytest.raises(ValueError, match="no finite"):
        main(
            [
                "contextualize", "--input", str(path),
                "--city", "A", "--out", str(tmp_path / "o.csv"),
            ]
        )


def test_challenge_requires_context_columns(tmp_path):
    path = tmp_path / "raw.csv"
    write_csv(ColumnTable({"download_mbps": [10.0]}), path)
    with pytest.raises(KeyError, match="contextualised"):
        main(["challenge", "--input", str(path)])


def test_unknown_city_rejected(tmp_path):
    with pytest.raises(SystemExit):
        main(
            [
                "generate", "--vendor", "ookla", "--city", "Z",
                "--out", str(tmp_path / "x.csv"),
            ]
        )


def test_report_all_unknown_experiment(tmp_path):
    with pytest.raises(KeyError, match="unknown"):
        main(
            [
                "report-all", "--out-dir", str(tmp_path),
                "--only", "fig999",
            ]
        )


def test_audit_on_empty_csv(tmp_path, capsys):
    path = tmp_path / "empty.csv"
    path.write_text("")
    assert main(["audit", "--input", str(path)]) == 0
    assert "0.00" in capsys.readouterr().out
