"""Robustness / failure-injection integration tests."""

import numpy as np
import pytest

from repro.core import BSTModel, upload_group_accuracy
from repro.frame import ColumnTable, read_csv
from repro.market import city_catalog
from repro.pipeline import contextualize


class TestWrongCatalog:
    def test_cross_city_contextualization_degrades_gracefully(
        self, ookla_a
    ):
        """City-A data against City-D's menu: no crash, tiers valid.

        This is the failure mode of skipping the Form 477 dominant-ISP
        step -- assignments complete but are meaningless; the API must
        stay total rather than failing mid-pipeline.
        """
        wrong = contextualize(ookla_a, city_catalog("D"))
        assert len(wrong) == len(ookla_a)
        assert set(wrong.table["bst_tier"].tolist()) <= set(
            city_catalog("D").tiers
        )

    def test_right_catalog_beats_wrong_catalog(self, ookla_a, catalog_a):
        right = contextualize(ookla_a, catalog_a)
        accuracy = upload_group_accuracy(
            right.bst_result, right.table["true_tier"]
        )
        assert accuracy > 0.85


class TestDirtyInputs:
    def test_negative_speeds_survive_fit(self, catalog_a):
        rng = np.random.default_rng(0)
        table = ColumnTable(
            {
                "download_mbps": np.concatenate(
                    [rng.normal(110, 8, 200), [-5.0]]
                ),
                "upload_mbps": np.concatenate(
                    [rng.normal(5.5, 0.3, 200), [2.0]]
                ),
            }
        )
        ctx = contextualize(table, catalog_a)
        assert len(ctx) == 201  # negative speeds are data, not errors

    def test_single_tier_city(self, catalog_a):
        rng = np.random.default_rng(1)
        table = ColumnTable(
            {
                "download_mbps": rng.normal(110, 8, 300),
                "upload_mbps": rng.normal(5.5, 0.3, 300),
            }
        )
        ctx = contextualize(table, catalog_a)
        # All mass in one tier: the fit must not invent other tiers
        # beyond its group.
        assert set(ctx.table["bst_group"].tolist()) == {"Tier 1-3"}

    def test_tiny_sample(self, catalog_a):
        table = ColumnTable(
            {
                "download_mbps": [110.0, 420.0, 810.0, 1100.0],
                "upload_mbps": [5.5, 11.2, 17.0, 39.0],
            }
        )
        ctx = contextualize(table, catalog_a)
        assert len(ctx) == 4

    def test_fewer_rows_than_groups_rejected(self, catalog_a):
        table = ColumnTable(
            {"download_mbps": [110.0], "upload_mbps": [5.5]}
        )
        with pytest.raises(ValueError, match="at least"):
            contextualize(table, catalog_a)


class TestCorruptCSV:
    def test_truncated_file_partial_read(self, tmp_path):
        path = tmp_path / "broken.csv"
        path.write_text("a,b\n1,2\n3")  # last row truncated
        table = read_csv(path)
        assert len(table) == 2

    def test_binaryish_cells_become_strings(self, tmp_path):
        path = tmp_path / "odd.csv"
        path.write_text('a\n"\x01\x02"\nplain\n')
        table = read_csv(path)
        assert table["a"].dtype == object


class TestExtremePlans:
    def test_bst_handles_symmetric_style_menu(self):
        """A fiber-like menu with large uploads still stages correctly."""
        from repro.market import Plan, PlanCatalog

        catalog = PlanCatalog(
            "Fiber-ISP",
            [Plan(300, 150), Plan(1000, 500)],
        )
        rng = np.random.default_rng(2)
        uploads = np.concatenate(
            [rng.normal(160, 8, 200), rng.normal(520, 20, 200)]
        )
        downloads = np.concatenate(
            [rng.normal(320, 20, 200), rng.normal(1020, 60, 200)]
        )
        result = BSTModel(catalog).fit(downloads, uploads)
        assert set(result.tiers.tolist()) == {1, 2}
