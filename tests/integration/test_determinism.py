"""Determinism and persistence integration tests."""

import numpy as np

from repro.core.bst import BSTModel
from repro.frame import read_csv, write_csv
from repro.market import city_catalog
from repro.pipeline import contextualize
from repro.vendors import MBASimulator, MLabSimulator, OoklaSimulator


def test_ookla_generation_reproducible_across_instances():
    a = OoklaSimulator("B", seed=77).generate(400)
    b = OoklaSimulator("B", seed=77).generate(400)
    assert a == b


def test_mlab_generation_reproducible():
    a = MLabSimulator("C", seed=78).generate(300)
    b = MLabSimulator("C", seed=78).generate(300)
    assert a == b


def test_mba_generation_reproducible():
    a = MBASimulator("D", seed=79).generate(500)
    b = MBASimulator("D", seed=79).generate(500)
    assert a == b


def test_bst_fit_deterministic(mba_a, state_catalog_a):
    first = BSTModel(state_catalog_a).fit(
        mba_a["download_mbps"], mba_a["upload_mbps"]
    )
    second = BSTModel(state_catalog_a).fit(
        mba_a["download_mbps"], mba_a["upload_mbps"]
    )
    assert np.array_equal(first.tiers, second.tiers)
    assert np.allclose(
        first.upload_stage.cluster_means,
        second.upload_stage.cluster_means,
    )


def test_contextualize_deterministic(ookla_a, catalog_a):
    a = contextualize(ookla_a, catalog_a)
    b = contextualize(ookla_a, catalog_a)
    assert np.array_equal(
        a.table["bst_tier"], b.table["bst_tier"]
    )


def test_dataset_survives_csv_round_trip(tmp_path, ookla_a, catalog_a):
    """Persist, reload, and re-contextualise: assignments must agree."""
    path = tmp_path / "ookla.csv"
    write_csv(ookla_a.head(800), path)
    reloaded = read_csv(path)
    ctx_orig = contextualize(ookla_a.head(800), catalog_a)
    ctx_reload = contextualize(reloaded, catalog_a)
    match = np.mean(
        np.asarray(ctx_orig.table["bst_tier"])
        == np.asarray(ctx_reload.table["bst_tier"])
    )
    assert match > 0.999
