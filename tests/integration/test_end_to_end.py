"""Integration tests: the full paper pipeline on one seeded city."""

import numpy as np
import pytest

from repro.core import accuracy_report, upload_group_accuracy
from repro.core.bst import BSTModel
from repro.market import city_catalog, state_catalog
from repro.pipeline import (
    bottleneck_comparison,
    compare_vendors,
    wifi_band_comparison,
)
from repro.vendors import MBASimulator


class TestMBAValidationFlow:
    """Section 4.3: BST validated against the MBA panel."""

    def test_accuracy_exceeds_paper_floor(self, mba_a, state_catalog_a):
        result = BSTModel(state_catalog_a).fit(
            mba_a["download_mbps"], mba_a["upload_mbps"]
        )
        report = accuracy_report(result, mba_a["tier"])
        assert report.upload_group_accuracy > 0.96
        assert report.tier_accuracy > 0.95

    def test_per_group_accuracy_high(self, mba_a, state_catalog_a):
        result = BSTModel(state_catalog_a).fit(
            mba_a["download_mbps"], mba_a["upload_mbps"]
        )
        report = accuracy_report(result, mba_a["tier"])
        for label, accuracy in report.per_group_tier_accuracy.items():
            assert accuracy > 0.9, label


class TestCrowdsourcedFlow:
    """Sections 5-6: contextualise Ookla + M-Lab, then diagnose."""

    def test_group_counts_skew_low(self, ookla_ctx_a):
        table = ookla_ctx_a.table
        low = len(ookla_ctx_a.rows_for_group("Tier 1-3"))
        assert low / len(table) > 0.3

    def test_city_median_far_below_top_plan(self, ookla_ctx_a):
        downloads = np.asarray(
            ookla_ctx_a.table["download_mbps"], dtype=float
        )
        assert np.median(downloads) < 1200 / 4

    def test_assignment_matches_simulation_truth(self, ookla_ctx_a):
        accuracy = upload_group_accuracy(
            ookla_ctx_a.bst_result, ookla_ctx_a.table["true_tier"]
        )
        assert accuracy > 0.85

    def test_local_factor_and_vendor_analyses_consistent(
        self, ookla_ctx_a, mlab_ctx_a
    ):
        band = wifi_band_comparison(ookla_ctx_a.table).medians()
        assert band["5 GHz"] > band["2.4 GHz"]
        bottleneck = bottleneck_comparison(ookla_ctx_a.table)
        assert bottleneck.shares()["Local-bottleneck"] > 0.5
        comparison = compare_vendors(ookla_ctx_a, mlab_ctx_a)
        for label, lag in comparison.lag_factors().items():
            assert lag > 1.0, label


class TestCrossCityGeneralisation:
    """The methodology must work beyond City-A's menu shape."""

    @pytest.mark.parametrize("state", ["B", "C", "D"])
    def test_mba_accuracy_other_states(self, state):
        mba = MBASimulator(state, seed=21).generate(4_000)
        result = BSTModel(state_catalog(state)).fit(
            mba["download_mbps"], mba["upload_mbps"]
        )
        report = accuracy_report(result, mba["tier"])
        assert report.upload_group_accuracy > 0.95, state

    def test_city_d_three_group_menu(self):
        catalog = city_catalog("D")
        assert len(catalog.upload_groups()) == 3
