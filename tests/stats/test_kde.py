"""Tests for the from-scratch Gaussian KDE."""

import numpy as np
import pytest

from repro.stats import GaussianKDE, scott_bandwidth, silverman_bandwidth


@pytest.fixture
def bimodal():
    rng = np.random.default_rng(0)
    return np.concatenate(
        [rng.normal(5, 0.5, 400), rng.normal(35, 2.0, 400)]
    )


class TestBandwidthRules:
    def test_silverman_positive(self, bimodal):
        assert silverman_bandwidth(bimodal) > 0

    def test_scott_exceeds_silverman(self, bimodal):
        assert scott_bandwidth(bimodal) > silverman_bandwidth(bimodal)

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            silverman_bandwidth(np.array([]))

    def test_constant_sample_gets_tiny_bandwidth(self):
        bw = silverman_bandwidth(np.full(10, 7.0))
        assert 0 < bw < 1e-3

    def test_bandwidth_shrinks_with_n(self):
        rng = np.random.default_rng(1)
        small = rng.normal(0, 1, 50)
        large = np.concatenate([small] * 40)
        assert silverman_bandwidth(large) < silverman_bandwidth(small)


class TestEvaluate:
    def test_density_positive(self, bimodal):
        kde = GaussianKDE(bimodal)
        _, density = kde.grid(num=256)
        assert (density >= 0).all()

    def test_density_integrates_to_one(self, bimodal):
        kde = GaussianKDE(bimodal)
        grid, density = kde.grid(num=2048, pad_bandwidths=8)
        integral = np.trapezoid(density, grid)
        assert integral == pytest.approx(1.0, abs=0.01)

    def test_peak_near_modes(self, bimodal):
        kde = GaussianKDE(bimodal)
        grid, density = kde.grid(num=1024)
        top = grid[np.argmax(density)]
        assert abs(top - 5.0) < 1.0  # the tighter mode dominates

    def test_scalar_evaluation(self, bimodal):
        kde = GaussianKDE(bimodal)
        out = kde.evaluate(5.0)
        assert out.shape == (1,)

    def test_callable_alias(self, bimodal):
        kde = GaussianKDE(bimodal)
        assert np.allclose(kde(5.0), kde.evaluate(5.0))

    def test_nan_inputs_dropped(self):
        kde = GaussianKDE([1.0, np.nan, 2.0, np.inf])
        assert kde.values.tolist() == [1.0, 2.0]

    def test_all_nan_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            GaussianKDE([np.nan, np.nan])

    def test_explicit_bandwidth(self):
        kde = GaussianKDE([0.0, 10.0], bandwidth=2.0)
        assert kde.bandwidth == 2.0

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            GaussianKDE([1.0, 2.0], bandwidth=0.0)

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            GaussianKDE([1.0, 2.0], bandwidth="magic")

    def test_scott_rule_accepted(self):
        kde = GaussianKDE([1.0, 2.0, 3.0], bandwidth="scott")
        assert kde.bandwidth > 0

    def test_single_value_sample(self):
        kde = GaussianKDE([5.0])
        assert kde.evaluate(5.0)[0] > 0


class TestGrid:
    def test_grid_spans_sample(self, bimodal):
        kde = GaussianKDE(bimodal)
        grid, _ = kde.grid(num=64)
        assert grid[0] < bimodal.min()
        assert grid[-1] > bimodal.max()

    def test_explicit_bounds(self, bimodal):
        kde = GaussianKDE(bimodal)
        grid, _ = kde.grid(num=16, lo=0.0, hi=50.0)
        assert grid[0] == 0.0 and grid[-1] == 50.0

    def test_tiny_grid_rejected(self, bimodal):
        with pytest.raises(ValueError):
            GaussianKDE(bimodal).grid(num=1)


class TestIntegrate:
    def test_full_mass(self, bimodal):
        kde = GaussianKDE(bimodal)
        assert kde.integrate(-1e3, 1e3) == pytest.approx(1.0, abs=1e-6)

    def test_half_mass_split(self, bimodal):
        kde = GaussianKDE(bimodal)
        left = kde.integrate(-1e3, 20.0)
        right = kde.integrate(20.0, 1e3)
        assert left + right == pytest.approx(1.0, abs=1e-6)
        assert left == pytest.approx(0.5, abs=0.05)

    def test_reversed_bounds_rejected(self, bimodal):
        with pytest.raises(ValueError):
            GaussianKDE(bimodal).integrate(10.0, 0.0)
