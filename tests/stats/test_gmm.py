"""Tests for the from-scratch GMM-EM estimator."""

import numpy as np
import pytest

from repro.stats import GaussianMixture, select_components_bic


@pytest.fixture
def two_cluster_sample():
    rng = np.random.default_rng(0)
    return np.concatenate(
        [rng.normal(5.0, 0.4, 600), rng.normal(35.0, 1.5, 400)]
    )


class TestFit:
    def test_recovers_means(self, two_cluster_sample):
        fit = GaussianMixture(2, seed=1).fit(two_cluster_sample)
        assert fit.means[0] == pytest.approx(5.0, abs=0.2)
        assert fit.means[1] == pytest.approx(35.0, abs=0.5)

    def test_recovers_weights(self, two_cluster_sample):
        fit = GaussianMixture(2, seed=1).fit(two_cluster_sample)
        assert fit.weights[0] == pytest.approx(0.6, abs=0.05)
        assert abs(fit.weights.sum() - 1.0) < 1e-9

    def test_means_sorted(self, two_cluster_sample):
        fit = GaussianMixture(2, seed=1).fit(two_cluster_sample)
        assert np.all(np.diff(fit.means) >= 0)

    def test_converges(self, two_cluster_sample):
        fit = GaussianMixture(2, seed=1).fit(two_cluster_sample)
        assert fit.converged
        assert fit.n_iter < 200

    def test_single_component(self, two_cluster_sample):
        fit = GaussianMixture(1).fit(two_cluster_sample)
        assert fit.means[0] == pytest.approx(
            two_cluster_sample.mean(), rel=1e-6
        )

    def test_means_init_respected(self, two_cluster_sample):
        fit = GaussianMixture(2, means_init=[5.0, 35.0]).fit(
            two_cluster_sample
        )
        assert fit.means[0] == pytest.approx(5.0, abs=0.2)

    def test_means_init_size_checked(self, two_cluster_sample):
        with pytest.raises(ValueError, match="means_init"):
            GaussianMixture(2, means_init=[1.0]).fit(two_cluster_sample)

    def test_too_few_samples(self):
        with pytest.raises(ValueError, match="samples"):
            GaussianMixture(3).fit([1.0, 2.0])

    def test_nans_dropped(self):
        fit = GaussianMixture(1).fit([1.0, np.nan, 3.0])
        assert fit.means[0] == pytest.approx(2.0)

    def test_invalid_component_count(self):
        with pytest.raises(ValueError):
            GaussianMixture(0)

    def test_deterministic_given_seed(self, two_cluster_sample):
        a = GaussianMixture(2, seed=7).fit(two_cluster_sample)
        b = GaussianMixture(2, seed=7).fit(two_cluster_sample)
        assert np.allclose(a.means, b.means)

    def test_zero_variance_cluster_floored(self):
        sample = np.concatenate([np.full(50, 5.0), np.full(50, 10.0)])
        fit = GaussianMixture(2, seed=0).fit(sample)
        assert (fit.variances > 0).all()


class TestLogLikelihoodMonotonicity:
    def test_ll_improves_with_iterations(self, two_cluster_sample):
        short = GaussianMixture(2, max_iter=2, seed=1).fit(
            two_cluster_sample
        )
        long = GaussianMixture(2, max_iter=100, seed=1).fit(
            two_cluster_sample
        )
        assert long.log_likelihood >= short.log_likelihood - 1e-6


class TestPrediction:
    def test_responsibilities_sum_to_one(self, two_cluster_sample):
        gmm = GaussianMixture(2, seed=1)
        gmm.fit(two_cluster_sample)
        resp = gmm.responsibilities(two_cluster_sample)
        assert np.allclose(resp.sum(axis=1), 1.0)

    def test_predict_separates_clusters(self, two_cluster_sample):
        gmm = GaussianMixture(2, seed=1)
        gmm.fit(two_cluster_sample)
        labels = gmm.predict([5.0, 35.0])
        assert labels.tolist() == [0, 1]

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            GaussianMixture(2).predict([1.0])

    def test_score_samples_higher_at_modes(self, two_cluster_sample):
        gmm = GaussianMixture(2, seed=1)
        gmm.fit(two_cluster_sample)
        scores = gmm.score_samples([5.0, 20.0])
        assert scores[0] > scores[1]

    def test_sample_from_fit(self, two_cluster_sample):
        gmm = GaussianMixture(2, seed=1)
        gmm.fit(two_cluster_sample)
        draws = gmm.sample(1000, seed=3)
        assert draws.shape == (1000,)
        # Mass should concentrate near both modes.
        assert np.mean(np.abs(draws - 5.0) < 2) > 0.3
        assert np.mean(np.abs(draws - 35.0) < 5) > 0.2


class TestBIC:
    def test_bic_prefers_true_component_count(self, two_cluster_sample):
        best = select_components_bic(two_cluster_sample, max_components=5)
        assert best.n_components == 2

    def test_bic_unimodal(self):
        rng = np.random.default_rng(2)
        best = select_components_bic(rng.normal(0, 1, 800), max_components=4)
        assert best.n_components == 1

    def test_bic_penalises_complexity(self, two_cluster_sample):
        simple = GaussianMixture(2, seed=1).fit(two_cluster_sample)
        complex_fit = GaussianMixture(6, seed=1).fit(two_cluster_sample)
        n = len(two_cluster_sample)
        assert simple.bic(n) < complex_fit.bic(n)

    def test_bic_empty_sample(self):
        with pytest.raises(ValueError):
            select_components_bic(np.array([]))

    def test_bic_invalid_n(self, two_cluster_sample):
        fit = GaussianMixture(1).fit(two_cluster_sample)
        with pytest.raises(ValueError):
            fit.bic(0)


class TestMeanPrior:
    def test_prior_requires_means_init(self):
        with pytest.raises(ValueError, match="requires"):
            GaussianMixture(2, mean_prior_strength=0.1)

    def test_negative_prior_rejected(self):
        with pytest.raises(ValueError):
            GaussianMixture(2, means_init=[1, 2], mean_prior_strength=-1)

    def test_prior_anchors_means(self):
        # A smear of mass between two true clusters: the unregularised
        # fit can drift; the prior keeps components near their anchors.
        rng = np.random.default_rng(3)
        sample = np.concatenate(
            [
                rng.normal(10, 0.8, 400),
                rng.normal(15, 0.8, 300),
                rng.uniform(5, 18, 350),  # smear
            ]
        )
        anchored = GaussianMixture(
            2, means_init=[10.0, 15.0], mean_prior_strength=0.3
        ).fit(sample)
        assert anchored.means[0] == pytest.approx(10.0, abs=1.2)
        assert anchored.means[1] == pytest.approx(15.0, abs=1.2)

    def test_strong_prior_dominates(self, two_cluster_sample):
        fit = GaussianMixture(
            2, means_init=[4.0, 36.0], mean_prior_strength=1000.0
        ).fit(two_cluster_sample)
        assert fit.means[0] == pytest.approx(4.0, abs=0.2)
        assert fit.means[1] == pytest.approx(36.0, abs=0.2)


class TestConvergenceObservability:
    def test_cap_hit_warns_and_counts(self, caplog):
        import logging

        from repro.obs.metrics import use_registry

        rng = np.random.default_rng(5)
        sample = np.concatenate(
            [rng.normal(5, 0.5, 300), rng.normal(40, 2.0, 300)]
        )
        with use_registry() as registry:
            with caplog.at_level(logging.WARNING, logger="repro.stats.gmm"):
                fit = GaussianMixture(2, max_iter=1, tol=0.0).fit(sample)
        assert not fit.converged
        assert registry.counter("em.unconverged").value == 1.0
        records = [
            r for r in caplog.records if "iteration cap" in r.getMessage()
        ]
        assert len(records) == 1
        assert records[0].name == "repro.stats.gmm"

    def test_converged_fit_is_silent(self, caplog, two_cluster_sample):
        import logging

        from repro.obs.metrics import use_registry

        with use_registry() as registry:
            with caplog.at_level(logging.WARNING, logger="repro.stats.gmm"):
                fit = GaussianMixture(2, seed=0).fit(two_cluster_sample)
        assert fit.converged
        assert registry.counter("em.unconverged").value == 0.0
        assert not caplog.records

    def test_iteration_metric_recorded(self, two_cluster_sample):
        from repro.obs.metrics import use_registry

        with use_registry() as registry:
            fit = GaussianMixture(2, seed=0).fit(two_cluster_sample)
        hist = registry.histogram("em.iterations")
        assert hist.count == 1
        assert hist.max == fit.n_iter
