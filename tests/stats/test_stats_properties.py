"""Property-based tests of the statistics substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.stats import (
    GaussianKDE,
    GaussianMixture,
    cdf_at,
    consistency_factor,
    ecdf,
    normalized_values,
)

finite_floats = st.floats(
    min_value=0.1, max_value=1e4, allow_nan=False, allow_infinity=False
)


def samples(min_size=2, max_size=200):
    return arrays(
        dtype=float,
        shape=st.integers(min_value=min_size, max_value=max_size),
        elements=finite_floats,
    )


@given(samples())
@settings(max_examples=40, deadline=None)
def test_kde_density_nonnegative(sample):
    kde = GaussianKDE(sample)
    _, density = kde.grid(num=64)
    assert (density >= 0).all()


@given(samples(min_size=5))
@settings(max_examples=30, deadline=None)
def test_kde_integrates_to_one(sample):
    kde = GaussianKDE(sample)
    assert abs(kde.integrate(-1e9, 1e9) - 1.0) < 1e-6


@given(samples(min_size=4))
@settings(max_examples=25, deadline=None)
def test_gmm_responsibilities_are_distributions(sample):
    gmm = GaussianMixture(2, seed=0)
    gmm.fit(sample)
    resp = gmm.responsibilities(sample)
    assert np.allclose(resp.sum(axis=1), 1.0, atol=1e-8)
    assert (resp >= 0).all()


@given(samples(min_size=4))
@settings(max_examples=25, deadline=None)
def test_gmm_weights_sum_to_one(sample):
    fit = GaussianMixture(2, seed=0).fit(sample)
    assert abs(fit.weights.sum() - 1.0) < 1e-8
    assert (fit.variances > 0).all()


@given(samples())
@settings(max_examples=40, deadline=None)
def test_ecdf_monotone_and_bounded(sample):
    xs, fractions = ecdf(sample)
    assert np.all(np.diff(fractions) >= 0)
    assert fractions[-1] == 1.0
    assert np.all(np.diff(xs) >= 0)


@given(samples(), samples(min_size=1, max_size=20))
@settings(max_examples=40, deadline=None)
def test_cdf_at_monotone(sample, points):
    sorted_points = np.sort(points)
    out = cdf_at(sample, sorted_points)
    assert np.all(np.diff(out) >= -1e-12)
    assert ((out >= 0) & (out <= 1)).all()


@given(samples(min_size=1))
@settings(max_examples=40)
def test_consistency_factor_positive(sample):
    assert consistency_factor(sample) > 0


@given(samples(min_size=1))
@settings(max_examples=40)
def test_scaling_invariance_of_consistency_factor(sample):
    base = consistency_factor(sample)
    scaled = consistency_factor(sample * 3.0)
    assert np.isclose(base, scaled, rtol=1e-9)


@given(samples(min_size=1), finite_floats)
@settings(max_examples=40)
def test_normalized_values_scale(sample, offered):
    out = normalized_values(sample, np.full(sample.shape, offered))
    assert np.allclose(out * offered, sample, rtol=1e-9)
