"""Tests for the joint 2-D GMM ablation estimator."""

import numpy as np
import pytest

from repro.stats import GaussianMixture2D


@pytest.fixture
def two_plans():
    rng = np.random.default_rng(0)
    low = np.column_stack(
        [rng.normal(110, 9, 400), rng.normal(5.5, 0.3, 400)]
    )
    high = np.column_stack(
        [rng.normal(900, 60, 400), rng.normal(40, 2, 400)]
    )
    return np.vstack([low, high])


class TestFit:
    def test_recovers_means(self, two_plans):
        fit = GaussianMixture2D(2, seed=1).fit(two_plans)
        assert fit.means[0, 0] == pytest.approx(110, rel=0.1)
        assert fit.means[0, 1] == pytest.approx(5.5, rel=0.15)
        assert fit.means[1, 0] == pytest.approx(900, rel=0.1)

    def test_components_sorted_by_upload(self, two_plans):
        fit = GaussianMixture2D(2, seed=1).fit(two_plans)
        assert fit.means[0, 1] < fit.means[1, 1]

    def test_weights_sum_to_one(self, two_plans):
        fit = GaussianMixture2D(2, seed=1).fit(two_plans)
        assert fit.weights.sum() == pytest.approx(1.0)

    def test_variances_positive(self, two_plans):
        fit = GaussianMixture2D(2, seed=1).fit(two_plans)
        assert (fit.variances > 0).all()

    def test_converges(self, two_plans):
        assert GaussianMixture2D(2, seed=1).fit(two_plans).converged

    def test_means_init_shape_checked(self):
        with pytest.raises(ValueError, match="shape"):
            GaussianMixture2D(2, means_init=[[1.0, 2.0]])

    def test_prior_requires_init(self):
        with pytest.raises(ValueError):
            GaussianMixture2D(2, mean_prior_strength=0.1)

    def test_prior_anchors(self, two_plans):
        fit = GaussianMixture2D(
            2,
            means_init=[[100.0, 5.0], [1200.0, 35.0]],
            mean_prior_strength=100.0,
        ).fit(two_plans)
        assert fit.means[1, 0] == pytest.approx(1200.0, rel=0.1)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError, match="n, 2"):
            GaussianMixture2D(2).fit(np.zeros((10, 3)))

    def test_too_few_samples(self):
        with pytest.raises(ValueError, match="samples"):
            GaussianMixture2D(3).fit(np.zeros((2, 2)))

    def test_nan_rows_dropped(self, two_plans):
        dirty = np.vstack([two_plans, [[np.nan, 1.0]]])
        fit = GaussianMixture2D(2, seed=1).fit(dirty)
        assert fit.n_components == 2

    def test_bic_penalises_complexity(self, two_plans):
        simple = GaussianMixture2D(2, seed=1).fit(two_plans)
        complex_fit = GaussianMixture2D(6, seed=1).fit(two_plans)
        n = two_plans.shape[0]
        assert simple.bic(n) < complex_fit.bic(n)


class TestPredict:
    def test_predict_separates(self, two_plans):
        gmm = GaussianMixture2D(2, seed=1)
        gmm.fit(two_plans)
        labels = gmm.predict([[110.0, 5.5], [900.0, 40.0]])
        assert labels.tolist() == [0, 1]

    def test_responsibilities_normalised(self, two_plans):
        gmm = GaussianMixture2D(2, seed=1)
        gmm.fit(two_plans)
        resp = gmm.responsibilities(two_plans)
        assert np.allclose(resp.sum(axis=1), 1.0)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            GaussianMixture2D(2).predict([[1.0, 2.0]])
