"""Tests for the linear-binning KDE fast path.

The binned path must be indistinguishable from the exact pairwise sum
for peak counting: densities agree within the documented tolerance
(<= 1% of the peak density; see docs/PERFORMANCE.md) and peak counts
match exactly on realistic speed-test mixtures.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.trace import use_collector
from repro.stats import count_density_peaks
from repro.stats.kde import (
    FAST_PATH_MAX_SPACING,
    FAST_PATH_MIN_SAMPLES,
    GaussianKDE,
    _convolve_same,
)


def _mixture(seed, n):
    """Seeded speed-test-shaped mixture: a few lognormal-ish clusters."""
    rng = np.random.default_rng(seed)
    parts = [
        rng.normal(5, 0.4, n // 3),
        rng.normal(11, 0.8, n // 3),
        rng.normal(38, 2.0, n - 2 * (n // 3)),
    ]
    return np.concatenate(parts)


def _max_relative_error(kde, num=512):
    grid, exact = kde.grid(num=num, method="exact")
    _, binned = kde.grid(num=num, method="binned")
    return float(np.max(np.abs(binned - exact)) / exact.max())


class TestBinnedAccuracy:
    @pytest.mark.parametrize("n", [200, 2_000, 20_000])
    @pytest.mark.parametrize("bandwidth", [None, "scott", 0.5])
    def test_binned_matches_exact_within_tolerance(self, n, bandwidth):
        kde = GaussianKDE(_mixture(seed=n, n=n), bandwidth=bandwidth)
        assert _max_relative_error(kde) < 0.01

    def test_discrete_valued_sample(self):
        # Speed tests cluster on round numbers; point masses are the
        # worst case for binning.
        rng = np.random.default_rng(0)
        values = rng.choice([5.0, 10.0, 15.0, 35.0], size=5_000)
        values = values + rng.normal(0, 0.05, values.size)
        kde = GaussianKDE(values)
        assert _max_relative_error(kde, num=1024) < 0.01

    def test_custom_window_with_samples_outside(self):
        # Samples beyond the requested lo/hi must still contribute mass
        # inside the window (the extended-grid logic).
        kde = GaussianKDE(_mixture(seed=1, n=4_000))
        grid, exact = kde.grid(num=512, lo=8.0, hi=20.0, method="exact")
        _, binned = kde.grid(num=512, lo=8.0, hi=20.0, method="binned")
        assert float(np.max(np.abs(binned - exact)) / exact.max()) < 0.01

    def test_density_nonnegative(self):
        kde = GaussianKDE(_mixture(seed=2, n=3_000))
        _, binned = kde.grid(num=2048, method="binned")
        assert binned.min() >= 0.0

    def test_binned_integrates_to_one(self):
        kde = GaussianKDE(_mixture(seed=3, n=3_000))
        grid, binned = kde.grid(num=2048, pad_bandwidths=8.0,
                                method="binned")
        assert float(np.trapezoid(binned, grid)) == pytest.approx(
            1.0, abs=0.01
        )


class TestMethodSelection:
    def _grid_method(self, collector):
        (sp,) = [s for s in collector.spans() if s.name == "kde.grid"]
        return sp.attributes["method"]

    def test_auto_uses_exact_below_threshold(self):
        kde = GaussianKDE(_mixture(seed=4, n=500))
        with use_collector() as collector:
            kde.grid(num=512)
        assert self._grid_method(collector) == "exact"

    def test_auto_uses_binned_above_threshold(self, monkeypatch):
        monkeypatch.setattr("repro.stats.kde.FAST_PATH_MIN_SAMPLES", 1_000)
        kde = GaussianKDE(_mixture(seed=5, n=2_000))
        with use_collector() as collector:
            kde.grid(num=512)
        assert self._grid_method(collector) == "binned"

    def test_auto_falls_back_on_coarse_grid(self, monkeypatch):
        monkeypatch.setattr("repro.stats.kde.FAST_PATH_MIN_SAMPLES", 1_000)
        kde = GaussianKDE(_mixture(seed=6, n=2_000))
        # 8 grid points over a ~40 Mbps range cannot resolve the
        # bandwidth, so auto must fall back to the exact path.
        assert not kde._binned_applicable(
            (kde.values[-1] - kde.values[0]) / 7
        )
        with use_collector() as collector:
            kde.grid(num=8)
        assert self._grid_method(collector) == "exact"

    def test_forced_binned_on_coarse_grid_raises(self):
        kde = GaussianKDE(_mixture(seed=7, n=500))
        with pytest.raises(ValueError, match="too coarse"):
            kde.grid(num=8, method="binned")

    def test_unknown_method_rejected(self):
        kde = GaussianKDE(_mixture(seed=8, n=100))
        with pytest.raises(ValueError, match="method"):
            kde.grid(method="fft")

    def test_threshold_constant_engages_real_path(self):
        # No monkeypatching: a sample at the real threshold goes binned.
        n = FAST_PATH_MIN_SAMPLES
        kde = GaussianKDE(_mixture(seed=9, n=n))
        with use_collector() as collector:
            kde.grid(num=512)
        assert self._grid_method(collector) == "binned"


class TestPeakCountParity:
    @pytest.mark.parametrize("log_space", [False, True])
    def test_peak_counts_match(self, log_space):
        values = _mixture(seed=10, n=6_000)
        exact = count_density_peaks(
            values, log_space=log_space, kde_method="exact"
        )
        binned = count_density_peaks(
            values, log_space=log_space, kde_method="binned"
        )
        assert exact == binned
        assert exact == 3

    def test_four_cluster_upload_sample(self):
        rng = np.random.default_rng(11)
        sample = np.concatenate(
            [
                rng.normal(5, 0.3, 2_000),
                rng.normal(11, 0.5, 1_500),
                rng.normal(17, 0.6, 1_500),
                rng.normal(40, 1.5, 2_000),
            ]
        )
        assert count_density_peaks(sample, log_space=True,
                                   kde_method="exact") == 4
        assert count_density_peaks(sample, log_space=True,
                                   kde_method="binned") == 4


class TestConvolveSame:
    def test_matches_numpy_same_for_short_kernel(self):
        rng = np.random.default_rng(12)
        w = rng.normal(size=100)
        k = rng.normal(size=11)
        np.testing.assert_allclose(
            _convolve_same(w, k), np.convolve(w, k, mode="same")
        )

    def test_kernel_longer_than_grid_stays_centred(self):
        # np.convolve(mode="same") centres on the longer operand, which
        # misaligns the result when the kernel outspans the grid; the
        # fast path must stay centred on the grid.
        w = np.zeros(9)
        w[4] = 1.0  # impulse at the grid centre
        k = np.exp(-0.5 * (np.arange(-15, 16) / 4.0) ** 2)
        out = _convolve_same(w, k)
        assert out.size == w.size
        assert int(np.argmax(out)) == 4

    def test_fft_branch_matches_direct(self):
        rng = np.random.default_rng(13)
        w = rng.normal(size=5_000)
        k = rng.normal(size=901)  # 4.5M multiply-adds -> FFT branch
        assert w.size * k.size > 4_000_000
        np.testing.assert_allclose(
            _convolve_same(w, k),
            np.convolve(w, k)[(k.size - 1) // 2:][: w.size],
            atol=1e-9,
        )


cluster_strategy = st.lists(
    st.tuples(
        st.floats(min_value=1.0, max_value=100.0),   # centre
        st.floats(min_value=0.1, max_value=5.0),     # sigma
        st.integers(min_value=50, max_value=400),    # size
    ),
    min_size=1,
    max_size=4,
)


class TestPropertyFastPath:
    @given(clusters=cluster_strategy, seed=st.integers(0, 2**16))
    @settings(max_examples=30, deadline=None)
    def test_binned_close_to_exact(self, clusters, seed):
        rng = np.random.default_rng(seed)
        values = np.concatenate(
            [rng.normal(mu, sigma, n) for mu, sigma, n in clusters]
        )
        kde = GaussianKDE(values)
        grid, exact = kde.grid(num=512, method="exact")
        spacing = float(grid[1] - grid[0])
        if spacing > FAST_PATH_MAX_SPACING * kde.bandwidth:
            with pytest.raises(ValueError, match="too coarse"):
                kde.grid(num=512, method="binned")
            return
        _, binned = kde.grid(num=512, method="binned")
        assert float(
            np.max(np.abs(binned - exact)) / exact.max()
        ) < 0.01

    @given(clusters=cluster_strategy, seed=st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_peak_count_parity_property(self, clusters, seed):
        rng = np.random.default_rng(seed)
        values = np.concatenate(
            [rng.normal(mu, sigma, n) for mu, sigma, n in clusters]
        )
        kde = GaussianKDE(values)
        grid = np.linspace(
            values.min() - 3 * kde.bandwidth,
            values.max() + 3 * kde.bandwidth,
            512,
        )
        if (grid[1] - grid[0]) > FAST_PATH_MAX_SPACING * kde.bandwidth:
            return  # fast path not applicable at this resolution
        assert count_density_peaks(
            values, kde_method="exact"
        ) == count_density_peaks(values, kde_method="binned")
