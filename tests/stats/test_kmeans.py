"""Tests for the 1-D K-Means ablation baseline."""

import numpy as np
import pytest

from repro.stats import KMeans1D


@pytest.fixture
def sample():
    rng = np.random.default_rng(0)
    return np.concatenate(
        [rng.normal(5, 0.5, 300), rng.normal(20, 1.0, 300)]
    )


def test_recovers_centers(sample):
    fit = KMeans1D(2).fit(sample)
    assert fit.centers[0] == pytest.approx(5.0, abs=0.3)
    assert fit.centers[1] == pytest.approx(20.0, abs=0.5)


def test_centers_sorted(sample):
    fit = KMeans1D(2).fit(sample)
    assert np.all(np.diff(fit.centers) >= 0)


def test_converges(sample):
    fit = KMeans1D(2).fit(sample)
    assert fit.converged


def test_inertia_decreases_with_more_clusters(sample):
    one = KMeans1D(1).fit(sample).inertia
    two = KMeans1D(2).fit(sample).inertia
    assert two < one


def test_predict_assigns_nearest(sample):
    km = KMeans1D(2)
    km.fit(sample)
    assert km.predict([5.0, 20.0]).tolist() == [0, 1]


def test_predict_before_fit():
    with pytest.raises(RuntimeError):
        KMeans1D(2).predict([1.0])


def test_means_init(sample):
    fit = KMeans1D(2, means_init=[5.0, 20.0]).fit(sample)
    assert fit.n_iter >= 1
    assert fit.centers[0] == pytest.approx(5.0, abs=0.3)


def test_means_init_size_checked(sample):
    with pytest.raises(ValueError):
        KMeans1D(2, means_init=[1.0]).fit(sample)


def test_too_few_samples():
    with pytest.raises(ValueError):
        KMeans1D(3).fit([1.0])


def test_invalid_k():
    with pytest.raises(ValueError):
        KMeans1D(0)


def test_nan_dropped():
    fit = KMeans1D(1).fit([1.0, np.nan, 3.0])
    assert fit.centers[0] == pytest.approx(2.0)


def test_single_cluster_center_is_mean(sample):
    fit = KMeans1D(1).fit(sample)
    assert fit.centers[0] == pytest.approx(sample.mean(), rel=1e-6)
