"""Tests for density peak detection."""

import numpy as np
import pytest

from repro.stats import count_density_peaks, find_density_peaks
from repro.stats.peaks import DensityPeak, _local_maxima, _prominence


def _gaussian(grid, mu, sigma, height):
    return height * np.exp(-0.5 * ((grid - mu) / sigma) ** 2)


class TestLocalMaxima:
    def test_single_bump(self):
        grid = np.linspace(0, 10, 101)
        density = _gaussian(grid, 5, 1, 1.0)
        assert len(_local_maxima(density)) == 1

    def test_two_bumps(self):
        grid = np.linspace(0, 20, 201)
        density = _gaussian(grid, 5, 1, 1.0) + _gaussian(grid, 15, 1, 0.8)
        assert len(_local_maxima(density)) == 2

    def test_plateau_counts_once(self):
        density = np.asarray([0.0, 1.0, 1.0, 1.0, 0.0])
        assert len(_local_maxima(density)) == 1

    def test_rising_curve_peaks_at_right_boundary(self):
        # Regression: a curve that rises into the last index used to be
        # dropped entirely, undercounting edge-hugging clusters.
        density = np.linspace(0, 1, 50)
        assert _local_maxima(density).tolist() == [49]

    def test_falling_curve_peaks_at_left_boundary(self):
        density = np.linspace(1, 0, 50)
        assert _local_maxima(density).tolist() == [0]

    def test_plateau_reaching_last_index(self):
        # Regression: a plateau touching the last index fell out of the
        # old `while j < n - 1` walk and was never reported.
        density = np.asarray([0.0, 0.5, 1.0, 1.0, 1.0])
        assert _local_maxima(density).tolist() == [3]

    def test_plateau_starting_at_first_index(self):
        density = np.asarray([1.0, 1.0, 1.0, 0.5, 0.0])
        assert _local_maxima(density).tolist() == [1]

    def test_constant_curve_has_no_maxima(self):
        assert len(_local_maxima(np.full(20, 3.0))) == 0

    def test_interior_maxima_unchanged_by_boundary_fix(self):
        density = np.asarray([0.0, 1.0, 0.0, 2.0, 0.5])
        got = _local_maxima(density).tolist()
        assert 1 in got and 3 in got

    def test_too_short_curve(self):
        assert len(_local_maxima(np.asarray([1.0, 2.0]))) == 0


class TestProminence:
    def test_isolated_peak_full_prominence(self):
        grid = np.linspace(0, 10, 101)
        density = _gaussian(grid, 5, 1, 2.0)
        idx = int(np.argmax(density))
        assert _prominence(density, idx) == pytest.approx(2.0, abs=0.01)

    def test_shoulder_peak_lower_prominence(self):
        grid = np.linspace(0, 20, 401)
        density = _gaussian(grid, 8, 2, 1.0) + _gaussian(grid, 12, 1, 0.4)
        maxima = _local_maxima(density)
        proms = sorted(_prominence(density, i) for i in maxima)
        assert proms[0] < 0.4  # the shoulder

    def test_boundary_peak_prominence_from_interior_side(self):
        # A peak on the last grid index has no right-side terrain; its
        # prominence must come from the interior side alone (it used to
        # collapse to zero and be filtered out).
        density = np.asarray([0.0, 0.2, 0.1, 0.5, 0.8, 1.0])
        assert _prominence(density, 5) == pytest.approx(1.0)
        falling = density[::-1].copy()
        assert _prominence(falling, 0) == pytest.approx(1.0)


class TestFindPeaks:
    def test_respects_min_height(self):
        grid = np.linspace(0, 30, 301)
        density = _gaussian(grid, 5, 1, 1.0) + _gaussian(grid, 25, 1, 0.005)
        peaks = find_density_peaks(grid, density, min_height_frac=0.02)
        assert len(peaks) == 1

    def test_respects_min_prominence(self):
        grid = np.linspace(0, 20, 401)
        density = _gaussian(grid, 10, 3, 1.0) + _gaussian(grid, 12, 0.5, 0.02)
        peaks = find_density_peaks(grid, density, min_prominence_frac=0.05)
        assert len(peaks) == 1

    def test_sorted_by_location(self):
        grid = np.linspace(0, 40, 401)
        density = (
            _gaussian(grid, 30, 1, 0.7)
            + _gaussian(grid, 10, 1, 1.0)
            + _gaussian(grid, 20, 1, 0.9)
        )
        peaks = find_density_peaks(grid, density)
        locations = [p.location for p in peaks]
        assert locations == sorted(locations)
        assert len(peaks) == 3

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            find_density_peaks(np.zeros(3), np.zeros(4))

    def test_empty_curve(self):
        assert find_density_peaks(np.array([]), np.array([])) == []

    def test_flat_zero_curve(self):
        grid = np.linspace(0, 1, 10)
        assert find_density_peaks(grid, np.zeros(10)) == []

    def test_returns_peak_objects(self):
        grid = np.linspace(0, 10, 101)
        density = _gaussian(grid, 5, 1, 1.0)
        (peak,) = find_density_peaks(grid, density)
        assert isinstance(peak, DensityPeak)
        assert peak.location == pytest.approx(5.0, abs=0.2)

    def test_edge_hugging_cluster_counted(self):
        # Regression: a second mode whose maximum lands exactly on the
        # grid boundary (truncated by an explicit evaluation window)
        # used to vanish from the peak list.
        grid = np.linspace(0, 10, 201)
        density = _gaussian(grid, 4, 1, 1.0) + _gaussian(grid, 10, 1, 0.8)
        peaks = find_density_peaks(grid, density)
        assert len(peaks) == 2
        assert peaks[-1].location == pytest.approx(10.0, abs=0.1)


class TestCountPeaks:
    def test_four_upload_clusters(self):
        rng = np.random.default_rng(0)
        sample = np.concatenate(
            [
                rng.normal(5, 0.3, 500),
                rng.normal(11, 0.5, 300),
                rng.normal(17, 0.6, 300),
                rng.normal(40, 1.5, 400),
            ]
        )
        assert count_density_peaks(sample, log_space=True) == 4

    def test_unimodal_counts_one(self):
        rng = np.random.default_rng(1)
        assert count_density_peaks(rng.normal(10, 1, 500)) == 1

    def test_minimum_is_one_even_for_flat(self):
        assert count_density_peaks(np.full(50, 3.0)) >= 1

    def test_log_space_requires_positive_values(self):
        with pytest.raises(ValueError, match="positive"):
            count_density_peaks([-1.0, 0.0], log_space=True)

    def test_log_space_drops_nonpositive(self):
        rng = np.random.default_rng(3)
        sample = np.concatenate([rng.normal(10, 1, 300), [-5.0, 0.0]])
        assert count_density_peaks(sample, log_space=True) == 1
