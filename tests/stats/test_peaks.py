"""Tests for density peak detection."""

import numpy as np
import pytest

from repro.stats import count_density_peaks, find_density_peaks
from repro.stats.peaks import DensityPeak, _local_maxima, _prominence


def _gaussian(grid, mu, sigma, height):
    return height * np.exp(-0.5 * ((grid - mu) / sigma) ** 2)


class TestLocalMaxima:
    def test_single_bump(self):
        grid = np.linspace(0, 10, 101)
        density = _gaussian(grid, 5, 1, 1.0)
        assert len(_local_maxima(density)) == 1

    def test_two_bumps(self):
        grid = np.linspace(0, 20, 201)
        density = _gaussian(grid, 5, 1, 1.0) + _gaussian(grid, 15, 1, 0.8)
        assert len(_local_maxima(density)) == 2

    def test_plateau_counts_once(self):
        density = np.asarray([0.0, 1.0, 1.0, 1.0, 0.0])
        assert len(_local_maxima(density)) == 1

    def test_monotone_has_no_interior_maxima(self):
        density = np.linspace(0, 1, 50)
        assert len(_local_maxima(density)) == 0

    def test_too_short_curve(self):
        assert len(_local_maxima(np.asarray([1.0, 2.0]))) == 0


class TestProminence:
    def test_isolated_peak_full_prominence(self):
        grid = np.linspace(0, 10, 101)
        density = _gaussian(grid, 5, 1, 2.0)
        idx = int(np.argmax(density))
        assert _prominence(density, idx) == pytest.approx(2.0, abs=0.01)

    def test_shoulder_peak_lower_prominence(self):
        grid = np.linspace(0, 20, 401)
        density = _gaussian(grid, 8, 2, 1.0) + _gaussian(grid, 12, 1, 0.4)
        maxima = _local_maxima(density)
        proms = sorted(_prominence(density, i) for i in maxima)
        assert proms[0] < 0.4  # the shoulder


class TestFindPeaks:
    def test_respects_min_height(self):
        grid = np.linspace(0, 30, 301)
        density = _gaussian(grid, 5, 1, 1.0) + _gaussian(grid, 25, 1, 0.005)
        peaks = find_density_peaks(grid, density, min_height_frac=0.02)
        assert len(peaks) == 1

    def test_respects_min_prominence(self):
        grid = np.linspace(0, 20, 401)
        density = _gaussian(grid, 10, 3, 1.0) + _gaussian(grid, 12, 0.5, 0.02)
        peaks = find_density_peaks(grid, density, min_prominence_frac=0.05)
        assert len(peaks) == 1

    def test_sorted_by_location(self):
        grid = np.linspace(0, 40, 401)
        density = (
            _gaussian(grid, 30, 1, 0.7)
            + _gaussian(grid, 10, 1, 1.0)
            + _gaussian(grid, 20, 1, 0.9)
        )
        peaks = find_density_peaks(grid, density)
        locations = [p.location for p in peaks]
        assert locations == sorted(locations)
        assert len(peaks) == 3

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            find_density_peaks(np.zeros(3), np.zeros(4))

    def test_empty_curve(self):
        assert find_density_peaks(np.array([]), np.array([])) == []

    def test_flat_zero_curve(self):
        grid = np.linspace(0, 1, 10)
        assert find_density_peaks(grid, np.zeros(10)) == []

    def test_returns_peak_objects(self):
        grid = np.linspace(0, 10, 101)
        density = _gaussian(grid, 5, 1, 1.0)
        (peak,) = find_density_peaks(grid, density)
        assert isinstance(peak, DensityPeak)
        assert peak.location == pytest.approx(5.0, abs=0.2)


class TestCountPeaks:
    def test_four_upload_clusters(self):
        rng = np.random.default_rng(0)
        sample = np.concatenate(
            [
                rng.normal(5, 0.3, 500),
                rng.normal(11, 0.5, 300),
                rng.normal(17, 0.6, 300),
                rng.normal(40, 1.5, 400),
            ]
        )
        assert count_density_peaks(sample, log_space=True) == 4

    def test_unimodal_counts_one(self):
        rng = np.random.default_rng(1)
        assert count_density_peaks(rng.normal(10, 1, 500)) == 1

    def test_minimum_is_one_even_for_flat(self):
        assert count_density_peaks(np.full(50, 3.0)) >= 1

    def test_log_space_requires_positive_values(self):
        with pytest.raises(ValueError, match="positive"):
            count_density_peaks([-1.0, 0.0], log_space=True)

    def test_log_space_drops_nonpositive(self):
        rng = np.random.default_rng(3)
        sample = np.concatenate([rng.normal(10, 1, 300), [-5.0, 0.0]])
        assert count_density_peaks(sample, log_space=True) == 1
