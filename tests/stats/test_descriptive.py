"""Tests for descriptive statistics."""

import numpy as np
import pytest

from repro.stats import (
    bootstrap_ci,
    cdf_at,
    consistency_factor,
    ecdf,
    median,
    normalized_values,
    quantiles,
)


class TestConsistencyFactor:
    def test_constant_sample_is_one(self):
        assert consistency_factor([5.0] * 10) == pytest.approx(1.0)

    def test_variable_sample_below_one(self):
        values = [10, 20, 30, 40, 100]
        assert consistency_factor(values) < 1.0

    def test_heavy_tail_can_exceed_one(self):
        # One huge value drags the mean above the p95 of the bulk.
        values = [1.0] * 99 + [1e6]
        assert consistency_factor(values, percentile=50) > 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            consistency_factor([])

    def test_nans_dropped(self):
        assert consistency_factor([5.0, np.nan, 5.0]) == pytest.approx(1.0)

    def test_zero_denominator_zero_mean(self):
        assert consistency_factor([0.0, 0.0]) == 1.0

    def test_custom_percentile(self):
        values = np.arange(1, 101, dtype=float)
        cf95 = consistency_factor(values, percentile=95)
        cf50 = consistency_factor(values, percentile=50)
        assert cf95 < cf50


class TestECDF:
    def test_sorted_output(self):
        xs, fr = ecdf([3.0, 1.0, 2.0])
        assert xs.tolist() == [1.0, 2.0, 3.0]
        assert fr.tolist() == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_empty(self):
        xs, fr = ecdf([])
        assert xs.size == 0 and fr.size == 0

    def test_cdf_at_points(self):
        out = cdf_at([1.0, 2.0, 3.0, 4.0], [0.0, 2.5, 10.0])
        assert out.tolist() == [0.0, 0.5, 1.0]

    def test_cdf_at_empty_sample(self):
        assert np.isnan(cdf_at([], [1.0])).all()

    def test_cdf_right_continuity(self):
        out = cdf_at([1.0, 2.0], [1.0])
        assert out[0] == 0.5  # includes the point itself


class TestQuantilesMedian:
    def test_quantiles_keys(self):
        out = quantiles(np.arange(100.0), qs=(0.5,))
        assert out[0.5] == pytest.approx(49.5)

    def test_quantiles_empty(self):
        out = quantiles([], qs=(0.5,))
        assert np.isnan(out[0.5])

    def test_median_drops_nan(self):
        assert median([1.0, np.nan, 3.0]) == 2.0

    def test_median_empty(self):
        assert np.isnan(median([]))


class TestBootstrapCI:
    def test_interval_contains_true_median(self):
        rng = np.random.default_rng(0)
        sample = rng.normal(50.0, 5.0, 400)
        lo, hi = bootstrap_ci(sample, seed=1)
        assert lo < 50.0 < hi

    def test_interval_ordered_and_tightens_with_n(self):
        rng = np.random.default_rng(1)
        small = rng.normal(0, 1, 30)
        large = rng.normal(0, 1, 3000)
        lo_s, hi_s = bootstrap_ci(small, seed=2)
        lo_l, hi_l = bootstrap_ci(large, seed=2)
        assert lo_s <= hi_s and lo_l <= hi_l
        assert (hi_l - lo_l) < (hi_s - lo_s)

    def test_custom_statistic(self):
        sample = np.arange(100.0)
        lo, hi = bootstrap_ci(sample, statistic=np.mean, seed=3)
        assert lo < sample.mean() < hi

    def test_deterministic_per_seed(self):
        sample = np.arange(50.0)
        assert bootstrap_ci(sample, seed=7) == bootstrap_ci(sample, seed=7)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])

    def test_invalid_confidence(self):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], confidence=1.5)

    def test_invalid_n_boot(self):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], n_boot=0)


class TestNormalizedValues:
    def test_simple_ratio(self):
        out = normalized_values([50.0, 100.0], [100.0, 100.0])
        assert out.tolist() == [0.5, 1.0]

    def test_zero_offered_is_nan(self):
        out = normalized_values([50.0], [0.0])
        assert np.isnan(out[0])

    def test_negative_offered_is_nan(self):
        out = normalized_values([50.0], [-10.0])
        assert np.isnan(out[0])

    def test_nan_offered_propagates(self):
        out = normalized_values([50.0], [np.nan])
        assert np.isnan(out[0])

    def test_broadcasting_scalar_offered(self):
        out = normalized_values([25.0, 50.0], 100.0)
        assert out.tolist() == [0.25, 0.5]
