"""Run ledger, manifests, and the ``repro obs`` CLI family."""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.cli import main
from repro.obs import use_collector, use_quality, use_registry
from repro.obs.runs import (
    RunLedger,
    RunManifest,
    RunRecorder,
    config_fingerprint,
    default_ledger_path,
    git_revision,
    new_run_id,
    peak_rss_bytes,
    record_bench,
)
from repro.obs.trace import span


def _record_one(name: str = "unit", results=None) -> RunManifest:
    """One manifest built from real (small) sink activity."""
    recorder = RunRecorder(
        kind="cli", name=name, argv=["x", "--y"], params={"seed": 7},
        seed=7,
    )
    with use_collector() as collector, use_registry() as registry:
        with use_quality() as quality:
            with recorder:
                with span("stage.a"):
                    pass
                quality.field("f").observe_array([1.0, float("nan")])
    return recorder.finish(
        exit_code=0,
        collector=collector,
        registry=registry,
        quality=quality,
        results=results or {"score": 0.5},
    )


class TestManifest:
    def test_round_trip(self):
        manifest = _record_one()
        clone = RunManifest.from_dict(
            json.loads(json.dumps(manifest.to_dict()))
        )
        assert clone.run_id == manifest.run_id
        assert clone.config_hash == manifest.config_hash
        assert clone.span_digest == manifest.span_digest
        assert clone.results == manifest.results
        assert clone.quality is not None
        assert clone.quality.fields[0].nan_rate == pytest.approx(0.5)

    def test_manifest_carries_provenance(self):
        manifest = _record_one()
        assert manifest.git_sha  # the repo is a git checkout
        assert len(manifest.config_hash) == 64
        assert manifest.seed == 7
        assert manifest.peak_rss_bytes > 0
        assert "stage.a" in manifest.span_table
        assert manifest.span_digest
        rendered = manifest.render()
        for needle in ("git sha", "config hash", "seed", "peak RSS",
                       "span table", "digest"):
            assert needle in rendered

    def test_run_ids_unique(self):
        assert new_run_id() != new_run_id()

    def test_peak_rss_positive(self):
        assert peak_rss_bytes() > 1024 * 1024

    def test_git_revision_here(self):
        sha = git_revision()
        assert sha and len(sha) == 40


class TestConfigFingerprint:
    def test_order_independent(self):
        assert config_fingerprint({"a": 1, "b": 2.0}) == config_fingerprint(
            {"b": 2.0, "a": 1}
        )

    def test_value_sensitive(self):
        assert config_fingerprint({"a": 1}) != config_fingerprint({"a": 2})

    def test_stable_across_processes(self):
        """The same params hash identically under different PYTHONHASHSEED."""
        program = (
            "from repro.obs.runs import config_fingerprint;"
            "print(config_fingerprint("
            "{'seed': 3, 'scale': 'small', 'names': ['b', 'a']}))"
        )
        hashes = set()
        for hashseed in ("1", "2"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed)
            env["PYTHONPATH"] = os.pathsep.join(sys.path)
            out = subprocess.run(
                [sys.executable, "-c", program],
                capture_output=True, text=True, env=env, check=True,
            )
            hashes.add(out.stdout.strip())
        assert len(hashes) == 1


class TestLedger:
    def test_append_and_find(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs.jsonl")
        first = _record_one("one")
        second = _record_one("two")
        ledger.append(first)
        ledger.append(second)
        assert [m.name for m in ledger.read()] == ["one", "two"]
        assert ledger.find(first.run_id).run_id == first.run_id
        assert ledger.find("latest").run_id == second.run_id
        # Prefix match (ids from the same second differ in the suffix).
        assert ledger.find(second.run_id[:-1]).run_id == second.run_id
        with pytest.raises(KeyError, match="ambiguous"):
            ledger.find(second.run_id[:9])  # shared timestamp prefix

    def test_corrupt_lines_skipped(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        ledger = RunLedger(path)
        ledger.append(_record_one("ok"))
        with open(path, "a") as fh:
            fh.write("{not json\n")
        ledger.append(_record_one("ok2"))
        assert [m.name for m in ledger.read()] == ["ok", "ok2"]

    def test_unknown_id_raises(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs.jsonl")
        with pytest.raises(KeyError):
            ledger.find("latest")
        ledger.append(_record_one())
        with pytest.raises(KeyError):
            ledger.find("zzz-does-not-exist")

    def test_env_disable(self, monkeypatch):
        for off in ("0", "off", "none", ""):
            monkeypatch.setenv("REPRO_LEDGER", off)
            assert default_ledger_path() is None
        monkeypatch.setenv("REPRO_LEDGER", "elsewhere.jsonl")
        assert default_ledger_path() == "elsewhere.jsonl"


class TestRecordBench:
    def test_writes_json_and_ledger(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "runs.jsonl"))
        manifest = record_bench(
            "unit_bench",
            wall_s=0.25,
            results={"speedup": 8.0},
            params={"n": 100},
        )
        data = json.loads((tmp_path / "BENCH_unit_bench.json").read_text())
        assert data["run_id"] == manifest.run_id
        assert data["results"]["speedup"] == 8.0
        rows = RunLedger(tmp_path / "runs.jsonl").read()
        assert [m.kind for m in rows] == ["bench"]
        assert rows[0].name == "bench.unit_bench"


class TestObsCli:
    """End-to-end: record via the CLI, inspect via ``repro obs``."""

    @pytest.fixture()
    def ledger_path(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        for seed in (1, 2):
            code = main(
                [
                    "evaluate", "--state", "A", "--n", "1500",
                    "--seed", str(seed), "--ledger", str(path),
                ]
            )
            assert code == 0
        return path

    def test_runs_lists_both(self, ledger_path, capsys):
        assert main(["obs", "runs", "--ledger", str(ledger_path)]) == 0
        out = capsys.readouterr().out
        assert out.count("evaluate") == 2
        assert "2 matching runs" in out

    def test_show_latest(self, ledger_path, capsys):
        assert main(
            ["obs", "show", "latest", "--ledger", str(ledger_path)]
        ) == 0
        out = capsys.readouterr().out
        for needle in (
            "git sha", "config hash", "seed", "peak RSS",
            "span table", "-- data quality --", "mba.download_mbps",
        ):
            assert needle in out, needle

    def test_diff(self, ledger_path, capsys):
        runs = RunLedger(ledger_path).read()
        assert main(
            [
                "obs", "diff", runs[0].run_id, runs[1].run_id,
                "--ledger", str(ledger_path),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "wall time" in out
        assert "config hash" in out

    def test_check_passes_on_similar_runs(self, ledger_path, capsys):
        assert main(["obs", "check", "--ledger", str(ledger_path)]) == 0
        assert "ok (" in capsys.readouterr().out

    def test_check_fails_on_degraded_run(self, ledger_path, capsys):
        runs = RunLedger(ledger_path).read()
        bad = json.loads(json.dumps(runs[-1].to_dict()))
        bad["run_id"] = "99999999T999999-bad999"
        bad["wall_s"] = runs[-1].wall_s * 10 + 60.0
        for key in bad["results"]:
            bad["results"][key] = bad["results"][key] * 0.5
        with open(ledger_path, "a") as fh:
            fh.write(json.dumps(bad) + "\n")
        assert main(["obs", "check", "--ledger", str(ledger_path)]) == 1
        out = capsys.readouterr().out
        assert "timing regression" in out
        assert "result drift" in out

    def test_check_without_baseline_passes(self, tmp_path, capsys):
        path = tmp_path / "solo.jsonl"
        RunLedger(path).append(_record_one("solo"))
        assert main(["obs", "check", "--ledger", str(path)]) == 0
        assert "no earlier matching runs" in capsys.readouterr().out

    def test_no_ledger_flag(self, tmp_path, capsys):
        path = tmp_path / "never.jsonl"
        code = main(
            [
                "evaluate", "--state", "A", "--n", "1500",
                "--no-ledger", "--ledger", str(path),
            ]
        )
        assert code == 0
        assert not path.exists()

    def test_obs_commands_error_when_disabled(self, capsys):
        # REPRO_LEDGER=0 from the autouse fixture and no --ledger.
        assert main(["obs", "runs"]) == 2
        assert "disabled" in capsys.readouterr().err
