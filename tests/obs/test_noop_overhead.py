"""Observability must be free when nobody opts in.

The acceptance bar: with the default no-op collector and null registry,
``contextualize()`` emits nothing (no spans, no metrics, no log output)
and the instrumentation adds no measurable overhead; the profiler
machinery (``cProfile``/``pstats``) must not even be imported by the
pipeline.
"""

import subprocess
import sys
import time

from repro.obs.metrics import get_registry, use_registry
from repro.obs.trace import get_collector, span, use_collector
from repro.pipeline.contextualize import contextualize


class TestDisabledByDefault:
    def test_contextualize_emits_nothing(self, ookla_a, catalog_a, capfd):
        ctx = contextualize(ookla_a.head(1500), catalog_a)
        assert len(ctx) == 1500
        # Default sinks stayed inert...
        assert not get_collector().enabled
        assert not get_registry().enabled
        # ...and nothing was printed or logged.
        captured = capfd.readouterr()
        assert captured.out == ""
        assert captured.err == ""

    def test_no_spans_leak_into_later_collectors(
        self, ookla_a, catalog_a
    ):
        contextualize(ookla_a.head(1500), catalog_a)
        with use_collector() as collector, use_registry() as registry:
            pass
        assert len(collector) == 0
        assert len(registry) == 0

    def test_noop_span_overhead_is_negligible(self):
        # 10k disabled spans must be far cheaper than a single BST fit;
        # a generous wall-clock bound keeps this robust on slow CI.
        n = 10_000
        start = time.perf_counter()
        for _ in range(n):
            with span("noop.overhead", n=1) as sp:
                sp.set(k=2)
        elapsed = time.perf_counter() - start
        assert elapsed / n < 50e-6, f"{elapsed / n * 1e6:.1f} us per span"

    def test_noop_windowed_instruments_are_inert_and_cheap(self):
        # The windowed API (rates, window snapshots) must stay free on
        # the null registry: same shared inert instrument, no ring
        # allocation, and well under the per-op overhead bound.
        registry = get_registry()
        assert not registry.enabled
        n = 10_000
        start = time.perf_counter()
        for _ in range(n):
            c = registry.counter("noop.windowed")
            c.inc()
            c.rate(60.0)
            c.window_sum(60.0)
            h = registry.histogram("noop.windowed_lat")
            h.observe(1.0)
            h.window_percentile(0.95, 60.0)
        elapsed = time.perf_counter() - start
        assert elapsed / n < 50e-6, f"{elapsed / n * 1e6:.1f} us per round"
        # Nothing was recorded anywhere.
        assert registry.counter("noop.windowed").rate(60.0) == 0.0
        snap = registry.histogram("noop.windowed_lat").window_snapshot()
        assert snap["count"] == 0.0
        assert not get_registry().enabled


class TestLazyImports:
    def test_pipeline_does_not_import_profiler(self):
        # The profiling hook loads cProfile only on demand; importing
        # (and running) the pipeline must not pull it in.
        code = (
            "import sys\n"
            "import numpy as np\n"
            "from repro.pipeline.contextualize import contextualize\n"
            "import repro.cli\n"
            "assert 'cProfile' not in sys.modules, 'cProfile imported'\n"
            "assert 'pstats' not in sys.modules, 'pstats imported'\n"
            "assert 'repro.obs.profile' not in sys.modules\n"
        )
        subprocess.run(
            [sys.executable, "-c", code], check=True
        )
