"""Data-quality monitors on dirty inputs."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.obs.quality import (
    QualityMonitor,
    QualityReport,
    get_quality,
    use_quality,
)


class TestFieldMonitor:
    def test_counts_nan_negative_zero(self):
        monitor = QualityMonitor()
        field = monitor.field("speed")
        field.observe_array(
            [10.0, float("nan"), -3.0, 0.0, float("nan"), 25.0]
        )
        fq = field.snapshot()
        assert fq.count == 6
        assert fq.n_nan == 2
        assert fq.n_negative == 1
        assert fq.n_zero == 1
        assert fq.nan_rate == pytest.approx(2 / 6)
        assert fq.negative_rate == pytest.approx(1 / 6)

    def test_outliers_above_threshold(self):
        monitor = QualityMonitor()
        field = monitor.field("speed", outlier_above=100.0)
        field.observe_array([50.0, 99.0, 101.0, 5000.0])
        fq = field.snapshot()
        assert fq.n_outlier == 2
        assert fq.outlier_rate == pytest.approx(0.5)

    def test_heavy_tail_statistics(self):
        rng = np.random.default_rng(0)
        values = rng.lognormal(mean=3.0, sigma=1.2, size=20_000)
        monitor = QualityMonitor()
        field = monitor.field("tail")
        field.observe_array(values)
        fq = field.snapshot()
        # Reservoir percentiles land close to the exact ones.
        assert fq.p50 == pytest.approx(np.percentile(values, 50), rel=0.15)
        assert fq.p99 == pytest.approx(np.percentile(values, 99), rel=0.3)
        assert fq.tail_ratio > 2.0  # lognormal: p99 >> p50
        assert fq.mean == pytest.approx(values.mean(), rel=1e-6)
        assert fq.std == pytest.approx(values.std(), rel=1e-3)

    def test_deterministic_across_monitors(self):
        """Same stream, same reservoir (seeded by field name, not hash())."""
        values = np.linspace(0.0, 1.0, 5_000)
        snaps = []
        for _ in range(2):
            monitor = QualityMonitor()
            field = monitor.field("det")
            field.observe_array(values)
            snaps.append(field.snapshot())
        assert snaps[0].p95 == snaps[1].p95

    def test_streaming_matches_single_shot(self):
        values = np.arange(1.0, 1001.0)
        whole = QualityMonitor()
        whole.field("f").observe_array(values)
        chunked = QualityMonitor()
        for chunk in np.array_split(values, 7):
            chunked.field("f").observe_array(chunk)
        a = whole.field("f").snapshot()
        b = chunked.field("f").snapshot()
        assert a.count == b.count == 1000
        assert a.mean == pytest.approx(b.mean)


class TestAssignmentsAndGroups:
    def test_tier_entropy(self):
        monitor = QualityMonitor()
        monitor.observe_assignments(np.array([1, 1, 2, 2]))
        report = monitor.report()
        assert report.n_assignments == 4
        assert report.tier_entropy == pytest.approx(1.0)  # two even tiers
        assert report.tier_entropy_normalized == pytest.approx(1.0)

    def test_degenerate_assignment_entropy_zero(self):
        monitor = QualityMonitor()
        monitor.observe_assignments(np.array([3, 3, 3, 3]))
        report = monitor.report()
        assert report.tier_entropy == 0.0

    def test_unmapped_group_rate(self):
        monitor = QualityMonitor()
        monitor.observe_group_mapping(n_unmapped=2, n_groups=8)
        monitor.observe_group_mapping(n_unmapped=0, n_groups=2)
        report = monitor.report()
        assert report.unmapped_groups == 2
        assert report.total_groups == 10
        assert report.scalars()["quality.unmapped_group_rate"] == (
            pytest.approx(0.2)
        )

    def test_dropped_rows(self):
        monitor = QualityMonitor()
        monitor.observe_dropped_rows(dropped=5, total=100)
        report = monitor.report()
        assert report.dropped_rows == 5
        assert report.total_rows == 100


class TestReport:
    def _dirty_report(self) -> QualityReport:
        monitor = QualityMonitor()
        monitor.field("dl").observe_array(
            [100.0, float("nan"), -1.0, 20_000.0]
        )
        monitor.observe_assignments(np.array([1, 2]))
        return monitor.report()

    def test_round_trip_preserves_nan(self):
        report = self._dirty_report()
        clone = QualityReport.from_dict(
            json.loads(json.dumps(report.to_dict()))
        )
        assert clone.fields[0].n_nan == 1
        assert clone.fields[0].n_negative == 1
        assert clone.scalars() == pytest.approx(report.scalars(), nan_ok=True)

    def test_scalars_are_finite_floats(self):
        for key, value in self._dirty_report().scalars().items():
            assert key.startswith("quality.")
            assert isinstance(value, float)

    def test_render_mentions_fields(self):
        text = self._dirty_report().render()
        assert "dl" in text
        assert "tier entropy" in text

    def test_publish_metrics_sets_gauges(self):
        from repro.obs import MetricsRegistry, use_registry

        report = self._dirty_report()
        with use_registry() as registry:
            report.publish_metrics()
        snap = registry.snapshot()
        gauges = {
            name for name, entry in snap.items()
            if entry.get("type") == "gauge"
        }
        assert any(name.startswith("quality.") for name in gauges)


class TestNullMonitor:
    def test_disabled_by_default(self):
        monitor = get_quality()
        assert not monitor.enabled
        # Every call is a silent no-op.
        monitor.field("x").observe_array([1.0, float("nan")])
        monitor.observe_assignments(np.array([1]))
        monitor.observe_group_mapping(1, 2)
        monitor.observe_dropped_rows(1, 2)

    def test_use_quality_scopes_activation(self):
        assert not get_quality().enabled
        with use_quality() as monitor:
            assert get_quality() is monitor
            assert monitor.enabled
        assert not get_quality().enabled


class TestPipelineIntegration:
    def test_contextualize_observes_dirty_inputs(self, catalog_a, ookla_a):
        from repro.pipeline.contextualize import contextualize

        table = ookla_a.head(800)
        downloads = np.asarray(
            table["download_mbps"], dtype=float
        ).copy()
        downloads[:5] = np.nan
        dirty = table.with_column("download_mbps", downloads)
        with use_quality() as monitor:
            contextualize(dirty, catalog_a)
        report = monitor.report()
        by_name = {fq.name: fq for fq in report.fields}
        fq = by_name["contextualize.download_mbps"]
        assert fq.n_nan == 5
        assert report.dropped_rows == 5
        assert report.n_assignments == 795

    def test_experiment_result_carries_quality(self):
        from repro.experiments import Scale, run_experiment
        from repro.experiments import data as exp_data

        # Memoised datasets would skip the instrumented generation and
        # contextualisation paths, leaving the report empty.
        exp_data.clear_caches()
        with use_quality():
            result = run_experiment("fig1", scale=Scale.SMALL, seed=0)
        assert result.quality is not None
        assert result.quality.n_assignments > 0
        assert "-- data quality --" in result.render()
