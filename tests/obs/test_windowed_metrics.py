"""Windowed counters and histograms: correctness, expiry, concurrency.

The ring buckets are driven with an injected fake clock so window
expiry is deterministic; a separate stress test hammers one windowed
counter and histogram from eight threads (in the style of
``tests/serve/test_stress.py``) and checks integrity against the
cumulative values.  The Prometheus exposition round-trips through the
strict parser.
"""

from __future__ import annotations

import math
from concurrent.futures import ThreadPoolExecutor, as_completed

import pytest

from repro.obs.metrics import (
    DEFAULT_WINDOW_S,
    WINDOW_BUCKET_SAMPLES,
    WINDOW_HORIZON_S,
    Counter,
    Histogram,
    MetricsRegistry,
    parse_prometheus_text,
    render_prometheus,
)

N_THREADS = 8
JOIN_TIMEOUT_S = 60.0


class FakeClock:
    """A monotonic clock the test advances by hand."""

    def __init__(self, t: float = 1_000.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class TestWindowedCounter:
    def test_window_sum_and_rate(self):
        clock = FakeClock()
        c = Counter("w.count", clock=clock)
        c.inc(3)
        clock.advance(10)
        c.inc(7)
        assert c.value == 10.0
        assert c.window_sum(60.0) == 10.0
        # Only the second burst is inside a 5 s window.
        assert c.window_sum(5.0) == 7.0
        assert c.rate(10.0) == pytest.approx(0.7)

    def test_window_expires(self):
        clock = FakeClock()
        c = Counter("w.expire", clock=clock)
        c.inc(5)
        clock.advance(61)
        assert c.window_sum(60.0) == 0.0
        assert c.value == 5.0  # cumulative value never expires

    def test_horizon_wraparound_resets_stale_slots(self):
        clock = FakeClock()
        c = Counter("w.wrap", clock=clock)
        c.inc(100)
        # A full horizon later the old bucket's slot is reused; the
        # stale sum must not leak into the new window.
        clock.advance(WINDOW_HORIZON_S)
        c.inc(1)
        assert c.window_sum(60.0) == 1.0
        assert c.value == 101.0

    def test_rate_rejects_nonpositive_window(self):
        c = Counter("w.bad")
        with pytest.raises(ValueError):
            c.rate(0.0)
        with pytest.raises(ValueError):
            c.rate(-5.0)

    def test_unwindowed_counter_reads_zero(self):
        c = Counter("w.off", windowed=False)
        c.inc(9)
        assert c.value == 9.0
        assert c.window_sum() == 0.0
        assert c.rate() == 0.0


class TestWindowedHistogram:
    def test_snapshot_exact_count_total_mean(self):
        clock = FakeClock()
        h = Histogram("w.hist", clock=clock)
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        snap = h.window_snapshot(60.0)
        assert snap["count"] == 4.0
        assert snap["total"] == 10.0
        assert snap["mean"] == pytest.approx(2.5)
        assert snap["min"] == 1.0
        assert snap["max"] == 4.0
        assert snap["p50"] in (2.0, 3.0)

    def test_window_excludes_old_observations(self):
        clock = FakeClock()
        h = Histogram("w.hist2", clock=clock)
        h.observe(100.0)
        clock.advance(30)
        h.observe(1.0)
        h.observe(2.0)
        snap = h.window_snapshot(10.0)
        assert snap["count"] == 2.0
        assert snap["max"] == 2.0
        # The cumulative view still remembers everything.
        assert h.count == 3
        assert h.max == 100.0
        clock.advance(61)
        empty = h.window_snapshot(60.0)
        assert empty["count"] == 0.0
        assert math.isnan(empty["mean"])
        assert math.isnan(empty["p95"])

    def test_window_percentile_matches_snapshot(self):
        clock = FakeClock()
        h = Histogram("w.hist3", clock=clock)
        for v in range(1, 21):
            h.observe(float(v))
        snap = h.window_snapshot(60.0)
        assert h.window_percentile(0.5, 60.0) == snap["p50"]
        assert h.window_percentile(0.95, 60.0) == snap["p95"]

    def test_bucket_sample_cap_keeps_summary_exact(self):
        clock = FakeClock()
        h = Histogram("w.capped", clock=clock)
        n = WINDOW_BUCKET_SAMPLES * 4  # overflow one bucket's reservoir
        for v in range(n):
            h.observe(float(v))
        snap = h.window_snapshot(60.0)
        assert snap["count"] == float(n)  # count/total stay exact
        assert snap["total"] == float(sum(range(n)))
        assert 0.0 <= snap["p50"] <= float(n - 1)

    def test_unwindowed_histogram_reads_empty(self):
        h = Histogram("w.off", windowed=False)
        h.observe(1.0)
        assert h.count == 1
        assert h.window_snapshot()["count"] == 0.0
        assert math.isnan(h.window_percentile(0.5))


class TestRegistryClockInjection:
    def test_registry_hands_clock_to_instruments(self):
        clock = FakeClock()
        registry = MetricsRegistry(clock=clock)
        registry.counter("reg.count").inc(4)
        clock.advance(120)
        assert registry.counter("reg.count").window_sum(60.0) == 0.0
        assert registry.counter("reg.count").value == 4.0


class TestWindowedConcurrency:
    """Eight threads write one counter + histogram while a reader polls."""

    def _run_threads(self, worker, n_threads=N_THREADS):
        with ThreadPoolExecutor(max_workers=n_threads) as pool:
            futures = [pool.submit(worker, i) for i in range(n_threads)]
            done = []
            for fut in as_completed(futures, timeout=JOIN_TIMEOUT_S):
                done.append(fut.result())  # re-raises worker exceptions
        assert len(done) == n_threads
        return done

    def test_no_lost_updates_under_contention(self):
        registry = MetricsRegistry()
        n_each = 2_000

        def worker(tid: int):
            counter = registry.counter("stress.count")
            hist = registry.histogram("stress.lat")
            reads = 0
            for i in range(n_each):
                counter.inc()
                hist.observe(float(tid * n_each + i))
                if i % 100 == 0:
                    # Interleave window reads with the writes; values
                    # must be internally consistent, never negative.
                    assert counter.window_sum(60.0) >= 0.0
                    snap = hist.window_snapshot(60.0)
                    assert snap["count"] >= 0.0
                    reads += 1
            return reads

        self._run_threads(worker)
        counter = registry.counter("stress.count")
        hist = registry.histogram("stress.lat")
        total = N_THREADS * n_each
        # Integrity: no increment or observation lost.
        assert counter.value == float(total)
        assert hist.count == total
        # The whole test ran well inside the default window, so the
        # windowed views must agree with the cumulative ones.
        assert counter.window_sum(DEFAULT_WINDOW_S) == float(total)
        snap = hist.window_snapshot(DEFAULT_WINDOW_S)
        assert snap["count"] == float(total)
        assert snap["total"] == hist.total


class TestPrometheusExposition:
    def test_round_trip_through_parser(self):
        clock = FakeClock()
        registry = MetricsRegistry(clock=clock)
        registry.counter("serve.requests").inc(120)
        registry.gauge("serve.models_loaded").set(2)
        for v in range(100):
            registry.histogram("serve.request_latency_s").observe(
                v / 1000.0
            )
        text = render_prometheus(registry, window_s=60.0)
        series = parse_prometheus_text(text)
        assert series["serve_requests_total"][0][1] == 120.0
        labels, rate = series["serve_requests_rate"][0]
        assert labels == {"window": "60s"}
        assert rate == pytest.approx(2.0)
        assert series["serve_models_loaded"][0][1] == 2.0
        quantiles = {
            labels["quantile"]: value
            for labels, value in series["serve_request_latency_s_window"]
        }
        assert set(quantiles) == {"0.5", "0.95", "0.99"}
        assert quantiles["0.5"] <= quantiles["0.99"]
        assert (
            series["serve_request_latency_s_window_count"][0][1] == 100.0
        )

    def test_nan_gauge_renders_and_parses(self):
        registry = MetricsRegistry()
        registry.gauge("serve.empty")  # created, never set -> NaN
        text = render_prometheus(registry)
        series = parse_prometheus_text(text)
        assert math.isnan(series["serve_empty"][0][1])

    def test_unwindowed_instruments_skip_window_families(self):
        registry = MetricsRegistry()
        registry._counters["raw.count"] = Counter(
            "raw.count", windowed=False
        )
        registry.counter("raw.count").inc()
        text = render_prometheus(registry)
        assert "raw_count_total" in text
        assert "raw_count_rate" not in text

    def test_parser_rejects_malformed_lines(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("this is { not exposition\n")
        with pytest.raises(ValueError):
            parse_prometheus_text("metric_name not_a_number\n")
