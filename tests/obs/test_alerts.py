"""Alert rules and engine: validation, lifecycle, log, rule loading.

Everything runs on injected fake clocks — the registry's window rings
and the engine's hold timers share one clock, so firing and resolution
are driven by explicit ``evaluate(...)`` calls, never by sleeps.
"""

from __future__ import annotations

import json
import math
import time

import pytest

from repro.obs.alerts import (
    AlertEngine,
    AlertEvaluator,
    AlertRule,
    default_serve_rules,
    load_rules,
)
from repro.obs.metrics import MetricsRegistry


class FakeClock:
    def __init__(self, t: float = 1_000.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def _engine(rules, clock, **kwargs):
    registry = MetricsRegistry(clock=clock)
    return registry, AlertEngine(
        rules, registry=registry, clock=clock, **kwargs
    )


class TestRuleValidation:
    def test_rejects_bad_fields(self):
        with pytest.raises(ValueError):
            AlertRule(name="", metric="m")
        with pytest.raises(ValueError):
            AlertRule(name="r", kind="sorcery", metric="m")
        with pytest.raises(ValueError):
            AlertRule(name="r", metric="")  # threshold kinds need one
        with pytest.raises(ValueError):
            AlertRule(name="r", metric="m", stat="p42")
        with pytest.raises(ValueError):
            AlertRule(name="r", metric="m", op="~")
        with pytest.raises(ValueError):
            AlertRule(name="r", metric="m", severity="mild")
        with pytest.raises(ValueError):
            AlertRule(name="r", metric="m", window_s=0.0)

    def test_drift_rules_need_no_metric(self):
        rule = AlertRule(name="d", kind="drift", threshold=0.0)
        assert "drifted models" in rule.describe()

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown rule field"):
            AlertRule.from_dict(
                {"name": "r", "metric": "m", "treshold": 1.0}
            )

    def test_round_trips_through_dict(self):
        rule = AlertRule(
            name="r", metric="m", stat="p95", threshold=0.25
        )
        assert AlertRule.from_dict(rule.to_dict()) == rule

    def test_engine_rejects_duplicate_names(self):
        clock = FakeClock()
        rule = AlertRule(name="dup", metric="m")
        with pytest.raises(ValueError, match="duplicate"):
            _engine([rule, rule], clock)


class TestThresholdLifecycle:
    def test_fire_dedup_and_resolve_with_hold(self):
        clock = FakeClock()
        rule = AlertRule(
            name="err_rate",
            metric="serve.errors_5xx",
            stat="rate",
            window_s=10.0,
            op=">",
            threshold=0.5,
            resolve_hold_s=3.0,
            severity="critical",
        )
        registry, engine = _engine([rule], clock)
        # No data yet: the value is NaN and the rule stays quiet.
        assert engine.evaluate() == []
        registry.counter("serve.errors_5xx").inc(10)  # 1.0/s over 10 s
        events = engine.evaluate()
        assert [e["event"] for e in events] == ["fired"]
        assert events[0]["rule"] == "err_rate"
        assert events[0]["value"] == pytest.approx(1.0)
        # Still breached: no duplicate fired events.
        assert engine.evaluate() == []
        assert engine.counts()["active"] == 1
        # Window empties -> predicate clears, but the resolve hold
        # keeps the alert active until it stays clear for 3 s.
        clock.advance(20)
        assert engine.evaluate() == []
        assert engine.counts()["active"] == 1
        clock.advance(3)
        events = engine.evaluate()
        assert [e["event"] for e in events] == ["resolved"]
        assert engine.counts() == {
            "fired": 1,
            "active": 0,
            "resolved": 1,
            "evaluations": 5,
        }

    def test_min_hold_delays_firing(self):
        clock = FakeClock()
        rule = AlertRule(
            name="slow_burn",
            metric="c",
            stat="rate",
            window_s=30.0,
            op=">",
            threshold=0.1,
            min_hold_s=5.0,
        )
        registry, engine = _engine([rule], clock)
        registry.counter("c").inc(30)
        assert engine.evaluate() == []  # breached, but not for 5 s yet
        clock.advance(2)
        assert engine.evaluate() == []
        clock.advance(3)
        events = engine.evaluate()
        assert [e["event"] for e in events] == ["fired"]

    def test_blip_shorter_than_min_hold_never_fires(self):
        clock = FakeClock()
        rule = AlertRule(
            name="blip",
            metric="c",
            stat="rate",
            window_s=5.0,
            op=">",
            threshold=0.5,
            min_hold_s=10.0,
        )
        registry, engine = _engine([rule], clock)
        registry.counter("c").inc(100)
        assert engine.evaluate() == []
        clock.advance(6)  # burst leaves the window before the hold ends
        assert engine.evaluate() == []
        clock.advance(10)
        assert engine.evaluate() == []
        assert engine.counts()["fired"] == 0

    def test_histogram_percentile_rule(self):
        clock = FakeClock()
        rule = AlertRule(
            name="p95_high",
            metric="lat",
            stat="p95",
            window_s=60.0,
            op=">",
            threshold=0.5,
        )
        registry, engine = _engine([rule], clock)
        for _ in range(20):
            registry.histogram("lat").observe(0.9)
        events = engine.evaluate()
        assert [e["event"] for e in events] == ["fired"]

    def test_missing_metric_stays_quiet(self):
        clock = FakeClock()
        rule = AlertRule(name="ghost", metric="never.reported")
        _, engine = _engine([rule], clock)
        for _ in range(3):
            assert engine.evaluate() == []
        assert engine.active() == []


class TestRateOfChange:
    def test_detects_throughput_collapse(self):
        clock = FakeClock()
        rule = AlertRule(
            name="collapse",
            kind="rate_of_change",
            metric="serve.requests",
            window_s=10.0,
            op="<",
            threshold=-5.0,
        )
        registry, engine = _engine([rule], clock)
        registry.counter("serve.requests").inc(100)
        # Burst is in the current window: the change is positive.
        assert engine.evaluate() == []
        # 15 s later the burst sits in the *previous* window and the
        # current one is empty: -10/s crosses the -5/s threshold.
        clock.advance(15)
        events = engine.evaluate()
        assert [e["event"] for e in events] == ["fired"]
        assert events[0]["value"] == pytest.approx(-10.0)


class TestDriftRule:
    def test_fires_and_resolves_with_provider(self):
        clock = FakeClock()
        verdicts: list[dict] = [{"model": "a", "drifted": False}]
        rule = AlertRule(
            name="model_drift",
            kind="drift",
            op=">",
            threshold=0.0,
            severity="critical",
        )
        registry = MetricsRegistry(clock=clock)
        engine = AlertEngine(
            [rule],
            registry=registry,
            drift_provider=lambda: verdicts,
            clock=clock,
        )
        assert engine.evaluate() == []
        verdicts[0]["drifted"] = True
        events = engine.evaluate()
        assert [e["event"] for e in events] == ["fired"]
        assert events[0]["value"] == 1.0
        active = engine.active()
        assert active[0]["rule"] == "model_drift"
        assert active[0]["severity"] == "critical"
        verdicts[0]["drifted"] = False
        events = engine.evaluate()
        assert [e["event"] for e in events] == ["resolved"]
        assert engine.active() == []


class TestEngineSideEffects:
    def test_transitions_append_jsonl_and_bump_counters(self, tmp_path):
        clock = FakeClock()
        log_path = tmp_path / "alerts.jsonl"
        rule = AlertRule(
            name="r",
            metric="c",
            stat="rate",
            window_s=10.0,
            op=">",
            threshold=0.5,
        )
        registry = MetricsRegistry(clock=clock)
        engine = AlertEngine(
            [rule], registry=registry, log_path=log_path, clock=clock
        )
        registry.counter("c").inc(100)
        engine.evaluate()
        clock.advance(20)
        engine.evaluate()
        rows = [
            json.loads(line)
            for line in log_path.read_text().splitlines()
        ]
        assert [row["event"] for row in rows] == [
            "start",
            "fired",
            "resolved",
        ]
        assert rows[0]["rules"] == ["r"]
        assert rows[1]["rule"] == "r"
        assert rows[1]["severity"] == "warning"
        assert "ts_utc" in rows[1]
        assert registry.counter("serve.alerts_fired").value == 1.0
        assert registry.counter("serve.alerts_resolved").value == 1.0
        assert registry.gauge("serve.alerts_active").value == 0.0

    def test_active_sorts_most_severe_first(self):
        clock = FakeClock()
        rules = [
            AlertRule(
                name="warn", metric="c", stat="rate",
                window_s=10.0, threshold=0.0, severity="warning",
            ),
            AlertRule(
                name="crit", metric="c", stat="rate",
                window_s=10.0, threshold=0.0, severity="critical",
            ),
        ]
        registry, engine = _engine(rules, clock)
        registry.counter("c").inc(5)
        engine.evaluate()
        severities = [row["severity"] for row in engine.active()]
        assert severities == ["critical", "warning"]

    def test_evaluator_thread_runs_and_stops(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        rule = AlertRule(
            name="always", metric="c", stat="value",
            op=">=", threshold=0.0,
        )
        engine = AlertEngine([rule], registry=registry)
        evaluator = AlertEvaluator(engine, interval_s=0.01).start()
        try:
            deadline = 200
            while engine.counts()["evaluations"] == 0 and deadline:
                deadline -= 1
                time.sleep(0.01)
            assert engine.counts()["evaluations"] > 0
        finally:
            evaluator.stop()
        assert not evaluator._thread.is_alive()

    def test_evaluator_rejects_nonpositive_interval(self):
        registry = MetricsRegistry()
        engine = AlertEngine([], registry=registry)
        with pytest.raises(ValueError):
            AlertEvaluator(engine, interval_s=0.0)


class TestRuleLoading:
    def test_load_rules_list_and_wrapper_forms(self, tmp_path):
        rules = [
            {"name": "a", "metric": "m", "threshold": 1.0},
            {"name": "b", "kind": "drift", "threshold": 0.0},
        ]
        plain = tmp_path / "plain.json"
        plain.write_text(json.dumps(rules))
        wrapped = tmp_path / "wrapped.json"
        wrapped.write_text(json.dumps({"rules": rules}))
        for path in (plain, wrapped):
            loaded = load_rules(path)
            assert [rule.name for rule in loaded] == ["a", "b"]
            assert loaded[1].kind == "drift"

    def test_load_rules_rejects_non_list(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps("just a string"))
        with pytest.raises(ValueError, match="expected a list"):
            load_rules(path)
        empty = tmp_path / "empty.json"
        empty.write_text(json.dumps({"rules": []}))
        assert load_rules(empty) == []

    def test_default_serve_rules_are_valid_and_unique(self):
        rules = default_serve_rules()
        names = [rule.name for rule in rules]
        assert len(set(names)) == len(rules)
        assert "model_drift" in names
        assert "high_5xx_rate" in names
        # Every default rule survives a dict round-trip (the JSON the
        # docs show can express the stock rule set).
        for rule in rules:
            assert AlertRule.from_dict(rule.to_dict()) == rule

    def test_nan_never_breaches(self):
        rule = AlertRule(name="r", metric="m", op="<", threshold=1e9)
        assert not rule.breached(float("nan"))
        assert rule.breached(0.0)
        assert math.isnan(
            rule.value_from(MetricsRegistry(), ())
        )
