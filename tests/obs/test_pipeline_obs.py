"""Integration: the instrumented pipeline emits the expected telemetry.

Also guards the other direction: observability must not change results
-- a contextualize run under full collection is identical to one with
the default no-op sinks.
"""

import numpy as np

from repro.obs import use_collector, use_registry
from repro.pipeline.contextualize import contextualize
from repro.pipeline.ndt_join import join_ndt_tests


class TestPipelineSpans:
    def test_contextualize_span_tree(self, ookla_a, catalog_a):
        with use_collector() as collector:
            contextualize(ookla_a.head(1500), catalog_a)
        names = {sp.name for sp in collector.spans()}
        # The acceptance bar: nested spans for the KDE, GMM-EM, and
        # assignment stages under the per-stage fits.
        assert {
            "contextualize",
            "bst.fit",
            "bst.fit_upload",
            "bst.fit_download",
            "kde.count_peaks",
            "gmm.fit",
            "bst.assign",
        } <= names
        roots = [sp for sp in collector.spans() if sp.parent_id is None]
        assert [sp.name for sp in roots] == ["contextualize"]
        (upload,) = collector.find("bst.fit_upload")
        assert upload.attributes["converged"] in (True, False)
        assert upload.attributes["n_iter"] >= 1

    def test_contextualize_metrics(self, ookla_a, catalog_a):
        with use_registry() as registry:
            ctx = contextualize(ookla_a.head(1500), catalog_a)
        snap = registry.snapshot()
        assert snap["contextualize.rows"]["value"] == len(ctx)
        assert snap["em.iterations"]["count"] >= 2  # upload + downloads
        assert snap["em.iterations"]["min"] >= 1
        assert snap["kde.peaks_found"]["min"] >= 1
        assert snap["bst.upload_fits"]["value"] == 1

    def test_ndt_join_span_and_metrics(self, mlab_raw_a):
        with use_collector() as collector, use_registry() as registry:
            joined = join_ndt_tests(mlab_raw_a)
        (sp,) = collector.find("ndt_join.join")
        assert sp.attributes["matched"] == len(joined)
        assert sp.attributes["unmatched"] >= 0
        snap = registry.snapshot()
        assert snap["ndt_join.matched"]["value"] == len(joined)
        assert (
            snap["ndt_join.matched"]["value"]
            + snap["ndt_join.unmatched"]["value"]
            > 0
        )

    def test_vendor_generation_metrics(self):
        from repro.vendors.ookla import OoklaSimulator

        with use_collector() as collector, use_registry() as registry:
            table = OoklaSimulator("A", seed=7).generate(300)
        (sp,) = collector.find("vendor.ookla.generate")
        assert sp.attributes["rows"] == len(table)
        assert (
            registry.snapshot()["tests.generated"]["value"] == len(table)
        )


class TestObservabilityIsInert:
    def test_results_identical_with_and_without_obs(
        self, ookla_a, catalog_a
    ):
        sample = ookla_a.head(1500)
        plain = contextualize(sample, catalog_a)
        with use_collector(), use_registry():
            observed = contextualize(sample, catalog_a)
        np.testing.assert_array_equal(
            np.asarray(plain.table["bst_tier"]),
            np.asarray(observed.table["bst_tier"]),
        )
        np.testing.assert_allclose(
            np.asarray(plain.table["normalized_download"], dtype=float),
            np.asarray(observed.table["normalized_download"], dtype=float),
        )


class TestExperimentTimings:
    def test_run_experiment_records_timings(self):
        from repro.experiments import Scale, run_experiment
        from repro.obs import use_collector

        # A seed no other test uses: dataset memoisation would otherwise
        # satisfy the run from cache and emit no stage spans.
        with use_collector():
            result = run_experiment("fig10", scale=Scale.SMALL, seed=202)
        assert result.timings["total_s"] > 0
        stage_names = set(result.timings) - {"total_s"}
        assert stage_names, "per-stage span totals missing"
        assert "-- timings --" in result.render()

    def test_total_recorded_without_collector(self):
        from repro.experiments import Scale, run_experiment

        result = run_experiment("fig10", scale=Scale.SMALL, seed=0)
        assert set(result.timings) == {"total_s"}
