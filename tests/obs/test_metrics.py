"""Tests for counter/gauge/histogram aggregation and the summary."""

import math
import threading

import pytest

from repro.obs.metrics import (
    MetricsRegistry,
    counter,
    gauge,
    get_registry,
    histogram,
    set_registry,
    use_registry,
)


class TestNullDefault:
    def test_default_registry_is_disabled(self):
        assert not get_registry().enabled

    def test_null_instruments_are_inert(self):
        counter("noop.count").inc(5)
        gauge("noop.gauge").set(1.0)
        histogram("noop.hist").observe(2.0)
        with use_registry() as reg:
            pass
        assert len(reg) == 0


class TestCounter:
    def test_accumulates(self):
        with use_registry() as reg:
            counter("c").inc()
            counter("c").inc(4)
        assert reg.counter("c").value == 5.0

    def test_rejects_negative(self):
        with use_registry():
            with pytest.raises(ValueError, match="counters only go up"):
                counter("c").inc(-1)

    def test_same_name_same_instrument(self):
        with use_registry():
            assert counter("x") is counter("x")


class TestGauge:
    def test_last_write_wins(self):
        with use_registry() as reg:
            gauge("g").set(3)
            gauge("g").set(7)
        assert reg.gauge("g").value == 7.0

    def test_unset_gauge_is_nan(self):
        with use_registry() as reg:
            pass
        assert math.isnan(reg.gauge("fresh").value)


class TestHistogram:
    def test_summary_stats(self):
        with use_registry() as reg:
            for v in (1.0, 2.0, 3.0, 10.0):
                histogram("h").observe(v)
        h = reg.histogram("h")
        assert h.count == 4
        assert h.min == 1.0
        assert h.max == 10.0
        assert h.mean == 4.0

    def test_empty_mean_is_nan(self):
        with use_registry() as reg:
            pass
        assert math.isnan(reg.histogram("empty").mean)

    def test_percentiles_exact_when_under_capacity(self):
        with use_registry() as reg:
            for v in range(101):  # 0..100, below reservoir capacity
                histogram("p").observe(float(v))
        h = reg.histogram("p")
        assert h.p50 == 50.0
        assert h.p95 == 95.0
        assert h.p99 == 99.0
        assert h.percentile(0.0) == 0.0
        assert h.percentile(1.0) == 100.0

    def test_percentiles_approximate_when_sampled(self):
        with use_registry() as reg:
            for v in range(10_000):  # overflows the reservoir
                histogram("big").observe(float(v))
        h = reg.histogram("big")
        assert h.count == 10_000
        assert h.p50 == pytest.approx(5_000, rel=0.15)
        assert h.p95 == pytest.approx(9_500, rel=0.1)

    def test_empty_percentiles_are_nan(self):
        with use_registry() as reg:
            pass
        assert math.isnan(reg.histogram("none").p50)
        assert math.isnan(reg.histogram("none").p99)

    def test_dump_merge_combines_registries(self):
        with use_registry() as a:
            counter("m.count").inc(2)
            gauge("m.gauge").set(1.0)
            for v in (1.0, 2.0):
                histogram("m.hist").observe(v)
        with use_registry() as b:
            counter("m.count").inc(3)
            gauge("m.gauge").set(4.0)
            for v in (3.0, 4.0):
                histogram("m.hist").observe(v)
        a.merge_dump(b.dump())
        assert a.counter("m.count").value == 5.0
        assert a.gauge("m.gauge").value == 4.0  # last write wins
        h = a.histogram("m.hist")
        assert h.count == 4
        assert h.min == 1.0
        assert h.max == 4.0
        assert h.mean == 2.5


class TestRegistry:
    def test_snapshot_types(self):
        with use_registry() as reg:
            counter("a.count").inc(2)
            gauge("a.gauge").set(0.5)
            histogram("a.hist").observe(9)
        snap = reg.snapshot()
        assert snap["a.count"] == {"type": "counter", "value": 2.0}
        assert snap["a.gauge"] == {"type": "gauge", "value": 0.5}
        assert snap["a.hist"]["type"] == "histogram"
        assert snap["a.hist"]["count"] == 1

    def test_render_sorted_and_labelled(self):
        with use_registry() as reg:
            counter("z.last").inc()
            histogram("a.first").observe(3)
        text = reg.render()
        assert text.startswith("-- metrics summary --")
        assert text.index("a.first") < text.index("z.last")
        assert "counter" in text and "histogram" in text
        assert "n=1" in text
        assert "p95=" in text

    def test_render_empty(self):
        assert "(no metrics recorded)" in MetricsRegistry().render()

    def test_use_registry_restores_previous(self):
        before = get_registry()
        with use_registry():
            assert get_registry() is not before
        assert get_registry() is before

    def test_set_registry_none_restores_null(self):
        previous = set_registry(MetricsRegistry())
        try:
            assert get_registry().enabled
        finally:
            set_registry(None)
            assert not get_registry().enabled
            set_registry(previous)

    def test_thread_safety(self):
        def worker():
            for _ in range(500):
                counter("t.count").inc()

        with use_registry() as reg:
            threads = [
                threading.Thread(target=worker) for _ in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert reg.counter("t.count").value == 2000.0
