"""Tests for the structured logger and its two formats."""

import io
import json
import logging

import pytest

from repro.obs.logging import (
    JsonFormatter,
    configure_logging,
    get_logger,
    kv,
    reset_logging,
)


@pytest.fixture(autouse=True)
def _clean_handlers():
    yield
    reset_logging()


class TestGetLogger:
    def test_namespaced_under_repro(self):
        assert get_logger("stats.gmm").name == "repro.stats.gmm"

    def test_root(self):
        assert get_logger().name == "repro"

    def test_already_namespaced_untouched(self):
        assert get_logger("repro.core.bst").name == "repro.core.bst"

    def test_quiet_by_default(self):
        # The package root has a NullHandler, so un-configured warnings
        # never reach the stdlib last-resort stderr handler.
        handlers = logging.getLogger("repro").handlers
        assert any(
            isinstance(h, logging.NullHandler) for h in handlers
        )


class TestJsonFormat:
    def test_lines_parse_and_carry_kv(self):
        stream = io.StringIO()
        configure_logging(level="info", fmt="json", stream=stream)
        get_logger("stats.gmm").warning(
            "EM hit the iteration cap", extra=kv(k=4, n_iter=200)
        )
        row = json.loads(stream.getvalue())
        assert row["level"] == "warning"
        assert row["logger"] == "repro.stats.gmm"
        assert row["message"] == "EM hit the iteration cap"
        assert row["k"] == 4
        assert row["n_iter"] == 200
        assert isinstance(row["ts"], float)

    def test_level_threshold(self):
        stream = io.StringIO()
        configure_logging(level="error", fmt="json", stream=stream)
        get_logger("x").warning("dropped")
        get_logger("x").error("kept")
        lines = stream.getvalue().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["message"] == "kept"


class TestHumanFormat:
    def test_single_line_with_kv(self):
        stream = io.StringIO()
        configure_logging(level="debug", fmt="human", stream=stream)
        get_logger("core.bst").debug(
            "upload stage fitted", extra=kv(n=100, converged=True)
        )
        line = stream.getvalue().strip()
        assert line.startswith("DEBUG")
        assert "repro.core.bst" in line
        assert "n=100" in line
        assert "converged=True" in line


class TestConfigure:
    def test_reconfigure_does_not_stack_handlers(self):
        stream = io.StringIO()
        configure_logging(level="info", fmt="human", stream=stream)
        configure_logging(level="info", fmt="human", stream=stream)
        get_logger("x").info("once")
        assert stream.getvalue().count("once") == 1

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            configure_logging(level="loud")

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="unknown log format"):
            configure_logging(fmt="xml")

    def test_exception_info_rendered(self):
        stream = io.StringIO()
        configure_logging(level="error", fmt="json", stream=stream)
        try:
            raise ValueError("inner")
        except ValueError:
            get_logger("x").exception("failed")
        row = json.loads(stream.getvalue())
        assert "inner" in row["exc_info"]

    def test_json_formatter_standalone(self):
        record = logging.LogRecord(
            "repro.t", logging.INFO, __file__, 1, "hello", (), None
        )
        row = json.loads(JsonFormatter().format(record))
        assert row["message"] == "hello"
