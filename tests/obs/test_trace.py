"""Tests for span nesting, timing, attributes, and JSONL export."""

import json
import threading
import time

from repro.obs.trace import (
    SpanCollector,
    current_span,
    get_collector,
    set_collector,
    span,
    use_collector,
)


class TestNoopDefault:
    def test_default_collector_is_disabled(self):
        assert not get_collector().enabled

    def test_span_records_nothing_by_default(self):
        with span("default.noop", n=1) as sp:
            sp.set(extra=2)
        assert not get_collector().enabled

    def test_current_span_is_inert_by_default(self):
        sp = current_span()
        assert sp.set(foo=1) is sp


class TestNestingAndTiming:
    def test_parent_child_links(self):
        with use_collector() as collector:
            with span("outer") as outer:
                with span("inner") as inner:
                    pass
        spans = {sp.name: sp for sp in collector.spans()}
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["outer"].parent_id is None
        assert spans["inner"].depth == 1
        assert spans["outer"].depth == 0
        assert outer.span_id != inner.span_id

    def test_children_complete_before_parents(self):
        with use_collector() as collector:
            with span("a"):
                with span("b"):
                    pass
        assert [sp.name for sp in collector.spans()] == ["b", "a"]

    def test_duration_measured(self):
        with use_collector() as collector:
            with span("sleepy"):
                time.sleep(0.01)
        (sp,) = collector.spans()
        assert sp.duration_s >= 0.009
        assert sp.end_s >= sp.start_s

    def test_sibling_spans_share_parent(self):
        with use_collector() as collector:
            with span("root"):
                with span("one"):
                    pass
                with span("two"):
                    pass
        spans = {sp.name: sp for sp in collector.spans()}
        assert spans["one"].parent_id == spans["root"].span_id
        assert spans["two"].parent_id == spans["root"].span_id

    def test_span_recorded_on_exception(self):
        with use_collector() as collector:
            try:
                with span("failing"):
                    raise RuntimeError("boom")
            except RuntimeError:
                pass
        assert [sp.name for sp in collector.spans()] == ["failing"]

    def test_current_span_tracks_innermost(self):
        with use_collector():
            with span("outer"):
                with span("inner"):
                    assert current_span().name == "inner"
                assert current_span().name == "outer"


class TestAttributes:
    def test_kwargs_and_set(self):
        with use_collector() as collector:
            with span("attrs", city="A") as sp:
                sp.set(n_iter=12, converged=True)
        (sp,) = collector.spans()
        assert sp.attributes == {
            "city": "A", "n_iter": 12, "converged": True,
        }

    def test_set_chains(self):
        with use_collector() as collector:
            with span("chain") as sp:
                assert sp.set(a=1) is sp
        assert collector.spans()[0].attributes["a"] == 1


class TestCollector:
    def test_use_collector_restores_previous(self):
        before = get_collector()
        with use_collector():
            assert get_collector() is not before
        assert get_collector() is before

    def test_set_collector_none_restores_noop(self):
        previous = set_collector(SpanCollector())
        try:
            assert get_collector().enabled
        finally:
            set_collector(None)
            assert not get_collector().enabled
            set_collector(previous)

    def test_find_and_aggregate(self):
        with use_collector() as collector:
            for _ in range(3):
                with span("repeated"):
                    pass
            with span("single"):
                pass
        assert len(collector.find("repeated")) == 3
        totals = collector.aggregate()
        assert totals["repeated"][0] == 3
        assert totals["single"][0] == 1
        assert totals["repeated"][1] >= 0.0

    def test_clear(self):
        with use_collector() as collector:
            with span("x"):
                pass
            assert len(collector) == 1
            collector.clear()
            assert len(collector) == 0

    def test_thread_safety(self):
        def worker():
            for _ in range(50):
                with span("threaded"):
                    pass

        with use_collector() as collector:
            threads = [
                threading.Thread(target=worker) for _ in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert len(collector.find("threaded")) == 200


class TestJsonlExport:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with use_collector() as collector:
            with span("outer", city="A"):
                with span("inner", k=3):
                    pass
        n = collector.export_jsonl(path)
        assert n == 2
        rows = [
            json.loads(line)
            for line in path.read_text().splitlines()
        ]
        assert len(rows) == 2
        by_name = {row["name"]: row for row in rows}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["outer"]["attributes"] == {"city": "A"}
        assert by_name["inner"]["attributes"] == {"k": 3}
        for row in rows:
            assert row["duration_s"] >= 0.0
            assert row["start_s"] >= 0.0

    def test_numpy_attributes_serialise(self, tmp_path):
        import numpy as np

        path = tmp_path / "trace.jsonl"
        with use_collector() as collector:
            with span("np", count=np.int64(7), ratio=np.float64(0.5)):
                pass
        collector.export_jsonl(path)
        row = json.loads(path.read_text())
        assert row["attributes"] == {"count": 7, "ratio": 0.5}

    def test_render_tree(self):
        with use_collector() as collector:
            with span("root"):
                with span("leaf", n=1):
                    pass
        tree = collector.render_tree()
        lines = tree.splitlines()
        assert lines[0].startswith("root")
        assert lines[1].startswith("  leaf")
        assert "n=1" in lines[1]
