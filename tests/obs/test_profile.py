"""Tests for the cProfile wrapper."""

import pytest

from repro.obs.profile import profile_block


def _busy() -> float:
    return sum(i * 0.5 for i in range(10_000))


class TestProfileBlock:
    def test_captures_function_stats(self):
        with profile_block() as report:
            _busy()
        text = report.render()
        assert "_busy" in text
        assert "cumulative" in text or "cumtime" in text

    def test_placeholder_while_running(self):
        with profile_block() as report:
            assert report.render() == "(profile still running)"
        assert report.render() != "(profile still running)"

    def test_populated_on_exception(self):
        with pytest.raises(RuntimeError):
            with profile_block() as report:
                _busy()
                raise RuntimeError("boom")
        assert "_busy" in report.render()

    def test_stats_object(self):
        with profile_block() as report:
            _busy()
        assert report.stats().total_calls > 0

    def test_stats_before_finish_raises(self):
        with profile_block() as report:
            with pytest.raises(RuntimeError, match="still running"):
                report.stats()

    def test_render_limit(self):
        with profile_block() as report:
            _busy()
        short = report.render(limit=1)
        long = report.render(limit=25)
        assert len(short) <= len(long)
