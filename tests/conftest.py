"""Shared fixtures: small, session-scoped simulated datasets.

Generating and contextualising data dominates test runtime, so every
dataset used by more than one test module is built once per session.
"""

from __future__ import annotations

import pytest

from repro.market.isps import city_catalog, state_catalog


@pytest.fixture(autouse=True)
def _ledger_off(monkeypatch):
    """Keep the run ledger out of the working tree during tests.

    The CLI records every run to ``results/runs.jsonl`` by default;
    tests must not leave artifacts behind (and stdout assertions must
    not race manifest side effects).  Ledger-specific tests re-enable it
    with an explicit ``--ledger``, which overrides this env disable.
    """
    monkeypatch.setenv("REPRO_LEDGER", "0")
from repro.pipeline.contextualize import contextualize
from repro.pipeline.ndt_join import join_ndt_tests
from repro.vendors.mba import MBASimulator
from repro.vendors.mlab import MLabSimulator
from repro.vendors.ookla import OoklaSimulator


@pytest.fixture(scope="session")
def catalog_a():
    return city_catalog("A")


@pytest.fixture(scope="session")
def state_catalog_a():
    return state_catalog("A")


@pytest.fixture(scope="session")
def ookla_a():
    """~5k Ookla City-A records."""
    return OoklaSimulator("A", seed=11).generate(5_000)


@pytest.fixture(scope="session")
def mlab_raw_a():
    """~4k-session raw NDT records for City-A."""
    return MLabSimulator("A", seed=12).generate(4_000)


@pytest.fixture(scope="session")
def mlab_joined_a(mlab_raw_a):
    return join_ndt_tests(mlab_raw_a)


@pytest.fixture(scope="session")
def mba_a():
    """~5k MBA State-A records with ground-truth tiers."""
    return MBASimulator("A", seed=13).generate(5_000)


@pytest.fixture(scope="session")
def ookla_ctx_a(ookla_a, catalog_a):
    return contextualize(ookla_a, catalog_a)


@pytest.fixture(scope="session")
def mlab_ctx_a(mlab_joined_a, catalog_a):
    return contextualize(mlab_joined_a, catalog_a)
