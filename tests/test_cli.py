"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.frame import read_csv, write_csv


@pytest.fixture
def ookla_csv(tmp_path, ookla_a):
    path = tmp_path / "ookla.csv"
    write_csv(ookla_a.head(1500), path)
    return path


@pytest.fixture
def ctx_csv(tmp_path, ookla_ctx_a):
    path = tmp_path / "ctx.csv"
    write_csv(ookla_ctx_a.table.head(1500), path)
    return path


class TestGenerate:
    def test_generate_ookla(self, tmp_path, capsys):
        out = tmp_path / "o.csv"
        code = main(
            [
                "generate", "--vendor", "ookla", "--city", "A",
                "--n", "200", "--seed", "5", "--out", str(out),
            ]
        )
        assert code == 0
        assert "wrote" in capsys.readouterr().out
        assert len(read_csv(out)) >= 200

    def test_generate_mba(self, tmp_path, capsys):
        out = tmp_path / "m.csv"
        code = main(
            [
                "generate", "--vendor", "mba", "--city", "B",
                "--n", "300", "--out", str(out),
            ]
        )
        assert code == 0
        table = read_csv(out)
        assert "tier" in table

    def test_generate_and_join_mlab(self, tmp_path, capsys):
        raw = tmp_path / "ndt.csv"
        joined = tmp_path / "joined.csv"
        assert main(
            [
                "generate", "--vendor", "mlab", "--city", "A",
                "--n", "400", "--out", str(raw),
            ]
        ) == 0
        assert main(
            ["join-ndt", "--input", str(raw), "--out", str(joined)]
        ) == 0
        table = read_csv(joined)
        assert "download_mbps" in table and "upload_mbps" in table

    def test_unknown_vendor_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "generate", "--vendor", "fast", "--out",
                    str(tmp_path / "x.csv"),
                ]
            )


class TestContextualize:
    def test_round_trip(self, tmp_path, ookla_csv, capsys):
        out = tmp_path / "ctx.csv"
        code = main(
            [
                "contextualize", "--input", str(ookla_csv),
                "--city", "A", "--out", str(out),
            ]
        )
        assert code == 0
        table = read_csv(out)
        assert "bst_tier" in table
        assert "median dl/plan" in capsys.readouterr().out


class TestEvaluate:
    def test_reports_accuracy(self, capsys):
        code = main(["evaluate", "--state", "A", "--n", "3000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "upload-group accuracy" in out
        assert "%" in out


class TestExperiments:
    def test_list(self, capsys):
        assert main(["list-experiments"]) == 0
        out = capsys.readouterr().out
        assert "fig13" in out and "tab2" in out

    def test_run_small_experiment(self, capsys):
        code = main(["experiment", "fig10", "--scale", "small"])
        assert code == 0
        assert "bottleneck" in capsys.readouterr().out.lower()

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])


class TestAuditAndChallenge:
    def test_audit_raw_table(self, ookla_csv, capsys):
        assert main(["audit", "--input", str(ookla_csv)]) == 0
        out = capsys.readouterr().out
        assert "interpretability score" in out
        assert "recommendations" in out

    def test_audit_contextualised(self, ctx_csv, capsys):
        assert main(["audit", "--input", str(ctx_csv)]) == 0
        out = capsys.readouterr().out
        assert "subscription plan" in out

    def test_challenge_triage(self, ctx_csv, capsys):
        assert main(["challenge", "--input", str(ctx_csv)]) == 0
        out = capsys.readouterr().out
        assert "challenge-worthy" in out
        assert "evidence-grade" in out

    def test_challenge_custom_ratio(self, ctx_csv, capsys):
        assert main(
            ["challenge", "--input", str(ctx_csv), "--ratio", "0.9"]
        ) == 0


class TestDescribeAndDossier:
    def test_describe(self, capsys):
        assert main(["describe", "--city", "A"]) == 0
        out = capsys.readouterr().out
        assert "BST methodology" in out
        assert "Tier 1-3" in out

    def test_dossier(self, capsys):
        assert main(
            ["dossier", "--city", "A", "--n", "2000", "--seed", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "Broadband dossier" in out
        assert "challenge triage" in out


def test_no_command_exits():
    with pytest.raises(SystemExit):
        main([])
