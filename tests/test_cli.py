"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.frame import read_csv, write_csv


@pytest.fixture
def ookla_csv(tmp_path, ookla_a):
    path = tmp_path / "ookla.csv"
    write_csv(ookla_a.head(1500), path)
    return path


@pytest.fixture
def ctx_csv(tmp_path, ookla_ctx_a):
    path = tmp_path / "ctx.csv"
    write_csv(ookla_ctx_a.table.head(1500), path)
    return path


class TestGenerate:
    def test_generate_ookla(self, tmp_path, capsys):
        out = tmp_path / "o.csv"
        code = main(
            [
                "generate", "--vendor", "ookla", "--city", "A",
                "--n", "200", "--seed", "5", "--out", str(out),
            ]
        )
        assert code == 0
        assert "wrote" in capsys.readouterr().out
        assert len(read_csv(out)) >= 200

    def test_generate_mba(self, tmp_path, capsys):
        out = tmp_path / "m.csv"
        code = main(
            [
                "generate", "--vendor", "mba", "--city", "B",
                "--n", "300", "--out", str(out),
            ]
        )
        assert code == 0
        table = read_csv(out)
        assert "tier" in table

    def test_generate_and_join_mlab(self, tmp_path, capsys):
        raw = tmp_path / "ndt.csv"
        joined = tmp_path / "joined.csv"
        assert main(
            [
                "generate", "--vendor", "mlab", "--city", "A",
                "--n", "400", "--out", str(raw),
            ]
        ) == 0
        assert main(
            ["join-ndt", "--input", str(raw), "--out", str(joined)]
        ) == 0
        table = read_csv(joined)
        assert "download_mbps" in table and "upload_mbps" in table

    def test_unknown_vendor_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "generate", "--vendor", "fast", "--out",
                    str(tmp_path / "x.csv"),
                ]
            )


class TestContextualize:
    def test_round_trip(self, tmp_path, ookla_csv, capsys):
        out = tmp_path / "ctx.csv"
        code = main(
            [
                "contextualize", "--input", str(ookla_csv),
                "--city", "A", "--out", str(out),
            ]
        )
        assert code == 0
        table = read_csv(out)
        assert "bst_tier" in table
        assert "median dl/plan" in capsys.readouterr().out

    def test_jobs_flag_matches_serial(self, tmp_path, ookla_csv, capsys):
        serial_out = tmp_path / "ctx1.csv"
        parallel_out = tmp_path / "ctx2.csv"
        base = ["contextualize", "--input", str(ookla_csv), "--city", "A"]
        assert main(base + ["--out", str(serial_out)]) == 0
        assert main(
            base + ["--out", str(parallel_out), "--jobs", "2"]
        ) == 0
        capsys.readouterr()
        assert serial_out.read_text() == parallel_out.read_text()

    def test_jobs_default_is_serial(self):
        args = build_parser().parse_args(
            ["contextualize", "--input", "x.csv", "--city", "A",
             "--out", "y.csv"]
        )
        assert args.jobs == 1


class TestEvaluate:
    def test_reports_accuracy(self, capsys):
        code = main(["evaluate", "--state", "A", "--n", "3000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "upload-group accuracy" in out
        assert "%" in out


class TestExperiments:
    def test_list(self, capsys):
        assert main(["list-experiments"]) == 0
        out = capsys.readouterr().out
        assert "fig13" in out and "tab2" in out

    def test_run_small_experiment(self, capsys):
        code = main(["experiment", "fig10", "--scale", "small"])
        assert code == 0
        assert "bottleneck" in capsys.readouterr().out.lower()

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])


class TestAuditAndChallenge:
    def test_audit_raw_table(self, ookla_csv, capsys):
        assert main(["audit", "--input", str(ookla_csv)]) == 0
        out = capsys.readouterr().out
        assert "interpretability score" in out
        assert "recommendations" in out

    def test_audit_contextualised(self, ctx_csv, capsys):
        assert main(["audit", "--input", str(ctx_csv)]) == 0
        out = capsys.readouterr().out
        assert "subscription plan" in out

    def test_challenge_triage(self, ctx_csv, capsys):
        assert main(["challenge", "--input", str(ctx_csv)]) == 0
        out = capsys.readouterr().out
        assert "challenge-worthy" in out
        assert "evidence-grade" in out

    def test_challenge_custom_ratio(self, ctx_csv, capsys):
        assert main(
            ["challenge", "--input", str(ctx_csv), "--ratio", "0.9"]
        ) == 0


class TestDescribeAndDossier:
    def test_describe(self, capsys):
        assert main(["describe", "--city", "A"]) == 0
        out = capsys.readouterr().out
        assert "BST methodology" in out
        assert "Tier 1-3" in out

    def test_dossier(self, capsys):
        assert main(
            ["dossier", "--city", "A", "--n", "2000", "--seed", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "Broadband dossier" in out
        assert "challenge triage" in out


class TestObservabilityFlags:
    def test_all_subcommands_accept_obs_flags(self):
        import argparse

        parser = build_parser()
        subparsers = next(
            a for a in parser._actions
            if isinstance(a, argparse._SubParsersAction)
        )
        for name, sub in subparsers.choices.items():
            options = {
                opt for action in sub._actions
                for opt in action.option_strings
            }
            assert {
                "--log-level", "--log-format", "--trace-out",
                "--metrics", "--profile",
            } <= options, f"{name} is missing obs flags"

    def test_trace_out_writes_valid_jsonl(self, tmp_path, ookla_csv, capsys):
        trace = tmp_path / "trace.jsonl"
        code = main(
            [
                "contextualize", "--input", str(ookla_csv),
                "--city", "A", "--out", str(tmp_path / "ctx.csv"),
                "--trace-out", str(trace),
            ]
        )
        assert code == 0
        assert "wrote" in capsys.readouterr().out
        rows = [
            json.loads(line)
            for line in trace.read_text().splitlines()
        ]
        assert rows, "trace file is empty"
        names = {row["name"] for row in rows}
        assert {
            "contextualize", "bst.fit", "bst.fit_upload",
            "kde.count_peaks", "gmm.fit", "bst.assign",
        } <= names
        for row in rows:
            assert {"name", "span_id", "duration_s", "attributes"} <= set(row)

    def test_metrics_flag_prints_summary(self, tmp_path, ookla_csv, capsys):
        code = main(
            [
                "contextualize", "--input", str(ookla_csv),
                "--city", "A", "--out", str(tmp_path / "ctx.csv"),
                "--metrics",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "-- metrics summary --" in out
        assert "em.iterations" in out
        assert "kde.peaks_found" in out

    def test_no_obs_flags_no_obs_output(self, tmp_path, ookla_csv, capsys):
        code = main(
            [
                "contextualize", "--input", str(ookla_csv),
                "--city", "A", "--out", str(tmp_path / "ctx.csv"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "metrics summary" not in out
        assert "spans" not in out

    def test_trace_out_unwritable_fails_fast(self, tmp_path, ookla_csv, capsys):
        code = main(
            [
                "contextualize", "--input", str(ookla_csv),
                "--city", "A", "--out", str(tmp_path / "ctx.csv"),
                "--trace-out", str(tmp_path / "missing" / "t.jsonl"),
            ]
        )
        assert code == 2
        captured = capsys.readouterr()
        assert "cannot write --trace-out" in captured.err
        # Fails before the command runs -- no contextualise output.
        assert "contextualised rows" not in captured.out

    def test_profile_flag_prints_stats(self, capsys):
        code = main(["describe", "--city", "A", "--profile"])
        assert code == 0
        out = capsys.readouterr().out
        assert "-- profile" in out
        assert "cumulative" in out

    def test_log_level_json_goes_to_stderr(self, tmp_path, ookla_csv, capsys):
        code = main(
            [
                "contextualize", "--input", str(ookla_csv),
                "--city", "A", "--out", str(tmp_path / "ctx.csv"),
                "--log-level", "info", "--log-format", "json",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        log_lines = [
            json.loads(line)
            for line in captured.err.splitlines() if line.startswith("{")
        ]
        assert any(
            row["logger"] == "repro.pipeline.contextualize"
            for row in log_lines
        )
        # stdout stays machine-readable: no log lines mixed in.
        assert "{" not in captured.out

    def test_experiment_with_trace_and_metrics(self, tmp_path, capsys):
        trace = tmp_path / "exp.jsonl"
        code = main(
            [
                "experiment", "tab2", "--scale", "small",
                "--trace-out", str(trace), "--metrics",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "-- metrics summary --" in out
        assert "-- timings --" in out
        names = {
            json.loads(line)["name"]
            for line in trace.read_text().splitlines()
        }
        assert "experiment.tab2" in names
        assert "bst.fit" in names


def test_no_command_exits():
    with pytest.raises(SystemExit):
        main([])


class TestAssign:
    def test_assign_cold_then_warm(self, tmp_path, ookla_csv, capsys):
        registry = tmp_path / "models"
        cold_out = tmp_path / "cold.csv"
        warm_out = tmp_path / "warm.csv"
        code = main(
            [
                "assign", "--input", str(ookla_csv), "--city", "A",
                "--registry", str(registry), "--out", str(cold_out),
            ]
        )
        assert code == 0
        assert "fresh fit (now registered)" in capsys.readouterr().out
        code = main(
            [
                "assign", "--input", str(ookla_csv), "--city", "A",
                "--registry", str(registry), "--out", str(warm_out),
            ]
        )
        assert code == 0
        assert "registered model" in capsys.readouterr().out
        assert cold_out.read_bytes() == warm_out.read_bytes()
        assert (registry / "index.json").exists()

    def test_assign_output_matches_contextualize(
        self, tmp_path, ookla_csv, capsys
    ):
        ctx_out = tmp_path / "ctx.csv"
        assign_out = tmp_path / "assign.csv"
        assert main(
            [
                "contextualize", "--input", str(ookla_csv), "--city", "A",
                "--out", str(ctx_out),
            ]
        ) == 0
        assert main(
            [
                "assign", "--input", str(ookla_csv), "--city", "A",
                "--registry", str(tmp_path / "models"),
                "--out", str(assign_out),
            ]
        ) == 0
        capsys.readouterr()
        assert ctx_out.read_bytes() == assign_out.read_bytes()
