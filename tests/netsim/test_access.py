"""Tests for the access-link and time-of-day models."""

import numpy as np
import pytest

from repro.market.plans import Plan
from repro.netsim import AccessLink, timeofday_factor


@pytest.fixture
def plan():
    return Plan(100, 5, tier=2)


class TestAccessLink:
    def test_overprovisioning_applied(self, plan):
        link = AccessLink(plan)
        assert link.download_capacity_mbps > plan.download_mbps
        assert link.upload_capacity_mbps > plan.upload_mbps

    def test_overprovision_magnitude_matches_mba(self, plan):
        # Section 4.3: the 100 Mbps tier measures ~110.9 wired.
        link = AccessLink(plan)
        assert 105 < link.download_capacity_mbps < 125

    def test_household_factor_scales(self, plan):
        base = AccessLink(plan).download_capacity_mbps
        more = AccessLink(plan, household_factor=1.1).download_capacity_mbps
        assert more == pytest.approx(base * 1.1)

    def test_invalid_factor(self, plan):
        with pytest.raises(ValueError):
            AccessLink(plan, household_factor=0.0)

    def test_invalid_overprovision(self, plan):
        with pytest.raises(ValueError):
            AccessLink(plan, overprovision_download=0)

    def test_for_household_sampling_bounded(self, plan):
        rng = np.random.default_rng(0)
        factors = [
            AccessLink.for_household(plan, rng).household_factor
            for _ in range(300)
        ]
        assert all(0.85 <= f <= 1.15 for f in factors)

    def test_for_household_deterministic_per_rng(self, plan):
        a = AccessLink.for_household(plan, np.random.default_rng(5))
        b = AccessLink.for_household(plan, np.random.default_rng(5))
        assert a.household_factor == b.household_factor


class TestTimeOfDay:
    def test_overnight_full_capacity(self):
        assert timeofday_factor(3) == 1.0

    def test_daytime_discounted(self):
        assert timeofday_factor(14) < 1.0

    def test_discount_is_marginal(self):
        # Section 6.2: the effect is small (~10%), not dominant.
        assert timeofday_factor(20) > 0.85

    def test_invalid_hour(self):
        with pytest.raises(ValueError):
            timeofday_factor(24)

    def test_noise_bounded(self):
        rng = np.random.default_rng(0)
        values = [timeofday_factor(12, rng) for _ in range(300)]
        assert all(0.6 <= v <= 1.0 for v in values)
