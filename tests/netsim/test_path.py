"""Tests for end-to-end path composition."""

import numpy as np
import pytest

from repro.market import city_catalog
from repro.market.population import Household, Subscriber
from repro.netsim import FlowProfile, PathSimulator
from repro.netsim.path import (
    MULTI_FLOW_PROFILE,
    SINGLE_FLOW_NDT_PROFILE,
    WIRED_PANEL_PROFILE,
)
from repro.netsim.path import TestConditions as PathConditions


def _make_user(
    tier=2,
    platform="android",
    access="wifi",
    memory_gb=8.0,
    rssi=-45.0,
    band=5.0,
    household_id="h-test",
):
    plan = city_catalog("A").plan_for_tier(tier)
    household = Household(household_id, "A", tier, plan, rssi, band)
    return Subscriber(
        f"user-{household_id}", household, platform, access, memory_gb, 1
    )


@pytest.fixture
def sim():
    return PathSimulator(seed=0)


class TestProfiles:
    def test_profile_validation(self):
        with pytest.raises(ValueError):
            FlowProfile("x", 0)
        with pytest.raises(ValueError):
            FlowProfile("x", 1, window_bytes=0)
        with pytest.raises(ValueError):
            FlowProfile("x", 1, methodology_efficiency=0)
        with pytest.raises(ValueError):
            FlowProfile("x", 1, client_efficiency_sigma=-0.1)

    def test_ndt_is_single_flow(self):
        assert SINGLE_FLOW_NDT_PROFILE.n_flows == 1
        assert MULTI_FLOW_PROFILE.n_flows > 1

    def test_panel_profile_has_no_client_noise(self):
        assert WIRED_PANEL_PROFILE.client_efficiency_sigma == 0.0


class TestConditionsSampling:
    def test_wifi_conditions_have_rssi(self, sim):
        rng = np.random.default_rng(0)
        cond = sim.sample_conditions(_make_user(), 12, rng)
        assert cond.rssi_dbm is not None
        assert cond.contention_factor is not None
        assert cond.cross_traffic_mbps >= 0

    def test_wired_conditions_skip_wifi_fields(self, sim):
        rng = np.random.default_rng(0)
        user = _make_user(platform="desktop-ethernet", access="ethernet")
        cond = sim.sample_conditions(user, 12, rng)
        assert cond.rssi_dbm is None
        assert cond.contention_factor is None
        assert cond.cross_traffic_mbps == 0.0

    def test_conditions_validation(self):
        with pytest.raises(ValueError):
            PathConditions(25, 10.0, 1e-4, 1.0, None, None)
        with pytest.raises(ValueError):
            PathConditions(1, 10.0, 1e-4, 1.0, None, None, -1.0)


class TestThroughput:
    def test_download_bounded_by_plan_headroom(self, sim):
        user = _make_user(tier=2, platform="desktop-ethernet",
                          access="ethernet")
        rng = np.random.default_rng(1)
        for _ in range(50):
            outcome = sim.run_test(user, WIRED_PANEL_PROFILE, 12, rng)
            # Shaped rate is ~1.16x the 100 Mbps plan; small noise on top.
            assert outcome.download_mbps < 100 * 1.16 * 1.15 * 1.4

    def test_upload_tight_around_plan(self, sim):
        user = _make_user(tier=6, platform="desktop-ethernet",
                          access="ethernet")
        rng = np.random.default_rng(2)
        ups = [
            sim.run_test(user, WIRED_PANEL_PROFILE, 3, rng).upload_mbps
            for _ in range(100)
        ]
        assert 35 < np.median(ups) < 45  # 35 Mbps plan, overprovisioned

    def test_wired_beats_wifi_on_high_tier(self, sim):
        rng = np.random.default_rng(3)
        wired = _make_user(
            tier=6, platform="desktop-ethernet", access="ethernet",
            household_id="h-wired",
        )
        wifi = _make_user(tier=6, platform="desktop-wifi", household_id="h-wifi")
        wired_dl = np.median(
            [sim.run_test(wired, MULTI_FLOW_PROFILE, 12, rng).download_mbps
             for _ in range(60)]
        )
        wifi_dl = np.median(
            [sim.run_test(wifi, MULTI_FLOW_PROFILE, 12, rng).download_mbps
             for _ in range(60)]
        )
        assert wired_dl > wifi_dl * 1.4

    def test_24ghz_slower_than_5ghz(self, sim):
        rng = np.random.default_rng(4)
        fast = _make_user(tier=6, band=5.0, household_id="h-5g")
        slow = _make_user(tier=6, band=2.4, household_id="h-24g")
        fast_dl = np.median(
            [sim.run_test(fast, MULTI_FLOW_PROFILE, 12, rng).download_mbps
             for _ in range(60)]
        )
        slow_dl = np.median(
            [sim.run_test(slow, MULTI_FLOW_PROFILE, 12, rng).download_mbps
             for _ in range(60)]
        )
        assert slow_dl < fast_dl / 2

    def test_low_memory_caps_mobile(self, sim):
        rng = np.random.default_rng(5)
        starved = _make_user(tier=6, memory_gb=1.0, household_id="h-lowmem")
        roomy = _make_user(tier=6, memory_gb=8.0, household_id="h-himem")
        starved_dl = np.median(
            [sim.run_test(starved, MULTI_FLOW_PROFILE, 12, rng).download_mbps
             for _ in range(60)]
        )
        roomy_dl = np.median(
            [sim.run_test(roomy, MULTI_FLOW_PROFILE, 12, rng).download_mbps
             for _ in range(60)]
        )
        assert starved_dl < roomy_dl / 2

    def test_single_flow_lags_multi_flow(self, sim):
        rng = np.random.default_rng(6)
        user = _make_user(
            tier=5, platform="desktop-ethernet", access="ethernet",
            household_id="h-flow",
        )
        multi = np.median(
            [sim.run_test(user, MULTI_FLOW_PROFILE, 12, rng).download_mbps
             for _ in range(60)]
        )
        single = np.median(
            [sim.run_test(user, SINGLE_FLOW_NDT_PROFILE, 12, rng).download_mbps
             for _ in range(60)]
        )
        assert single < multi

    def test_overnight_slightly_faster(self, sim):
        rng = np.random.default_rng(7)
        user = _make_user(
            tier=4, platform="desktop-ethernet", access="ethernet",
            household_id="h-tod",
        )
        night = np.median(
            [sim.run_test(user, WIRED_PANEL_PROFILE, 3, rng).download_mbps
             for _ in range(80)]
        )
        day = np.median(
            [sim.run_test(user, WIRED_PANEL_PROFILE, 15, rng).download_mbps
             for _ in range(80)]
        )
        assert 1.02 < night / day < 1.35

    def test_access_link_deterministic_per_household(self, sim):
        user = _make_user(household_id="h-stable")
        assert (
            sim.access_link(user).household_factor
            == sim.access_link(user).household_factor
        )

    def test_invalid_direction(self, sim):
        rng = np.random.default_rng(8)
        user = _make_user()
        cond = sim.sample_conditions(user, 12, rng)
        with pytest.raises(ValueError):
            sim.simulate_direction(user, MULTI_FLOW_PROFILE, cond, rng, "up")

    def test_invalid_cross_traffic_scale(self):
        with pytest.raises(ValueError):
            PathSimulator(cross_traffic_scale_mbps=-1.0)

    def test_outcome_fields_positive(self, sim):
        rng = np.random.default_rng(9)
        outcome = sim.run_test(_make_user(), MULTI_FLOW_PROFILE, 12, rng)
        assert outcome.download_mbps > 0
        assert outcome.upload_mbps > 0
        assert outcome.rtt_ms > 0
        assert 0 < outcome.loss_rate < 1
