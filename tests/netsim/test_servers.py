"""Tests for the measurement server pool model."""

import numpy as np
import pytest

from repro.netsim.servers import MLAB_POOL, OOKLA_POOL, ServerPool


def test_denser_pool_is_closer():
    assert OOKLA_POOL.typical_distance_km < MLAB_POOL.typical_distance_km


def test_denser_pool_has_lower_rtt():
    assert OOKLA_POOL.median_rtt_ms() < MLAB_POOL.median_rtt_ms()


def test_rtts_metro_scale():
    for pool in (OOKLA_POOL, MLAB_POOL):
        assert 5.0 < pool.median_rtt_ms() < 40.0


def test_distance_scales_inverse_sqrt():
    small = ServerPool("small", 100)
    large = ServerPool("large", 10_000)
    assert small.typical_distance_km == pytest.approx(
        large.typical_distance_km * 10
    )


def test_sampled_distances_positive_and_scaled():
    rng = np.random.default_rng(0)
    distances = OOKLA_POOL.sample_distance_km(rng, 4000)
    assert (distances > 0).all()
    assert np.mean(distances) == pytest.approx(
        OOKLA_POOL.typical_distance_km, rel=0.1
    )


def test_latency_model_kwargs_roundtrip():
    from repro.netsim import LatencyModel

    model = LatencyModel(**MLAB_POOL.latency_model_kwargs())
    assert model.median_rtt_ms == pytest.approx(
        MLAB_POOL.median_rtt_ms()
    )


def test_invalid_pool():
    with pytest.raises(ValueError):
        ServerPool("empty", 0)


def test_invalid_sample_size():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        OOKLA_POOL.sample_distance_km(rng, 0)


def test_vendors_use_their_pools():
    from repro.vendors import MLabSimulator, OoklaSimulator

    ookla = OoklaSimulator("A", seed=0)
    mlab = MLabSimulator("A", seed=0)
    assert (
        ookla.path.latency_model.median_rtt_ms
        < mlab.path.latency_model.median_rtt_ms
    )
