"""Tests for the device memory model."""

import pytest

from repro.netsim import device_memory_cap_mbps
from repro.netsim.device import memory_bin_label


def test_cap_monotone_in_memory():
    caps = [device_memory_cap_mbps(m) for m in (0.5, 1, 2, 4, 8, 16)]
    assert caps == sorted(caps)


def test_low_memory_sharply_capped():
    # The Figure 9d effect: a ~1 GB device cannot carry mid-tier plans.
    assert device_memory_cap_mbps(1.0) < 100


def test_high_memory_effectively_uncapped():
    assert device_memory_cap_mbps(8.0) > 1000


def test_invalid_memory():
    with pytest.raises(ValueError):
        device_memory_cap_mbps(0.0)
    with pytest.raises(ValueError):
        device_memory_cap_mbps(-1.0)


def test_custom_coefficients():
    assert device_memory_cap_mbps(2.0, coefficient=10, exponent=1.0) == 20


@pytest.mark.parametrize(
    "memory,label",
    [
        (1.0, "< 2 GB"),
        (2.0, "2 GB - 4 GB"),
        (3.9, "2 GB - 4 GB"),
        (4.0, "4 GB - 6 GB"),
        (6.0, "> 6 GB"),
        (12.0, "> 6 GB"),
    ],
)
def test_memory_bin_labels(memory, label):
    assert memory_bin_label(memory) == label


def test_memory_bin_invalid():
    with pytest.raises(ValueError):
        memory_bin_label(0.0)
