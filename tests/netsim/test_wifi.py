"""Tests for the WiFi link model."""

import numpy as np
import pytest

from repro.netsim import (
    wifi_mac_efficiency,
    wifi_phy_rate_mbps,
    wifi_throughput_cap_mbps,
)
from repro.netsim.wifi import sample_contention_factor


class TestPhyRates:
    def test_5ghz_exceeds_24ghz_at_good_rssi(self):
        assert wifi_phy_rate_mbps(5.0, -45) > wifi_phy_rate_mbps(2.4, -45)

    def test_rate_monotone_in_rssi(self):
        rssis = np.linspace(-85, -35, 20)
        for band in (2.4, 5.0):
            rates = [wifi_phy_rate_mbps(band, r) for r in rssis]
            assert all(b >= a for a, b in zip(rates, rates[1:]))

    def test_clamps_beyond_table(self):
        assert wifi_phy_rate_mbps(5.0, -20) == wifi_phy_rate_mbps(5.0, -40)
        assert wifi_phy_rate_mbps(5.0, -95) == wifi_phy_rate_mbps(5.0, -87)

    def test_interpolation_between_anchors(self):
        mid = wifi_phy_rate_mbps(5.0, -52.5)
        assert (
            wifi_phy_rate_mbps(5.0, -55)
            < mid
            < wifi_phy_rate_mbps(5.0, -50)
        )

    def test_unknown_band(self):
        with pytest.raises(ValueError):
            wifi_phy_rate_mbps(6.0, -50)


class TestMacEfficiency:
    def test_5ghz_more_efficient(self):
        assert wifi_mac_efficiency(5.0) > wifi_mac_efficiency(2.4)

    def test_unknown_band(self):
        with pytest.raises(ValueError):
            wifi_mac_efficiency(3.6)


class TestContention:
    def test_range_5ghz(self):
        rng = np.random.default_rng(0)
        factors = [sample_contention_factor(5.0, rng) for _ in range(200)]
        assert all(0.45 <= f <= 0.95 for f in factors)

    def test_24ghz_worse_on_average(self):
        rng = np.random.default_rng(1)
        f24 = np.mean(
            [sample_contention_factor(2.4, rng) for _ in range(500)]
        )
        f5 = np.mean(
            [sample_contention_factor(5.0, rng) for _ in range(500)]
        )
        assert f24 < f5

    def test_unknown_band(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            sample_contention_factor(60.0, rng)


class TestThroughputCap:
    def test_good_5ghz_supports_hundreds_of_mbps(self):
        cap = wifi_throughput_cap_mbps(5.0, -45, contention_factor=0.9)
        assert cap > 300

    def test_24ghz_band_caps_under_100(self):
        # The Figure 9b effect: 2.4 GHz cannot carry high-tier plans.
        cap = wifi_throughput_cap_mbps(2.4, -45, contention_factor=0.85)
        assert cap < 100

    def test_poor_rssi_collapses_throughput(self):
        good = wifi_throughput_cap_mbps(5.0, -45, 0.8)
        poor = wifi_throughput_cap_mbps(5.0, -80, 0.8)
        assert poor < good / 5

    def test_contention_scales_linearly(self):
        full = wifi_throughput_cap_mbps(5.0, -50, 1.0)
        half = wifi_throughput_cap_mbps(5.0, -50, 0.5)
        assert half == pytest.approx(full / 2)

    def test_invalid_contention(self):
        with pytest.raises(ValueError):
            wifi_throughput_cap_mbps(5.0, -50, 0.0)
        with pytest.raises(ValueError):
            wifi_throughput_cap_mbps(5.0, -50, 1.5)
