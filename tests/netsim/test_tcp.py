"""Tests for the TCP throughput model."""

import math

import pytest

from repro.netsim import (
    flow_throughput_mbps,
    mathis_throughput_mbps,
    multi_flow_throughput_mbps,
    saturation_efficiency,
    window_limited_throughput_mbps,
)


class TestMathis:
    def test_known_value(self):
        # MSS 1460 B, RTT 100 ms, loss 1%: ~1.42 Mbps.
        rate = mathis_throughput_mbps(100.0, 0.01)
        assert rate == pytest.approx(1.425, rel=0.01)

    def test_decreases_with_rtt(self):
        assert mathis_throughput_mbps(50, 1e-4) > mathis_throughput_mbps(
            100, 1e-4
        )

    def test_decreases_with_loss(self):
        assert mathis_throughput_mbps(20, 1e-5) > mathis_throughput_mbps(
            20, 1e-3
        )

    def test_zero_loss_unbounded(self):
        assert math.isinf(mathis_throughput_mbps(20, 0.0))

    def test_invalid_rtt(self):
        with pytest.raises(ValueError):
            mathis_throughput_mbps(0, 1e-4)

    def test_invalid_loss(self):
        with pytest.raises(ValueError):
            mathis_throughput_mbps(20, 1.5)


class TestWindowLimit:
    def test_known_value(self):
        # 64 KB window, 100 ms RTT: ~5.2 Mbps.
        rate = window_limited_throughput_mbps(64 * 1024, 100.0)
        assert rate == pytest.approx(5.24, rel=0.01)

    def test_scales_with_window(self):
        small = window_limited_throughput_mbps(64 * 1024, 20)
        large = window_limited_throughput_mbps(4 * 1024 * 1024, 20)
        assert large == pytest.approx(small * 64, rel=1e-9)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            window_limited_throughput_mbps(0, 10)
        with pytest.raises(ValueError):
            window_limited_throughput_mbps(1024, 0)


class TestFlowThroughput:
    def test_min_of_both_limits(self):
        # Tiny window: window-limited.
        windowed = flow_throughput_mbps(20, 1e-6, window_bytes=64 * 1024)
        assert windowed == pytest.approx(
            window_limited_throughput_mbps(64 * 1024, 20)
        )
        # Big window, high loss: Mathis-limited.
        lossy = flow_throughput_mbps(20, 1e-2, window_bytes=64 * 1024 * 1024)
        assert lossy == pytest.approx(mathis_throughput_mbps(20, 1e-2))


class TestMultiFlow:
    def test_capacity_never_exceeded(self):
        rate = multi_flow_throughput_mbps(100.0, 64, 10.0, 1e-6)
        assert rate <= 100.0

    def test_flows_aggregate(self):
        one = multi_flow_throughput_mbps(10_000.0, 1, 20.0, 1e-4)
        eight = multi_flow_throughput_mbps(10_000.0, 8, 20.0, 1e-4)
        assert eight == pytest.approx(one * 8, rel=1e-9)

    def test_single_flow_underperforms_on_fast_path(self):
        # The Section 6.3 effect: on a gigabit path with realistic loss,
        # one flow cannot fill the pipe but eight can.
        single = multi_flow_throughput_mbps(1000.0, 1, 15.0, 3e-5)
        multi = multi_flow_throughput_mbps(1000.0, 8, 15.0, 3e-5)
        assert single < 0.6 * multi

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            multi_flow_throughput_mbps(0, 1, 10, 1e-4)
        with pytest.raises(ValueError):
            multi_flow_throughput_mbps(100, 0, 10, 1e-4)


class TestSaturationEfficiency:
    def test_low_rates_nearly_full(self):
        assert saturation_efficiency(100.0) > 0.97

    def test_monotone_decreasing(self):
        rates = [50, 200, 500, 900, 1400]
        effs = [saturation_efficiency(r) for r in rates]
        assert effs == sorted(effs, reverse=True)

    def test_matches_mba_gigabit_shortfall(self):
        # Section 4.3: the 1200 Mbps plan (shaped ~1380) measures ~892,
        # i.e. ~65% of the shaped rate.
        eff = saturation_efficiency(1380.0)
        assert 0.6 < eff < 0.75

    def test_floor_respected(self):
        assert saturation_efficiency(10_000.0) == pytest.approx(0.65)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            saturation_efficiency(0)
        with pytest.raises(ValueError):
            saturation_efficiency(100, max_deficit=1.5)
