"""Tests for the latency/loss model."""

import numpy as np
import pytest

from repro.netsim import LatencyModel


@pytest.fixture
def model():
    return LatencyModel()


def test_rtt_positive(model):
    rng = np.random.default_rng(0)
    assert all(model.sample_rtt_ms(rng) >= 1.0 for _ in range(200))


def test_rtt_median_near_configured(model):
    rng = np.random.default_rng(1)
    rtts = [model.sample_rtt_ms(rng) for _ in range(3000)]
    assert np.median(rtts) == pytest.approx(12.0, rel=0.1)


def test_wifi_adds_delay(model):
    rng_a = np.random.default_rng(2)
    rng_b = np.random.default_rng(2)
    wired = [model.sample_rtt_ms(rng_a, on_wifi=False) for _ in range(500)]
    wifi = [model.sample_rtt_ms(rng_b, on_wifi=True) for _ in range(500)]
    assert np.median(wifi) > np.median(wired)


def test_loss_bounded(model):
    rng = np.random.default_rng(3)
    losses = [model.sample_loss(rng) for _ in range(500)]
    assert all(1e-7 <= loss <= 0.05 for loss in losses)


def test_wifi_adds_loss(model):
    rng_a = np.random.default_rng(4)
    rng_b = np.random.default_rng(4)
    wired = [model.sample_loss(rng_a, on_wifi=False) for _ in range(800)]
    wifi = [model.sample_loss(rng_b, on_wifi=True) for _ in range(800)]
    assert np.median(wifi) > np.median(wired)


def test_24ghz_band_adds_more_delay(model):
    rng_a = np.random.default_rng(5)
    rng_b = np.random.default_rng(5)
    fast = [
        model.sample_rtt_ms(rng_a, on_wifi=True, band_ghz=5.0)
        for _ in range(600)
    ]
    slow = [
        model.sample_rtt_ms(rng_b, on_wifi=True, band_ghz=2.4)
        for _ in range(600)
    ]
    assert np.median(slow) > np.median(fast)


def test_band_ignored_for_wired(model):
    rng_a = np.random.default_rng(6)
    rng_b = np.random.default_rng(6)
    a = model.sample_rtt_ms(rng_a, on_wifi=False, band_ghz=2.4)
    b = model.sample_rtt_ms(rng_b, on_wifi=False, band_ghz=5.0)
    assert a == b


def test_invalid_rtt_config():
    with pytest.raises(ValueError):
        LatencyModel(median_rtt_ms=0)


def test_invalid_loss_config():
    with pytest.raises(ValueError):
        LatencyModel(median_loss=0.0)


def test_frozen_dataclass(model):
    with pytest.raises(AttributeError):
        model.median_rtt_ms = 5.0
