"""Tests for the time-stepped transfer simulator."""

import numpy as np
import pytest

from repro.netsim.transfer import (
    derived_methodology_efficiency,
    simulate_transfer,
)


class TestSimulateTransfer:
    def test_never_exceeds_capacity(self):
        result = simulate_transfer(100.0, 15.0, 1e-5, n_flows=8, seed=1)
        assert (result.samples_mbps <= 100.0 + 1e-9).all()

    def test_reported_positive_and_bounded(self):
        result = simulate_transfer(500.0, 20.0, 1e-5, n_flows=4, seed=2)
        assert 0 < result.reported_mbps <= 500.0

    def test_slow_start_ramp_visible(self):
        result = simulate_transfer(800.0, 20.0, 1e-6, n_flows=1, seed=3)
        # The first sample is the initial window's rate -- far below
        # steady state.
        assert result.samples_mbps[0] < result.samples_mbps[-1]
        assert result.ramp_seconds > 0

    def test_discard_ramp_reports_higher(self):
        kwargs = dict(
            capacity_mbps=600.0, rtt_ms=25.0, loss_rate=1e-5,
            n_flows=1, duration_s=8.0, seed=4,
        )
        with_ramp = simulate_transfer(discard_ramp=False, **kwargs)
        without_ramp = simulate_transfer(discard_ramp=True, **kwargs)
        assert without_ramp.reported_mbps >= with_ramp.reported_mbps

    def test_more_flows_fill_fast_paths(self):
        single = simulate_transfer(
            1000.0, 15.0, 3e-5, n_flows=1, seed=5
        ).reported_mbps
        multi = simulate_transfer(
            1000.0, 15.0, 3e-5, n_flows=8, seed=5
        ).reported_mbps
        assert multi > single * 1.3

    def test_loss_hurts_throughput(self):
        clean = simulate_transfer(
            800.0, 15.0, 1e-6, n_flows=1, seed=6
        ).reported_mbps
        lossy = simulate_transfer(
            800.0, 15.0, 3e-4, n_flows=1, seed=6
        ).reported_mbps
        assert lossy < clean

    def test_deterministic_per_seed(self):
        a = simulate_transfer(300.0, 15.0, 1e-5, seed=7)
        b = simulate_transfer(300.0, 15.0, 1e-5, seed=7)
        assert np.array_equal(a.samples_mbps, b.samples_mbps)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            simulate_transfer(0, 15, 1e-5)
        with pytest.raises(ValueError):
            simulate_transfer(100, 0, 1e-5)
        with pytest.raises(ValueError):
            simulate_transfer(100, 15, 1.5)
        with pytest.raises(ValueError):
            simulate_transfer(100, 15, 1e-5, n_flows=0)
        with pytest.raises(ValueError):
            simulate_transfer(100, 15, 1e-5, duration_s=0)


class TestDerivedEfficiency:
    def test_single_flow_efficiency_drops_with_capacity(self):
        low = derived_methodology_efficiency(100.0, n_flows=1)
        high = derived_methodology_efficiency(1200.0, n_flows=1)
        assert high < low

    def test_multi_flow_stays_high(self):
        eff = derived_methodology_efficiency(
            1200.0, n_flows=8, duration_s=15.0, discard_ramp=True
        )
        assert eff > 0.8

    def test_matches_paper_vendor_gap_shape(self):
        # At 400 Mbps the single-flow test reports well below the
        # multi-flow test -- the Section 6.3 mechanism.
        single = derived_methodology_efficiency(400.0, n_flows=1)
        multi = derived_methodology_efficiency(
            400.0, n_flows=8, duration_s=15.0, discard_ramp=True
        )
        assert multi > single * 1.1

    def test_invalid_runs(self):
        with pytest.raises(ValueError):
            derived_methodology_efficiency(100.0, n_runs=0)
