"""Tests for the DOCSIS modem substrate."""

import numpy as np
import pytest

from repro.netsim.modem import (
    DOCSIS_30_8x4,
    DOCSIS_30_32x8,
    DOCSIS_31,
    MODEM_GENERATIONS,
    ModemProfile,
    sample_modem,
)


class TestProfiles:
    def test_8x4_ceiling(self):
        assert DOCSIS_30_8x4.max_download_mbps == pytest.approx(343.04)
        assert DOCSIS_30_8x4.max_upload_mbps == pytest.approx(122.88)

    def test_31_ofdm_ceiling(self):
        assert DOCSIS_31.max_download_mbps >= 2500
        assert DOCSIS_31.max_upload_mbps >= 800

    def test_generations_ordered_by_capacity(self):
        caps = [m.max_download_mbps for m in MODEM_GENERATIONS]
        assert caps == sorted(caps)

    def test_old_modem_caps_gigabit_plan(self):
        assert DOCSIS_30_8x4.caps_plan(1200)
        assert not DOCSIS_31.caps_plan(1200)

    def test_32x8_barely_misses_gigabit(self):
        assert DOCSIS_30_32x8.caps_plan(1400)
        assert not DOCSIS_30_32x8.caps_plan(1200)

    def test_invalid_channels(self):
        with pytest.raises(ValueError):
            ModemProfile("bad", 0, 4)


class TestSampling:
    def test_mix_respected(self):
        rng = np.random.default_rng(0)
        draws = [sample_modem(rng).name for _ in range(3000)]
        share_31 = np.mean([d == "DOCSIS 3.1" for d in draws])
        assert 0.30 < share_31 < 0.40

    def test_bad_mix_length(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            sample_modem(rng, mix=(1.0,))

    def test_mix_must_sum_to_one(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            sample_modem(rng, mix=(0.5, 0.5, 0.5, 0.5))


class TestPathIntegration:
    def test_modem_caps_premium_wired_tests(self):
        from repro.market import city_catalog
        from repro.market.population import Household, Subscriber
        from repro.netsim import PathSimulator
        from repro.netsim.path import WIRED_PANEL_PROFILE

        plan = city_catalog("A").plan_for_tier(6)
        downloads = {}
        for modems in (False, True):
            sim = PathSimulator(seed=3, model_modems=modems)
            rng = np.random.default_rng(5)
            speeds = []
            for i in range(120):
                household = Household(
                    f"h-modem-{i}", "A", 6, plan, -40.0, 5.0
                )
                user = Subscriber(
                    f"u{i}", household, "desktop-ethernet", "ethernet",
                    16.0, 1,
                )
                outcome = sim.run_test(user, WIRED_PANEL_PROFILE, 3, rng)
                speeds.append(outcome.download_mbps)
            downloads[modems] = np.asarray(speeds)
        # With modem modelling on, a visible tail of gigabit-plan tests
        # collapses to the 8x4 ceiling (~343 Mbps).
        assert np.mean(downloads[True] < 400) > 0.05
        assert np.mean(downloads[False] < 400) < 0.02

    def test_household_modem_deterministic(self):
        from repro.market import city_catalog
        from repro.market.population import Household, Subscriber
        from repro.netsim import PathSimulator

        plan = city_catalog("A").plan_for_tier(4)
        household = Household("h-fixed", "A", 4, plan, -40.0, 5.0)
        user = Subscriber("u", household, "ios", "wifi", 4.0, 1)
        sim = PathSimulator(seed=0, model_modems=True)
        assert sim.household_modem(user).name == (
            sim.household_modem(user).name
        )
