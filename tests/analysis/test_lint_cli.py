"""End-to-end tests for ``repro lint`` (and the live-tree meta-test)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC_ROOT = REPO_ROOT / "src"


@pytest.fixture
def bad_tree(tmp_path):
    """A scan root with one seeded violation per rule family."""
    root = tmp_path / "tree"
    root.mkdir()
    (root / "bad.py").write_text(
        "import random\n"
        "import time\n"
        "\n"
        "\n"
        "def f(xs=[]):\n"
        "    xs.append(random.random())\n"
        "    return time.time()\n"
    )
    return root


def test_live_tree_is_clean(capsys):
    """Meta-test: the shipped source passes its own lint gate."""
    code = main(["lint", "--root", str(SRC_ROOT)])
    out = capsys.readouterr().out
    assert code == 0, out
    assert out.startswith("OK ")
    assert "0 findings" in out


def test_seeded_violations_fail(bad_tree, capsys):
    code = main(["lint", "--root", str(bad_tree)])
    out = capsys.readouterr().out
    assert code == 1
    assert "FAIL" in out
    for rule_id in ("COR001", "DET001", "DET002"):
        assert rule_id in out


def test_json_format_is_artifact_schema(bad_tree, capsys):
    code = main(["lint", "--root", str(bad_tree), "--format", "json"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert payload["files_checked"] == 1
    rules = {f["rule"] for f in payload["findings"]}
    assert {"COR001", "DET001", "DET002"} <= rules
    assert all(
        {"path", "line", "col", "rule", "severity", "message"}
        <= set(f)
        for f in payload["findings"]
    )


def test_select_subset(bad_tree, capsys):
    code = main(["lint", "--root", str(bad_tree), "--select", "COR001"])
    out = capsys.readouterr().out
    assert code == 1
    assert "COR001" in out
    assert "DET001" not in out


def test_select_unknown_rule_errors(bad_tree, capsys):
    code = main(["lint", "--root", str(bad_tree), "--select", "NOPE999"])
    assert code == 2
    assert "unknown rule" in capsys.readouterr().err


def test_explicit_paths(bad_tree, capsys):
    clean = bad_tree / "clean.py"
    clean.write_text("x = 1\n")
    code = main(["lint", "--root", str(bad_tree), str(clean)])
    out = capsys.readouterr().out
    assert code == 0
    assert "1 files" in out


def test_baseline_workflow(bad_tree, tmp_path, capsys):
    baseline = tmp_path / "lint-baseline.json"
    # Adopt the backlog ...
    code = main(
        ["lint", "--root", str(bad_tree), "--baseline", str(baseline),
         "--write-baseline"]
    )
    assert code == 0
    assert baseline.is_file()
    capsys.readouterr()
    # ... the gate now passes ...
    code = main(
        ["lint", "--root", str(bad_tree), "--baseline", str(baseline)]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "baselined" in out
    # ... and a NEW violation still fails.
    (bad_tree / "new.py").write_text("import time\nt = time.time()\n")
    code = main(
        ["lint", "--root", str(bad_tree), "--baseline", str(baseline)]
    )
    out = capsys.readouterr().out
    assert code == 1
    assert "new.py" in out


def test_write_baseline_requires_path(bad_tree, capsys):
    code = main(["lint", "--root", str(bad_tree), "--write-baseline"])
    assert code == 2
    assert "--baseline" in capsys.readouterr().err


def test_list_rules(capsys):
    code = main(["lint", "--list-rules"])
    out = capsys.readouterr().out
    assert code == 0
    for rule_id in ("DET001", "COR001", "OBS001", "LOCK001", "LINT001"):
        assert rule_id in out


def test_lint_run_lands_in_ledger(bad_tree, tmp_path, capsys):
    """The satellite contract: lint runs flow through repro.obs."""
    ledger = tmp_path / "runs.jsonl"
    code = main(
        ["lint", "--root", str(bad_tree), "--ledger", str(ledger)]
    )
    assert code == 1
    capsys.readouterr()
    rows = [
        json.loads(line)
        for line in ledger.read_text().splitlines()
        if line.strip()
    ]
    assert len(rows) == 1
    manifest = rows[0]
    assert manifest["name"] == "lint"
    assert manifest["results"]["findings"] == 3.0
    assert manifest["metrics"]["lint.findings"]["value"] == 3.0
    assert manifest["metrics"]["lint.rules_run"]["value"] >= 10
    assert "lint.run" in manifest["span_table"]
