"""Tests for the lock-discipline checker (LOCK001 / LOCK002)."""

from __future__ import annotations

import ast
import textwrap

from repro.analysis import check_source
from repro.analysis.concurrency import analyze_class


def _src(text: str) -> str:
    return textwrap.dedent(text).lstrip("\n")


def lock_findings(source: str):
    return [
        f
        for f in check_source(source, relpath="repro/serve/fixture.py")
        if f.rule_id.startswith("LOCK")
    ]


def _class_report(source: str, name: str):
    tree = ast.parse(_src(source))
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == name:
            return analyze_class(node)
    raise AssertionError(f"no class {name}")


# A trimmed-down ModelRegistry shape: RLock + OrderedDict LRU cache,
# guarded helper, and one DELIBERATELY unguarded mutation in `evict`.
REGISTRY_SHAPED = _src(
    """
    import threading
    from collections import OrderedDict


    class CacheRegistry:
        def __init__(self, cache_size=8):
            self._lock = threading.RLock()
            self._cache = OrderedDict()
            self.cache_size = cache_size

        def _cache_put(self, key, value):
            # Lock-held helper: every call site takes the lock first.
            self._cache[key] = value
            self._cache.move_to_end(key)
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)

        def get(self, key):
            with self._lock:
                if key in self._cache:
                    self._cache.move_to_end(key)
                    return self._cache[key]
            value = self._load(key)
            with self._lock:
                self._cache_put(key, value)
            return value

        def _load(self, key):
            return ("loaded", key)

        def evict(self, key):
            # BUG (planted): mutates the cache without the lock.
            self._cache.pop(key, None)
    """
)


class TestLock001:
    def test_detects_planted_unguarded_mutation(self):
        findings = lock_findings(REGISTRY_SHAPED)
        assert [f.rule_id for f in findings] == ["LOCK001"]
        assert "evict" in findings[0].message
        assert "_cache" in findings[0].message

    def test_guarded_helper_pattern_is_clean(self):
        fixed = REGISTRY_SHAPED.replace(
            "        self._cache.pop(key, None)\n",
            "        with self._lock:\n"
            "            self._cache.pop(key, None)\n",
        )
        assert fixed != REGISTRY_SHAPED
        assert lock_findings(fixed) == []

    def test_report_inference(self):
        report = _class_report(REGISTRY_SHAPED, "CacheRegistry")
        assert report.lock_attrs == frozenset({"_lock"})
        assert "_cache" in report.protected
        assert len(report.violations) >= 1

    def test_unguarded_read_of_protected_attr(self):
        source = _src(
            """
            import threading


            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.n = 0

                def inc(self):
                    with self._lock:
                        self.n += 1

                def peek(self):
                    return self.n
            """
        )
        findings = lock_findings(source)
        assert [f.rule_id for f in findings] == ["LOCK001"]
        assert "read" in findings[0].message

    def test_snapshot_under_lock_is_clean(self):
        source = _src(
            """
            import threading


            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.n = 0

                def inc(self):
                    with self._lock:
                        self.n += 1

                def peek(self):
                    with self._lock:
                        value = self.n
                    return value
            """
        )
        assert lock_findings(source) == []

    def test_init_writes_are_exempt(self):
        # Construction precedes publication: __init__ writes do not need
        # the lock and do not mark attributes as protected by themselves.
        source = _src(
            """
            import threading


            class Plain:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.config = {"a": 1}

                def describe(self):
                    return dict(self.config)
            """
        )
        assert lock_findings(source) == []

    def test_lockless_class_skipped(self):
        source = _src(
            """
            class NoLock:
                def __init__(self):
                    self.items = []

                def add(self, x):
                    self.items.append(x)
            """
        )
        assert lock_findings(source) == []
        tree = ast.parse(source)
        cls = next(
            n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)
        )
        assert analyze_class(cls) is None

    def test_mutator_call_counts_as_write(self):
        source = _src(
            """
            import threading


            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = {}

                def put(self, k, v):
                    with self._lock:
                        self._items.setdefault(k, v)

                def drop(self, k):
                    self._items.pop(k, None)
            """
        )
        findings = lock_findings(source)
        assert [f.rule_id for f in findings] == ["LOCK001"]
        assert "write" in findings[0].message


class TestLock002:
    def test_reversed_order_flagged(self):
        source = _src(
            """
            import threading

            a_lock = threading.Lock()
            b_lock = threading.Lock()


            def forward():
                with a_lock:
                    with b_lock:
                        pass


            def backward():
                with b_lock:
                    with a_lock:
                        pass
            """
        )
        findings = lock_findings(source)
        assert [f.rule_id for f in findings] == ["LOCK002"]
        # The later-established order is the one flagged.
        assert findings[0].line > 8

    def test_consistent_order_clean(self):
        source = _src(
            """
            import threading

            a_lock = threading.Lock()
            b_lock = threading.Lock()


            def one():
                with a_lock:
                    with b_lock:
                        pass


            def two():
                with a_lock:
                    with b_lock:
                        pass
            """
        )
        assert lock_findings(source) == []

    def test_single_with_multiple_items(self):
        source = _src(
            """
            import threading

            a_lock = threading.Lock()
            b_lock = threading.Lock()


            def one():
                with a_lock, b_lock:
                    pass


            def two():
                with b_lock, a_lock:
                    pass
            """
        )
        findings = lock_findings(source)
        assert [f.rule_id for f in findings] == ["LOCK002"]


class TestScoping:
    def test_rule_only_runs_in_threaded_scopes(self):
        findings = [
            f
            for f in check_source(
                REGISTRY_SHAPED, relpath="repro/core/fixture.py"
            )
            if f.rule_id.startswith("LOCK")
        ]
        assert findings == []


class TestStreamScope:
    def test_lock_rules_cover_repro_stream(self):
        findings = [
            f
            for f in check_source(
                REGISTRY_SHAPED, relpath="repro/stream/fixture.py"
            )
            if f.rule_id.startswith("LOCK")
        ]
        assert [f.rule_id for f in findings] == ["LOCK001"]
