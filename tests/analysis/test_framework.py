"""Tests for the lint framework: contexts, directives, the runner."""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import analyze, check_source
from repro.analysis.framework import (
    FileContext,
    build_context,
    find_obs_doc,
    iter_python_files,
    parse_allows,
)
from repro.analysis.registry import (
    catalog,
    default_rules,
    known_rule_ids,
    rules_for,
)


def _src(text: str) -> str:
    return textwrap.dedent(text).lstrip("\n")


class TestAllowDirectives:
    def test_parse_justified(self):
        allows = parse_allows(
            "x = 1  # lint: allow[DET002] wall clock is provenance here\n"
        )
        assert len(allows) == 1
        assert allows[0].rule_ids == frozenset({"DET002"})
        assert allows[0].justified
        assert "provenance" in allows[0].reason

    def test_parse_multiple_ids(self):
        allows = parse_allows("y = 2  # lint: allow[DET002, DET003] both\n")
        assert allows[0].rule_ids == frozenset({"DET002", "DET003"})

    def test_unjustified_directive_is_lint001(self):
        findings = check_source(
            "import time\nx = time.time()  # lint: allow[DET002]\n"
        )
        ids = {f.rule_id for f in findings}
        # The bare directive does not suppress, and is itself flagged.
        assert "LINT001" in ids
        assert "DET002" in ids

    def test_unknown_rule_id_is_lint001(self):
        findings = check_source("x = 1  # lint: allow[NOPE999] because\n")
        assert [f.rule_id for f in findings] == ["LINT001"]

    def test_directive_in_string_literal_ignored(self):
        findings = check_source('s = "# lint: allow[DET002]"\n')
        assert findings == []

    def test_allow_on_previous_line(self):
        findings = check_source(
            _src(
                """
                import time
                # lint: allow[DET002] sanctioned timestamp
                stamp = time.time()
                """
            )
        )
        assert findings == []

    def test_allow_does_not_leak_to_other_lines(self):
        findings = check_source(
            _src(
                """
                import time
                a = time.time()  # lint: allow[DET002] sanctioned
                b = time.time()
                """
            )
        )
        assert [f.rule_id for f in findings] == ["DET002"]
        assert findings[0].line == 3


class TestFileContext:
    def test_module_name(self, tmp_path):
        path = tmp_path / "repro" / "serve" / "server.py"
        path.parent.mkdir(parents=True)
        path.write_text("x = 1\n")
        ctx = build_context(path, tmp_path)
        assert isinstance(ctx, FileContext)
        assert ctx.module == "repro.serve.server"

    def test_package_init_module_name(self, tmp_path):
        path = tmp_path / "repro" / "obs" / "__init__.py"
        path.parent.mkdir(parents=True)
        path.write_text("x = 1\n")
        ctx = build_context(path, tmp_path)
        assert ctx.module == "repro.obs"

    def test_syntax_error_becomes_lint002(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def f(:\n")
        report = analyze(tmp_path)
        assert [f.rule_id for f in report.findings] == ["LINT002"]
        assert report.findings[0].path == "broken.py"


class TestDiscovery:
    def test_skips_pycache(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "skip.py").write_text("x = 1\n")
        names = [p.name for p in iter_python_files(tmp_path)]
        assert names == ["ok.py"]

    def test_single_file_root(self, tmp_path):
        path = tmp_path / "one.py"
        path.write_text("x = 1\n")
        assert iter_python_files(path) == [path]

    def test_find_obs_doc_walks_upward(self, tmp_path):
        doc = tmp_path / "docs" / "OBSERVABILITY.md"
        doc.parent.mkdir()
        doc.write_text("# obs\n")
        nested = tmp_path / "src" / "repro"
        nested.mkdir(parents=True)
        assert find_obs_doc(nested) == doc

    def test_find_obs_doc_absent(self, tmp_path):
        assert find_obs_doc(tmp_path) is None


class TestRegistry:
    def test_default_rules_sorted_and_unique(self):
        rules = default_rules()
        ids = [rule.id for rule in rules]
        assert ids == sorted(ids)
        assert len(ids) == len(set(ids))
        assert len(ids) >= 10

    def test_rules_for_subset(self):
        rules = rules_for(["DET002", "COR001"])
        assert [r.id for r in rules] == ["COR001", "DET002"]

    def test_rules_for_unknown_raises(self):
        with pytest.raises(KeyError, match="NOPE999"):
            rules_for(["NOPE999"])

    def test_catalog_covers_framework_ids(self):
        ids = {row["id"] for row in catalog()}
        assert {"LINT001", "LINT002"} <= ids
        assert ids <= known_rule_ids()

    def test_scoped_rule_skips_other_modules(self):
        # DET004 is scoped to core/stats/vendors; the same source in
        # an unscoped module raises nothing.
        source = "for item in {1, 2, 3}:\n    pass\n"
        in_scope = check_source(source, relpath="repro/core/thing.py")
        out_of_scope = check_source(source, relpath="repro/pipeline/x.py")
        assert [f.rule_id for f in in_scope] == ["DET004"]
        assert out_of_scope == []


class TestAnalyzeRunner:
    def test_report_shape(self, tmp_path):
        (tmp_path / "a.py").write_text("import time\nt = time.time()\n")
        (tmp_path / "b.py").write_text("x = 1\n")
        report = analyze(tmp_path)
        assert report.n_files == 2
        assert not report.ok
        assert [f.rule_id for f in report.findings] == ["DET002"]
        payload = report.to_dict()
        assert payload["files_checked"] == 2
        assert payload["findings"][0]["rule"] == "DET002"

    def test_suppressed_findings_tracked(self, tmp_path):
        (tmp_path / "a.py").write_text(
            "import time\nt = time.time()  # lint: allow[DET002] sanctioned\n"
        )
        report = analyze(tmp_path)
        assert report.ok
        assert len(report.suppressed) == 1

    def test_subset_run_keeps_foreign_allows_valid(self, tmp_path):
        # An allow directive naming a rule outside the selected subset
        # must not be reported as unknown.
        (tmp_path / "a.py").write_text(
            "x = 1  # lint: allow[COR003] best-effort cleanup\n"
        )
        report = analyze(tmp_path, rules=rules_for(["DET002"]))
        assert report.ok
