"""Per-rule tests: fixture sources with known violations (and fixes)."""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import check_source
from repro.analysis.rules.observability import load_name_inventory


def _src(text: str) -> str:
    return textwrap.dedent(text).lstrip("\n")


def ids_of(source: str, relpath: str = "repro/example.py", **kwargs):
    return [f.rule_id for f in check_source(source, relpath=relpath, **kwargs)]


class TestDET001GlobalRandomDraw:
    def test_stdlib_global_draw(self):
        assert ids_of("import random\nx = random.random()\n") == ["DET001"]

    def test_numpy_global_draw(self):
        source = "import numpy as np\nx = np.random.normal(0, 1, 10)\n"
        assert ids_of(source) == ["DET001"]

    def test_seeded_instance_is_clean(self):
        source = _src(
            """
            import numpy as np
            rng = np.random.default_rng(7)
            x = rng.normal(0, 1, 10)
            """
        )
        assert ids_of(source) == []

    def test_instance_rng_attribute_is_clean(self):
        # self.rng.normal(...) roots at `self`, not a module name.
        source = _src(
            """
            class Sim:
                def draw(self):
                    return self.rng.normal(0, 1)
            """
        )
        assert ids_of(source) == []


class TestDET002WallClockRead:
    def test_time_time(self):
        assert ids_of("import time\nt = time.time()\n") == ["DET002"]

    def test_datetime_now(self):
        source = "import datetime\nt = datetime.datetime.now()\n"
        assert ids_of(source) == ["DET002"]

    def test_zero_arg_gmtime_flagged(self):
        source = "import time\nt = time.gmtime()\n"
        assert ids_of(source) == ["DET002"]

    def test_gmtime_with_argument_converts_not_reads(self):
        source = "import time\nt = time.gmtime(0.0)\n"
        assert ids_of(source) == []

    def test_monotonic_clocks_are_clean(self):
        source = _src(
            """
            import time
            a = time.monotonic()
            b = time.perf_counter()
            """
        )
        assert ids_of(source) == []


class TestDET003UnseededEntropy:
    def test_unseeded_default_rng(self):
        source = "import numpy as np\nrng = np.random.default_rng()\n"
        assert ids_of(source) == ["DET003"]

    def test_seeded_default_rng_clean(self):
        source = "import numpy as np\nrng = np.random.default_rng(0)\n"
        assert ids_of(source) == []

    def test_unseeded_random_random_class(self):
        assert ids_of("import random\nr = random.Random()\n") == ["DET003"]

    def test_global_reseed(self):
        assert ids_of("import random\nrandom.seed(4)\n") == ["DET003"]

    def test_ambient_entropy(self):
        assert ids_of("import os\nx = os.urandom(8)\n") == ["DET003"]
        assert ids_of("import uuid\nx = uuid.uuid4()\n") == ["DET003"]
        assert ids_of("import secrets\nx = secrets.token_hex()\n") == [
            "DET003"
        ]

    def test_content_hash_seed_is_clean(self):
        source = _src(
            """
            import random
            import zlib
            r = random.Random(zlib.crc32(b"histogram-name"))
            """
        )
        assert ids_of(source) == []


class TestDET004SetOrderIteration:
    CORE = "repro/core/thing.py"

    def test_for_over_set_literal(self):
        source = "for x in {1, 2}:\n    pass\n"
        assert ids_of(source, relpath=self.CORE) == ["DET004"]

    def test_comprehension_over_set_call(self):
        source = "out = [x for x in set(items)]\n"
        assert ids_of(source, relpath=self.CORE) == ["DET004"]

    def test_list_of_set_union(self):
        source = "order = list(seen | {3})\n"
        assert ids_of(source, relpath=self.CORE) == ["DET004"]

    def test_sorted_set_is_the_fix(self):
        source = "for x in sorted({2, 1}):\n    pass\n"
        assert ids_of(source, relpath=self.CORE) == []

    def test_len_and_membership_are_clean(self):
        source = "n = len({1, 2})\nhit = 3 in {1, 2, 3}\n"
        assert ids_of(source, relpath=self.CORE) == []


class TestCOR001MutableDefaultArg:
    def test_list_default(self):
        assert ids_of("def f(xs=[]):\n    return xs\n") == ["COR001"]

    def test_dict_call_default(self):
        assert ids_of("def f(m=dict()):\n    return m\n") == ["COR001"]

    def test_kwonly_default(self):
        assert ids_of("def f(*, m={}):\n    return m\n") == ["COR001"]

    def test_none_default_clean(self):
        assert ids_of("def f(xs=None):\n    return xs or []\n") == []

    def test_tuple_default_clean(self):
        assert ids_of("def f(xs=()):\n    return xs\n") == []


class TestCOR002BareExcept:
    def test_bare_except(self):
        source = "try:\n    pass\nexcept:\n    raise ValueError\n"
        assert ids_of(source) == ["COR002"]

    def test_typed_except_clean(self):
        source = "try:\n    pass\nexcept OSError:\n    raise\n"
        assert ids_of(source) == []


class TestCOR003SilentBroadExcept:
    def test_silent_exception_pass(self):
        source = "try:\n    pass\nexcept Exception:\n    pass\n"
        assert ids_of(source) == ["COR003"]

    def test_bare_silent_is_both(self):
        source = "try:\n    pass\nexcept:\n    pass\n"
        assert sorted(ids_of(source)) == ["COR002", "COR003"]

    def test_silent_ellipsis_body(self):
        source = "try:\n    pass\nexcept Exception:\n    ...\n"
        assert ids_of(source) == ["COR003"]

    def test_narrow_silent_pass_allowed(self):
        # Swallowing a *specific* exception is a judgement call, not
        # automatically a finding.
        source = "try:\n    pass\nexcept FileNotFoundError:\n    pass\n"
        assert ids_of(source) == []

    def test_logged_broad_handler_clean(self):
        source = _src(
            """
            try:
                pass
            except Exception as exc:
                log.error("failed", extra={"error": repr(exc)})
            """
        )
        assert ids_of(source) == []


@pytest.fixture
def obs_doc(tmp_path):
    doc = tmp_path / "OBSERVABILITY.md"
    doc.write_text(
        _src(
            """
            # Observability

            ## Naming convention

            | span | where |
            |------|-------|
            | `bst.fit` | core |
            | `vendor.<v>.generate` | simulators |

            | metric | type |
            |--------|------|
            | `em.iterations` | histogram |
            | `quality.*` | gauge |

            ## Something else
            """
        )
    )
    return doc


class TestOBS001NameStyle:
    def test_uppercase_name(self):
        source = 'with span("BST.Fit"):\n    pass\n'
        assert ids_of(source) == ["OBS001"]

    def test_spaced_name(self):
        source = 'counter("bst fit").inc()\n'
        assert ids_of(source) == ["OBS001"]

    def test_fstring_fragment_checked(self):
        source = 'with span(f"Vendor.{v}.generate"):\n    pass\n'
        assert ids_of(source) == ["OBS001"]

    def test_lowercase_dotted_clean(self):
        source = 'with span("bst.fit_upload"):\n    pass\n'
        assert ids_of(source) == []


class TestOBS002Inventory:
    def test_documented_name_clean(self, obs_doc):
        source = 'with span("bst.fit"):\n    pass\n'
        assert ids_of(source, obs_doc=obs_doc) == []

    def test_undocumented_name_flagged(self, obs_doc):
        source = 'with span("bst.not_in_doc"):\n    pass\n'
        assert ids_of(source, obs_doc=obs_doc) == ["OBS002"]

    def test_placeholder_row_matches(self, obs_doc):
        source = 'with span("vendor.ookla.generate"):\n    pass\n'
        assert ids_of(source, obs_doc=obs_doc) == []

    def test_wildcard_row_matches(self, obs_doc):
        source = 'gauge("quality.nan_rate").set(0.0)\n'
        assert ids_of(source, obs_doc=obs_doc) == []

    def test_without_doc_rule_skips(self):
        source = 'with span("anything.goes"):\n    pass\n'
        assert ids_of(source, obs_doc=None) == []

    def test_inventory_parser(self, obs_doc):
        patterns = load_name_inventory(obs_doc)
        assert "^bst\\.fit$" in patterns
        assert any("[a-z0-9_]+" in p for p in patterns)
        assert any(".+" in p for p in patterns)


class TestDET005StreamWallClock:
    STREAM = "repro/stream/example.py"

    def test_monotonic_reference_flagged_in_stream(self):
        # DET002 allows monotonic clocks; DET005 bans even referencing
        # them inside repro.stream.
        source = "import time\nclock = time.monotonic\n"
        assert ids_of(source, relpath=self.STREAM) == ["DET005"]

    def test_sleep_call_flagged_in_stream(self):
        source = "import time\ntime.sleep(1.0)\n"
        assert ids_of(source, relpath=self.STREAM) == ["DET005"]

    def test_from_time_import_flagged(self):
        # `from time import monotonic` would alias the clock past the
        # attribute check, so the import form itself is banned.
        source = "from time import monotonic\nt = monotonic()\n"
        assert ids_of(source, relpath=self.STREAM) == ["DET005"]

    def test_wall_clock_read_double_flagged(self):
        source = "import time\nt = time.time()\n"
        assert sorted(ids_of(source, relpath=self.STREAM)) == [
            "DET002",
            "DET005",
        ]

    def test_injected_clock_is_clean(self):
        source = _src(
            """
            def tick(clock, sleep):
                sleep(1.0)
                return clock()
            """
        )
        assert ids_of(source, relpath=self.STREAM) == []

    def test_monotonic_is_fine_outside_stream(self):
        source = "import time\nclock = time.monotonic\n"
        assert ids_of(source, relpath="repro/serve/example.py") == []

    def test_allow_directive_covers_the_bridge(self):
        source = _src(
            """
            import time


            def system_clock():
                # lint: allow[DET005] the one sanctioned bridge
                return time.monotonic
            """
        )
        assert ids_of(source, relpath=self.STREAM) == []
