"""Baseline files: fingerprints, round-trips, multiset filtering."""

from __future__ import annotations

import json

import pytest

from repro.analysis import Baseline, finding_fingerprint
from repro.analysis.framework import Finding


def _finding(line=10, snippet="t = time.time()", path="repro/a.py",
             rule="DET002"):
    return Finding(
        path=path,
        line=line,
        col=4,
        rule_id=rule,
        severity="error",
        message="wall-clock read time.time()",
        snippet=snippet,
    )


class TestFingerprint:
    def test_line_number_free(self):
        # Unrelated edits shift code; the fingerprint must not move.
        assert finding_fingerprint(_finding(line=10)) == finding_fingerprint(
            _finding(line=99)
        )

    def test_sensitive_to_source_text(self):
        assert finding_fingerprint(_finding()) != finding_fingerprint(
            _finding(snippet="t = time.time()  # changed")
        )

    def test_sensitive_to_rule_and_path(self):
        base = finding_fingerprint(_finding())
        assert base != finding_fingerprint(_finding(rule="DET003"))
        assert base != finding_fingerprint(_finding(path="repro/b.py"))


class TestRoundTrip:
    def test_save_load(self, tmp_path):
        path = tmp_path / "baseline.json"
        original = Baseline.from_findings(
            [_finding(), _finding(path="repro/b.py")], reason="seed backlog"
        )
        original.save(path)
        loaded = Baseline.load(path)
        assert len(loaded) == 2
        assert {e.fingerprint for e in loaded.entries} == {
            e.fingerprint for e in original.entries
        }
        assert all(e.reason == "seed backlog" for e in loaded.entries)

    def test_absent_file_is_empty(self, tmp_path):
        assert len(Baseline.load(tmp_path / "missing.json")) == 0

    def test_corrupt_json_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="corrupt baseline"):
            Baseline.load(path)

    def test_unknown_schema_raises(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(json.dumps({"schema": 99, "entries": []}))
        with pytest.raises(ValueError, match="schema"):
            Baseline.load(path)

    def test_saved_file_is_stable_json(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.from_findings([_finding()]).save(path)
        data = json.loads(path.read_text())
        assert data["schema"] == 1
        entry = data["entries"][0]
        assert entry["rule"] == "DET002"
        assert len(entry["fingerprint"]) == 16


class TestFilter:
    def test_known_findings_match(self):
        finding = _finding()
        baseline = Baseline.from_findings([finding])
        new, matched = baseline.filter([finding])
        assert new == []
        assert matched == [finding]

    def test_new_finding_surfaces(self):
        baseline = Baseline.from_findings([_finding()])
        fresh = _finding(path="repro/new.py")
        new, matched = baseline.filter([_finding(), fresh])
        assert new == [fresh]
        assert matched == [_finding()]

    def test_multiset_semantics(self):
        # One baselined entry covers ONE occurrence of that line text;
        # a duplicate offending line elsewhere still fails the gate.
        one = _finding(line=5)
        twin = _finding(line=50)
        baseline = Baseline.from_findings([one])
        new, matched = baseline.filter([one, twin])
        assert len(matched) == 1
        assert len(new) == 1
