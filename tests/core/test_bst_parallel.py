"""Tests for the parallel BST fit path.

``--jobs N`` must be a pure wall-clock optimisation: the parallel fit
fans independent per-upload-group download stages over a process pool,
and every array in the result must be byte-identical to the serial fit.
"""

import numpy as np
import pytest

from repro.core import BSTConfig, BSTModel
from repro.core.parallel import parallel_map, resolve_jobs
from repro.experiments.base import Scale
from repro.experiments.data import ookla_dataset
from repro.market import city_catalog
from repro.pipeline import contextualize


@pytest.fixture
def catalog():
    return city_catalog("A")


def _sample(catalog, seed=0, n_per_tier=200):
    rng = np.random.default_rng(seed)
    downloads, uploads = [], []
    for plan in catalog.plans:
        downloads.append(
            rng.normal(plan.download_mbps * 1.1,
                       plan.download_mbps * 0.06, n_per_tier)
        )
        uploads.append(
            rng.normal(plan.upload_mbps * 1.1,
                       plan.upload_mbps * 0.05, n_per_tier)
        )
    return np.concatenate(downloads), np.concatenate(uploads)


class TestResolveJobs:
    def test_none_means_serial(self):
        assert resolve_jobs(None) == 1

    def test_one_means_serial(self):
        assert resolve_jobs(1) == 1

    def test_zero_means_all_cpus(self):
        import os

        assert resolve_jobs(0) == max(1, os.cpu_count() or 1)

    def test_negative_means_all_cpus(self):
        import os

        assert resolve_jobs(-3) == max(1, os.cpu_count() or 1)

    def test_explicit_count_passes_through(self):
        assert resolve_jobs(4) == 4

    def test_config_default_is_serial(self):
        assert BSTConfig().jobs == 1


class TestParallelMap:
    def test_serial_and_pool_agree(self):
        tasks = list(range(20))
        serial = parallel_map(_square, tasks, jobs=1)
        pooled = parallel_map(_square, tasks, jobs=2)
        assert serial == pooled == [t * t for t in tasks]

    def test_order_preserved(self):
        tasks = list(range(50))
        assert parallel_map(_square, tasks, jobs=2) == [
            t * t for t in tasks
        ]

    def test_empty_tasks(self):
        assert parallel_map(_square, [], jobs=4) == []


def _square(x):
    return x * x


def _traced_square(x):
    from repro.obs import metrics as obs_metrics
    from repro.obs.trace import span

    with span("worker.square", task=x):
        obs_metrics.counter("worker.calls").inc()
        obs_metrics.histogram("worker.value").observe(float(x))
        return x * x


class TestWorkerObservability:
    """Spans and metrics recorded inside pool workers reach the parent."""

    def test_worker_spans_merged(self):
        from repro.obs import use_collector

        with use_collector() as collector:
            parallel_map(_traced_square, list(range(6)), jobs=2)
        names = [sp.name for sp in collector.spans()]
        assert names.count("worker.square") == 6
        pool_spans = [
            sp for sp in collector.spans() if sp.name == "parallel.map"
        ]
        assert len(pool_spans) == 1
        # Worker spans are re-parented under the pool span and tagged.
        for sp in collector.spans():
            if sp.name != "worker.square":
                continue
            assert sp.parent_id == pool_spans[0].span_id
            assert "worker" in sp.attributes
            assert "task" in sp.attributes

    def test_worker_metrics_merged(self):
        from repro.obs import use_registry

        with use_registry() as registry:
            parallel_map(_traced_square, list(range(8)), jobs=2)
        snap = registry.snapshot()
        assert snap["worker.calls"]["value"] == 8
        assert snap["worker.value"]["count"] == 8
        assert snap["worker.value"]["min"] == 0.0
        assert snap["worker.value"]["max"] == 7.0

    def test_serial_path_records_directly(self):
        from repro.obs import use_collector, use_registry

        with use_collector() as collector, use_registry() as registry:
            parallel_map(_traced_square, list(range(3)), jobs=1)
        names = [sp.name for sp in collector.spans()]
        assert names.count("worker.square") == 3
        assert registry.snapshot()["worker.calls"]["value"] == 3

    def test_no_sinks_no_wrapping(self):
        # With obs disabled the pool path still returns correct results.
        assert parallel_map(_traced_square, [2, 3], jobs=2) == [4, 9]


class TestParallelFitIdentity:
    def test_fit_identical_across_jobs(self, catalog):
        downloads, uploads = _sample(catalog)
        serial = BSTModel(catalog).fit(downloads, uploads, jobs=1)
        parallel = BSTModel(catalog).fit(downloads, uploads, jobs=2)
        np.testing.assert_array_equal(serial.tiers, parallel.tiers)
        np.testing.assert_array_equal(
            serial.group_indices, parallel.group_indices
        )
        assert serial.download_stages.keys() == (
            parallel.download_stages.keys()
        )
        for gi in serial.download_stages:
            np.testing.assert_array_equal(
                serial.download_stages[gi].cluster_means,
                parallel.download_stages[gi].cluster_means,
            )
            np.testing.assert_array_equal(
                serial.download_stages[gi].cluster_tiers,
                parallel.download_stages[gi].cluster_tiers,
            )

    def test_config_jobs_used_when_fit_arg_omitted(self, catalog):
        downloads, uploads = _sample(catalog, seed=1)
        serial = BSTModel(catalog).fit(downloads, uploads)
        via_config = BSTModel(catalog, BSTConfig(jobs=2)).fit(
            downloads, uploads
        )
        np.testing.assert_array_equal(serial.tiers, via_config.tiers)

    def test_contextualize_identical_across_jobs(self):
        tests = ookla_dataset("A", Scale.SMALL, seed=2)
        catalog = city_catalog("A")
        serial = contextualize(tests, catalog, jobs=1)
        parallel = contextualize(tests, catalog, jobs=2)
        np.testing.assert_array_equal(
            serial.bst_result.tiers, parallel.bst_result.tiers
        )
        np.testing.assert_array_equal(
            serial.bst_result.group_indices,
            parallel.bst_result.group_indices,
        )
