"""Tests for the parallel BST fit path.

``--jobs N`` must be a pure wall-clock optimisation: the parallel fit
fans independent per-upload-group download stages over a process pool,
and every array in the result must be byte-identical to the serial fit.
"""

import numpy as np
import pytest

from repro.core import BSTConfig, BSTModel
from repro.core.parallel import parallel_map, resolve_jobs
from repro.experiments.base import Scale
from repro.experiments.data import ookla_dataset
from repro.market import city_catalog
from repro.pipeline import contextualize


@pytest.fixture
def catalog():
    return city_catalog("A")


def _sample(catalog, seed=0, n_per_tier=200):
    rng = np.random.default_rng(seed)
    downloads, uploads = [], []
    for plan in catalog.plans:
        downloads.append(
            rng.normal(plan.download_mbps * 1.1,
                       plan.download_mbps * 0.06, n_per_tier)
        )
        uploads.append(
            rng.normal(plan.upload_mbps * 1.1,
                       plan.upload_mbps * 0.05, n_per_tier)
        )
    return np.concatenate(downloads), np.concatenate(uploads)


class TestResolveJobs:
    def test_none_means_serial(self):
        assert resolve_jobs(None) == 1

    def test_one_means_serial(self):
        assert resolve_jobs(1) == 1

    def test_zero_means_all_cpus(self):
        import os

        assert resolve_jobs(0) == max(1, os.cpu_count() or 1)

    def test_negative_means_all_cpus(self):
        import os

        assert resolve_jobs(-3) == max(1, os.cpu_count() or 1)

    def test_explicit_count_passes_through(self):
        assert resolve_jobs(4) == 4

    def test_config_default_is_serial(self):
        assert BSTConfig().jobs == 1


class TestParallelMap:
    def test_serial_and_pool_agree(self):
        tasks = list(range(20))
        serial = parallel_map(_square, tasks, jobs=1)
        pooled = parallel_map(_square, tasks, jobs=2)
        assert serial == pooled == [t * t for t in tasks]

    def test_order_preserved(self):
        tasks = list(range(50))
        assert parallel_map(_square, tasks, jobs=2) == [
            t * t for t in tasks
        ]

    def test_empty_tasks(self):
        assert parallel_map(_square, [], jobs=4) == []


def _square(x):
    return x * x


class TestParallelFitIdentity:
    def test_fit_identical_across_jobs(self, catalog):
        downloads, uploads = _sample(catalog)
        serial = BSTModel(catalog).fit(downloads, uploads, jobs=1)
        parallel = BSTModel(catalog).fit(downloads, uploads, jobs=2)
        np.testing.assert_array_equal(serial.tiers, parallel.tiers)
        np.testing.assert_array_equal(
            serial.group_indices, parallel.group_indices
        )
        assert serial.download_stages.keys() == (
            parallel.download_stages.keys()
        )
        for gi in serial.download_stages:
            np.testing.assert_array_equal(
                serial.download_stages[gi].cluster_means,
                parallel.download_stages[gi].cluster_means,
            )
            np.testing.assert_array_equal(
                serial.download_stages[gi].cluster_tiers,
                parallel.download_stages[gi].cluster_tiers,
            )

    def test_config_jobs_used_when_fit_arg_omitted(self, catalog):
        downloads, uploads = _sample(catalog, seed=1)
        serial = BSTModel(catalog).fit(downloads, uploads)
        via_config = BSTModel(catalog, BSTConfig(jobs=2)).fit(
            downloads, uploads
        )
        np.testing.assert_array_equal(serial.tiers, via_config.tiers)

    def test_contextualize_identical_across_jobs(self):
        tests = ookla_dataset("A", Scale.SMALL, seed=2)
        catalog = city_catalog("A")
        serial = contextualize(tests, catalog, jobs=1)
        parallel = contextualize(tests, catalog, jobs=2)
        np.testing.assert_array_equal(
            serial.bst_result.tiers, parallel.bst_result.tiers
        )
        np.testing.assert_array_equal(
            serial.bst_result.group_indices,
            parallel.bst_result.group_indices,
        )
