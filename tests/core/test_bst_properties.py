"""Property-based tests: BST over randomly generated plan catalogs.

The methodology must not be specific to the four studied menus: for any
catalog whose upload rates are separated and whose per-plan measurement
noise is moderate, BST should recover the tiers of clean synthetic
data.  Hypothesis generates the catalogs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BSTModel, tier_accuracy, upload_group_accuracy
from repro.market import Plan, PlanCatalog


@st.composite
def separated_catalogs(draw):
    """Catalogs with log-separated upload rates and download menus."""
    n_groups = draw(st.integers(min_value=2, max_value=4))
    # Upload rates separated by at least ~1.8x keep clusters resolvable.
    uploads = []
    value = draw(st.floats(min_value=2.0, max_value=6.0))
    for _ in range(n_groups):
        uploads.append(round(value, 1))
        value *= draw(st.floats(min_value=1.9, max_value=3.0))
    plans = []
    download = draw(st.floats(min_value=20.0, max_value=60.0))
    for upload in uploads:
        n_plans = draw(st.integers(min_value=1, max_value=2))
        for _ in range(n_plans):
            plans.append(Plan(round(download, 0), upload))
            download *= draw(st.floats(min_value=2.2, max_value=3.5))
    return PlanCatalog("Hypothetical-ISP", plans)


def synthetic_sample(catalog, n_per_tier, seed):
    rng = np.random.default_rng(seed)
    downloads, uploads, tiers = [], [], []
    for plan in catalog.plans:
        downloads.append(
            rng.normal(
                plan.download_mbps * 1.1,
                plan.download_mbps * 0.05,
                n_per_tier,
            )
        )
        uploads.append(
            rng.normal(
                plan.upload_mbps * 1.1,
                plan.upload_mbps * 0.04,
                n_per_tier,
            )
        )
        tiers.append(np.full(n_per_tier, plan.tier))
    return (
        np.concatenate(downloads),
        np.concatenate(uploads),
        np.concatenate(tiers),
    )


@given(separated_catalogs(), st.integers(min_value=0, max_value=10**6))
@settings(max_examples=25, deadline=None)
def test_bst_recovers_tiers_on_any_separated_catalog(catalog, seed):
    downloads, uploads, tiers = synthetic_sample(catalog, 120, seed)
    result = BSTModel(catalog).fit(downloads, uploads)
    assert upload_group_accuracy(result, tiers) > 0.9
    assert tier_accuracy(result, tiers) > 0.8


@given(separated_catalogs())
@settings(max_examples=25, deadline=None)
def test_assigned_tiers_always_in_catalog(catalog):
    downloads, uploads, _ = synthetic_sample(catalog, 60, 7)
    result = BSTModel(catalog).fit(downloads, uploads)
    assert set(result.tiers.tolist()) <= set(catalog.tiers)
    assert (result.group_indices >= 0).all()
    assert (
        result.group_indices < len(catalog.upload_groups())
    ).all()


@given(separated_catalogs())
@settings(max_examples=15, deadline=None)
def test_fit_deterministic_per_catalog(catalog):
    downloads, uploads, _ = synthetic_sample(catalog, 50, 3)
    a = BSTModel(catalog).fit(downloads, uploads)
    b = BSTModel(catalog).fit(downloads, uploads)
    assert np.array_equal(a.tiers, b.tiers)


@given(separated_catalogs())
@settings(max_examples=15, deadline=None)
def test_describe_mentions_every_group(catalog):
    text = BSTModel(catalog).describe()
    for group in catalog.upload_groups():
        assert group.tier_label in text
