"""Tests for accuracy evaluation against ground truth."""

import numpy as np
import pytest

from repro.core import (
    BSTModel,
    accuracy_report,
    tier_accuracy,
    upload_group_accuracy,
)
from repro.market import city_catalog

from tests.core.test_bst import synthetic_city_sample


@pytest.fixture
def fitted():
    catalog = city_catalog("A")
    downloads, uploads, tiers = synthetic_city_sample(catalog, seed=9)
    result = BSTModel(catalog).fit(downloads, uploads)
    return result, tiers


def test_high_accuracy_on_clean_data(fitted):
    result, tiers = fitted
    assert tier_accuracy(result, tiers) > 0.97
    assert upload_group_accuracy(result, tiers) > 0.99


def test_upload_group_at_least_tier_accuracy(fitted):
    result, tiers = fitted
    assert upload_group_accuracy(result, tiers) >= tier_accuracy(
        result, tiers
    )


def test_report_contents(fitted):
    result, tiers = fitted
    report = accuracy_report(result, tiers)
    assert report.n_measurements == len(tiers)
    assert set(report.per_group_tier_accuracy) <= {
        "Tier 1-3", "Tier 4", "Tier 5", "Tier 6",
    }
    assert sum(report.confusion.values()) == len(tiers)


def test_confusion_diagonal_dominates(fitted):
    result, tiers = fitted
    report = accuracy_report(result, tiers)
    diagonal = sum(
        n for (true_t, got_t), n in report.confusion.items()
        if true_t == got_t
    )
    assert diagonal / report.n_measurements > 0.97


def test_length_mismatch_rejected(fitted):
    result, tiers = fitted
    with pytest.raises(ValueError):
        tier_accuracy(result, tiers[:-1])
    with pytest.raises(ValueError):
        upload_group_accuracy(result, tiers[:-1])
    with pytest.raises(ValueError):
        accuracy_report(result, tiers[:-1])


def test_unknown_tier_in_truth_rejected(fitted):
    result, tiers = fitted
    bad = tiers.copy()
    bad[0] = 99
    with pytest.raises(KeyError):
        upload_group_accuracy(result, bad)


def test_perfect_and_zero_accuracy(fitted):
    result, _ = fitted
    assert tier_accuracy(result, result.tiers) == 1.0
    wrong = np.where(result.tiers == 1, 2, 1)
    assert tier_accuracy(result, wrong) == 0.0
