"""Tests for longitudinal tier-change detection."""

import pytest

from repro.core.longitudinal import (
    detect_tier_changes,
    monthly_majority_tiers,
)
from repro.frame import ColumnTable


def _history(rows):
    """rows: (user, month, tier) repeated per test."""
    return ColumnTable(
        {
            "user_id": [r[0] for r in rows],
            "month": [r[1] for r in rows],
            "bst_tier": [r[2] for r in rows],
        }
    )


def _user_months(user, month_tiers, tests_per_month=3):
    rows = []
    for month, tier in month_tiers:
        rows += [(user, month, tier)] * tests_per_month
    return rows


class TestMonthlyMajority:
    def test_majority_wins(self):
        table = _history(
            [("u", 1, 2), ("u", 1, 2), ("u", 1, 3)]
        )
        assert monthly_majority_tiers(table) == {"u": {1: 2}}

    def test_min_tests_filters(self):
        table = _history([("u", 1, 2)])
        assert monthly_majority_tiers(table, min_tests=2) == {}

    def test_invalid_min_tests(self):
        with pytest.raises(ValueError):
            monthly_majority_tiers(_history([("u", 1, 2)]), min_tests=0)


class TestChangeDetection:
    def test_stable_user_no_changes(self):
        table = _history(
            _user_months("u", [(m, 4) for m in range(1, 13)])
        )
        assert detect_tier_changes(table) == []

    def test_persistent_upgrade_detected(self):
        table = _history(
            _user_months(
                "u",
                [(1, 2), (2, 2), (3, 2), (4, 5), (5, 5), (6, 5)],
            )
        )
        changes = detect_tier_changes(table)
        assert len(changes) == 1
        change = changes[0]
        assert change.month == 4
        assert change.old_tier == 2 and change.new_tier == 5
        assert change.is_upgrade

    def test_downgrade_detected(self):
        table = _history(
            _user_months(
                "u", [(1, 6), (2, 6), (3, 1), (4, 1), (5, 1)]
            )
        )
        (change,) = detect_tier_changes(table)
        assert not change.is_upgrade

    def test_single_month_flip_ignored(self):
        # BST noise: one odd month between stable stretches.
        table = _history(
            _user_months(
                "u",
                [(1, 2), (2, 2), (3, 5), (4, 2), (5, 2), (6, 2)],
            )
        )
        assert detect_tier_changes(table) == []

    def test_two_changes_in_one_year(self):
        table = _history(
            _user_months(
                "u",
                [
                    (1, 1), (2, 1), (3, 4), (4, 4), (5, 4),
                    (6, 6), (7, 6), (8, 6),
                ],
            )
        )
        changes = detect_tier_changes(table)
        assert [(c.old_tier, c.new_tier) for c in changes] == [
            (1, 4), (4, 6),
        ]

    def test_short_history_skipped(self):
        table = _history(_user_months("u", [(1, 2), (2, 5)]))
        assert detect_tier_changes(table, persistence_months=2) == []

    def test_invalid_persistence(self):
        with pytest.raises(ValueError):
            detect_tier_changes(_history([("u", 1, 2)]),
                                persistence_months=0)

    def test_simulated_population_mostly_stable(self, ookla_ctx_a):
        # The simulator keeps each household on one plan all year, so
        # detected changes (BST noise surviving the persistence filter)
        # must be rare.
        native = ookla_ctx_a.table.filter(
            ookla_ctx_a.table["origin"] == "native"
        )
        changes = detect_tier_changes(native)
        users = len(set(native["user_id"].tolist()))
        assert len(changes) < 0.05 * users
