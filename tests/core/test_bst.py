"""Tests for the BST two-stage clustering pipeline."""

import numpy as np
import pytest

from repro.core import BSTConfig, BSTModel
from repro.market import Plan, PlanCatalog, city_catalog


@pytest.fixture
def catalog():
    return city_catalog("A")


def synthetic_city_sample(catalog, n_per_tier=300, seed=0):
    """Clean synthetic (download, upload, tier) data around plan rates."""
    rng = np.random.default_rng(seed)
    downloads, uploads, tiers = [], [], []
    for plan in catalog.plans:
        downloads.append(
            rng.normal(plan.download_mbps * 1.1, plan.download_mbps * 0.06,
                       n_per_tier)
        )
        uploads.append(
            rng.normal(plan.upload_mbps * 1.1, plan.upload_mbps * 0.05,
                       n_per_tier)
        )
        tiers.append(np.full(n_per_tier, plan.tier))
    return (
        np.concatenate(downloads),
        np.concatenate(uploads),
        np.concatenate(tiers),
    )


class TestUploadStage:
    def test_groups_recovered(self, catalog):
        downloads, uploads, tiers = synthetic_city_sample(catalog)
        model = BSTModel(catalog)
        fit, group_indices = model.fit_upload_stage(uploads)
        assert len(fit.groups) == 4
        assert fit.cluster_counts.sum() == len(uploads)

    def test_cluster_means_near_offered(self, catalog):
        _, uploads, _ = synthetic_city_sample(catalog)
        fit, _ = BSTModel(catalog).fit_upload_stage(uploads)
        for group, mean in zip(fit.groups, fit.cluster_means):
            assert mean == pytest.approx(group.upload_mbps * 1.1, rel=0.15)

    def test_off_menu_smear_gets_extra_components(self, catalog):
        rng = np.random.default_rng(1)
        clean = np.concatenate(
            [rng.normal(u * 1.1, 0.4, 300) for u in catalog.upload_speeds]
        )
        smear = rng.uniform(0.5, 2.5, 200)  # WiFi-capped uploads
        fit, groups = BSTModel(catalog).fit_upload_stage(
            np.concatenate([clean, smear])
        )
        assert len(fit.component_means) > len(fit.groups)
        # The smear lands in the lowest upload group.
        assert set(groups[-200:].tolist()) == {0}

    def test_too_few_measurements(self, catalog):
        with pytest.raises(ValueError, match="at least"):
            BSTModel(catalog).fit_upload_stage(np.asarray([5.0]))

    def test_nan_uploads_rejected(self, catalog):
        # Regression: NaNs used to be silently dropped, misaligning the
        # returned group indices with the caller's rows.
        _, uploads, _ = synthetic_city_sample(catalog)
        with_nan = np.concatenate([uploads, [np.nan]])
        with pytest.raises(ValueError, match="finite"):
            BSTModel(catalog).fit_upload_stage(with_nan)

    def test_group_indices_align_with_input(self, catalog):
        _, uploads, _ = synthetic_city_sample(catalog)
        _, groups = BSTModel(catalog).fit_upload_stage(uploads)
        assert len(groups) == len(uploads)

    def test_mean_for_group_raises_for_unmapped_group(self, catalog):
        # Regression: an unmapped group's prefilled NaN mean used to be
        # returned silently and leak into Table 3-style reports.
        _, uploads, _ = synthetic_city_sample(catalog)
        fit, _ = BSTModel(catalog).fit_upload_stage(uploads)
        fit.cluster_means[2] = np.nan
        with pytest.raises(ValueError, match="no fitted component"):
            fit.mean_for_group(2)
        assert fit.mean_for_group(0) > 0


class TestDownloadStage:
    def test_multi_plan_group_mapping(self, catalog):
        group = catalog.upload_groups()[0]  # Tiers 1-3
        rng = np.random.default_rng(2)
        downloads = np.concatenate(
            [
                rng.normal(27, 3, 300),
                rng.normal(110, 10, 300),
                rng.normal(220, 15, 300),
            ]
        )
        stage, tiers = BSTModel(catalog).fit_download_stage(
            downloads, group, 0
        )
        assert set(stage.cluster_tiers) == {1, 2, 3}
        assert set(tiers.tolist()) == {1, 2, 3}

    def test_degraded_clusters_map_to_low_plans(self, catalog):
        # The paper's 8 Mbps and 27 Mbps Android clusters both belong to
        # the 25 Mbps plan (Tier 1).
        group = catalog.upload_groups()[0]
        rng = np.random.default_rng(3)
        downloads = np.concatenate(
            [rng.normal(8, 1.0, 300), rng.normal(27, 2.5, 300)]
        )
        stage, tiers = BSTModel(catalog).fit_download_stage(
            downloads, group, 0
        )
        assert set(tiers.tolist()) == {1}

    def test_single_plan_group_all_one_tier(self, catalog):
        group = catalog.upload_groups()[3]  # Tier 6 only
        rng = np.random.default_rng(4)
        downloads = np.concatenate(
            [rng.normal(100, 10, 200), rng.normal(900, 60, 200)]
        )
        stage, tiers = BSTModel(catalog).fit_download_stage(
            downloads, group, 3
        )
        assert set(tiers.tolist()) == {6}

    def test_cluster_cap_respected(self, catalog):
        group = catalog.upload_groups()[3]
        rng = np.random.default_rng(5)
        downloads = rng.uniform(10, 1200, 3000)  # maximally smeared
        config = BSTConfig(max_download_clusters=4)
        stage, _ = BSTModel(catalog, config).fit_download_stage(
            downloads, group, 3
        )
        assert stage.n_components <= 4

    def test_empty_group_rejected(self, catalog):
        group = catalog.upload_groups()[0]
        with pytest.raises(ValueError):
            BSTModel(catalog).fit_download_stage(np.asarray([]), group, 0)

    def test_nan_downloads_rejected(self, catalog):
        # Regression: NaNs used to be silently dropped, misaligning the
        # returned tiers with the caller's rows.
        group = catalog.upload_groups()[0]
        rng = np.random.default_rng(7)
        downloads = np.concatenate([rng.normal(27, 3, 100), [np.nan]])
        with pytest.raises(ValueError, match="finite"):
            BSTModel(catalog).fit_download_stage(downloads, group, 0)


class TestFullFit:
    def test_end_to_end_recovery(self, catalog):
        downloads, uploads, tiers = synthetic_city_sample(catalog)
        result = BSTModel(catalog).fit(downloads, uploads)
        accuracy = float(np.mean(result.tiers == tiers))
        assert accuracy > 0.97

    def test_result_lengths(self, catalog):
        downloads, uploads, _ = synthetic_city_sample(catalog)
        result = BSTModel(catalog).fit(downloads, uploads)
        assert len(result) == len(downloads)
        assert len(result.group_indices) == len(downloads)

    def test_plan_speed_lookup(self, catalog):
        downloads, uploads, _ = synthetic_city_sample(catalog)
        result = BSTModel(catalog).fit(downloads, uploads)
        plan_downs = result.plan_download_for_rows()
        assert set(np.unique(plan_downs)) <= {
            p.download_mbps for p in catalog.plans
        }
        plan_ups = result.plan_upload_for_rows()
        assert set(np.unique(plan_ups)) <= {
            p.upload_mbps for p in catalog.plans
        }

    def test_group_labels(self, catalog):
        downloads, uploads, _ = synthetic_city_sample(catalog)
        result = BSTModel(catalog).fit(downloads, uploads)
        labels = set(result.group_label_for_rows())
        assert labels <= {"Tier 1-3", "Tier 4", "Tier 5", "Tier 6"}

    def test_mismatched_shapes_rejected(self, catalog):
        with pytest.raises(ValueError, match="one-to-one"):
            BSTModel(catalog).fit([1.0, 2.0], [1.0])

    def test_nan_input_rejected(self, catalog):
        downloads, uploads, _ = synthetic_city_sample(catalog)
        downloads = downloads.copy()
        downloads[0] = np.nan
        with pytest.raises(ValueError, match="finite"):
            BSTModel(catalog).fit(downloads, uploads)

    def test_kmeans_variant_runs(self, catalog):
        downloads, uploads, tiers = synthetic_city_sample(catalog)
        config = BSTConfig(clustering="kmeans")
        result = BSTModel(catalog, config).fit(downloads, uploads)
        assert float(np.mean(result.tiers == tiers)) > 0.9

    def test_unseeded_variant_runs(self, catalog):
        downloads, uploads, tiers = synthetic_city_sample(catalog)
        config = BSTConfig(seed_means_from_catalog=False)
        result = BSTModel(catalog, config).fit(downloads, uploads)
        assert float(np.mean(result.tiers == tiers)) > 0.8

    def test_two_plan_catalog(self):
        catalog = PlanCatalog("Mini", [Plan(50, 5), Plan(500, 20)])
        rng = np.random.default_rng(6)
        uploads = np.concatenate(
            [rng.normal(5.5, 0.3, 200), rng.normal(22, 1, 200)]
        )
        downloads = np.concatenate(
            [rng.normal(55, 5, 200), rng.normal(520, 30, 200)]
        )
        result = BSTModel(catalog).fit(downloads, uploads)
        assert set(result.tiers.tolist()) == {1, 2}


class TestConfig:
    def test_invalid_clustering(self):
        with pytest.raises(ValueError):
            BSTConfig(clustering="dbscan")

    def test_invalid_max_clusters(self):
        with pytest.raises(ValueError):
            BSTConfig(max_download_clusters=0)

    def test_invalid_grid(self):
        with pytest.raises(ValueError):
            BSTConfig(kde_grid_points=4)

    def test_invalid_prior(self):
        with pytest.raises(ValueError):
            BSTConfig(upload_mean_prior=-0.1)
