"""Tests for catalog / BST-fit serialisation."""

import numpy as np
import pytest

from repro.core.bst import BSTModel
from repro.core.config import BSTConfig
from repro.core.serialize import (
    SCHEMA_VERSION,
    bst_result_from_dict,
    bst_result_to_dict,
    catalog_from_dict,
    catalog_to_dict,
    load_bst_result,
    save_bst_result,
)
from repro.market import city_catalog


def test_catalog_round_trip():
    catalog = city_catalog("C")
    assert catalog_from_dict(catalog_to_dict(catalog)) == catalog


def test_catalog_dict_is_plain_json():
    import json

    text = json.dumps(catalog_to_dict(city_catalog("A")))
    assert "ISP-A" in text


@pytest.fixture(scope="module")
def fitted(request):
    mba = request.getfixturevalue("mba_a")
    catalog = request.getfixturevalue("state_catalog_a")
    return BSTModel(catalog).fit(mba["download_mbps"], mba["upload_mbps"])


def test_bst_result_round_trip(fitted):
    restored = bst_result_from_dict(bst_result_to_dict(fitted))
    assert np.array_equal(restored.tiers, fitted.tiers)
    assert np.array_equal(restored.group_indices, fitted.group_indices)
    assert np.allclose(
        restored.upload_stage.cluster_means,
        fitted.upload_stage.cluster_means,
    )
    assert restored.catalog == fitted.catalog


def test_download_stages_survive(fitted):
    restored = bst_result_from_dict(bst_result_to_dict(fitted))
    assert set(restored.download_stages) == set(fitted.download_stages)
    for gi, stage in fitted.download_stages.items():
        assert (
            restored.download_stages[gi].cluster_tiers
            == stage.cluster_tiers
        )


def test_restored_result_methods_work(fitted):
    restored = bst_result_from_dict(bst_result_to_dict(fitted))
    assert np.array_equal(
        restored.plan_download_for_rows(), fitted.plan_download_for_rows()
    )
    assert restored.group_label_for_rows() == fitted.group_label_for_rows()


def test_file_round_trip(tmp_path, fitted):
    path = tmp_path / "fit.json"
    save_bst_result(fitted, path)
    restored = load_bst_result(path)
    assert np.array_equal(restored.tiers, fitted.tiers)


# ---------------------------------------------------------------------------
# schema versioning and corruption handling
# ---------------------------------------------------------------------------
def test_payloads_carry_schema_version(fitted):
    assert catalog_to_dict(fitted.catalog)["schema_version"] == SCHEMA_VERSION
    assert bst_result_to_dict(fitted)["schema_version"] == SCHEMA_VERSION


@pytest.mark.parametrize("version", [3, 99, "2", 2.0, True, None])
def test_unknown_schema_version_raises_value_error(fitted, version):
    data = bst_result_to_dict(fitted)
    data["schema_version"] = version
    with pytest.raises(ValueError, match="schema_version"):
        bst_result_from_dict(data)


def test_unknown_catalog_schema_version_raises(fitted):
    data = catalog_to_dict(fitted.catalog)
    data["schema_version"] = 42
    with pytest.raises(ValueError, match="schema_version"):
        catalog_from_dict(data)


def test_missing_version_field_is_legacy_v1(fitted):
    data = bst_result_to_dict(fitted)
    del data["schema_version"]
    del data["catalog"]["schema_version"]
    restored = bst_result_from_dict(data)
    assert np.array_equal(restored.tiers, fitted.tiers)


@pytest.mark.parametrize(
    "missing", ["catalog", "upload_stage", "download_stages", "tiers"]
)
def test_truncated_payload_raises_value_error(fitted, missing):
    data = bst_result_to_dict(fitted)
    del data[missing]
    with pytest.raises(ValueError, match="truncated"):
        bst_result_from_dict(data)


def test_truncated_catalog_payload_raises():
    with pytest.raises(ValueError, match="truncated"):
        catalog_from_dict({"schema_version": 2, "plans": [{}]})


def test_non_mapping_payload_raises():
    with pytest.raises(ValueError, match="JSON object"):
        bst_result_from_dict(["not", "a", "dict"])


def test_empty_file_raises_value_error(tmp_path):
    path = tmp_path / "empty.json"
    path.write_text("")
    with pytest.raises(ValueError, match="empty"):
        load_bst_result(path)


def test_corrupt_json_file_raises_value_error(tmp_path, fitted):
    path = tmp_path / "fit.json"
    save_bst_result(fitted, path)
    path.write_text(path.read_text()[: 40])  # truncate mid-object
    with pytest.raises(ValueError, match="corrupt|truncated"):
        load_bst_result(path)


# ---------------------------------------------------------------------------
# saved models predict on fresh data (the serving contract)
# ---------------------------------------------------------------------------
def _fresh_sample(catalog, seed):
    rng = np.random.default_rng(seed)
    plans = catalog.plans
    picks = rng.integers(0, len(plans), 2_000)
    downs = np.asarray([plans[i].download_mbps for i in picks]) * rng.normal(
        0.9, 0.08, picks.size
    )
    ups = np.asarray([plans[i].upload_mbps for i in picks]) * rng.normal(
        0.95, 0.05, picks.size
    )
    return np.abs(downs) + 0.1, np.abs(ups) + 0.1


@pytest.mark.parametrize(
    "config",
    [
        BSTConfig(),
        BSTConfig(kde_method="binned"),
        BSTConfig(jobs=2),
    ],
    ids=["default", "kde-binned", "parallel"],
)
def test_saved_model_assigns_fresh_data_identically(
    tmp_path, mba_a, state_catalog_a, config
):
    from repro.serve.engine import TierAssigner

    fitted = BSTModel(state_catalog_a, config).fit(
        mba_a["download_mbps"], mba_a["upload_mbps"]
    )
    path = tmp_path / "fit.json"
    save_bst_result(fitted, path)
    restored = load_bst_result(path)

    downs, ups = _fresh_sample(state_catalog_a, seed=101)
    direct = TierAssigner(fitted).assign(downs, ups)
    loaded = TierAssigner(restored).assign(downs, ups)
    assert np.array_equal(direct.tiers, loaded.tiers)
    assert np.array_equal(direct.group_indices, loaded.group_indices)
    # And on the training sample: byte-identical to the fit.
    replay = TierAssigner(restored).assign(
        np.asarray(mba_a["download_mbps"], dtype=float),
        np.asarray(mba_a["upload_mbps"], dtype=float),
    )
    assert np.array_equal(replay.tiers, fitted.tiers)


def test_v1_payload_cannot_serve_new_data(fitted):
    from repro.serve.engine import TierAssigner

    data = bst_result_to_dict(fitted)
    data["upload_stage"].pop("component_variances")
    data["upload_stage"].pop("component_weights")
    data["schema_version"] = 1
    restored = bst_result_from_dict(data)
    with pytest.raises(ValueError, match="variances"):
        TierAssigner(restored)
