"""Tests for catalog / BST-fit serialisation."""

import numpy as np
import pytest

from repro.core.bst import BSTModel
from repro.core.serialize import (
    bst_result_from_dict,
    bst_result_to_dict,
    catalog_from_dict,
    catalog_to_dict,
    load_bst_result,
    save_bst_result,
)
from repro.market import city_catalog


def test_catalog_round_trip():
    catalog = city_catalog("C")
    assert catalog_from_dict(catalog_to_dict(catalog)) == catalog


def test_catalog_dict_is_plain_json():
    import json

    text = json.dumps(catalog_to_dict(city_catalog("A")))
    assert "ISP-A" in text


@pytest.fixture(scope="module")
def fitted(request):
    mba = request.getfixturevalue("mba_a")
    catalog = request.getfixturevalue("state_catalog_a")
    return BSTModel(catalog).fit(mba["download_mbps"], mba["upload_mbps"])


def test_bst_result_round_trip(fitted):
    restored = bst_result_from_dict(bst_result_to_dict(fitted))
    assert np.array_equal(restored.tiers, fitted.tiers)
    assert np.array_equal(restored.group_indices, fitted.group_indices)
    assert np.allclose(
        restored.upload_stage.cluster_means,
        fitted.upload_stage.cluster_means,
    )
    assert restored.catalog == fitted.catalog


def test_download_stages_survive(fitted):
    restored = bst_result_from_dict(bst_result_to_dict(fitted))
    assert set(restored.download_stages) == set(fitted.download_stages)
    for gi, stage in fitted.download_stages.items():
        assert (
            restored.download_stages[gi].cluster_tiers
            == stage.cluster_tiers
        )


def test_restored_result_methods_work(fitted):
    restored = bst_result_from_dict(bst_result_to_dict(fitted))
    assert np.array_equal(
        restored.plan_download_for_rows(), fitted.plan_download_for_rows()
    )
    assert restored.group_label_for_rows() == fitted.group_label_for_rows()


def test_file_round_trip(tmp_path, fitted):
    path = tmp_path / "fit.json"
    save_bst_result(fitted, path)
    restored = load_bst_result(path)
    assert np.array_equal(restored.tiers, fitted.tiers)
