"""Tests for per-user consistency metrics."""

import numpy as np
import pytest

from repro.core import alpha_values, per_user_consistency_factors
from repro.frame import ColumnTable


def _user_table(tests_per_user):
    users, speeds = [], []
    rng = np.random.default_rng(0)
    for user, (n, scale) in tests_per_user.items():
        users += [user] * n
        speeds += list(rng.normal(scale, scale * 0.05, n))
    return ColumnTable(
        {"user_id": users, "download_mbps": speeds}
    )


class TestConsistencyFactors:
    def test_min_tests_filter(self):
        table = _user_table({"a": (6, 100), "b": (3, 100)})
        out = per_user_consistency_factors(table, "download_mbps")
        assert out["user_id"].tolist() == ["a"]

    def test_factor_near_one_for_stable_user(self):
        table = _user_table({"a": (30, 100)})
        out = per_user_consistency_factors(table, "download_mbps")
        assert out["consistency_factor"][0] == pytest.approx(1.0, abs=0.1)

    def test_variable_user_below_stable_user(self):
        rng = np.random.default_rng(1)
        table = ColumnTable(
            {
                "user_id": ["stable"] * 20 + ["wild"] * 20,
                "download_mbps": list(rng.normal(100, 2, 20))
                + list(rng.uniform(5, 200, 20)),
            }
        )
        out = per_user_consistency_factors(table, "download_mbps")
        factors = dict(zip(out["user_id"], out["consistency_factor"]))
        assert factors["wild"] < factors["stable"]

    def test_counts_reported(self):
        table = _user_table({"a": (8, 50)})
        out = per_user_consistency_factors(table, "download_mbps")
        assert out["n_tests"].tolist() == [8]

    def test_invalid_min_tests(self):
        table = _user_table({"a": (6, 100)})
        with pytest.raises(ValueError):
            per_user_consistency_factors(table, "download_mbps", min_tests=0)

    def test_empty_table(self):
        table = ColumnTable({"user_id": [], "download_mbps": []})
        out = per_user_consistency_factors(table, "download_mbps")
        assert len(out) == 0


def _tier_table(rows):
    """rows: list of (user, month, tier)."""
    return ColumnTable(
        {
            "user_id": [r[0] for r in rows],
            "month": [r[1] for r in rows],
            "bst_tier": [r[2] for r in rows],
        }
    )


class TestAlpha:
    def test_stable_user_alpha_one(self):
        rows = [("u", 1, 3)] * 6
        out = alpha_values(_tier_table(rows))
        assert out["alpha"].tolist() == [1.0]

    def test_split_user_alpha_fraction(self):
        rows = [("u", 1, 3)] * 4 + [("u", 1, 4)] * 2
        out = alpha_values(_tier_table(rows))
        assert out["alpha"][0] == pytest.approx(4 / 6)

    def test_min_tests_is_strict(self):
        # Section 5.2: "more than five speed tests in a month".
        rows = [("u", 1, 3)] * 5
        assert len(alpha_values(_tier_table(rows))) == 0
        rows = [("u", 1, 3)] * 6
        assert len(alpha_values(_tier_table(rows))) == 1

    def test_months_separate(self):
        rows = [("u", 1, 3)] * 6 + [("u", 2, 4)] * 6
        out = alpha_values(_tier_table(rows))
        assert len(out) == 2
        assert set(out["alpha"].tolist()) == {1.0}

    def test_users_separate(self):
        rows = [("u", 1, 3)] * 6 + [("v", 1, 4)] * 6
        assert len(alpha_values(_tier_table(rows))) == 2

    def test_invalid_min_tests(self):
        with pytest.raises(ValueError):
            alpha_values(_tier_table([("u", 1, 3)] * 6), min_tests=0)

    def test_alpha_bounds(self):
        rng = np.random.default_rng(2)
        rows = [("u", 1, int(t)) for t in rng.integers(1, 7, 40)]
        out = alpha_values(_tier_table(rows))
        alpha = out["alpha"][0]
        assert 1 / 6 <= alpha <= 1.0
