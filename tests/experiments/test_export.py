"""Tests for the report-export module."""

import pytest

from repro.experiments import Scale
from repro.experiments.export import export_all
from repro.frame import read_csv


def test_export_subset(tmp_path):
    results = export_all(
        tmp_path, experiment_ids=["fig10", "tab2"], scale=Scale.SMALL
    )
    assert set(results) == {"fig10", "tab2"}
    assert (tmp_path / "fig10.txt").exists()
    assert (tmp_path / "tab2.txt").exists()
    assert "fig10" in (tmp_path / "summary.txt").read_text()


def test_metrics_csv_structure(tmp_path):
    export_all(tmp_path, experiment_ids=["tab2"], scale=Scale.SMALL)
    metrics = read_csv(tmp_path / "metrics.csv")
    assert set(metrics.column_names) == {
        "experiment", "metric", "measured", "paper",
    }
    assert len(metrics) > 0
    assert set(metrics["experiment"].tolist()) == {"tab2"}


def test_unknown_experiment_rejected(tmp_path):
    with pytest.raises(KeyError, match="unknown"):
        export_all(tmp_path, experiment_ids=["fig99"])


def test_creates_directory(tmp_path):
    target = tmp_path / "nested" / "reports"
    export_all(target, experiment_ids=["fig10"], scale=Scale.SMALL)
    assert target.is_dir()


def test_cli_report_all(tmp_path, capsys):
    from repro.cli import main

    code = main(
        [
            "report-all", "--out-dir", str(tmp_path / "reports"),
            "--scale", "small", "--only", "fig10",
        ]
    )
    assert code == 0
    assert "exported 1" in capsys.readouterr().out
