"""Content checks on the rendered experiment reports (small scale)."""

import pytest

from repro.experiments import Scale, run_experiment

SCALE = Scale.SMALL


@pytest.fixture(scope="module")
def rendered():
    cache = {}

    def get(eid: str) -> str:
        if eid not in cache:
            cache[eid] = run_experiment(eid, scale=SCALE, seed=0).render()
        return cache[eid]

    return get


def test_fig1_lists_all_series(rendered):
    text = rendered("fig1")
    for series in (
        "Uncontextualized", "Tier 1", "Tier 6 (1.2 Gbps)",
        "Tier 6 Android best", "Tier 6 Ethernet",
    ):
        assert series in text


def test_tab2_shows_paper_column(rendered):
    text = rendered("tab2")
    assert "paper" in text
    assert "99.33%" in text  # the paper's State-A value


def test_fig4_reports_offered_uploads(rendered):
    text = rendered("fig4")
    for label in ("Tier 2-3", "Tier 4", "Tier 5", "Tier 6"):
        assert label in text


def test_fig9_has_four_panels(rendered):
    text = rendered("fig9")
    for panel in ("9a", "9b", "9c", "9d"):
        assert panel in text


def test_fig13_mentions_both_vendors(rendered):
    text = rendered("fig13")
    assert "ookla" in text.lower()
    assert "mlab" in text.lower()


def test_tab5_7_covers_three_cities(rendered):
    text = rendered("tab5-7")
    for city in ("City-B", "City-C", "City-D"):
        assert city in text


def test_ext_metadata_lists_recommendations(rendered):
    text = rendered("ext-metadata")
    assert "recommendations for M-Lab" in text
    assert "subscription plan" in text


def test_fig3_renders_pipeline_for_all_states(rendered):
    text = rendered("fig3")
    for state in ("State-A", "State-B", "State-C", "State-D"):
        assert state in text
