"""Tests for experiment scaffolding (result container, scales, data)."""

import pytest

from repro.experiments import ExperimentResult, Scale
from repro.experiments import data as exp_data


class TestScale:
    def test_presets_ordered(self):
        assert (
            Scale.SMALL.ookla_tests
            < Scale.MEDIUM.ookla_tests
            < Scale.LARGE.ookla_tests
        )
        assert (
            Scale.SMALL.mba_tests
            < Scale.MEDIUM.mba_tests
            <= Scale.LARGE.mba_tests
        )

    def test_large_approaches_paper_sizes(self):
        assert Scale.LARGE.ookla_tests >= 100_000
        assert Scale.LARGE.mba_tests >= 20_000

    def test_from_value(self):
        assert Scale("small") is Scale.SMALL


class TestExperimentResult:
    def test_render_includes_sections_and_metrics(self):
        result = ExperimentResult(
            experiment_id="demo",
            title="Demo",
            sections={"numbers": "1 | 2"},
            metrics={"x": 1.5},
            paper_values={"x": 2.0},
            notes="a note",
        )
        text = result.render()
        assert "demo" in text
        assert "numbers" in text
        assert "1.5" in text and "paper: 2" in text
        assert "a note" in text

    def test_render_without_paper_value(self):
        result = ExperimentResult(
            experiment_id="demo", title="Demo", metrics={"y": 3.0}
        )
        text = result.render()
        assert "y: 3" in text
        assert "(paper:" not in text

    def test_render_empty_result(self):
        result = ExperimentResult(experiment_id="demo", title="Demo")
        assert "demo" in result.render()


class TestDataCaches:
    def test_memoisation_returns_same_object(self):
        a = exp_data.ookla_dataset("A", Scale.SMALL, 0)
        b = exp_data.ookla_dataset("A", Scale.SMALL, 0)
        assert a is b

    def test_different_seed_different_data(self):
        a = exp_data.ookla_dataset("A", Scale.SMALL, 0)
        b = exp_data.ookla_dataset("A", Scale.SMALL, 1)
        assert a is not b
        assert a != b

    def test_clear_caches(self):
        a = exp_data.ookla_dataset("A", Scale.SMALL, 0)
        exp_data.clear_caches()
        b = exp_data.ookla_dataset("A", Scale.SMALL, 0)
        assert a is not b
        assert a == b  # deterministic regeneration

    def test_contextualized_matches_dataset(self):
        table = exp_data.ookla_dataset("A", Scale.SMALL, 0)
        ctx = exp_data.ookla_contextualized("A", Scale.SMALL, 0)
        assert len(ctx) == len(table)
