"""Meta-tests: the registry fully covers the paper and the bench suite
fully covers the registry."""

from pathlib import Path

from repro.experiments import REGISTRY

BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"

# Every table and figure in the paper's evaluation.
PAPER_ARTIFACTS = {
    "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
    "fig9", "fig10", "fig11", "fig12", "fig13", "fig14-18",
    "tab1", "tab2", "tab3", "tab4", "tab5-7",
}


def _bench_sources() -> str:
    return "\n".join(
        path.read_text() for path in BENCH_DIR.glob("bench_*.py")
    )


def test_every_paper_artifact_registered():
    assert PAPER_ARTIFACTS <= set(REGISTRY)


def test_every_registered_experiment_has_a_bench():
    sources = _bench_sources()
    missing = [
        eid for eid in REGISTRY if f'"{eid}"' not in sources
    ]
    assert not missing, f"experiments without a bench: {missing}"


def test_registry_ids_are_stable_slugs():
    for eid in REGISTRY:
        assert eid == eid.lower()
        assert " " not in eid


def test_every_driver_documents_itself():
    for eid, runner in REGISTRY.items():
        assert runner.__doc__, f"{eid} driver lacks a docstring"
