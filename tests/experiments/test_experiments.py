"""Tests for every registered experiment driver (small scale).

Each test asserts the paper's qualitative *shape*, not exact numbers:
orderings, monotonicities, accuracy floors, and share bounds.  The
benchmark harness reruns everything at larger scale for the quantitative
comparison recorded in EXPERIMENTS.md.
"""

import pytest

from repro.experiments import REGISTRY, Scale, get_experiment, run_experiment
from repro.experiments.base import ExperimentResult

SCALE = Scale.SMALL
SEED = 0

_results: dict[str, ExperimentResult] = {}


def result_for(experiment_id: str) -> ExperimentResult:
    if experiment_id not in _results:
        _results[experiment_id] = run_experiment(
            experiment_id, scale=SCALE, seed=SEED
        )
    return _results[experiment_id]


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {
            "fig1", "tab1", "fig2", "tab2", "fig4", "fig5", "fig6",
            "tab3", "fig7", "tab4", "fig8", "fig9", "fig10", "fig11",
            "fig12", "fig13", "tab5-7", "fig14-18",
        }
        assert expected <= set(REGISTRY)

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="known"):
            get_experiment("fig99")

    @pytest.mark.parametrize("experiment_id", sorted(REGISTRY))
    def test_runs_and_renders(self, experiment_id):
        result = result_for(experiment_id)
        text = result.render()
        assert result.experiment_id == experiment_id
        assert result.metrics
        assert experiment_id in text


class TestFig1:
    def test_tier1_far_below_city_median(self):
        m = result_for("fig1").metrics
        assert m["tier1_median_mbps"] < m["city_median_mbps"] / 2.5

    def test_tier6_far_above_city_median(self):
        m = result_for("fig1").metrics
        assert m["tier6_median_mbps"] > m["city_median_mbps"] * 1.5

    def test_ethernet_fastest(self):
        m = result_for("fig1").metrics
        assert m["tier6_ethernet_median_mbps"] >= m["tier6_median_mbps"]
        assert m["tier6_ethernet_median_mbps"] > m["city_median_mbps"] * 4


class TestTab2:
    def test_accuracy_above_paper_floor(self):
        m = result_for("tab2").metrics
        for state in "ABCD":
            assert m[f"upload_accuracy_{state}"] > 0.96, state

    def test_tier_accuracy_high(self):
        m = result_for("tab2").metrics
        for state in "ABCD":
            assert m[f"tier_accuracy_{state}"] > 0.9, state


class TestFig2:
    def test_upload_more_consistent_than_download(self):
        m = result_for("fig2").metrics
        assert m["median_upload_cf"] > m["median_download_cf"] + 0.05

    def test_factors_in_unit_range(self):
        m = result_for("fig2").metrics
        assert 0.2 < m["median_download_cf"] <= 1.1
        assert 0.5 < m["median_upload_cf"] <= 1.05


class TestFig4and5:
    def test_upload_cluster_means_near_offered(self):
        m = result_for("fig4").metrics
        offered = {
            "Tier 2-3": 5, "Tier 4": 10, "Tier 5": 15, "Tier 6": 35,
        }
        for label, base in offered.items():
            mean = m[f"cluster_mean_{label}"]
            assert base * 0.9 < mean < base * 1.35, label

    def test_overprovisioning_and_saturation_shape(self):
        m = result_for("fig5").metrics
        # Tiers 2-3 over-deliver relative to 200 Mbps; Tier 6 undershoots.
        assert m["top_cluster_mean_Tier 2-3"] > 200
        assert m["top_cluster_mean_Tier 6"] < 1100


class TestFig8:
    def test_median_alpha_is_one(self):
        m = result_for("fig8").metrics
        assert m["median_alpha"] == 1.0
        assert m["fraction_alpha_1"] > 0.5


class TestFig9and10:
    def test_access_ordering(self):
        m = result_for("fig9").metrics
        assert m["ethernet_median"] > m["wifi_median"] * 1.5

    def test_band_ordering(self):
        # Strict ordering only: at SMALL scale the 2.4 GHz cell holds
        # <100 Android tests and within-group tier reassignment (a
        # degraded Tier-2/3 download mapping to the Tier-1 plan, which
        # the paper's method shares) inflates its normalised values.
        # The MEDIUM-scale bench asserts the full >2x gap.
        m = result_for("fig9").metrics
        assert m["band5_median"] > m["band24_median"]

    def test_rssi_extremes_ordered(self):
        m = result_for("fig9").metrics
        assert m["rssi_best_median"] > m["rssi_poor_median"] * 2

    def test_memory_low_bin_capped(self):
        m = result_for("fig9").metrics
        assert m["mem_lt2_median"] < m["mem_gt6_median"]

    def test_bottleneck_split(self):
        m = result_for("fig10").metrics
        assert m["best_median"] > m["bottleneck_median"] * 1.8
        assert 0.5 < m["bottleneck_share"] < 0.85


class TestFig11:
    def test_overnight_minority(self):
        m = result_for("fig11").metrics
        assert m["max_overnight_share"] < 20.0


class TestFig13:
    def test_mlab_lags_every_tier(self):
        m = result_for("fig13").metrics
        for label in ("Tier 1-3", "Tier 4", "Tier 5", "Tier 6"):
            assert m[f"lag_{label}"] > 1.0, label

    def test_low_tiers_near_plan_for_ookla(self):
        m = result_for("fig13").metrics
        assert m["ookla_median_Tier 1-3"] > 0.8


class TestCitiesBCD:
    def test_upload_means_track_offered(self):
        from repro.market import city_catalog

        m = result_for("tab5-7").metrics
        for city in "BCD":
            groups = city_catalog(city).upload_groups()
            for group in groups:
                key = f"{city}|Net-Web|{group.tier_label}|mean"
                if key not in m:
                    continue
                mean = m[key]
                assert group.upload_mbps * 0.7 < mean < (
                    group.upload_mbps * 1.45
                ), key


class TestAblations:
    def test_upload_first_dominates(self):
        m = result_for("ablation-upload-first").metrics
        assert m["bst_accuracy"] > m["download_first_accuracy"]
        assert m["advantage"] > 0.05

    def test_seeding_helps_on_noisy_city_data(self):
        m = result_for("ablation-seeding").metrics
        assert (
            m["seeded_city_upload_accuracy"]
            >= m["blind_city_upload_accuracy"] - 0.02
        )

    def test_both_clusterers_work_on_wired_data(self):
        m = result_for("ablation-clusterer").metrics
        assert m["gmm_upload_accuracy"] > 0.96
        assert m["kmeans_upload_accuracy"] > 0.9

    def test_staged_beats_joint_on_noisy_data(self):
        m = result_for("ablation-joint-2d").metrics
        assert m["staged_mba"] > 0.95
        assert m["staged_city"] > m["joint_city"]

    def test_consistency_metrics_agree_on_ordering(self):
        m = result_for("ablation-consistency-metric").metrics
        assert m["upload_mean_p95"] > m["download_mean_p95"]
        assert m["upload_median_p95"] > m["download_median_p95"]
