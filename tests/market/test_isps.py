"""Tests for the four city/ISP menus."""

import pytest

from repro.market import CITY_IDS, city_catalog, state_catalog


def test_all_four_cities_defined():
    for city in CITY_IDS:
        assert city_catalog(city).num_plans >= 5


def test_city_a_matches_paper_menu():
    catalog = city_catalog("A")
    menu = [(p.download_mbps, p.upload_mbps) for p in catalog.plans]
    assert menu == [
        (25, 5),
        (100, 5),
        (200, 5),
        (400, 10),
        (800, 15),
        (1200, 35),
    ]


def test_city_a_upload_groups():
    labels = [g.tier_label for g in city_catalog("A").upload_groups()]
    assert labels == ["Tier 1-3", "Tier 4", "Tier 5", "Tier 6"]


def test_city_b_group_count():
    assert len(city_catalog("B").upload_groups()) == 4


def test_city_c_has_eight_tiers():
    assert city_catalog("C").tiers == (1, 2, 3, 4, 5, 6, 7, 8)


def test_city_d_has_three_upload_groups():
    assert len(city_catalog("D").upload_groups()) == 3


def test_state_a_drops_tier_1():
    # Section 4.3: no 25/5 subscriber in the MBA State-A panel.
    assert state_catalog("A").tiers == (2, 3, 4, 5, 6)


def test_other_states_keep_all_tiers():
    for state in ("B", "C", "D"):
        assert state_catalog(state).tiers == city_catalog(state).tiers


def test_unknown_city_rejected():
    with pytest.raises(KeyError, match="unknown city"):
        city_catalog("Z")


def test_lowercase_accepted():
    assert city_catalog("a").isp_name == "ISP-A"
