"""Tests for the synthetic address dataset."""

import pytest

from repro.market.addresses import AddressDataset
from repro.market.census import CensusGrid


@pytest.fixture
def dataset():
    return AddressDataset(CensusGrid("A", rows=4, cols=4, seed=3), seed=3)


def test_one_address_per_household(dataset):
    grid = CensusGrid("A", rows=4, cols=4, seed=3)
    assert len(dataset) == grid.total_households


def test_formatted_address(dataset):
    text = dataset.addresses[0].formatted
    assert "City-A" in text
    assert text.split(" ")[0].isdigit()


def test_addresses_tied_to_blocks(dataset):
    grid = CensusGrid("A", rows=4, cols=4, seed=3)
    block_ids = {b.block_id for b in grid.blocks}
    assert all(a.block_id in block_ids for a in dataset.addresses)


def test_sample_size(dataset):
    sample = dataset.sample(10, seed=1)
    assert len(sample) == 10


def test_sample_caps_at_dataset_size(dataset):
    assert len(dataset.sample(10**6)) == len(dataset)


def test_sample_without_replacement(dataset):
    sample = dataset.sample(len(dataset))
    formatted = [a.formatted for a in sample]
    assert len(set(formatted)) == len(formatted)


def test_sample_deterministic(dataset):
    a = [x.formatted for x in dataset.sample(5, seed=9)]
    b = [x.formatted for x in dataset.sample(5, seed=9)]
    assert a == b


def test_negative_sample_rejected(dataset):
    with pytest.raises(ValueError):
        dataset.sample(-1)
