"""Tests for the subscriber population model."""

import numpy as np
import pytest

from repro.market import SubscriberPopulation, city_catalog
from repro.market.population import (
    PLATFORMS,
    Household,
    PopulationConfig,
    Subscriber,
    default_city_config,
    mlab_tier_group_weights,
    ookla_tier_group_weights,
)


@pytest.fixture
def population():
    return SubscriberPopulation("A", city_catalog("A"), seed=0)


class TestConfig:
    def test_defaults_valid(self):
        PopulationConfig()

    def test_probs_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            PopulationConfig(rssi_bin_probs=(0.5, 0.5, 0.5, 0.5))

    def test_platform_mix_length_checked(self):
        with pytest.raises(ValueError):
            PopulationConfig(platform_mix=(1.0,))

    def test_heavy_user_fraction_bounds(self):
        with pytest.raises(ValueError):
            PopulationConfig(heavy_user_fraction=1.5)

    def test_default_city_config_vendors(self):
        ookla = default_city_config("A", "ookla")
        mlab = default_city_config("A", "mlab")
        assert ookla.tier_group_weights != mlab.tier_group_weights

    def test_unknown_vendor(self):
        with pytest.raises(ValueError):
            default_city_config("A", "fast")

    def test_group_weights_defined_for_all_cities(self):
        for city in "ABCD":
            n_groups = len(city_catalog(city).upload_groups())
            assert len(ookla_tier_group_weights(city)) == n_groups
            assert len(mlab_tier_group_weights(city)) == n_groups


class TestGeneration:
    def test_count(self, population):
        assert len(population.generate_users(50)) == 50

    def test_deterministic(self, population):
        a = population.generate_users(20, seed=3)
        b = population.generate_users(20, seed=3)
        assert [u.user_id for u in a] == [u.user_id for u in b]
        assert [u.tier for u in a] == [u.tier for u in b]

    def test_plans_come_from_catalog(self, population):
        users = population.generate_users(100)
        assert all(u.plan in population.catalog.plans for u in users)

    def test_platforms_valid(self, population):
        users = population.generate_users(200)
        assert {u.platform for u in users} <= set(PLATFORMS)

    def test_mobile_always_wifi(self, population):
        users = population.generate_users(300)
        for user in users:
            if user.platform in ("android", "ios"):
                assert user.access == "wifi"
            if user.platform == "desktop-ethernet":
                assert user.access == "ethernet"

    def test_tier_skew_matches_weights(self, population):
        users = population.generate_users(6000, seed=1)
        tiers = np.asarray([u.tier for u in users])
        low_share = np.mean(tiers <= 3)
        expected = population.tier_probabilities
        expected_low = expected[1] + expected[2] + expected[3]
        assert abs(low_share - expected_low) < 0.04

    def test_tier_probabilities_sum_to_one(self, population):
        assert sum(population.tier_probabilities.values()) == pytest.approx(
            1.0
        )

    def test_memory_desktop_high(self, population):
        users = population.generate_users(300, seed=2)
        for user in users:
            if user.platform.startswith("desktop"):
                assert user.memory_gb >= 8.0

    def test_heavy_users_have_five_plus_tests(self, population):
        users = population.generate_users(2000, seed=3)
        heavy = [u for u in users if u.n_tests >= 5]
        fraction = len(heavy) / len(users)
        assert abs(fraction - 0.27) < 0.05

    def test_band_mix(self, population):
        users = population.generate_users(3000, seed=4)
        five = np.mean(
            [u.household.band_ghz == 5.0 for u in users]
        )
        assert abs(five - 0.77) < 0.04

    def test_negative_count_rejected(self, population):
        with pytest.raises(ValueError):
            population.generate_users(-1)

    def test_with_config_override(self, population):
        tweaked = population.with_config(band_5ghz_fraction=0.0)
        users = tweaked.generate_users(50, seed=5)
        assert all(u.household.band_ghz == 2.4 for u in users)

    def test_group_weight_count_validated(self):
        config = PopulationConfig(tier_group_weights=(1.0,))
        with pytest.raises(ValueError, match="upload groups"):
            SubscriberPopulation("A", city_catalog("A"), config)


class TestRecords:
    def test_household_band_validated(self):
        plan = city_catalog("A").plan_for_tier(1)
        with pytest.raises(ValueError, match="band"):
            Household("h", "A", 1, plan, -50.0, band_ghz=3.5)

    def test_subscriber_platform_validated(self):
        plan = city_catalog("A").plan_for_tier(1)
        home = Household("h", "A", 1, plan, -50.0, 5.0)
        with pytest.raises(ValueError, match="platform"):
            Subscriber("u", home, "blackberry", "wifi", 4.0, 1)

    def test_subscriber_needs_tests(self):
        plan = city_catalog("A").plan_for_tier(1)
        home = Household("h", "A", 1, plan, -50.0, 5.0)
        with pytest.raises(ValueError, match="test"):
            Subscriber("u", home, "android", "wifi", 4.0, 0)
