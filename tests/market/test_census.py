"""Tests for the census grid and Form 477 substrate."""

import pytest

from repro.market.census import (
    CensusGrid,
    Form477Dataset,
    build_city_form477,
)


@pytest.fixture
def grid():
    return CensusGrid("A", rows=8, cols=8, seed=1)


class TestCensusGrid:
    def test_block_count(self, grid):
        assert len(grid) == 64

    def test_block_lookup(self, grid):
        block = grid.blocks[0]
        assert grid.block(block.block_id) is block

    def test_unknown_block(self, grid):
        with pytest.raises(KeyError):
            grid.block("nope")

    def test_households_positive(self, grid):
        assert all(b.households >= 1 for b in grid.blocks)
        assert grid.total_households > 0

    def test_deterministic_per_seed(self):
        a = CensusGrid("A", rows=4, cols=4, seed=5)
        b = CensusGrid("A", rows=4, cols=4, seed=5)
        assert [x.households for x in a.blocks] == [
            x.households for x in b.blocks
        ]

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            CensusGrid("A", rows=0, cols=4)


class TestForm477:
    def test_coverage_counts(self, grid):
        dataset = Form477Dataset(grid)
        claimed = dataset.add_isp_coverage("Cable", 0.5, 1200, 35)
        assert claimed == dataset.blocks_covered("Cable")
        assert 0 < claimed <= len(grid)

    def test_full_coverage(self, grid):
        dataset = Form477Dataset(grid)
        assert dataset.add_isp_coverage("Cable", 1.0, 1200, 35) == 64

    def test_double_registration_rejected(self, grid):
        dataset = Form477Dataset(grid)
        dataset.add_isp_coverage("Cable", 0.5, 1200, 35)
        with pytest.raises(ValueError, match="already"):
            dataset.add_isp_coverage("Cable", 0.5, 1200, 35)

    def test_invalid_fraction(self, grid):
        dataset = Form477Dataset(grid)
        with pytest.raises(ValueError):
            dataset.add_isp_coverage("Cable", 0.0, 1200, 35)

    def test_dominant_isp_selection(self, grid):
        dataset = Form477Dataset(grid)
        dataset.add_isp_coverage("Cable", 0.9, 1200, 35)
        dataset.add_isp_coverage("DSL", 0.3, 100, 10)
        assert dataset.dominant_isp() == "Cable"

    def test_dominant_requires_coverage(self, grid):
        with pytest.raises(ValueError):
            Form477Dataset(grid).dominant_isp()

    def test_unknown_isp_covers_zero(self, grid):
        assert Form477Dataset(grid).blocks_covered("ghost") == 0

    def test_households_covered(self, grid):
        dataset = Form477Dataset(grid)
        dataset.add_isp_coverage("Cable", 1.0, 1200, 35)
        assert (
            dataset.households_covered("Cable") == grid.total_households
        )

    def test_records_exposed(self, grid):
        dataset = Form477Dataset(grid)
        dataset.add_isp_coverage("Cable", 0.5, 1200, 35)
        record = dataset.records[0]
        assert record.isp_name == "Cable"
        assert record.max_download_mbps == 1200


def test_build_city_form477_selects_dominant_cable():
    dataset = build_city_form477("A", "ISP-A", seed=2)
    # Section 3.1: pick the ISP covering the most census blocks.
    assert dataset.dominant_isp() == "ISP-A"
    assert set(dataset.isp_names) == {"ISP-A", "DSL-A", "Fiber-A"}
