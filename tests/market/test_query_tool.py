"""Tests for the plan-availability query tool."""

import pytest

from repro.market.addresses import AddressDataset
from repro.market.census import CensusGrid
from repro.market.isps import city_catalog
from repro.market.query_tool import (
    PlanQueryTool,
    QueryBudgetExceeded,
    discover_city_menu,
)


@pytest.fixture
def addresses():
    return AddressDataset(CensusGrid("A", rows=4, cols=4, seed=0), seed=0)


@pytest.fixture
def tool():
    return PlanQueryTool(city_catalog("A"), query_budget=500)


def test_query_returns_city_menu(tool, addresses):
    result = tool.query(addresses.addresses[0])
    assert result.isp_name == "ISP-A"
    assert len(result.plans) == 6


def test_query_counts_against_budget(tool, addresses):
    tool.query(addresses.addresses[0])
    assert tool.queries_issued == 1
    assert tool.queries_remaining == 499


def test_budget_enforced(addresses):
    tool = PlanQueryTool(city_catalog("A"), query_budget=2)
    tool.query(addresses.addresses[0])
    tool.query(addresses.addresses[1])
    with pytest.raises(QueryBudgetExceeded):
        tool.query(addresses.addresses[2])


def test_zero_budget_rejected():
    with pytest.raises(ValueError):
        PlanQueryTool(city_catalog("A"), query_budget=0)


def test_discover_city_menu_recovers_catalog(tool, addresses):
    discovered = discover_city_menu(tool, addresses, sample_size=50, seed=1)
    assert discovered == city_catalog("A")


def test_discover_uses_sampled_queries(tool, addresses):
    discover_city_menu(tool, addresses, sample_size=30, seed=1)
    assert tool.queries_issued == 30


def test_discover_empty_addresses_rejected(tool):
    empty = AddressDataset(CensusGrid("A", rows=1, cols=1, seed=0))
    empty.addresses = ()
    with pytest.raises(ValueError, match="no addresses"):
        discover_city_menu(tool, empty, sample_size=10)


def test_discover_respects_budget(addresses):
    tool = PlanQueryTool(city_catalog("A"), query_budget=5)
    with pytest.raises(QueryBudgetExceeded):
        discover_city_menu(tool, addresses, sample_size=10)
