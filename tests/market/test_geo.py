"""Tests for the IP geolocation error model."""

import numpy as np
import pytest

from repro.market.census import CensusGrid
from repro.market.geo import (
    GeolocationModel,
    block_attribution_accuracy,
)


@pytest.fixture
def grid():
    return CensusGrid("A", rows=10, cols=10, seed=0)


class TestModel:
    def test_gps_median_scale(self):
        model = GeolocationModel.gps_truncated()
        rng = np.random.default_rng(0)
        offsets = model.sample_offsets_m(4000, rng)
        radii = np.hypot(offsets[:, 0], offsets[:, 1])
        assert np.median(radii) == pytest.approx(111.0, rel=0.1)

    def test_ip_median_scale(self):
        model = GeolocationModel.ip_geolocation()
        rng = np.random.default_rng(1)
        offsets = model.sample_offsets_m(4000, rng)
        radii = np.hypot(offsets[:, 0], offsets[:, 1])
        assert np.median(radii) == pytest.approx(12_000.0, rel=0.15)

    def test_directions_isotropic(self):
        model = GeolocationModel.gps_truncated()
        rng = np.random.default_rng(2)
        offsets = model.sample_offsets_m(4000, rng)
        assert abs(np.mean(offsets[:, 0])) < 20
        assert abs(np.mean(offsets[:, 1])) < 20

    def test_invalid_error(self):
        with pytest.raises(ValueError):
            GeolocationModel(median_error_m=0)

    def test_negative_n(self):
        model = GeolocationModel.gps_truncated()
        with pytest.raises(ValueError):
            model.sample_offsets_m(-1, np.random.default_rng(0))


class TestAttribution:
    def test_gps_mostly_correct(self, grid):
        # 250 m blocks vs ~111 m error: the majority of tests land in
        # the right block (the paper's Ookla GPS channel).
        accuracy = block_attribution_accuracy(
            grid, GeolocationModel.gps_truncated(), seed=3
        )
        assert accuracy > 0.5

    def test_ip_geolocation_hopeless(self, grid):
        # 12 km median error vs 250 m blocks: attribution collapses
        # (the paper's Section 3.4 ethics argument).
        accuracy = block_attribution_accuracy(
            grid, GeolocationModel.ip_geolocation(), seed=3
        )
        assert accuracy < 0.05

    def test_gps_beats_ip(self, grid):
        gps = block_attribution_accuracy(
            grid, GeolocationModel.gps_truncated(), seed=4
        )
        ip = block_attribution_accuracy(
            grid, GeolocationModel.ip_geolocation(), seed=4
        )
        assert gps > ip * 5

    def test_invalid_inputs(self, grid):
        model = GeolocationModel.gps_truncated()
        with pytest.raises(ValueError):
            block_attribution_accuracy(grid, model, tests_per_block=0)
        with pytest.raises(ValueError):
            block_attribution_accuracy(grid, model, block_size_m=0)
