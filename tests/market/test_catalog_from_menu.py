"""Tests for the custom-menu catalog builder."""

import pytest

from repro.market import Plan, catalog_from_menu


def test_builds_and_numbers_tiers():
    catalog = catalog_from_menu("X", [(500, 50), (100, 10)])
    assert catalog.tiers == (1, 2)
    assert catalog.plan_for_tier(1).download_mbps == 100


def test_upload_groups_derived():
    catalog = catalog_from_menu(
        "X", [(100, 10), (200, 10), (900, 40)]
    )
    groups = catalog.upload_groups()
    assert [g.upload_mbps for g in groups] == [10, 40]
    assert groups[0].tier_label == "Tier 1-2"


def test_invalid_menu_rejected():
    with pytest.raises(ValueError):
        catalog_from_menu("X", [])
    with pytest.raises(ValueError):
        catalog_from_menu("X", [(100, 200)])  # upload > download


def test_equivalent_to_manual_catalog():
    from repro.market import PlanCatalog

    built = catalog_from_menu("X", [(100, 10)])
    manual = PlanCatalog("X", [Plan(100, 10)])
    assert built == manual
