"""Tests for plans and catalogs."""

import pytest

from repro.market import Plan, PlanCatalog
from repro.market.plans import UploadGroup


class TestPlan:
    def test_basic_construction(self):
        plan = Plan(100, 5, tier=2)
        assert plan.download_mbps == 100
        assert plan.label == "100/5"

    def test_named_plan_label(self):
        assert Plan(100, 5, name="Fast").label == "Fast"

    def test_nonpositive_speeds_rejected(self):
        with pytest.raises(ValueError):
            Plan(0, 5)
        with pytest.raises(ValueError):
            Plan(100, -1)

    def test_symmetric_plan_rejected(self):
        with pytest.raises(ValueError, match="asymmetric"):
            Plan(100, 200)

    def test_ordering_by_download(self):
        assert Plan(25, 5) < Plan(100, 5)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Plan(100, 5).download_mbps = 50


@pytest.fixture
def catalog():
    return PlanCatalog(
        "ISP-X",
        [
            Plan(25, 5),
            Plan(100, 5),
            Plan(400, 10),
            Plan(1200, 35),
        ],
    )


class TestPlanCatalog:
    def test_tiers_assigned_in_speed_order(self, catalog):
        assert catalog.tiers == (1, 2, 3, 4)
        assert catalog.plan_for_tier(1).download_mbps == 25

    def test_explicit_tiers_kept(self):
        cat = PlanCatalog("I", [Plan(25, 5, tier=7), Plan(100, 5, tier=9)])
        assert cat.tiers == (7, 9)

    def test_duplicate_plans_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            PlanCatalog("I", [Plan(25, 5), Plan(25, 5)])

    def test_duplicate_tiers_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            PlanCatalog("I", [Plan(25, 5, tier=1), Plan(100, 5, tier=1)])

    def test_empty_catalog_rejected(self):
        with pytest.raises(ValueError):
            PlanCatalog("I", [])

    def test_unknown_tier_raises(self, catalog):
        with pytest.raises(KeyError, match="tiers"):
            catalog.plan_for_tier(99)

    def test_upload_speeds_deduplicated(self, catalog):
        assert catalog.upload_speeds == (5.0, 10.0, 35.0)

    def test_download_speeds_sorted(self, catalog):
        assert catalog.download_speeds == (25, 100, 400, 1200)

    def test_upload_groups_partition_plans(self, catalog):
        groups = catalog.upload_groups()
        assert len(groups) == 3
        total = sum(len(g.plans) for g in groups)
        assert total == catalog.num_plans

    def test_group_tier_labels(self, catalog):
        labels = [g.tier_label for g in catalog.upload_groups()]
        assert labels == ["Tier 1-2", "Tier 3", "Tier 4"]

    def test_group_for_upload_exact(self, catalog):
        group = catalog.group_for_upload(5.0)
        assert group.download_speeds == (25, 100)

    def test_group_for_upload_missing(self, catalog):
        with pytest.raises(KeyError, match="offered"):
            catalog.group_for_upload(17.5)

    def test_nearest_upload_group(self, catalog):
        assert catalog.nearest_upload_group(11.8).upload_mbps == 10.0

    def test_plan_for_speeds(self, catalog):
        assert catalog.plan_for_speeds(400, 10).tier == 3

    def test_plan_for_speeds_missing(self, catalog):
        with pytest.raises(KeyError):
            catalog.plan_for_speeds(401, 10)

    def test_restrict_to_tiers(self, catalog):
        sub = catalog.restrict_to_tiers([2, 3])
        assert sub.tiers == (2, 3)
        assert sub.plan_for_tier(2).download_mbps == 100

    def test_restrict_to_nothing_rejected(self, catalog):
        with pytest.raises(ValueError):
            catalog.restrict_to_tiers([99])

    def test_equality_and_hash(self, catalog):
        same = PlanCatalog("ISP-X", list(catalog.plans))
        assert catalog == same
        assert hash(catalog) == hash(same)

    def test_repr_lists_menu(self, catalog):
        assert "25/5" in repr(catalog)


class TestUploadGroup:
    def test_single_plan_label(self):
        group = UploadGroup(10.0, (Plan(400, 10, tier=4),))
        assert group.tier_label == "Tier 4"
