"""Figure 10: Best vs Local-bottleneck Android tests."""


def test_fig10_bottleneck(benchmark, experiment_runner):
    result = experiment_runner(benchmark, "fig10")
    m = result.metrics
    # Paper: 61% bottlenecked; medians 0.52 (Best) vs 0.22.
    assert 0.5 < m["bottleneck_share"] < 0.85
    assert m["best_median"] > m["bottleneck_median"] * 2
