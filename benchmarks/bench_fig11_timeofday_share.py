"""Figure 11: share of tests per 6-hour bin per tier group."""

from repro.pipeline.timeofday import TIME_BINS


def test_fig11_timeofday_share(benchmark, experiment_runner):
    result = experiment_runner(benchmark, "fig11")
    m = result.metrics
    groups = {key.split("|")[0] for key in m if "|" in key}
    for group in groups:
        bins = {b: m[f"{group}|{b}"] for b in TIME_BINS}
        # Fewest tests overnight, for every tier (Figure 11's shape).
        assert bins["00-06"] == min(bins.values()), group
        # Afternoon/evening dominate.
        assert bins["12-18"] + bins["18-24"] > 50, group
