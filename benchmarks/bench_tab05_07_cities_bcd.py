"""Tables 5-7: upload clusters per platform, Cities B-D."""

from repro.market import city_catalog


def test_tab5_7_cities_bcd(benchmark, experiment_runner):
    result = experiment_runner(benchmark, "tab5-7")
    m = result.metrics
    for city in "BCD":
        for group in city_catalog(city).upload_groups():
            key = f"{city}|Net-Web|{group.tier_label}|mean"
            assert key in m, key
            mean = m[key]
            assert group.upload_mbps * 0.8 < mean < (
                group.upload_mbps * 1.4
            ), key
