"""Cross-city verification bench (the paper's consistency claim)."""


def test_ext_cross_city(benchmark, experiment_runner):
    result = experiment_runner(benchmark, "ext-cross-city")
    assert result.metrics["all_hold"] == 1.0
