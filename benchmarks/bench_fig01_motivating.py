"""Figure 1: raw vs contextualised City-A download distributions."""


def test_fig1_motivating_example(benchmark, experiment_runner):
    result = experiment_runner(benchmark, "fig1")
    m = result.metrics
    # Paper shape: Tier 1 ~6x below the city median; Tier 6 Ethernet the
    # fastest series, several times the city median.
    assert m["tier1_median_mbps"] < m["city_median_mbps"] / 2.5
    assert m["tier6_median_mbps"] > m["city_median_mbps"] * 1.5
    assert m["tier6_ethernet_median_mbps"] > m["city_median_mbps"] * 4
    assert m["tier6_ethernet_median_mbps"] >= m["tier6_best_median_mbps"]
