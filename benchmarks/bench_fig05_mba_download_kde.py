"""Figure 5: download clusters within each MBA State-A upload group."""


def test_fig5_mba_download_clusters(benchmark, experiment_runner):
    result = experiment_runner(benchmark, "fig5")
    m = result.metrics
    # Over-provisioning: tiers 2-3 top cluster above the 200 Mbps plan.
    assert m["top_cluster_mean_Tier 2-3"] > 200
    # Saturation shortfall: the 1200 Mbps tier measures well below plan.
    assert 600 < m["top_cluster_mean_Tier 6"] < 1100
    # Tier ordering preserved.
    assert (
        m["top_cluster_mean_Tier 2-3"]
        < m["top_cluster_mean_Tier 4"]
        < m["top_cluster_mean_Tier 5"]
    )
