"""Figure 2: per-user consistency factor, download vs upload."""


def test_fig2_consistency_factor(benchmark, experiment_runner):
    result = experiment_runner(benchmark, "fig2")
    m = result.metrics
    # Paper: upload (0.87) markedly more consistent than download (0.58).
    assert m["median_upload_cf"] > m["median_download_cf"] + 0.08
    assert m["n_users"] > 100
