"""Streaming benchmarks: firehose throughput and drift-to-swap latency.

Asserts the streaming contracts from docs/STREAMING.md:

- the firehose plus the windowed monitor sustain at least **10,000
  events/sec** in a single process (micro-batch generation, Welford
  window updates, reservoir pushes, and periodic verdict evaluation
  all included);
- a drifted stream triggers exactly one debounced refit, and the
  drift-to-swap latency on the deterministic ``SimClock`` stays inside
  the debounce-policy bound (min-hold rounded up to the poll cadence,
  plus the zero-sim-time fit).

Emits ``BENCH_stream.json`` (via :func:`repro.obs.runs.record_bench`)
so ``repro obs check`` tracks streaming regressions alongside the other
benchmarks.  Run with ``-s`` to see the timing tables::

    PYTHONPATH=src python -m pytest benchmarks/bench_stream.py -q -s
"""

from __future__ import annotations

import os
import time

from repro.obs import use_collector, use_registry
from repro.obs.runs import record_bench
from repro.serve.registry import ModelRegistry
from repro.stream.clock import SimClock
from repro.stream.firehose import DriftSegment, MeasurementStream
from repro.stream.monitor import StreamMonitor
from repro.stream.run import StreamSession, warmup_and_register
from repro.stream.scheduler import RefitPolicy, RefitScheduler

STREAM_N = int(os.environ.get("REPRO_BENCH_STREAM_N", "200000"))
BATCH_SIZE = 2048
VERDICT_EVERY = 20  # batches between verdict evaluations
MIN_EVENTS_PER_S = 10_000.0
MAX_DRIFT_TO_SWAP_S = 10.0


def test_firehose_throughput_and_drift_to_swap(tmp_path):
    """Firehose+monitor >= 10k events/s; refit swap latency bounded."""
    with use_collector() as collector, use_registry() as metrics:
        # -- throughput: drain STREAM_N events through the monitor ----
        registry = ModelRegistry(tmp_path / "models")
        clock = SimClock()
        stream = MeasurementStream(
            "ookla",
            "A",
            seed=0,
            events_per_s=50_000.0,
            batch_size=BATCH_SIZE,
            pool_size=8192,
            diurnal=True,
        )
        warmup_and_register(stream, registry)
        monitor = StreamMonitor(
            registry=registry, clock=clock, window_s=30.0
        )
        n_batches = max(1, STREAM_N // BATCH_SIZE)
        n_events = 0
        t0 = time.perf_counter()
        for i, batch in enumerate(stream.batches(n_batches)):
            clock.advance_to(batch.t_s)
            monitor.observe(batch)
            n_events += batch.downloads.size
            if (i + 1) % VERDICT_EVERY == 0:
                monitor.verdicts()
        monitor.verdicts()
        firehose_s = time.perf_counter() - t0
        events_per_s = n_events / firehose_s
        metrics.gauge("stream.bench.events_per_s").set(events_per_s)
        assert events_per_s >= MIN_EVENTS_PER_S, (
            f"firehose+monitor sustained only {events_per_s:.0f} "
            f"events/s (< {MIN_EVENTS_PER_S:.0f})"
        )

        # -- lifecycle: drifted stream -> one refit, bounded latency --
        drift_registry = ModelRegistry(tmp_path / "drift-models")
        drifted = MeasurementStream(
            "ookla",
            "A",
            seed=7,
            events_per_s=400.0,
            batch_size=128,
            pool_size=1024,
            diurnal=False,
            segments=[
                DriftSegment(
                    start_s=30.0,
                    download_scale=0.4,
                    upload_scale=0.4,
                )
            ],
        )
        record = warmup_and_register(drifted, drift_registry)
        sim = SimClock()
        drift_monitor = StreamMonitor(
            registry=drift_registry,
            clock=sim,
            window_s=20.0,
            min_samples=150,
            sample_cap=1024,
        )
        scheduler = RefitScheduler(
            registry=drift_registry,
            monitor=drift_monitor,
            policy=RefitPolicy(min_hold_s=2.0, cooldown_s=300.0),
            clock=sim,
            ledger_path=None,
        )
        session = StreamSession(
            drifted, drift_monitor, sim, scheduler=scheduler,
            poll_interval_s=1.0,
        )
        t0 = time.perf_counter()
        summary = session.run(duration_s=65.0)
        lifecycle_s = time.perf_counter() - t0

        refits = summary["refits"]
        assert len(refits) == 1, f"expected one refit, got {refits}"
        refit = refits[0]
        assert refit["old_digest"] == record.digest
        swapped = drift_registry.lookup(record.key)
        assert swapped.digest == refit["new_digest"]
        drift_to_swap_s = refit["drift_to_swap_s"]
        metrics.gauge("stream.bench.drift_to_swap_s").set(drift_to_swap_s)
        assert drift_to_swap_s <= MAX_DRIFT_TO_SWAP_S, (
            f"drift-to-swap took {drift_to_swap_s:.2f}s of stream time "
            f"(> {MAX_DRIFT_TO_SWAP_S:.0f}s)"
        )

    record_bench(
        "stream",
        wall_s=firehose_s + lifecycle_s,
        collector=collector,
        registry=metrics,
        results={
            "events_per_s": events_per_s,
            "n_events": float(n_events),
            "firehose_wall_s": firehose_s,
            "drift_to_swap_s": drift_to_swap_s,
            "refit_count": float(len(refits)),
            "refit_n_samples": float(refit["n_samples"]),
            "lifecycle_wall_s": lifecycle_s,
        },
        params={
            "n": STREAM_N,
            "batch_size": BATCH_SIZE,
            "verdict_every": VERDICT_EVERY,
            "min_events_per_s": MIN_EVENTS_PER_S,
            "max_drift_to_swap_s": MAX_DRIFT_TO_SWAP_S,
        },
        seed=0,
    )

    print()
    print(f"-- firehose + monitor throughput (n={n_events}) --")
    print(
        f"events/s:          {events_per_s:9.0f} "
        f"({n_events} over {firehose_s * 1e3:.1f} ms, "
        f"batch={BATCH_SIZE})"
    )
    print("-- drifted lifecycle (SimClock, min_hold=2s, poll=1s) --")
    print(
        f"drift-to-swap:     {drift_to_swap_s:9.2f} s stream time "
        f"({lifecycle_s * 1e3:.1f} ms wall, "
        f"{int(refit['n_samples'])} refit samples)"
    )
