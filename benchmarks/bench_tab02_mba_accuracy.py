"""Table 2: BST upload-group accuracy on the four MBA panels."""


def test_tab2_mba_accuracy(benchmark, experiment_runner):
    result = experiment_runner(benchmark, "tab2")
    m = result.metrics
    # Paper: above 96% in every state, above 99% in two.
    for state in "ABCD":
        assert m[f"upload_accuracy_{state}"] > 0.96, state
    above_99 = sum(
        m[f"upload_accuracy_{state}"] > 0.99 for state in "ABCD"
    )
    assert above_99 >= 2
