"""Scaling benchmarks: KDE fast path and parallel BST fits.

Records exact-vs-binned KDE grid timings and serial-vs-parallel BST fit
timings through the :mod:`repro.obs` span/metrics sinks, and asserts the
two performance contracts from docs/PERFORMANCE.md:

- the binned fast path is at least 5x faster than the exact pairwise sum
  at large n (default n=500k; override with ``REPRO_BENCH_KDE_N``) while
  staying within 1% of the peak density;
- ``jobs=2`` produces byte-identical tiers/group_indices to the serial
  fit (no parallel *speedup* is asserted -- CI machines may expose a
  single core, which makes pool overhead pure cost).

Run with ``-s`` to see the recorded timing tables::

    PYTHONPATH=src python -m pytest benchmarks/bench_scaling.py -q -s
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.core.bst import BSTModel
from repro.market import city_catalog
from repro.obs import use_collector, use_registry
from repro.obs.runs import record_bench
from repro.stats.kde import GaussianKDE

KDE_N = int(os.environ.get("REPRO_BENCH_KDE_N", "500000"))
KDE_GRID = 512


def _stage_table(collector) -> str:
    """Per-span-name timing summary (same layout as conftest's)."""
    stats = collector.aggregate_stats()
    if not stats:
        return "(no spans recorded)"
    width = max(len(name) for name in stats)
    lines = [
        f"{'stage'.ljust(width)}  calls  total ms    p50 ms    p95 ms"
    ]
    for name in sorted(
        stats, key=lambda n: stats[n]["total_s"], reverse=True
    ):
        row = stats[name]
        lines.append(
            f"{name.ljust(width)}  {int(row['count']):>5}  "
            f"{row['total_s'] * 1e3:>8.1f}  "
            f"{row['p50_s'] * 1e3:>8.2f}  {row['p95_s'] * 1e3:>8.2f}"
        )
    return "\n".join(lines)


def _kde_sample(n: int) -> np.ndarray:
    rng = np.random.default_rng(0)
    return np.concatenate(
        [
            rng.normal(5, 0.4, n // 3),
            rng.normal(11, 0.8, n // 3),
            rng.normal(38, 2.0, n - 2 * (n // 3)),
        ]
    )


def _bst_sample(catalog, n_per_tier=400, seed=0):
    rng = np.random.default_rng(seed)
    downloads, uploads = [], []
    for plan in catalog.plans:
        downloads.append(
            rng.normal(plan.download_mbps * 1.1,
                       plan.download_mbps * 0.06, n_per_tier)
        )
        uploads.append(
            rng.normal(plan.upload_mbps * 1.1,
                       plan.upload_mbps * 0.05, n_per_tier)
        )
    return np.concatenate(downloads), np.concatenate(uploads)


def test_kde_fast_path_speedup(benchmark):
    """Binned grid evaluation is >= 5x faster than exact at large n."""
    kde = GaussianKDE(_kde_sample(KDE_N))

    with use_collector() as collector, use_registry() as registry:
        t0 = time.perf_counter()
        grid, exact = kde.grid(num=KDE_GRID, method="exact")
        exact_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        _, binned = kde.grid(num=KDE_GRID, method="binned")
        binned_s = time.perf_counter() - t0

        registry.gauge("kde.bench.exact_s").set(exact_s)
        registry.gauge("kde.bench.binned_s").set(binned_s)
        registry.gauge("kde.bench.speedup").set(exact_s / binned_s)
        registry.gauge("kde.bench.n").set(float(KDE_N))

    rel_err = float(np.max(np.abs(binned - exact)) / exact.max())
    record_bench(
        "kde_scaling",
        wall_s=exact_s + binned_s,
        collector=collector,
        registry=registry,
        results={
            "exact_s": exact_s,
            "binned_s": binned_s,
            "speedup": exact_s / binned_s,
            "max_rel_err": rel_err,
        },
        params={"n": KDE_N, "grid": KDE_GRID},
        seed=0,
    )
    print()
    print(f"-- KDE grid evaluation (n={KDE_N}, num={KDE_GRID}) --")
    print(f"exact:  {exact_s * 1e3:9.1f} ms")
    print(f"binned: {binned_s * 1e3:9.1f} ms  ({exact_s / binned_s:.0f}x)")
    print(f"max relative error: {rel_err:.5f} of peak density")
    print()
    print("-- per-stage spans --")
    print(_stage_table(collector))
    print()
    print(registry.render())

    assert exact_s / binned_s >= 5.0
    assert rel_err < 0.01

    # pytest-benchmark records the fast path for regression tracking.
    benchmark.pedantic(
        lambda: kde.grid(num=KDE_GRID, method="binned"),
        rounds=3,
        iterations=1,
    )


def test_parallel_fit_identity_and_timing(benchmark):
    """jobs=2 matches serial byte-for-byte; timings are recorded."""
    catalog = city_catalog("A")
    downloads, uploads = _bst_sample(catalog)

    with use_collector() as collector, use_registry() as registry:
        t0 = time.perf_counter()
        serial = BSTModel(catalog).fit(downloads, uploads, jobs=1)
        serial_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        parallel = BSTModel(catalog).fit(downloads, uploads, jobs=2)
        parallel_s = time.perf_counter() - t0

        registry.gauge("bst.bench.serial_s").set(serial_s)
        registry.gauge("bst.bench.parallel_s").set(parallel_s)

    np.testing.assert_array_equal(serial.tiers, parallel.tiers)
    np.testing.assert_array_equal(
        serial.group_indices, parallel.group_indices
    )
    record_bench(
        "parallel_fit",
        wall_s=serial_s + parallel_s,
        collector=collector,
        registry=registry,
        results={"serial_s": serial_s, "parallel_s": parallel_s},
        params={"n": int(downloads.size), "jobs": 2},
        seed=0,
    )

    print()
    print(f"-- BST fit (n={downloads.size}, city A) --")
    print(f"serial (jobs=1):   {serial_s * 1e3:9.1f} ms")
    print(f"parallel (jobs=2): {parallel_s * 1e3:9.1f} ms")
    print()
    print("-- per-stage spans --")
    print(_stage_table(collector))
    print()
    print(registry.render())

    benchmark.pedantic(
        lambda: BSTModel(catalog).fit(downloads, uploads, jobs=1),
        rounds=3,
        iterations=1,
    )
