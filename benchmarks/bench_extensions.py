"""Extension benches: modem bottleneck, geolocation, metadata audit."""


def test_ext_modem(benchmark, experiment_runner):
    result = experiment_runner(benchmark, "ext-modem")
    m = result.metrics
    # A visible share of gigabit-plan tests collapses to the 8x4 ceiling.
    assert m["capped_share_modem"] > m["capped_share_base"] + 0.03
    assert m["median_base"] >= m["median_modem"]


def test_ext_geolocation(benchmark, experiment_runner):
    result = experiment_runner(benchmark, "ext-geolocation")
    m = result.metrics
    # Section 3.4 quantified: GPS localises, IP geolocation does not.
    assert m["gps_accuracy"] > 0.5
    assert m["ip_accuracy"] < 0.05


def test_ext_latency(benchmark, experiment_runner):
    result = experiment_runner(benchmark, "ext-latency")
    m = result.metrics
    assert m["WiFi_median_ms"] > m["Ethernet_median_ms"]
    assert m["2.4 GHz_median_ms"] > m["5 GHz_median_ms"]


def test_ext_debias(benchmark, experiment_runner):
    result = experiment_runner(benchmark, "ext-debias")
    m = result.metrics
    assert m["uniform_debiased_median"] > m["raw_median"]
    assert m["panel_debiased_median"] > m["raw_median"]


def test_ext_paired_vendors(benchmark, experiment_runner):
    result = experiment_runner(benchmark, "ext-paired-vendors")
    m = result.metrics
    # With household and hour held fixed, Ookla wins most homes and the
    # gap grows with the tier.
    assert m["overall_paired_lag"] > 1.0
    assert m["ookla_wins_Tier 6"] > 0.6
    assert m["paired_lag_Tier 6"] >= m["paired_lag_Tier 1-3"]


def test_ablation_transfer(benchmark, experiment_runner):
    result = experiment_runner(benchmark, "ablation-transfer")
    m = result.metrics
    # Shape agreement between the scalar and dynamic models:
    # single-flow efficiency collapses with capacity, multi-flow holds.
    assert m["dynamic_single_1200"] < m["dynamic_single_100"]
    assert m["dynamic_multi_1200"] > 0.8
    assert m["scalar_single_1200"] < m["scalar_multi_1200"]


def test_ext_metadata(benchmark, experiment_runner):
    result = experiment_runner(benchmark, "ext-metadata")
    m = result.metrics
    assert (
        m["interpretability|Ookla (contextualised)"]
        > m["interpretability|M-Lab (joined)"]
    )
    assert m["interpretability|M-Lab (joined)"] < 0.3
