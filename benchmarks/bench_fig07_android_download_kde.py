"""Figure 7: Android download clusters per upload group, City-A."""


def test_fig7_android_download_clusters(benchmark, experiment_runner):
    result = experiment_runner(benchmark, "fig7")
    m = result.metrics
    # WiFi degradation spreads each group's downloads over more clusters
    # than the plan menu (paper: 5 clusters for the 3-plan Tiers 1-3;
    # up to 10 for the single-plan higher groups).
    assert m["n_clusters_Tier 1-3"] >= 3
    for label in ("Tier 4", "Tier 5", "Tier 6"):
        assert 1 <= m[f"n_clusters_{label}"] <= 10
    total = sum(m.values())
    assert total > 8  # clearly more structure than the 6-plan menu
