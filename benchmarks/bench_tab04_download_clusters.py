"""Table 4: download cluster means per platform and group, City-A."""


def test_tab4_download_clusters(benchmark, experiment_runner):
    result = experiment_runner(benchmark, "tab4")
    m = result.metrics
    # Paper's Table 4 contrast: wired desktops form fewer download
    # clusters than WiFi Android devices.
    assert m["wired_total_clusters"] <= m["android_total_clusters"]
