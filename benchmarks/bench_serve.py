"""Serving benchmarks: warm-registry assignment vs refit-per-request.

Asserts the serving contracts from docs/SERVING.md:

- a warm registry makes ``contextualize`` at least **20x** faster than
  refitting per request (the fit is the pipeline's dominant cost; the
  warm path only re-runs the frozen predictors) while producing
  byte-identical context columns;
- the stdlib HTTP server sustains at least **1000 assignments/sec**
  with a single worker process;
- the sharded multi-worker router sustains at least **20,000
  assignments/sec** while each routed response stays byte-identical
  to the exact in-process engine.

Emits ``BENCH_serve.json`` (via :func:`repro.obs.runs.record_bench`)
so ``repro obs check`` tracks serving regressions alongside the other
benchmarks.  Run with ``-s`` to see the timing tables::

    PYTHONPATH=src python -m pytest benchmarks/bench_serve.py -q -s
"""

from __future__ import annotations

import json
import os
import threading
import time
import urllib.request

import numpy as np

from repro.frame import write_csv
from repro.market import city_catalog
from repro.obs import use_collector, use_registry
from repro.obs.runs import record_bench
from repro.pipeline.contextualize import contextualize
from repro.serve.engine import QuantizedLookup, TierAssigner
from repro.serve.registry import ModelRegistry
from repro.serve.router import RouterConfig, build_router
from repro.serve.server import ServeConfig, build_server
from repro.vendors.ookla import OoklaSimulator

SERVE_N = int(os.environ.get("REPRO_BENCH_SERVE_N", "40000"))
HTTP_REQUESTS = 20
HTTP_BATCH = 200
ROUTER_WORKERS = 2
ROUTER_THREADS = 4
ROUTER_REQUESTS = 40
ROUTER_BATCH = 2000


def _stage_table(collector) -> str:
    """Per-span-name timing summary (same layout as conftest's)."""
    stats = collector.aggregate_stats()
    if not stats:
        return "(no spans recorded)"
    width = max(len(name) for name in stats)
    lines = [
        f"{'stage'.ljust(width)}  calls  total ms    p50 ms    p95 ms"
    ]
    for name in sorted(
        stats, key=lambda n: stats[n]["total_s"], reverse=True
    ):
        row = stats[name]
        lines.append(
            f"{name.ljust(width)}  {int(row['count']):>5}  "
            f"{row['total_s'] * 1e3:>8.1f}  "
            f"{row['p50_s'] * 1e3:>8.2f}  {row['p95_s'] * 1e3:>8.2f}"
        )
    return "\n".join(lines)


def test_warm_registry_vs_refit_and_throughput(benchmark, tmp_path):
    """Warm-path speedup >= 20x, byte-identical; server >= 1000/s."""
    catalog = city_catalog("A")
    tests = OoklaSimulator("A", seed=0).generate(SERVE_N)
    registry = ModelRegistry(tmp_path / "models")

    with use_collector() as collector, use_registry() as metrics:
        # Refit-per-request baseline: the plain contextualize path.
        t0 = time.perf_counter()
        refit = contextualize(tests, catalog)
        refit_s = time.perf_counter() - t0

        # Cold registry pass fits once and registers.
        contextualize(tests, catalog, registry=registry, city="A")

        # Warm path: model comes from the registry, no fit.
        t0 = time.perf_counter()
        warm = contextualize(tests, catalog, registry=registry, city="A")
        warm_s = time.perf_counter() - t0

        metrics.gauge("serve.bench.refit_s").set(refit_s)
        metrics.gauge("serve.bench.warm_s").set(warm_s)
        metrics.gauge("serve.bench.speedup").set(refit_s / warm_s)

        # Parity: the warm path's output is byte-identical.
        refit_csv = tmp_path / "refit.csv"
        warm_csv = tmp_path / "warm.csv"
        write_csv(refit.table, refit_csv)
        write_csv(warm.table, warm_csv)
        byte_identical = refit_csv.read_bytes() == warm_csv.read_bytes()

        # Single-worker HTTP throughput over the warm registry.
        server = build_server(
            registry, ServeConfig(port=0, default_city="A")
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            url = f"http://{host}:{port}/assign"
            downs = np.asarray(tests["download_mbps"], dtype=float)
            ups = np.asarray(tests["upload_mbps"], dtype=float)
            finite = np.isfinite(downs) & np.isfinite(ups)
            downs, ups = downs[finite], ups[finite]
            bodies = [
                json.dumps(
                    {
                        "downloads": downs[i : i + HTTP_BATCH].tolist(),
                        "uploads": ups[i : i + HTTP_BATCH].tolist(),
                    }
                ).encode("utf-8")
                for i in range(0, HTTP_REQUESTS * HTTP_BATCH, HTTP_BATCH)
            ]
            t0 = time.perf_counter()
            assigned = 0
            for body in bodies:
                request = urllib.request.Request(
                    url,
                    data=body,
                    headers={"Content-Type": "application/json"},
                )
                with urllib.request.urlopen(request, timeout=30) as resp:
                    assigned += len(json.loads(resp.read())["tiers"])
            http_s = time.perf_counter() - t0
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)
        throughput = assigned / http_s
        metrics.gauge("serve.bench.http_rps").set(throughput)

        # Raw engine rates: the vectorised exact path and the proven
        # quantized table, no HTTP in the way.
        assigner = TierAssigner(registry.load(registry.key_for("A", catalog))[0])
        t0 = time.perf_counter()
        exact_batch = assigner.assign(downs, ups)
        engine_rows_s = downs.size / (time.perf_counter() - t0)
        lookup = QuantizedLookup.build(assigner, downs, ups)
        t0 = time.perf_counter()
        lookup_batch = lookup.assign(downs, ups)
        lookup_rows_s = downs.size / (time.perf_counter() - t0)
        lookup_identical = bool(
            np.array_equal(exact_batch.tiers, lookup_batch.tiers)
            and np.array_equal(
                exact_batch.group_indices, lookup_batch.group_indices
            )
        )
        metrics.gauge("serve.bench.engine_rows_s").set(engine_rows_s)
        metrics.gauge("serve.bench.lookup_rows_s").set(lookup_rows_s)

        # Sharded multi-worker path: a second city on the other shard,
        # a 2-worker router in front, concurrent clients, and a
        # byte-identity check on every routed response.
        catalog_b = city_catalog("B")
        tests_b = OoklaSimulator("B", seed=0).generate(SERVE_N)
        contextualize(tests_b, catalog_b, registry=registry, city="B")
        downs_b = np.asarray(tests_b["download_mbps"], dtype=float)
        ups_b = np.asarray(tests_b["upload_mbps"], dtype=float)
        finite_b = np.isfinite(downs_b) & np.isfinite(ups_b)
        downs_b, ups_b = downs_b[finite_b], ups_b[finite_b]
        assigner_b = TierAssigner(
            registry.load(registry.key_for("B", catalog_b))[0]
        )
        speeds = {"A": (downs, ups), "B": (downs_b, ups_b)}
        exacts = {"A": assigner, "B": assigner_b}
        requests_spec = []
        for i in range(ROUTER_REQUESTS):
            city = "AB"[i % 2]
            d, u = speeds[city]
            rows = np.arange(i * ROUTER_BATCH, (i + 1) * ROUTER_BATCH) % d.size
            expected = exacts[city].assign(d[rows], u[rows])
            requests_spec.append(
                (
                    json.dumps(
                        {
                            "downloads": d[rows].tolist(),
                            "uploads": u[rows].tolist(),
                            "city": city,
                        }
                    ).encode("utf-8"),
                    expected.tiers.tolist(),
                )
            )
        router = build_router(
            tmp_path / "models",
            RouterConfig(
                port=0, n_workers=ROUTER_WORKERS, default_city="A"
            ),
        )
        router_thread = threading.Thread(
            target=router.serve_forever, daemon=True
        )
        router_thread.start()
        try:
            rhost, rport = router.server_address[:2]
            router_url = f"http://{rhost}:{rport}/assign"
            mismatches: list[int] = []
            router_assigned = [0] * ROUTER_THREADS
            errors: list[Exception] = []

            def _drive(worker_idx: int) -> None:
                try:
                    for j in range(
                        worker_idx, len(requests_spec), ROUTER_THREADS
                    ):
                        body, expected_tiers = requests_spec[j]
                        request = urllib.request.Request(
                            router_url,
                            data=body,
                            headers={"Content-Type": "application/json"},
                        )
                        with urllib.request.urlopen(
                            request, timeout=60
                        ) as resp:
                            out = json.loads(resp.read())
                        if out["tiers"] != expected_tiers:
                            mismatches.append(j)
                        router_assigned[worker_idx] += len(out["tiers"])
                except Exception as exc:  # surface in the main thread
                    errors.append(exc)

            # Warm both shards (model load + first JSON parse) off the
            # clock, then measure the sustained concurrent rate.
            for city in ("A", "B"):
                d, u = speeds[city]
                warm_body = json.dumps(
                    {
                        "downloads": d[:8].tolist(),
                        "uploads": u[:8].tolist(),
                        "city": city,
                    }
                ).encode("utf-8")
                request = urllib.request.Request(
                    router_url,
                    data=warm_body,
                    headers={"Content-Type": "application/json"},
                )
                urllib.request.urlopen(request, timeout=60).read()
            drivers = [
                threading.Thread(target=_drive, args=(i,))
                for i in range(ROUTER_THREADS)
            ]
            t0 = time.perf_counter()
            for driver in drivers:
                driver.start()
            for driver in drivers:
                driver.join()
            router_s = time.perf_counter() - t0
        finally:
            router.shutdown()
            router_thread.join(timeout=30)
            router.server_close()
        if errors:
            raise errors[0]
        router_throughput = sum(router_assigned) / router_s
        router_identical = not mismatches
        metrics.gauge("serve.bench.router_rps").set(router_throughput)

    record_bench(
        "serve",
        wall_s=refit_s + warm_s + http_s,
        collector=collector,
        registry=metrics,
        results={
            "refit_s": refit_s,
            "warm_s": warm_s,
            "speedup": refit_s / warm_s,
            "byte_identical": float(byte_identical),
            "http_assignments_per_s": throughput,
            "engine_rows_per_s": engine_rows_s,
            "lookup_rows_per_s": lookup_rows_s,
            "lookup_byte_identical": float(lookup_identical),
            "router_assignments_per_s": router_throughput,
            "router_byte_identical": float(router_identical),
        },
        params={
            "n": SERVE_N,
            "http_requests": HTTP_REQUESTS,
            "http_batch": HTTP_BATCH,
            "router_workers": ROUTER_WORKERS,
            "router_threads": ROUTER_THREADS,
            "router_requests": ROUTER_REQUESTS,
            "router_batch": ROUTER_BATCH,
        },
        seed=0,
    )

    print()
    print(f"-- warm registry vs refit (n={SERVE_N}, city A) --")
    print(f"refit per request: {refit_s * 1e3:9.1f} ms")
    print(
        f"warm registry:     {warm_s * 1e3:9.1f} ms  "
        f"({refit_s / warm_s:.0f}x)"
    )
    print(f"byte-identical output: {byte_identical}")
    print(
        f"http throughput:   {throughput:9.0f} assignments/s "
        f"({assigned} over {http_s * 1e3:.1f} ms, single worker)"
    )
    print(
        f"engine rows/s:     {engine_rows_s:9.0f} exact, "
        f"{lookup_rows_s:.0f} quantized "
        f"(byte-identical: {lookup_identical})"
    )
    print(
        f"router throughput: {router_throughput:9.0f} assignments/s "
        f"({sum(router_assigned)} over {router_s * 1e3:.1f} ms, "
        f"{ROUTER_WORKERS} workers x {ROUTER_THREADS} clients, "
        f"byte-identical: {router_identical})"
    )
    print()
    print("-- per-stage spans --")
    print(_stage_table(collector))

    assert byte_identical, "warm-path output differs from refit output"
    assert refit_s / warm_s >= 20.0, (
        f"warm registry speedup {refit_s / warm_s:.1f}x < 20x"
    )
    assert throughput >= 1000.0, (
        f"server throughput {throughput:.0f}/s < 1000/s"
    )
    assert lookup_identical, (
        "quantized lookup output differs from the exact engine"
    )
    assert router_identical, (
        f"router responses diverged from the exact engine on requests "
        f"{mismatches[:5]}"
    )
    assert router_throughput >= 20_000.0, (
        f"router throughput {router_throughput:.0f}/s < 20000/s"
    )

    # pytest-benchmark records the warm path for regression tracking.
    benchmark.pedantic(
        lambda: contextualize(tests, catalog, registry=registry, city="A"),
        rounds=3,
        iterations=1,
    )
