"""Figure 3: the BST methodology overview, generated from the code."""


def test_fig3_methodology_overview(benchmark, experiment_runner):
    result = experiment_runner(benchmark, "fig3")
    m = result.metrics
    assert m["n_groups_A"] == 4.0
    assert m["n_groups_D"] == 3.0
    text = result.render()
    assert "Stage one" in text and "Stage two" in text
