"""Ablation benches for the BST design choices (DESIGN.md Section 5)."""


def test_ablation_upload_first(benchmark, experiment_runner):
    result = experiment_runner(benchmark, "ablation-upload-first")
    m = result.metrics
    assert m["bst_accuracy"] > m["download_first_accuracy"] + 0.05


def test_ablation_clusterer(benchmark, experiment_runner):
    result = experiment_runner(benchmark, "ablation-clusterer")
    m = result.metrics
    assert m["gmm_upload_accuracy"] > 0.96
    assert m["gmm_tier_accuracy"] >= m["kmeans_tier_accuracy"] - 0.02


def test_ablation_seeding(benchmark, experiment_runner):
    result = experiment_runner(benchmark, "ablation-seeding")
    m = result.metrics
    # Catalog knowledge matters most on noisy crowdsourced uploads.
    assert (
        m["seeded_city_upload_accuracy"]
        >= m["blind_city_upload_accuracy"]
    )


def test_ablation_joint_2d(benchmark, experiment_runner):
    result = experiment_runner(benchmark, "ablation-joint-2d")
    m = result.metrics
    # On wired data both designs resolve the tiers ...
    assert m["staged_mba"] > 0.95
    # ... on crowdsourced data the staged design must dominate.
    assert m["staged_city"] > m["joint_city"] + 0.1


def test_ablation_consistency_metric(benchmark, experiment_runner):
    result = experiment_runner(benchmark, "ablation-consistency-metric")
    m = result.metrics
    assert m["upload_mean_p95"] > m["download_mean_p95"]
    assert m["upload_median_p95"] > m["download_median_p95"]
