"""Table 1: dataset inventory per city."""


def test_tab1_dataset_inventory(benchmark, experiment_runner):
    result = experiment_runner(benchmark, "tab1")
    m = result.metrics
    for city in "ABCD":
        assert m[f"ookla_{city}"] > 0
        assert m[f"mlab_{city}"] > 0
        assert m[f"mba_{city}"] > 0
