"""Figure 9(a-d): local-factor impact on normalised download speed."""


def test_fig9_local_factors(benchmark, experiment_runner):
    result = experiment_runner(benchmark, "fig9")
    m = result.metrics
    # 9a: Ethernet well above WiFi (paper 0.71 vs 0.28).
    assert m["ethernet_median"] > m["wifi_median"] * 1.6
    # 9b: 5 GHz well above 2.4 GHz (paper 0.40 vs 0.11).
    assert m["band5_median"] > m["band24_median"] * 2.5
    # 9c: best RSSI bin at least ~2x the worst (paper 0.52 vs 0.2).
    assert m["rssi_best_median"] > m["rssi_poor_median"] * 2
    assert m["rssi_good_median"] > m["rssi_fair_median"]
    # 9d: the < 2 GB bin sharply capped; bins above 2 GB comparable.
    assert m["mem_lt2_median"] < m["mem_gt6_median"] * 0.7
    assert m["mem_4_6_median"] > m["mem_lt2_median"]
