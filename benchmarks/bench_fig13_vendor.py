"""Figure 13: Ookla vs M-Lab normalised download per tier."""


def test_fig13_vendor_comparison(benchmark, experiment_runner):
    result = experiment_runner(benchmark, "fig13")
    m = result.metrics
    # Paper: M-Lab lags Ookla in every tier, by ~1.2-2x.
    for label in ("Tier 1-3", "Tier 4", "Tier 5", "Tier 6"):
        assert 1.0 < m[f"lag_{label}"] < 3.0, label
    # Low tiers reach their plan under Ookla (paper median 1.0) and
    # M-Lab stays close behind (paper 0.83).
    assert m["ookla_median_Tier 1-3"] > 0.85
    assert m["mlab_median_Tier 1-3"] > 0.65
