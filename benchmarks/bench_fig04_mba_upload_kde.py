"""Figure 4: MBA State-A upload density peaks and cluster means."""


def test_fig4_mba_upload_density(benchmark, experiment_runner):
    result = experiment_runner(benchmark, "fig4")
    m = result.metrics
    assert m["n_peaks"] == 4.0
    # Cluster means near (and slightly above) the offered uploads,
    # mirroring the paper's 5.87 / 11.55 / 17.57 / 38.62.
    for label, offered in (
        ("Tier 2-3", 5), ("Tier 4", 10), ("Tier 5", 15), ("Tier 6", 35),
    ):
        mean = m[f"cluster_mean_{label}"]
        assert offered * 0.95 < mean < offered * 1.35, label
