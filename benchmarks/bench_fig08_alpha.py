"""Figure 8: alpha -- stability of BST assignments per user-month."""


def test_fig8_alpha(benchmark, experiment_runner):
    result = experiment_runner(benchmark, "fig8")
    m = result.metrics
    assert m["median_alpha"] == 1.0  # the paper's headline
    assert m["fraction_alpha_1"] > 0.5
    assert m["n_user_months"] > 50
