"""Figure 6: City-A upload densities per measurement platform."""


def test_fig6_city_upload_density(benchmark, experiment_runner):
    result = experiment_runner(benchmark, "fig6")
    m = result.metrics
    # Paper: peaks form near the four offered uploads for every platform
    # (an extra low cluster may appear in noisy web/M-Lab data).
    for platform in ("Ookla-Android", "Ookla-Web", "MLab-Web"):
        assert 3 <= m[f"n_peaks_{platform}"] <= 6, platform
