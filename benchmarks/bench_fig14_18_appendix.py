"""Figures 14-18: appendix density structure for States B-D."""

from repro.market import state_catalog


def test_fig14_18_appendix_densities(benchmark, experiment_runner):
    result = experiment_runner(benchmark, "fig14-18")
    m = result.metrics
    for state in "BCD":
        n_groups = len(state_catalog(state).upload_groups())
        assert abs(m[f"{state}|n_upload_peaks"] - n_groups) <= 1, state
        # Download cluster tops ordered across groups.
        tops = [
            m[key]
            for key in sorted(m)
            if key.startswith(f"{state}|") and key.endswith("top_mean")
        ]
        assert tops, state
        assert max(tops) > 400  # the premium tier's cluster is visible
