"""Micro-benchmarks of the substrate hot paths.

These time the building blocks the experiment drivers lean on: GMM-EM
fits, KDE grids, BST end-to-end fits, the NDT join, dataset generation,
and ColumnTable group-by -- useful for catching performance regressions
independent of the paper artifacts.
"""

import numpy as np
import pytest

from repro.core.bst import BSTModel
from repro.frame import ColumnTable
from repro.market import city_catalog, state_catalog
from repro.pipeline.ndt_join import join_ndt_tests
from repro.stats import GaussianKDE, GaussianMixture
from repro.vendors import MBASimulator, MLabSimulator, OoklaSimulator


@pytest.fixture(scope="module")
def upload_sample():
    rng = np.random.default_rng(0)
    return np.concatenate(
        [
            rng.normal(5.7, 0.4, 8_000),
            rng.normal(11.4, 0.7, 3_000),
            rng.normal(17.1, 1.0, 3_000),
            rng.normal(40.0, 1.8, 4_000),
        ]
    )


def test_bench_gmm_fit(benchmark, upload_sample):
    def fit():
        return GaussianMixture(4, seed=0).fit(upload_sample)

    result = benchmark(fit)
    assert result.n_components == 4


def test_bench_kde_grid(benchmark, upload_sample):
    kde = GaussianKDE(upload_sample)

    def grid():
        return kde.grid(num=512)

    _, density = benchmark(grid)
    assert density.size == 512


def test_bench_bst_full_fit(benchmark):
    mba = MBASimulator("A", seed=1).generate(8_000)
    model = BSTModel(state_catalog("A"))
    downloads = np.asarray(mba["download_mbps"], dtype=float)
    uploads = np.asarray(mba["upload_mbps"], dtype=float)

    result = benchmark(lambda: model.fit(downloads, uploads))
    assert len(result) == 8_000


def test_bench_ookla_generation(benchmark):
    def generate():
        return OoklaSimulator("A", seed=2).generate(3_000)

    table = benchmark(generate)
    assert len(table) >= 3_000


def test_bench_ndt_join(benchmark):
    raw = MLabSimulator("A", seed=3).generate(6_000)

    joined = benchmark(lambda: join_ndt_tests(raw))
    assert len(joined) > 4_000


def test_bench_groupby_agg(benchmark):
    rng = np.random.default_rng(4)
    table = ColumnTable(
        {
            "key": rng.integers(0, 50, 60_000),
            "value": rng.normal(0, 1, 60_000),
        }
    )

    def agg():
        return table.groupby("key").agg(
            n=("*", "count"), mean=("value", "mean")
        )

    out = benchmark(agg)
    assert len(out) == 50


def test_bench_contextualize_city(benchmark):
    from repro.pipeline import contextualize

    ookla = OoklaSimulator("A", seed=5).generate(10_000)
    catalog = city_catalog("A")

    ctx = benchmark.pedantic(
        lambda: contextualize(ookla, catalog), rounds=1, iterations=1
    )
    assert len(ctx) == len(ookla)
