"""Benchmark harness scaffolding.

Each ``bench_*`` file regenerates one paper table/figure at MEDIUM scale,
prints the rendered experiment report (visible with ``pytest -s`` and
recorded in bench_output.txt), asserts the paper's qualitative shape, and
times the regeneration via pytest-benchmark.

Each run executes under :mod:`repro.obs` sinks, so the report is followed
by a per-stage timing table (span name, calls, total ms, p50/p95 ms) and
``result.timings`` carries the same numbers for downstream tooling.  Every
benchmarked experiment also emits a ``BENCH_<experiment_id>.json`` run
manifest (git SHA, config hash, span digest, metrics, quality report) and
-- unless ``REPRO_LEDGER`` disables it -- appends the same manifest to the
run ledger so ``repro obs check`` can track benchmark regressions.

Dataset generation is memoised in :mod:`repro.experiments.data`, so one
pytest session touches each simulated dataset once.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentResult, Scale, run_experiment
from repro.obs import use_collector, use_quality, use_registry
from repro.obs.runs import record_bench

BENCH_SCALE = Scale.MEDIUM
BENCH_SEED = 0


def _stage_table(collector) -> str:
    """Per-span-name timing summary of one benchmarked run."""
    stats = collector.aggregate_stats()
    if not stats:
        return "(no spans recorded)"
    width = max(len(name) for name in stats)
    lines = [
        f"{'stage'.ljust(width)}  calls  total ms    p50 ms    p95 ms"
    ]
    for name in sorted(
        stats, key=lambda n: stats[n]["total_s"], reverse=True
    ):
        row = stats[name]
        lines.append(
            f"{name.ljust(width)}  {int(row['count']):>5}  "
            f"{row['total_s'] * 1e3:>8.1f}  "
            f"{row['p50_s'] * 1e3:>8.2f}  {row['p95_s'] * 1e3:>8.2f}"
        )
    return "\n".join(lines)


@pytest.fixture(scope="session")
def experiment_runner():
    """Run-and-report helper shared by the per-artifact benches."""

    cache: dict[str, ExperimentResult] = {}

    def run(benchmark, experiment_id: str) -> ExperimentResult:
        def once() -> ExperimentResult:
            return run_experiment(
                experiment_id, scale=BENCH_SCALE, seed=BENCH_SEED
            )

        with use_collector() as collector, use_registry() as registry:
            with use_quality() as quality:
                result = benchmark.pedantic(once, rounds=1, iterations=1)
        cache[experiment_id] = result
        record_bench(
            experiment_id,
            wall_s=result.timings.get("total_s", 0.0),
            collector=collector,
            registry=registry,
            quality=quality,
            results=dict(result.metrics),
            params={
                "experiment_id": experiment_id,
                "scale": BENCH_SCALE.value,
                "seed": BENCH_SEED,
            },
            seed=BENCH_SEED,
        )
        print()
        print(result.render())
        print()
        print(f"-- per-stage spans ({experiment_id}) --")
        print(_stage_table(collector))
        return result

    return run
