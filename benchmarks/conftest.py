"""Benchmark harness scaffolding.

Each ``bench_*`` file regenerates one paper table/figure at MEDIUM scale,
prints the rendered experiment report (visible with ``pytest -s`` and
recorded in bench_output.txt), asserts the paper's qualitative shape, and
times the regeneration via pytest-benchmark.

Each run executes under a :mod:`repro.obs` span collector, so the report
is followed by a per-stage timing table (span name, calls, total ms) and
``result.timings`` carries the same numbers for downstream tooling.

Dataset generation is memoised in :mod:`repro.experiments.data`, so one
pytest session touches each simulated dataset once.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentResult, Scale, run_experiment
from repro.obs import use_collector

BENCH_SCALE = Scale.MEDIUM
BENCH_SEED = 0


def _stage_table(collector) -> str:
    """Per-span-name timing summary of one benchmarked run."""
    totals = collector.aggregate()
    if not totals:
        return "(no spans recorded)"
    width = max(len(name) for name in totals)
    lines = [f"{'stage'.ljust(width)}  calls  total ms"]
    for name in sorted(
        totals, key=lambda n: totals[n][1], reverse=True
    ):
        count, seconds = totals[name]
        lines.append(
            f"{name.ljust(width)}  {count:>5}  {seconds * 1e3:>8.1f}"
        )
    return "\n".join(lines)


@pytest.fixture(scope="session")
def experiment_runner():
    """Run-and-report helper shared by the per-artifact benches."""

    cache: dict[str, ExperimentResult] = {}

    def run(benchmark, experiment_id: str) -> ExperimentResult:
        def once() -> ExperimentResult:
            return run_experiment(
                experiment_id, scale=BENCH_SCALE, seed=BENCH_SEED
            )

        with use_collector() as collector:
            result = benchmark.pedantic(once, rounds=1, iterations=1)
        cache[experiment_id] = result
        print()
        print(result.render())
        print()
        print(f"-- per-stage spans ({experiment_id}) --")
        print(_stage_table(collector))
        return result

    return run
