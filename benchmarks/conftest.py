"""Benchmark harness scaffolding.

Each ``bench_*`` file regenerates one paper table/figure at MEDIUM scale,
prints the rendered experiment report (visible with ``pytest -s`` and
recorded in bench_output.txt), asserts the paper's qualitative shape, and
times the regeneration via pytest-benchmark.

Dataset generation is memoised in :mod:`repro.experiments.data`, so one
pytest session touches each simulated dataset once.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentResult, Scale, run_experiment

BENCH_SCALE = Scale.MEDIUM
BENCH_SEED = 0


@pytest.fixture(scope="session")
def experiment_runner():
    """Run-and-report helper shared by the per-artifact benches."""

    cache: dict[str, ExperimentResult] = {}

    def run(benchmark, experiment_id: str) -> ExperimentResult:
        def once() -> ExperimentResult:
            return run_experiment(
                experiment_id, scale=BENCH_SCALE, seed=BENCH_SEED
            )

        result = benchmark.pedantic(once, rounds=1, iterations=1)
        cache[experiment_id] = result
        print()
        print(result.render())
        return result

    return run
