"""Figure 12: normalised download per time bin, Tiers 4-5."""

from repro.pipeline.timeofday import TIME_BINS


def test_fig12_timeofday_performance(benchmark, experiment_runner):
    result = experiment_runner(benchmark, "fig12")
    m = result.metrics
    for group in ("Tier 4", "Tier 5"):
        medians = [m[f"{group}|{b}|median"] for b in TIME_BINS]
        # Overnight is (weakly) the best bin...
        assert m[f"{group}|00-06|median"] >= max(medians[1:]) * 0.95
        # ...but the effect is marginal, the paper's conclusion.
        advantage = m[f"{group}|overnight_advantage"]
        assert 0.95 < advantage < 1.45, group
