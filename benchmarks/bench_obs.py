"""Observability benchmarks: the cost of windowed instruments.

Asserts the windowed-telemetry contract from docs/OBSERVABILITY.md:
keeping ring-bucket windows next to the cumulative values must cost at
most **3x** the cumulative-only write path, for both counter
increments and histogram observations -- the serving tier updates these
on every request, so the window machinery has to stay O(1) and cheap.

Emits ``BENCH_obs.json`` (via :func:`repro.obs.runs.record_bench`) so
``repro obs check`` tracks instrumentation-cost regressions alongside
the other benchmarks.  Run with ``-s`` to see the timing table::

    PYTHONPATH=src python -m pytest benchmarks/bench_obs.py -q -s
"""

from __future__ import annotations

import os
import time

from repro.obs import use_registry
from repro.obs.metrics import Counter, Histogram, render_prometheus
from repro.obs.runs import record_bench

OBS_N = int(os.environ.get("REPRO_BENCH_OBS_N", "200000"))
MAX_WINDOWED_RATIO = 3.0


def _time_counter(windowed: bool, n: int) -> float:
    c = Counter("bench.count", windowed=windowed)
    t0 = time.perf_counter()
    for _ in range(n):
        c.inc()
    return time.perf_counter() - t0


def _time_histogram(windowed: bool, n: int) -> float:
    h = Histogram("bench.lat", windowed=windowed)
    t0 = time.perf_counter()
    for i in range(n):
        h.observe(i * 1e-6)
    return time.perf_counter() - t0


def test_windowed_overhead_within_bound(benchmark):
    """Windowed write path <= 3x the cumulative-only write path."""
    # Warm-up pass so allocator/JIT-cache effects hit neither side.
    _time_counter(True, 1_000)
    _time_histogram(True, 1_000)

    t0 = time.perf_counter()
    counter_plain_s = _time_counter(False, OBS_N)
    counter_windowed_s = _time_counter(True, OBS_N)
    hist_plain_s = _time_histogram(False, OBS_N)
    hist_windowed_s = _time_histogram(True, OBS_N)
    counter_ratio = counter_windowed_s / counter_plain_s
    hist_ratio = hist_windowed_s / hist_plain_s

    # Reads stay bounded too: a /metrics render over a busy registry.
    with use_registry() as registry:
        for i in range(10_000):
            registry.counter("serve.requests").inc()
            registry.histogram("serve.request_latency_s").observe(
                i * 1e-6
            )
        t_render = time.perf_counter()
        text = render_prometheus(registry, window_s=60.0)
        render_s = time.perf_counter() - t_render
        registry.gauge("obs.bench.counter_ratio").set(counter_ratio)
        registry.gauge("obs.bench.hist_ratio").set(hist_ratio)
    wall_s = time.perf_counter() - t0

    record_bench(
        "obs",
        wall_s=wall_s,
        registry=registry,
        results={
            "counter_plain_ns": counter_plain_s / OBS_N * 1e9,
            "counter_windowed_ns": counter_windowed_s / OBS_N * 1e9,
            "counter_ratio": counter_ratio,
            "hist_plain_ns": hist_plain_s / OBS_N * 1e9,
            "hist_windowed_ns": hist_windowed_s / OBS_N * 1e9,
            "hist_ratio": hist_ratio,
            "render_prometheus_ms": render_s * 1e3,
        },
        params={"n": OBS_N, "max_ratio": MAX_WINDOWED_RATIO},
        seed=0,
    )

    print()
    print(f"-- windowed instrument overhead (n={OBS_N}) --")
    print(
        f"counter inc:     plain {counter_plain_s / OBS_N * 1e9:7.1f} ns"
        f"  windowed {counter_windowed_s / OBS_N * 1e9:7.1f} ns"
        f"  ({counter_ratio:.2f}x)"
    )
    print(
        f"histogram obs:   plain {hist_plain_s / OBS_N * 1e9:7.1f} ns"
        f"  windowed {hist_windowed_s / OBS_N * 1e9:7.1f} ns"
        f"  ({hist_ratio:.2f}x)"
    )
    print(
        f"render /metrics: {render_s * 1e3:.2f} ms "
        f"({len(text.splitlines())} lines)"
    )

    assert counter_ratio <= MAX_WINDOWED_RATIO, (
        f"windowed counter costs {counter_ratio:.2f}x plain "
        f"(> {MAX_WINDOWED_RATIO}x)"
    )
    assert hist_ratio <= MAX_WINDOWED_RATIO, (
        f"windowed histogram costs {hist_ratio:.2f}x plain "
        f"(> {MAX_WINDOWED_RATIO}x)"
    )
    assert render_s < 1.0, f"/metrics render took {render_s:.2f} s"

    # pytest-benchmark records the windowed counter write path.
    benchmark.pedantic(
        lambda: _time_counter(True, 10_000),
        rounds=3,
        iterations=1,
    )
