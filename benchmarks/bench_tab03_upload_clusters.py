"""Table 3: upload clusters per platform, City-A."""


def test_tab3_upload_clusters(benchmark, experiment_runner):
    result = experiment_runner(benchmark, "tab3")
    m = result.metrics
    offered = {
        "Tier 1-3": 5.0, "Tier 4": 10.0, "Tier 5": 15.0, "Tier 6": 35.0,
    }
    # Every platform's cluster means must track the offered uploads,
    # as in the paper's Table 3 (means within ~15% of offered x1.14).
    for key, mean in m.items():
        platform, label, _ = key.split("|")
        base = offered[label]
        assert base * 0.85 < mean < base * 1.4, key
