"""Legacy setup shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 517 editable installs fail ("invalid command 'bdist_wheel'").  This
shim lets ``pip install -e . --no-use-pep517`` take the classic
``setup.py develop`` path.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
