"""Peak detection on KDE density curves.

Stage one of the BST methodology checks "whether the number of
upload/download speeds offered by an ISP matches the number of clusters
formed in the distribution of crowdsourced measurements" (Section 4.2).
This module finds local maxima of a density curve, with prominence and
relative-height filters so that ripples in the KDE tail are not counted as
subscription tiers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.stats.kde import GaussianKDE

__all__ = ["DensityPeak", "find_density_peaks", "count_density_peaks"]


@dataclass(frozen=True)
class DensityPeak:
    """A significant local maximum of a density curve."""

    location: float
    height: float
    prominence: float


def _local_maxima(density: np.ndarray) -> np.ndarray:
    """Indices of strict-or-plateau local maxima of a 1-D curve.

    Boundary maxima count: a curve that rises into the last index (or
    falls away from the first), and a plateau that touches either end,
    report a maximum there -- an edge-hugging cluster whose mode lands on
    the grid boundary must not vanish.  A fully constant curve has none.
    """
    if density.size < 3:
        return np.array([], dtype=int)
    maxima = []
    n = density.size
    i = 0
    while i < n:
        # Walk across any plateau [i, j].
        j = i
        while j + 1 < n and density[j + 1] == density[j]:
            j += 1
        rises_left = i == 0 or density[i - 1] < density[i]
        falls_right = j == n - 1 or density[j + 1] < density[j]
        if rises_left and falls_right and not (i == 0 and j == n - 1):
            maxima.append((i + j) // 2)
        i = j + 1
    return np.asarray(maxima, dtype=int)


def _prominence(density: np.ndarray, index: int) -> float:
    """Topographic prominence of the peak at ``index``.

    The prominence is the peak height minus the higher of the two lowest
    saddle points separating it from higher terrain on each side (or from
    the curve boundary when no higher peak exists on a side).  A peak
    sitting on the grid boundary has no terrain on that side at all, so
    only the interior side constrains its prominence.
    """
    height = density[index]
    side_mins: list[float] = []
    if index > 0:
        # Left side: lowest point between the peak and the nearest
        # higher point.
        left_min = height
        for i in range(index - 1, -1, -1):
            if density[i] > height:
                break
            left_min = min(left_min, density[i])
        else:
            left_min = float(density[: index + 1].min())
        side_mins.append(left_min)
    if index < density.size - 1:
        # Right side, symmetric.
        right_min = height
        for i in range(index + 1, density.size):
            if density[i] > height:
                break
            right_min = min(right_min, density[i])
        else:
            right_min = float(density[index:].min())
        side_mins.append(right_min)
    if not side_mins:
        return float(height)
    return float(height - max(side_mins))


def find_density_peaks(
    grid: np.ndarray,
    density: np.ndarray,
    min_prominence_frac: float = 0.05,
    min_height_frac: float = 0.02,
) -> list[DensityPeak]:
    """Significant peaks of a sampled density curve.

    Parameters
    ----------
    grid, density:
        The sampled curve (as returned by :meth:`GaussianKDE.grid`).
    min_prominence_frac:
        Minimum topographic prominence, as a fraction of the global maximum
        density, for a local maximum to count as a peak.
    min_height_frac:
        Minimum absolute height as a fraction of the global maximum.

    Returns
    -------
    list[DensityPeak]
        Peaks sorted by location (ascending).
    """
    grid = np.asarray(grid, dtype=float)
    density = np.asarray(density, dtype=float)
    if grid.shape != density.shape:
        raise ValueError("grid and density must have the same shape")
    if density.size == 0:
        return []
    top = float(density.max())
    if top <= 0:
        return []
    peaks = []
    for index in _local_maxima(density):
        height = float(density[index])
        if height < min_height_frac * top:
            continue
        prominence = _prominence(density, index)
        if prominence < min_prominence_frac * top:
            continue
        peaks.append(
            DensityPeak(
                location=float(grid[index]),
                height=height,
                prominence=prominence,
            )
        )
    return peaks


def count_density_peaks(
    values,
    num_grid: int = 512,
    bandwidth: float | str | None = None,
    min_prominence_frac: float = 0.05,
    min_height_frac: float = 0.02,
    log_space: bool = False,
    kde_method: str = "auto",
) -> int:
    """KDE a sample and count its significant density peaks.

    This is the cluster-count probe used by both BST stages.  A sample whose
    KDE is monotone (single mode) reports 1.

    ``log_space`` estimates the density of ``log(values)`` instead.  Speed
    distributions span decades (a 5 Mbps and a 35 Mbps upload cluster, a
    25 Mbps and a 1200 Mbps download cluster), so a single linear-scale
    bandwidth over-smooths the narrow low-speed clusters; the log transform
    gives every decade equal resolution.  Requires positive values (zeros
    and negatives are dropped along with NaNs).

    ``kde_method`` is forwarded to :meth:`GaussianKDE.grid`: ``"auto"``
    (the default) engages the linear-binning fast path for large samples,
    ``"exact"``/``"binned"`` force one path (see docs/PERFORMANCE.md).
    """
    values = np.asarray(values, dtype=float)
    if log_space:
        values = values[np.isfinite(values) & (values > 0)]
        if values.size == 0:
            raise ValueError("log-space peak counting needs positive values")
        values = np.log(values)
    with span(
        "kde.count_peaks", n=int(values.size), log_space=log_space
    ) as sp:
        kde = GaussianKDE(values, bandwidth=bandwidth)
        grid, density = kde.grid(num=num_grid, method=kde_method)
        peaks = find_density_peaks(
            grid,
            density,
            min_prominence_frac=min_prominence_frac,
            min_height_frac=min_height_frac,
        )
        count = max(1, len(peaks))
        sp.set(peaks=count)
    obs_metrics.histogram("kde.peaks_found").observe(count)
    return count
