"""Gaussian kernel density estimation.

The paper's BST methodology (Section 4.2) starts each clustering stage by
estimating the density of the recorded upload (or download) speeds with a
Gaussian-kernel KDE and counting the significant peaks; that count seeds the
number of mixture components.  This module implements the estimator from
scratch on numpy with the two standard bandwidth rules of thumb.

Two evaluation paths are available for grid evaluation:

- the **exact** path sums one Gaussian kernel per sample at every grid
  point -- ``O(n * num)`` work;
- the **binned** fast path linearly bins the sample onto the evaluation
  grid and convolves the bin weights with a sampled Gaussian kernel
  (direct or FFT convolution, whichever is cheaper) -- ``O(n + num log
  num)`` work.  :meth:`GaussianKDE.grid` switches to it automatically at
  ``FAST_PATH_MIN_SAMPLES`` samples whenever the grid resolves the
  bandwidth (spacing <= ``FAST_PATH_MAX_SPACING`` bandwidths); otherwise
  it falls back to the exact path.  The binned density deviates from the
  exact one by at most ~``(spacing / bandwidth)**2 / 8`` of the peak
  kernel height (< 0.5% of the peak density on default 512-point grids);
  see docs/PERFORMANCE.md for the derivation and measured bounds.
"""

from __future__ import annotations

import math

import numpy as np

from repro.obs.trace import span

__all__ = [
    "GaussianKDE",
    "silverman_bandwidth",
    "scott_bandwidth",
    "FAST_PATH_MIN_SAMPLES",
    "FAST_PATH_MAX_SPACING",
    "FAST_PATH_KERNEL_CUTOFF",
]

_SQRT_2PI = math.sqrt(2.0 * math.pi)
_SQRT_2 = math.sqrt(2.0)

# Grid-evaluation fast path: engage automatically at this many samples ...
FAST_PATH_MIN_SAMPLES = 10_000
# ... but only when the grid spacing is at most this many bandwidths
# (binning error grows as the square of spacing / bandwidth).
FAST_PATH_MAX_SPACING = 0.5
# Gaussian kernels are truncated this many bandwidths out (exp(-32) ~
# 1e-14, far below the binning error).
FAST_PATH_KERNEL_CUTOFF = 8.0

_GRID_METHODS = ("auto", "exact", "binned")

# numpy has no vectorised erf and scipy is not a dependency; math.erf is
# the correctly-rounded C99 double-precision erf, lifted element-wise.
_erf = np.frompyfunc(math.erf, 1, 1)


def _normal_cdf(z: np.ndarray) -> np.ndarray:
    """Standard normal CDF, vectorised via ``math.erf``."""
    return 0.5 * (1.0 + _erf(np.asarray(z, dtype=float) / _SQRT_2).astype(float))


def _spread(values: np.ndarray) -> float:
    """Robust scale estimate: min(std, IQR/1.349), the usual KDE choice."""
    std = float(np.std(values, ddof=1)) if len(values) > 1 else 0.0
    q75, q25 = np.percentile(values, [75.0, 25.0])
    iqr = float(q75 - q25)
    candidates = [s for s in (std, iqr / 1.349) if s > 0.0]
    return min(candidates) if candidates else 0.0


def silverman_bandwidth(values: np.ndarray) -> float:
    """Silverman's rule of thumb: ``0.9 * A * n**-0.2``.

    ``A`` is the robust spread.  Raises ``ValueError`` for empty input;
    degenerate (zero-spread) samples get a tiny positive bandwidth so the
    KDE stays well defined.
    """
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("bandwidth of an empty sample is undefined")
    spread = _spread(values)
    if spread == 0.0:
        return max(1e-6, abs(float(values[0])) * 1e-6 + 1e-9)
    return 0.9 * spread * values.size ** (-0.2)


def scott_bandwidth(values: np.ndarray) -> float:
    """Scott's rule of thumb: ``1.06 * A * n**-0.2``."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("bandwidth of an empty sample is undefined")
    spread = _spread(values)
    if spread == 0.0:
        return max(1e-6, abs(float(values[0])) * 1e-6 + 1e-9)
    return 1.06 * spread * values.size ** (-0.2)


def _convolve_same(weights: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """Convolution trimmed to ``len(weights)``, centred on the kernel.

    Always slices the full linear convolution (``np.convolve``'s "same"
    mode centres on the *longer* operand, which misaligns when the kernel
    outspans the grid).  Direct convolution is ``O(len(weights) *
    len(kernel))``; beyond a few million multiply-adds the zero-padded
    real FFT wins.
    """
    if weights.size * kernel.size <= 4_000_000:
        full = np.convolve(weights, kernel)
    else:
        length = weights.size + kernel.size - 1
        nfft = 1 << (length - 1).bit_length()
        full = np.fft.irfft(
            np.fft.rfft(weights, nfft) * np.fft.rfft(kernel, nfft), nfft
        )[:length]
    start = (kernel.size - 1) // 2
    return full[start : start + weights.size]


class GaussianKDE:
    """1-D kernel density estimator with Gaussian kernels.

    Parameters
    ----------
    values:
        Sample to estimate the density of.
    bandwidth:
        Kernel bandwidth (standard deviation of each Gaussian kernel).
        Defaults to Silverman's rule; pass a float to override, or
        ``"scott"`` for Scott's rule.

    Examples
    --------
    >>> kde = GaussianKDE([1.0, 1.1, 0.9, 5.0, 5.1])
    >>> grid, density = kde.grid(num=256)
    >>> bool(density.min() >= 0)
    True
    """

    def __init__(
        self,
        values,
        bandwidth: float | str | None = None,
    ):
        values = np.asarray(values, dtype=float)
        values = values[np.isfinite(values)]
        if values.size == 0:
            raise ValueError("GaussianKDE needs at least one finite value")
        self.values = np.sort(values)
        if bandwidth is None:
            self.bandwidth = silverman_bandwidth(self.values)
        elif bandwidth == "scott":
            self.bandwidth = scott_bandwidth(self.values)
        elif isinstance(bandwidth, str):
            raise ValueError(f"unknown bandwidth rule {bandwidth!r}")
        else:
            self.bandwidth = float(bandwidth)
            if self.bandwidth <= 0:
                raise ValueError("bandwidth must be positive")

    def evaluate(self, points) -> np.ndarray:
        """Density of the estimator at ``points`` (vectorised, exact).

        The result integrates to 1 over the real line.  This is the
        ``O(n * num_points)`` pairwise kernel sum; for dense even grids
        over large samples prefer :meth:`grid`, which switches to the
        linear-binning fast path automatically.
        """
        points = np.atleast_1d(np.asarray(points, dtype=float))
        h = self.bandwidth
        n = self.values.size
        # (num_points, n) standardised distances; chunk to bound memory for
        # large samples.
        out = np.empty(points.shape, dtype=float)
        chunk = max(1, int(4_000_000 // max(n, 1)))
        for start in range(0, points.size, chunk):
            stop = min(start + chunk, points.size)
            z = (points[start:stop, None] - self.values[None, :]) / h
            out[start:stop] = np.exp(-0.5 * z * z).sum(axis=1) / (
                n * h * _SQRT_2PI
            )
        return out

    __call__ = evaluate

    def _binned_applicable(self, spacing: float) -> bool:
        """Whether the binned path resolves the bandwidth at ``spacing``."""
        return spacing <= FAST_PATH_MAX_SPACING * self.bandwidth

    def _evaluate_binned(self, points: np.ndarray) -> np.ndarray:
        """Fast grid evaluation: linear binning + Gaussian convolution.

        ``points`` must be an evenly spaced ascending grid.  The grid is
        extended (at the same spacing) to cover every sample out to the
        kernel cutoff, the sample is linearly binned onto it, the bin
        weights are convolved with the kernel sampled at grid spacing,
        and the requested segment is sliced back out.
        """
        h = self.bandwidth
        n = self.values.size
        spacing = float(points[1] - points[0])
        cutoff = FAST_PATH_KERNEL_CUTOFF * h
        # Extension: samples more than `cutoff` outside the requested grid
        # contribute < 1e-14 of a kernel height inside it, so the extended
        # grid only needs to reach min/max(sample) clamped to the cutoff.
        lo_target = max(float(points[0]) - cutoff,
                        min(float(self.values[0]), float(points[0])))
        hi_target = min(float(points[-1]) + cutoff,
                        max(float(self.values[-1]), float(points[-1])))
        n_left = int(math.ceil((float(points[0]) - lo_target) / spacing))
        n_right = int(math.ceil((hi_target - float(points[-1])) / spacing))
        size = points.size + n_left + n_right
        grid_lo = float(points[0]) - n_left * spacing

        # Linear binning: each sample splits its unit mass between the two
        # enclosing grid points, proportionally to proximity.
        pos = (self.values - grid_lo) / spacing
        pos = pos[(pos >= 0.0) & (pos <= size - 1)]
        idx = np.minimum(pos.astype(np.int64), size - 2)
        frac = pos - idx
        weights = np.bincount(idx, weights=1.0 - frac, minlength=size)
        weights += np.bincount(idx + 1, weights=frac, minlength=size)

        half = int(math.ceil(cutoff / spacing))
        z = np.arange(-half, half + 1) * (spacing / h)
        kernel = np.exp(-0.5 * z * z) / (n * h * _SQRT_2PI)
        density = _convolve_same(weights, kernel)
        # FFT round-off can leave tiny negative values in empty regions.
        return np.maximum(density[n_left : n_left + points.size], 0.0)

    def grid(
        self,
        num: int = 512,
        lo: float | None = None,
        hi: float | None = None,
        pad_bandwidths: float = 3.0,
        method: str = "auto",
    ) -> tuple[np.ndarray, np.ndarray]:
        """Evaluate on an even grid spanning the sample.

        Returns ``(grid_points, densities)``.  The grid extends
        ``pad_bandwidths`` bandwidths beyond the sample extremes unless
        ``lo``/``hi`` are given.

        ``method`` selects the evaluation path: ``"exact"`` is the
        pairwise kernel sum, ``"binned"`` the linear-binning fast path
        (raises ``ValueError`` when the grid is too coarse to resolve the
        bandwidth), and ``"auto"`` (the default) picks ``"binned"`` for
        samples of at least :data:`FAST_PATH_MIN_SAMPLES` whenever it is
        applicable, falling back to ``"exact"`` otherwise.
        """
        if num < 2:
            raise ValueError("grid needs at least 2 points")
        if method not in _GRID_METHODS:
            raise ValueError(
                f"method must be one of {_GRID_METHODS}, got {method!r}"
            )
        pad = pad_bandwidths * self.bandwidth
        lo = float(self.values[0]) - pad if lo is None else float(lo)
        hi = float(self.values[-1]) + pad if hi is None else float(hi)
        if hi <= lo:
            hi = lo + max(1e-9, abs(lo) * 1e-9)
        points = np.linspace(lo, hi, num)
        spacing = float(points[1] - points[0])
        if method == "binned" and not self._binned_applicable(spacing):
            raise ValueError(
                "grid too coarse for the binned fast path: spacing "
                f"{spacing:.4g} exceeds {FAST_PATH_MAX_SPACING} x bandwidth "
                f"({self.bandwidth:.4g}); use method='exact' or a finer grid"
            )
        if method == "auto":
            method = (
                "binned"
                if self.values.size >= FAST_PATH_MIN_SAMPLES
                and self._binned_applicable(spacing)
                else "exact"
            )
        with span(
            "kde.grid", n=int(self.values.size), num=num, method=method
        ):
            if method == "binned":
                return points, self._evaluate_binned(points)
            return points, self.evaluate(points)

    def integrate(self, lo: float, hi: float) -> float:
        """Probability mass on ``[lo, hi]`` under the estimate.

        Uses the exact Gaussian CDF of each kernel (via ``math.erf``)
        rather than numeric quadrature.
        """
        if hi < lo:
            raise ValueError("integration bounds reversed")
        h = self.bandwidth
        upper = _normal_cdf((hi - self.values) / h)
        lower = _normal_cdf((lo - self.values) / h)
        return float(np.mean(upper - lower))
