"""Gaussian kernel density estimation.

The paper's BST methodology (Section 4.2) starts each clustering stage by
estimating the density of the recorded upload (or download) speeds with a
Gaussian-kernel KDE and counting the significant peaks; that count seeds the
number of mixture components.  This module implements the estimator from
scratch on numpy with the two standard bandwidth rules of thumb.
"""

from __future__ import annotations

import math

import numpy as np

from repro.obs.trace import span

__all__ = ["GaussianKDE", "silverman_bandwidth", "scott_bandwidth"]

_SQRT_2PI = math.sqrt(2.0 * math.pi)


def _spread(values: np.ndarray) -> float:
    """Robust scale estimate: min(std, IQR/1.349), the usual KDE choice."""
    std = float(np.std(values, ddof=1)) if len(values) > 1 else 0.0
    q75, q25 = np.percentile(values, [75.0, 25.0])
    iqr = float(q75 - q25)
    candidates = [s for s in (std, iqr / 1.349) if s > 0.0]
    return min(candidates) if candidates else 0.0


def silverman_bandwidth(values: np.ndarray) -> float:
    """Silverman's rule of thumb: ``0.9 * A * n**-0.2``.

    ``A`` is the robust spread.  Raises ``ValueError`` for empty input;
    degenerate (zero-spread) samples get a tiny positive bandwidth so the
    KDE stays well defined.
    """
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("bandwidth of an empty sample is undefined")
    spread = _spread(values)
    if spread == 0.0:
        return max(1e-6, abs(float(values[0])) * 1e-6 + 1e-9)
    return 0.9 * spread * values.size ** (-0.2)


def scott_bandwidth(values: np.ndarray) -> float:
    """Scott's rule of thumb: ``1.06 * A * n**-0.2``."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("bandwidth of an empty sample is undefined")
    spread = _spread(values)
    if spread == 0.0:
        return max(1e-6, abs(float(values[0])) * 1e-6 + 1e-9)
    return 1.06 * spread * values.size ** (-0.2)


class GaussianKDE:
    """1-D kernel density estimator with Gaussian kernels.

    Parameters
    ----------
    values:
        Sample to estimate the density of.
    bandwidth:
        Kernel bandwidth (standard deviation of each Gaussian kernel).
        Defaults to Silverman's rule; pass a float to override, or
        ``"scott"`` for Scott's rule.

    Examples
    --------
    >>> kde = GaussianKDE([1.0, 1.1, 0.9, 5.0, 5.1])
    >>> grid, density = kde.grid(num=256)
    >>> bool(density.min() >= 0)
    True
    """

    def __init__(
        self,
        values,
        bandwidth: float | str | None = None,
    ):
        values = np.asarray(values, dtype=float)
        values = values[np.isfinite(values)]
        if values.size == 0:
            raise ValueError("GaussianKDE needs at least one finite value")
        self.values = np.sort(values)
        if bandwidth is None:
            self.bandwidth = silverman_bandwidth(self.values)
        elif bandwidth == "scott":
            self.bandwidth = scott_bandwidth(self.values)
        elif isinstance(bandwidth, str):
            raise ValueError(f"unknown bandwidth rule {bandwidth!r}")
        else:
            self.bandwidth = float(bandwidth)
            if self.bandwidth <= 0:
                raise ValueError("bandwidth must be positive")

    def evaluate(self, points) -> np.ndarray:
        """Density of the estimator at ``points`` (vectorised).

        The result integrates to 1 over the real line.
        """
        points = np.atleast_1d(np.asarray(points, dtype=float))
        h = self.bandwidth
        n = self.values.size
        # (num_points, n) standardised distances; chunk to bound memory for
        # large samples.
        out = np.empty(points.shape, dtype=float)
        chunk = max(1, int(4_000_000 // max(n, 1)))
        for start in range(0, points.size, chunk):
            stop = min(start + chunk, points.size)
            z = (points[start:stop, None] - self.values[None, :]) / h
            out[start:stop] = np.exp(-0.5 * z * z).sum(axis=1) / (
                n * h * _SQRT_2PI
            )
        return out

    __call__ = evaluate

    def grid(
        self,
        num: int = 512,
        lo: float | None = None,
        hi: float | None = None,
        pad_bandwidths: float = 3.0,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Evaluate on an even grid spanning the sample.

        Returns ``(grid_points, densities)``.  The grid extends
        ``pad_bandwidths`` bandwidths beyond the sample extremes unless
        ``lo``/``hi`` are given.
        """
        if num < 2:
            raise ValueError("grid needs at least 2 points")
        pad = pad_bandwidths * self.bandwidth
        lo = float(self.values[0]) - pad if lo is None else float(lo)
        hi = float(self.values[-1]) + pad if hi is None else float(hi)
        if hi <= lo:
            hi = lo + max(1e-9, abs(lo) * 1e-9)
        points = np.linspace(lo, hi, num)
        with span("kde.grid", n=int(self.values.size), num=num):
            return points, self.evaluate(points)

    def integrate(self, lo: float, hi: float) -> float:
        """Probability mass on ``[lo, hi]`` under the estimate.

        Uses the exact Gaussian CDF of each kernel rather than numeric
        quadrature.
        """
        if hi < lo:
            raise ValueError("integration bounds reversed")
        from scipy.stats import norm  # local import keeps module load light

        h = self.bandwidth
        upper = norm.cdf((hi - self.values) / h)
        lower = norm.cdf((lo - self.values) / h)
        return float(np.mean(upper - lower))
