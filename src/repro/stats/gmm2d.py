"""Two-dimensional (diagonal-covariance) Gaussian mixture via EM.

The BST methodology clusters the ``<download, upload>`` tuple in two
*stages* -- upload first, then download within each upload group.  The
obvious alternative is a single joint fit over both dimensions at once.
This module provides that estimator so the ablation benchmark can
quantify what the staging buys: a joint mixture must trade off upload
separation against download spread inside one covariance, while the
staged fit exploits the near-noiseless upload dimension first.

The covariance is diagonal (download and upload noise are treated as
independent per component), which matches the simulator and keeps the
M-step closed-form.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs.logging import get_logger, kv
from repro.obs.trace import span

__all__ = ["GaussianMixture2D", "GMM2DFitResult"]

_LOG_2PI = math.log(2.0 * math.pi)

log = get_logger("stats.gmm2d")


@dataclass
class GMM2DFitResult:
    """Converged joint-fit parameters.

    ``means`` has shape (k, 2) -- column 0 is the first feature
    (download), column 1 the second (upload).  Components are sorted by
    (mean_upload, mean_download) so staged and joint fits order
    comparably.
    """

    means: np.ndarray
    variances: np.ndarray  # (k, 2), per-dimension
    weights: np.ndarray  # (k,)
    log_likelihood: float
    n_iter: int
    converged: bool

    @property
    def n_components(self) -> int:
        return int(self.weights.size)

    def bic(self, n_samples: int) -> float:
        """BIC with ``5k - 1`` free parameters (2 means + 2 vars + weight)."""
        if n_samples <= 0:
            raise ValueError("BIC needs a positive sample count")
        n_params = 5 * self.n_components - 1
        return n_params * math.log(n_samples) - 2.0 * self.log_likelihood


class GaussianMixture2D:
    """Diagonal-covariance 2-D GMM fit with EM.

    Parameters mirror :class:`~repro.stats.gmm.GaussianMixture`;
    ``means_init`` is a (k, 2) array (e.g. the catalog's
    ``(download, upload)`` advertised pairs) and the optional MAP prior
    anchors both dimensions of each component mean.

    Examples
    --------
    >>> rng = np.random.default_rng(0)
    >>> a = np.column_stack([rng.normal(100, 8, 300), rng.normal(5.5, .3, 300)])
    >>> b = np.column_stack([rng.normal(900, 60, 300), rng.normal(40, 2, 300)])
    >>> fit = GaussianMixture2D(2, seed=1).fit(np.vstack([a, b]))
    >>> [round(m) for m in fit.means[:, 1]]
    [5, 40]
    """

    def __init__(
        self,
        n_components: int,
        max_iter: int = 200,
        tol: float = 1e-6,
        var_floor_frac: float = 1e-6,
        seed: int | None = 0,
        means_init=None,
        mean_prior_strength: float = 0.0,
    ):
        if n_components < 1:
            raise ValueError("n_components must be >= 1")
        self.n_components = int(n_components)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.var_floor_frac = float(var_floor_frac)
        self.seed = seed
        self.means_init = (
            None if means_init is None else np.asarray(means_init, dtype=float)
        )
        if self.means_init is not None and self.means_init.shape != (
            self.n_components,
            2,
        ):
            raise ValueError(
                f"means_init must have shape ({self.n_components}, 2)"
            )
        if mean_prior_strength < 0:
            raise ValueError("mean_prior_strength cannot be negative")
        if mean_prior_strength > 0 and self.means_init is None:
            raise ValueError("mean_prior_strength requires means_init")
        self.mean_prior_strength = float(mean_prior_strength)
        self.result_: GMM2DFitResult | None = None

    # ------------------------------------------------------------------
    def _initial_means(self, data: np.ndarray) -> np.ndarray:
        if self.means_init is not None:
            return self.means_init.astype(float).copy()
        # Quantile seeds along the second (upload) dimension -- the
        # better-separated one -- carrying the matching download medians.
        k = self.n_components
        order = np.argsort(data[:, 1], kind="stable")
        chunks = np.array_split(order, k)
        rng = np.random.default_rng(self.seed)
        means = np.empty((k, 2))
        for i, chunk in enumerate(chunks):
            member = data[chunk] if chunk.size else data
            means[i] = np.median(member, axis=0)
        scale = np.maximum(np.std(data, axis=0), 1e-12)
        means += rng.normal(0.0, 1e-3, size=means.shape) * scale
        return means

    def _log_prob(
        self,
        data: np.ndarray,
        means: np.ndarray,
        variances: np.ndarray,
        weights: np.ndarray,
    ) -> np.ndarray:
        """log(w_k N(x | mu_k, diag var_k)); shape (n, k)."""
        parts = []
        for k in range(self.n_components):
            z2 = (data - means[k]) ** 2 / variances[k]
            log_pdf = -0.5 * (
                2 * _LOG_2PI + np.log(variances[k]).sum() + z2.sum(axis=1)
            )
            parts.append(np.log(weights[k]) + log_pdf)
        return np.stack(parts, axis=1)

    def fit(self, data) -> GMM2DFitResult:
        """Run EM on an (n, 2) sample."""
        data = np.asarray(data, dtype=float)
        if data.ndim != 2 or data.shape[1] != 2:
            raise ValueError(f"data must be (n, 2), got {data.shape}")
        data = data[np.isfinite(data).all(axis=1)]
        if data.shape[0] < self.n_components:
            raise ValueError(
                f"need at least {self.n_components} samples, "
                f"got {data.shape[0]}"
            )
        with span(
            "gmm2d.fit", k=self.n_components, n=int(data.shape[0])
        ) as sp:
            result = self._fit(data)
            sp.set(n_iter=result.n_iter, converged=result.converged)
        obs_metrics.histogram("em2d.iterations").observe(result.n_iter)
        if not result.converged:
            obs_metrics.counter("em2d.unconverged").inc()
            log.warning(
                "2-D EM hit the iteration cap before meeting tolerance",
                extra=kv(
                    k=self.n_components,
                    n=int(data.shape[0]),
                    max_iter=self.max_iter,
                    tol=self.tol,
                ),
            )
        return result

    def _fit(self, data: np.ndarray) -> GMM2DFitResult:
        sample_var = np.var(data, axis=0)
        var_floor = np.maximum(self.var_floor_frac * sample_var, 1e-12)

        means = self._initial_means(data)
        variances = np.tile(
            np.maximum(sample_var / self.n_components, var_floor),
            (self.n_components, 1),
        )
        weights = np.full(self.n_components, 1.0 / self.n_components)
        prior_centers = (
            means.copy() if self.mean_prior_strength > 0 else None
        )
        pseudo = self.mean_prior_strength * data.shape[0] / self.n_components

        prev_ll = -np.inf
        converged = False
        n_iter = 0
        for n_iter in range(1, self.max_iter + 1):
            log_prob = self._log_prob(data, means, variances, weights)
            top = log_prob.max(axis=1, keepdims=True)
            log_norm = top[:, 0] + np.log(
                np.exp(log_prob - top).sum(axis=1)
            )
            resp = np.exp(log_prob - log_norm[:, None])
            ll = float(log_norm.sum())

            nk = resp.sum(axis=0) + 1e-12
            weighted = resp.T @ data  # (k, 2)
            if prior_centers is None:
                means = weighted / nk[:, None]
            else:
                means = (weighted + pseudo * prior_centers) / (
                    nk[:, None] + pseudo
                )
            for k in range(self.n_components):
                diff2 = (data - means[k]) ** 2
                variances[k] = np.maximum(
                    (resp[:, k : k + 1] * diff2).sum(axis=0) / nk[k],
                    var_floor,
                )
            weights = nk / data.shape[0]

            if abs(ll - prev_ll) < self.tol * max(1.0, abs(ll)):
                converged = True
                prev_ll = ll
                break
            prev_ll = ll

        order = np.lexsort((means[:, 0], means[:, 1]))
        self.result_ = GMM2DFitResult(
            means=means[order],
            variances=variances[order],
            weights=weights[order],
            log_likelihood=prev_ll,
            n_iter=n_iter,
            converged=converged,
        )
        return self.result_

    # ------------------------------------------------------------------
    def _require_fit(self) -> GMM2DFitResult:
        if self.result_ is None:
            raise RuntimeError("call fit() before predicting")
        return self.result_

    def responsibilities(self, data) -> np.ndarray:
        fit = self._require_fit()
        data = np.asarray(data, dtype=float)
        log_prob = self._log_prob(data, fit.means, fit.variances, fit.weights)
        top = log_prob.max(axis=1, keepdims=True)
        log_norm = top + np.log(
            np.exp(log_prob - top).sum(axis=1, keepdims=True)
        )
        return np.exp(log_prob - log_norm)

    def predict(self, data) -> np.ndarray:
        """Most likely component per (download, upload) row."""
        return np.argmax(self.responsibilities(data), axis=1)
