"""Descriptive statistics used across the paper's evaluation.

Covers the per-user *consistency factor* of Section 4.1 (mean / 95th
percentile ratio over a user's repeated tests), empirical CDFs (every CDF
figure in the paper), quantile summaries, and plan-normalised speeds
(Section 6: "we normalize the recorded download speed by the offered
download speed for the subscription tier").
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "consistency_factor",
    "ecdf",
    "cdf_at",
    "quantiles",
    "median",
    "normalized_values",
    "bootstrap_ci",
]


def consistency_factor(values, percentile: float = 95.0) -> float:
    """Ratio of the mean to the ``percentile``-th percentile of a sample.

    Defined in Section 4.1: "we calculate a consistency factor by taking the
    ratio of the mean and 95th percentile for the sets of upload and
    download speeds recorded over multiple tests by the same user".  Values
    near 1 mean the user's repeated tests are consistent.  The ratio can
    exceed 1 for heavy-tailed samples (the paper notes this).
    """
    values = np.asarray(values, dtype=float)
    values = values[np.isfinite(values)]
    if values.size == 0:
        raise ValueError("consistency factor of an empty sample is undefined")
    denom = float(np.percentile(values, percentile))
    if denom == 0.0:
        return 1.0 if float(values.mean()) == 0.0 else np.inf
    return float(values.mean()) / denom


def ecdf(values) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of a sample.

    Returns ``(sorted_values, cumulative_fraction)`` where
    ``cumulative_fraction[i]`` is the fraction of the sample ``<=``
    ``sorted_values[i]``.  NaNs are dropped.
    """
    values = np.asarray(values, dtype=float)
    values = values[np.isfinite(values)]
    if values.size == 0:
        return np.array([]), np.array([])
    xs = np.sort(values)
    fractions = np.arange(1, xs.size + 1, dtype=float) / xs.size
    return xs, fractions


def cdf_at(values, points) -> np.ndarray:
    """Evaluate the empirical CDF of ``values`` at arbitrary ``points``."""
    values = np.asarray(values, dtype=float)
    values = values[np.isfinite(values)]
    points = np.atleast_1d(np.asarray(points, dtype=float))
    if values.size == 0:
        return np.full(points.shape, np.nan)
    xs = np.sort(values)
    return np.searchsorted(xs, points, side="right") / xs.size


def quantiles(values, qs=(0.1, 0.25, 0.5, 0.75, 0.9)) -> dict[float, float]:
    """Named quantile summary of a sample, NaNs dropped."""
    values = np.asarray(values, dtype=float)
    values = values[np.isfinite(values)]
    if values.size == 0:
        return {float(q): float("nan") for q in qs}
    result = np.quantile(values, list(qs))
    return {float(q): float(v) for q, v in zip(qs, result)}


def median(values) -> float:
    """Median with NaNs dropped; NaN for an empty sample."""
    values = np.asarray(values, dtype=float)
    values = values[np.isfinite(values)]
    if values.size == 0:
        return float("nan")
    return float(np.median(values))


def bootstrap_ci(
    values,
    statistic=np.median,
    confidence: float = 0.95,
    n_boot: int = 1000,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile bootstrap confidence interval for a statistic.

    Crowdsourced medians are sample estimates; the evaluation reports
    them with intervals so shape claims (e.g. "Ethernet > WiFi") can be
    checked for overlap.  NaNs are dropped; an empty sample raises.
    """
    values = np.asarray(values, dtype=float)
    values = values[np.isfinite(values)]
    if values.size == 0:
        raise ValueError("bootstrap of an empty sample is undefined")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    if n_boot < 1:
        raise ValueError("n_boot must be positive")
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, values.size, size=(n_boot, values.size))
    estimates = np.asarray(
        [statistic(values[row]) for row in indices], dtype=float
    )
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(estimates, [alpha, 1.0 - alpha])
    return float(lo), float(hi)


def normalized_values(measured, offered) -> np.ndarray:
    """Element-wise ``measured / offered`` speed normalisation.

    This is the paper's normalised download speed: 1.0 means the test
    achieved exactly the subscribed plan rate.  Non-positive or non-finite
    offered speeds yield NaN rather than raising, because tier assignment
    can legitimately fail for out-of-catalog measurements.
    """
    measured = np.asarray(measured, dtype=float)
    offered = np.asarray(offered, dtype=float)
    with np.errstate(divide="ignore", invalid="ignore"):
        out = measured / offered
    out = np.where(np.isfinite(offered) & (offered > 0), out, np.nan)
    return out
