"""Gaussian Mixture Model fit by Expectation-Maximization, from scratch.

Both BST stages (Section 4.2) cluster a 1-D speed distribution with
"GMM in conjunction with the Expectation-Maximization (EM) methodology
(GMM-EM) to iteratively compute the maximum likelihood that each speed test
data point belongs to its respective upload/download speed cluster".  This
module implements exactly that estimator for 1-D data with per-component
means, variances and weights, plus BIC-based component-count selection used
by the ablation benchmarks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs.logging import get_logger, kv
from repro.obs.trace import span

__all__ = ["GaussianMixture", "GMMFitResult", "select_components_bic"]

_LOG_2PI = math.log(2.0 * math.pi)

log = get_logger("stats.gmm")


@dataclass
class GMMFitResult:
    """Outcome of an EM fit.

    Attributes
    ----------
    means, variances, weights:
        Component parameters, sorted by mean (ascending).
    log_likelihood:
        Total log-likelihood of the sample at convergence.
    n_iter:
        EM iterations run.
    converged:
        Whether the log-likelihood improvement fell below tolerance before
        the iteration cap.
    """

    means: np.ndarray
    variances: np.ndarray
    weights: np.ndarray
    log_likelihood: float
    n_iter: int
    converged: bool

    @property
    def n_components(self) -> int:
        return int(self.means.size)

    def bic(self, n_samples: int) -> float:
        """Bayesian information criterion (lower is better).

        A 1-D GMM with k components has ``3k - 1`` free parameters
        (k means, k variances, k-1 independent weights).
        """
        if n_samples <= 0:
            raise ValueError("BIC needs a positive sample count")
        n_params = 3 * self.n_components - 1
        return n_params * math.log(n_samples) - 2.0 * self.log_likelihood


class GaussianMixture:
    """1-D Gaussian mixture fit with EM.

    Parameters
    ----------
    n_components:
        Number of mixture components.
    max_iter:
        EM iteration cap.
    tol:
        Convergence tolerance on the per-sample log-likelihood improvement.
    var_floor_frac:
        Variance floor, as a fraction of the sample variance, that keeps
        components from collapsing onto single points.
    seed:
        Seed for the initialisation; the fit itself is deterministic given
        the initialisation.
    means_init:
        Optional initial means (e.g. the ISP's advertised speeds); when
        given, initialisation is fully deterministic and ``seed`` is unused.
    mean_prior_strength:
        MAP-EM regularisation: each component mean gets a Gaussian prior
        centred at its initial value with pseudo-count
        ``mean_prior_strength * n / k`` observations.  Zero (default)
        recovers plain maximum-likelihood EM.  Requires ``means_init``.
        Useful when domain knowledge anchors the clusters (BST anchors
        upload components at the ISP's advertised speeds) and stray mass
        between clusters would otherwise drag components off their peaks.

    Examples
    --------
    >>> rng = np.random.default_rng(0)
    >>> sample = np.concatenate([rng.normal(5, .3, 500), rng.normal(35, 1, 500)])
    >>> fit = GaussianMixture(2, seed=1).fit(sample)
    >>> sorted(round(m) for m in fit.means)
    [5, 35]
    """

    def __init__(
        self,
        n_components: int,
        max_iter: int = 200,
        tol: float = 1e-6,
        var_floor_frac: float = 1e-6,
        seed: int | None = 0,
        means_init=None,
        mean_prior_strength: float = 0.0,
    ):
        if n_components < 1:
            raise ValueError("n_components must be >= 1")
        self.n_components = int(n_components)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.var_floor_frac = float(var_floor_frac)
        self.seed = seed
        self.means_init = (
            None if means_init is None else np.asarray(means_init, dtype=float)
        )
        if mean_prior_strength < 0:
            raise ValueError("mean_prior_strength cannot be negative")
        if mean_prior_strength > 0 and self.means_init is None:
            raise ValueError("mean_prior_strength requires means_init")
        self.mean_prior_strength = float(mean_prior_strength)
        self.result_: GMMFitResult | None = None

    # ------------------------------------------------------------------
    def _initial_means(self, values: np.ndarray) -> np.ndarray:
        """Quantile-spread initial means (deterministic, robust)."""
        if self.means_init is not None:
            if self.means_init.size != self.n_components:
                raise ValueError(
                    f"means_init has {self.means_init.size} entries, "
                    f"expected {self.n_components}"
                )
            return np.sort(self.means_init.astype(float))
        k = self.n_components
        # Evenly spaced quantiles put one seed in each density mass region;
        # a small seeded jitter breaks ties on discrete data.
        qs = (np.arange(k) + 0.5) / k
        means = np.quantile(values, qs)
        rng = np.random.default_rng(self.seed)
        scale = max(float(np.std(values)), 1e-12)
        means = means + rng.normal(0.0, 1e-3 * scale, size=k)
        return np.sort(means)

    @staticmethod
    def _log_gauss(values: np.ndarray, mean: float, var: float) -> np.ndarray:
        return -0.5 * (_LOG_2PI + math.log(var) + (values - mean) ** 2 / var)

    def _log_prob_matrix(
        self,
        values: np.ndarray,
        means: np.ndarray,
        variances: np.ndarray,
        weights: np.ndarray,
    ) -> np.ndarray:
        """``log(weight_k * N(x | mu_k, var_k))`` with shape (n, k)."""
        parts = [
            np.log(weights[k]) + self._log_gauss(values, means[k], variances[k])
            for k in range(means.size)
        ]
        return np.stack(parts, axis=1)

    def fit(self, values) -> GMMFitResult:
        """Run EM on the sample and return (and store) the fit result."""
        values = np.asarray(values, dtype=float)
        values = values[np.isfinite(values)]
        if values.size < self.n_components:
            raise ValueError(
                f"need at least {self.n_components} samples, got {values.size}"
            )
        with span("gmm.fit", k=self.n_components, n=int(values.size)) as sp:
            result = self._fit(values)
            sp.set(n_iter=result.n_iter, converged=result.converged)
        obs_metrics.histogram("em.iterations").observe(result.n_iter)
        obs_metrics.histogram("em.log_likelihood").observe(
            result.log_likelihood
        )
        if not result.converged:
            obs_metrics.counter("em.unconverged").inc()
            log.warning(
                "EM hit the iteration cap before meeting tolerance",
                extra=kv(
                    k=self.n_components,
                    n=int(values.size),
                    max_iter=self.max_iter,
                    tol=self.tol,
                    log_likelihood=result.log_likelihood,
                ),
            )
        return result

    def _fit(self, values: np.ndarray) -> GMMFitResult:
        sample_var = float(np.var(values))
        var_floor = max(self.var_floor_frac * sample_var, 1e-12)

        means = self._initial_means(values)
        variances = np.full(
            self.n_components, max(sample_var / self.n_components, var_floor)
        )
        weights = np.full(self.n_components, 1.0 / self.n_components)
        prior_centers = means.copy() if self.mean_prior_strength > 0 else None
        pseudo_count = (
            self.mean_prior_strength * values.size / self.n_components
        )

        prev_ll = -np.inf
        converged = False
        n_iter = 0
        for n_iter in range(1, self.max_iter + 1):
            # E-step: responsibilities via log-sum-exp for stability.
            log_prob = self._log_prob_matrix(values, means, variances, weights)
            log_norm = _logsumexp(log_prob, axis=1)
            resp = np.exp(log_prob - log_norm[:, None])
            ll = float(log_norm.sum())

            # M-step (MAP when a mean prior is configured).
            nk = resp.sum(axis=0) + 1e-12
            if prior_centers is None:
                means = (resp * values[:, None]).sum(axis=0) / nk
            else:
                means = (
                    (resp * values[:, None]).sum(axis=0)
                    + pseudo_count * prior_centers
                ) / (nk + pseudo_count)
            diff2 = (values[:, None] - means[None, :]) ** 2
            variances = np.maximum((resp * diff2).sum(axis=0) / nk, var_floor)
            weights = nk / values.size

            if abs(ll - prev_ll) < self.tol * max(1.0, abs(ll)):
                converged = True
                prev_ll = ll
                break
            prev_ll = ll

        order = np.argsort(means)
        self.result_ = GMMFitResult(
            means=means[order],
            variances=variances[order],
            weights=weights[order],
            log_likelihood=prev_ll,
            n_iter=n_iter,
            converged=converged,
        )
        return self.result_

    # ------------------------------------------------------------------
    def _require_fit(self) -> GMMFitResult:
        if self.result_ is None:
            raise RuntimeError("call fit() before predicting")
        return self.result_

    def responsibilities(self, values) -> np.ndarray:
        """Posterior probability of each component for each value; (n, k)."""
        fit = self._require_fit()
        values = np.asarray(values, dtype=float)
        log_prob = self._log_prob_matrix(
            values, fit.means, fit.variances, fit.weights
        )
        return np.exp(log_prob - _logsumexp(log_prob, axis=1)[:, None])

    def predict(self, values) -> np.ndarray:
        """Most likely component index (into the mean-sorted order)."""
        return np.argmax(self.responsibilities(values), axis=1)

    def score_samples(self, values) -> np.ndarray:
        """Per-sample log density under the fitted mixture."""
        fit = self._require_fit()
        values = np.asarray(values, dtype=float)
        log_prob = self._log_prob_matrix(
            values, fit.means, fit.variances, fit.weights
        )
        return _logsumexp(log_prob, axis=1)

    def sample(self, n: int, seed: int | None = None) -> np.ndarray:
        """Draw ``n`` values from the fitted mixture (for tests)."""
        fit = self._require_fit()
        rng = np.random.default_rng(seed)
        components = rng.choice(fit.n_components, size=n, p=fit.weights)
        return rng.normal(
            fit.means[components], np.sqrt(fit.variances[components])
        )


def _logsumexp(matrix: np.ndarray, axis: int) -> np.ndarray:
    top = matrix.max(axis=axis, keepdims=True)
    out = top + np.log(np.exp(matrix - top).sum(axis=axis, keepdims=True))
    return np.squeeze(out, axis=axis)


def select_components_bic(
    values,
    max_components: int = 10,
    seed: int | None = 0,
) -> GMMFitResult:
    """Fit GMMs with 1..max_components and return the best fit by BIC.

    This is the model-selection alternative to the paper's KDE peak-count
    seeding; the ablation benchmark compares the two.
    """
    values = np.asarray(values, dtype=float)
    values = values[np.isfinite(values)]
    if values.size == 0:
        raise ValueError("cannot select components for an empty sample")
    best: GMMFitResult | None = None
    best_bic = np.inf
    cap = min(max_components, values.size)
    for k in range(1, cap + 1):
        fit = GaussianMixture(k, seed=seed).fit(values)
        bic = fit.bic(values.size)
        if bic < best_bic:
            best, best_bic = fit, bic
    assert best is not None
    return best
