"""1-D K-Means, the ablation baseline for the paper's GMM choice.

Section 4.2 argues that "compared to other clustering methodologies such as
K-Means, GMM is a probabilistic model that considers the clusters' variance
in addition to the means".  The ablation benchmark quantifies that claim by
swapping this estimator into the BST pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["KMeans1D", "KMeansResult"]


@dataclass
class KMeansResult:
    """Converged K-Means state: centers sorted ascending plus inertia."""

    centers: np.ndarray
    inertia: float
    n_iter: int
    converged: bool


class KMeans1D:
    """Lloyd's algorithm on a 1-D sample with quantile initialisation.

    Parameters mirror :class:`~repro.stats.gmm.GaussianMixture` where
    meaningful so the two slot into the same BST pipeline interchangeably.
    """

    def __init__(
        self,
        n_clusters: int,
        max_iter: int = 300,
        tol: float = 1e-8,
        means_init=None,
    ):
        if n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        self.n_clusters = int(n_clusters)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.means_init = (
            None if means_init is None else np.asarray(means_init, dtype=float)
        )
        self.result_: KMeansResult | None = None

    def fit(self, values) -> KMeansResult:
        """Run Lloyd iterations until center movement falls below tol."""
        values = np.asarray(values, dtype=float)
        values = values[np.isfinite(values)]
        if values.size < self.n_clusters:
            raise ValueError(
                f"need at least {self.n_clusters} samples, got {values.size}"
            )
        if self.means_init is not None:
            if self.means_init.size != self.n_clusters:
                raise ValueError("means_init size mismatch")
            centers = np.sort(self.means_init.astype(float))
        else:
            qs = (np.arange(self.n_clusters) + 0.5) / self.n_clusters
            centers = np.sort(np.quantile(values, qs))

        converged = False
        n_iter = 0
        for n_iter in range(1, self.max_iter + 1):
            labels = self._assign(values, centers)
            new_centers = centers.copy()
            for k in range(self.n_clusters):
                members = values[labels == k]
                if members.size:
                    new_centers[k] = members.mean()
            new_centers = np.sort(new_centers)
            shift = float(np.abs(new_centers - centers).max())
            centers = new_centers
            if shift < self.tol:
                converged = True
                break
        labels = self._assign(values, centers)
        inertia = float(((values - centers[labels]) ** 2).sum())
        self.result_ = KMeansResult(
            centers=centers,
            inertia=inertia,
            n_iter=n_iter,
            converged=converged,
        )
        return self.result_

    @staticmethod
    def _assign(values: np.ndarray, centers: np.ndarray) -> np.ndarray:
        return np.argmin(np.abs(values[:, None] - centers[None, :]), axis=1)

    def predict(self, values) -> np.ndarray:
        """Nearest-center index for each value (centers sorted ascending)."""
        if self.result_ is None:
            raise RuntimeError("call fit() before predicting")
        values = np.asarray(values, dtype=float)
        return self._assign(values, self.result_.centers)
