"""Statistics substrate: density estimation and clustering from scratch.

The BST methodology of the paper (Section 4.2) is built on two classical
tools -- Kernel Density Estimation with Gaussian kernels to *count* the
clusters present in a speed distribution, and a Gaussian Mixture Model fit
with Expectation-Maximization to *assign* measurements to those clusters.
scikit-learn is not available offline, so both are implemented here on
numpy, together with a 1-D K-Means used as an ablation baseline and the
descriptive statistics (CDFs, consistency factor) used throughout the
evaluation.
"""

from repro.stats.kde import GaussianKDE, silverman_bandwidth, scott_bandwidth
from repro.stats.peaks import count_density_peaks, find_density_peaks
from repro.stats.gmm import GaussianMixture, GMMFitResult, select_components_bic
from repro.stats.gmm2d import GaussianMixture2D, GMM2DFitResult
from repro.stats.kmeans import KMeans1D
from repro.stats.descriptive import (
    consistency_factor,
    ecdf,
    cdf_at,
    quantiles,
    median,
    normalized_values,
    bootstrap_ci,
)

__all__ = [
    "GaussianKDE",
    "silverman_bandwidth",
    "scott_bandwidth",
    "count_density_peaks",
    "find_density_peaks",
    "GaussianMixture",
    "GMMFitResult",
    "select_components_bic",
    "GaussianMixture2D",
    "GMM2DFitResult",
    "KMeans1D",
    "consistency_factor",
    "ecdf",
    "cdf_at",
    "quantiles",
    "median",
    "normalized_values",
    "bootstrap_ci",
]
