"""Run manifests and the JSONL run ledger.

Every CLI subcommand, experiment, and benchmark run can record *how* it
ran — the provenance a result needs to be interpretable later:

- a :class:`RunManifest` captures run id, UTC timestamp, CLI argv,
  resolved parameters, a deterministic **config hash**, seed, **git
  SHA**, Python/platform, wall time, **peak RSS**, a per-stage span
  table with a content digest, the metrics snapshot, a
  :class:`~repro.obs.quality.QualityReport`, and the run's headline
  result numbers;
- a :class:`RunLedger` appends manifests as JSON lines (one run per
  line, ``results/runs.jsonl`` by default) and reads them back for the
  ``repro obs`` CLI family (``runs`` / ``show`` / ``diff`` / ``check``);
- :class:`RunRecorder` is the context helper the CLI and benchmark
  harness wrap a run in: it times the run, then snapshots the active
  span collector / metrics registry / quality monitor into the manifest.

Everything is stdlib-only and opt-in: nothing in the library imports
this module on the hot path, and with the ledger disabled (``repro
--no-ledger`` or ``REPRO_LEDGER=0``) no manifest is ever built.
"""

from __future__ import annotations

import enum
import hashlib
import json
import math
import os
import platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.obs.quality import QualityReport

__all__ = [
    "MANIFEST_SCHEMA",
    "RunLedger",
    "RunManifest",
    "RunRecorder",
    "config_fingerprint",
    "default_ledger_path",
    "git_revision",
    "new_run_id",
    "peak_rss_bytes",
    "record_bench",
    "write_manifest_json",
]

MANIFEST_SCHEMA = 1

DEFAULT_LEDGER = "results/runs.jsonl"

LEDGER_ENV = "REPRO_LEDGER"


# ---------------------------------------------------------------------------
# Provenance probes
# ---------------------------------------------------------------------------
def new_run_id() -> str:
    """A unique, sortable run id: ``<UTC compact timestamp>-<6 hex>``."""
    # lint: allow[DET002] run ids are provenance, stamped at wall-clock
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
    # lint: allow[DET003] run-id entropy must differ across runs by design
    return f"{stamp}-{os.urandom(3).hex()}"


def _canonical(value: Any) -> Any:
    """Coerce a parameter structure to a canonical JSON-able form.

    Dicts are key-sorted downstream by ``json.dumps(sort_keys=True)``;
    here we normalise the values: tuples/sets become lists (sets sorted
    by repr for determinism), enums become their ``value``, numpy
    scalars unwrap, dataclass-like objects fall back to ``vars``.
    """
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted((_canonical(v) for v in value), key=repr)
    if isinstance(value, (str, bool)) or value is None:
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else repr(value)
    if isinstance(value, int):
        return value
    if isinstance(value, enum.Enum):
        return _canonical(value.value)
    if hasattr(value, "item"):  # numpy scalar
        return _canonical(value.item())
    if hasattr(value, "__dataclass_fields__"):
        return _canonical(vars(value))
    return repr(value)


def config_fingerprint(params: Mapping[str, Any] | Any) -> str:
    """Deterministic SHA-256 over the canonical JSON of ``params``.

    Stable across processes and ``PYTHONHASHSEED`` values: the only
    sources of order are sorted keys and the input values themselves.
    Accepts mappings, dataclasses (e.g. ``BSTConfig``), or any nested
    structure of scalars/sequences.
    """
    canon = _canonical(params)
    payload = json.dumps(
        canon, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def git_revision(start: str | Path | None = None) -> str | None:
    """The current git commit SHA, or ``None`` outside a repository.

    Reads ``.git/HEAD`` directly (works without a ``git`` binary and
    costs no subprocess on the common path), falling back to
    ``git rev-parse HEAD`` for exotic layouts (worktrees, packed refs in
    unusual places).
    """
    root = Path(start) if start is not None else Path.cwd()
    for candidate in (root, *root.parents):
        git_dir = candidate / ".git"
        if git_dir.is_dir():
            sha = _read_git_head(git_dir)
            if sha:
                return sha
            break
        if git_dir.is_file():  # worktree: ".git" is a pointer file
            break
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(root),
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def _read_git_head(git_dir: Path) -> str | None:
    try:
        head = (git_dir / "HEAD").read_text(encoding="utf-8").strip()
    except OSError:
        return None
    if not head.startswith("ref:"):
        return head or None
    ref = head.split(None, 1)[1].strip()
    ref_file = git_dir / ref
    try:
        return ref_file.read_text(encoding="utf-8").strip() or None
    except OSError:
        pass
    try:
        packed = (git_dir / "packed-refs").read_text(encoding="utf-8")
    except OSError:
        return None
    for line in packed.splitlines():
        if line.startswith("#") or line.startswith("^"):
            continue
        parts = line.split()
        if len(parts) == 2 and parts[1] == ref:
            return parts[0]
    return None


def peak_rss_bytes() -> int | None:
    """Peak resident set size of this process, in bytes (None if unknown)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - Windows
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if usage <= 0:
        return None
    # ru_maxrss is kilobytes on Linux, bytes on macOS.
    return int(usage) if sys.platform == "darwin" else int(usage) * 1024


# ---------------------------------------------------------------------------
# Manifest
# ---------------------------------------------------------------------------
@dataclass
class RunManifest:
    """Provenance record of one pipeline run (one ledger line)."""

    run_id: str
    kind: str  # "cli" | "experiment" | "bench"
    name: str  # subcommand, "experiment.<id>", or "bench.<id>"
    started_utc: str
    argv: list[str] = field(default_factory=list)
    params: dict[str, Any] = field(default_factory=dict)
    config_hash: str = ""
    seed: int | None = None
    git_sha: str | None = None
    python: str = ""
    platform: str = ""
    wall_s: float = 0.0
    peak_rss_bytes: int | None = None
    exit_code: int | None = None
    span_table: dict[str, dict[str, float]] = field(default_factory=dict)
    span_digest: str | None = None
    metrics: dict[str, dict[str, float]] = field(default_factory=dict)
    quality: QualityReport | None = None
    results: dict[str, float] = field(default_factory=dict)
    schema: int = MANIFEST_SCHEMA

    def to_dict(self) -> dict[str, Any]:
        row = {
            "schema": self.schema,
            "run_id": self.run_id,
            "kind": self.kind,
            "name": self.name,
            "started_utc": self.started_utc,
            "argv": list(self.argv),
            "params": _canonical(self.params),
            "config_hash": self.config_hash,
            "seed": self.seed,
            "git_sha": self.git_sha,
            "python": self.python,
            "platform": self.platform,
            "wall_s": round(self.wall_s, 6),
            "peak_rss_bytes": self.peak_rss_bytes,
            "exit_code": self.exit_code,
            "span_table": self.span_table,
            "span_digest": self.span_digest,
            "metrics": _sanitize_metrics(self.metrics),
            "quality": self.quality.to_dict() if self.quality else None,
            "results": {
                k: _nan_safe(v) for k, v in self.results.items()
            },
        }
        return row

    @classmethod
    def from_dict(cls, row: Mapping[str, Any]) -> "RunManifest":
        quality = row.get("quality")
        return cls(
            run_id=row["run_id"],
            kind=row.get("kind", "cli"),
            name=row.get("name", ""),
            started_utc=row.get("started_utc", ""),
            argv=list(row.get("argv", [])),
            params=dict(row.get("params", {})),
            config_hash=row.get("config_hash", ""),
            seed=row.get("seed"),
            git_sha=row.get("git_sha"),
            python=row.get("python", ""),
            platform=row.get("platform", ""),
            wall_s=float(row.get("wall_s", 0.0)),
            peak_rss_bytes=row.get("peak_rss_bytes"),
            exit_code=row.get("exit_code"),
            span_table=dict(row.get("span_table", {})),
            span_digest=row.get("span_digest"),
            metrics=dict(row.get("metrics", {})),
            quality=(
                QualityReport.from_dict(quality) if quality else None
            ),
            results={
                k: _restore(v) for k, v in row.get("results", {}).items()
            },
            schema=int(row.get("schema", MANIFEST_SCHEMA)),
        )

    def render(self) -> str:
        """Full text view of the manifest (``repro obs show``)."""
        lines = [
            f"== run {self.run_id} ==",
            f"kind/name:    {self.kind} / {self.name}",
            f"started:      {self.started_utc}",
            f"argv:         {' '.join(self.argv) or '(none)'}",
            f"git sha:      {self.git_sha or 'n/a'}",
            f"config hash:  {self.config_hash[:16] or 'n/a'}",
            f"seed:         {self.seed if self.seed is not None else 'n/a'}",
            f"python:       {self.python}",
            f"platform:     {self.platform}",
            f"wall time:    {self.wall_s:.3f} s",
            f"peak RSS:     {_fmt_bytes(self.peak_rss_bytes)}",
            f"exit code:    "
            f"{self.exit_code if self.exit_code is not None else 'n/a'}",
        ]
        if self.params:
            lines.append("-- params --")
            for key in sorted(self.params):
                lines.append(f"{key}: {self.params[key]}")
        if self.span_table:
            lines.append(f"-- span table (digest {self.span_digest}) --")
            width = max(len(name) for name in self.span_table)
            lines.append(
                f"{'stage'.ljust(width)}  calls  total ms   p95 ms"
            )
            for name in sorted(
                self.span_table,
                key=lambda n: self.span_table[n].get("total_s", 0.0),
                reverse=True,
            ):
                entry = self.span_table[name]
                lines.append(
                    f"{name.ljust(width)}  "
                    f"{int(entry.get('count', 0)):>5}  "
                    f"{entry.get('total_s', 0.0) * 1e3:>8.1f}  "
                    f"{entry.get('p95_s', 0.0) * 1e3:>7.2f}"
                )
        if self.results:
            lines.append("-- results --")
            for key in sorted(self.results):
                lines.append(f"{key}: {self.results[key]:.6g}")
        if self.metrics:
            lines.append(f"-- metrics ({len(self.metrics)} instruments) --")
            for name in sorted(self.metrics):
                entry = self.metrics[name]
                if entry.get("type") == "histogram":
                    lines.append(
                        f"{name}: n={entry.get('count')} "
                        f"mean={_g(entry.get('mean'))} "
                        f"p95={_g(entry.get('p95'))}"
                    )
                else:
                    lines.append(f"{name}: {_g(entry.get('value'))}")
        if self.quality is not None:
            lines.append("-- data quality --")
            lines.append(self.quality.render())
        return "\n".join(lines)


def _nan_safe(value: Any) -> Any:
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def _restore(value: Any) -> float:
    return float("nan") if value is None else float(value)


def _g(value: Any) -> str:
    if value is None:
        return "n/a"
    try:
        return f"{float(value):g}"
    except (TypeError, ValueError):
        return str(value)


def _sanitize_metrics(
    metrics: Mapping[str, Mapping[str, Any]],
) -> dict[str, dict[str, Any]]:
    return {
        name: {k: _nan_safe(v) for k, v in entry.items()}
        for name, entry in metrics.items()
    }


def _fmt_bytes(n: int | None) -> str:
    if n is None:
        return "n/a"
    if n >= 1 << 30:
        return f"{n / (1 << 30):.2f} GiB"
    if n >= 1 << 20:
        return f"{n / (1 << 20):.1f} MiB"
    return f"{n} B"


# ---------------------------------------------------------------------------
# Ledger
# ---------------------------------------------------------------------------
class RunLedger:
    """Append-only JSONL store of run manifests."""

    def __init__(self, path: str | Path = DEFAULT_LEDGER) -> None:
        self.path = Path(path)

    def append(self, manifest: RunManifest) -> None:
        """Append one manifest as a JSON line (creating parent dirs)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(manifest.to_dict(), sort_keys=True) + "\n")

    def read(self) -> list[RunManifest]:
        """Every parseable manifest, oldest first (corrupt lines skipped)."""
        if not self.path.exists():
            return []
        manifests: list[RunManifest] = []
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    manifests.append(RunManifest.from_dict(json.loads(line)))
                except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                    continue
        return manifests

    def matching(
        self,
        kind: str | None = None,
        name: str | None = None,
    ) -> list[RunManifest]:
        """Manifests filtered by kind and/or name, oldest first."""
        return [
            m
            for m in self.read()
            if (kind is None or m.kind == kind)
            and (name is None or m.name == name)
        ]

    def find(self, run_id: str) -> RunManifest:
        """The manifest whose id equals or starts with ``run_id``.

        ``"latest"``/``"last"`` select the most recent run.  Raises
        ``KeyError`` when the id is unknown or the prefix ambiguous.
        """
        manifests = self.read()
        if not manifests:
            raise KeyError(f"run ledger {self.path} is empty")
        if run_id in ("latest", "last"):
            return manifests[-1]
        exact = [m for m in manifests if m.run_id == run_id]
        if exact:
            return exact[-1]
        prefixed = [m for m in manifests if m.run_id.startswith(run_id)]
        if not prefixed:
            raise KeyError(f"no run with id {run_id!r} in {self.path}")
        distinct = {m.run_id for m in prefixed}
        if len(distinct) > 1:
            raise KeyError(
                f"run id prefix {run_id!r} is ambiguous: {sorted(distinct)}"
            )
        return prefixed[-1]


def default_ledger_path() -> str | None:
    """The ledger path after the ``REPRO_LEDGER`` env override.

    ``REPRO_LEDGER=0`` / ``off`` / ``none`` / empty disables the ledger;
    any other value is used as the path; unset falls back to
    ``results/runs.jsonl``.
    """
    value = os.environ.get(LEDGER_ENV)
    if value is None:
        return DEFAULT_LEDGER
    if value.strip().lower() in ("", "0", "off", "none", "false"):
        return None
    return value


# ---------------------------------------------------------------------------
# Recorder
# ---------------------------------------------------------------------------
class RunRecorder:
    """Times a run and snapshots the active obs sinks into a manifest.

    Usage::

        rec = RunRecorder(kind="cli", name="contextualize", argv=argv,
                          params=params, seed=seed)
        with rec:
            code = run_the_command()
        manifest = rec.finish(exit_code=code)
        RunLedger(path).append(manifest)

    ``finish`` reads the *currently active* span collector, metrics
    registry, and quality monitor (pass explicit ones to override), so
    the caller controls which sinks feed the manifest.
    """

    def __init__(
        self,
        kind: str,
        name: str,
        argv: Iterable[str] | None = None,
        params: Mapping[str, Any] | None = None,
        seed: int | None = None,
    ) -> None:
        self.kind = kind
        self.name = name
        self.argv = list(argv or [])
        self.params = dict(params or {})
        self.seed = seed
        self.run_id = new_run_id()
        # lint: allow[DET002] manifest start timestamp is provenance
        self.started_utc = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
        self._start = None
        self._wall: float | None = None

    def __enter__(self) -> "RunRecorder":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._wall = time.perf_counter() - self._start

    def finish(
        self,
        exit_code: int | None = None,
        collector: Any = None,
        registry: Any = None,
        quality: Any = None,
        results: Mapping[str, float] | None = None,
        wall_s: float | None = None,
    ) -> RunManifest:
        """Build the manifest from the run's sinks and outcome."""
        from repro.obs import metrics as obs_metrics
        from repro.obs import trace as obs_trace
        from repro.obs import quality as obs_quality

        collector = collector if collector is not None else (
            obs_trace.get_collector()
        )
        registry = registry if registry is not None else (
            obs_metrics.get_registry()
        )
        quality = quality if quality is not None else (
            obs_quality.get_quality()
        )

        span_table: dict[str, dict[str, float]] = {}
        span_digest = None
        if getattr(collector, "enabled", False):
            span_table = collector.aggregate_stats()
            span_digest = hashlib.sha256(
                json.dumps(
                    span_table, sort_keys=True, separators=(",", ":")
                ).encode("utf-8")
            ).hexdigest()[:16]

        metrics_snap: dict[str, dict[str, float]] = {}
        quality_report = None
        if getattr(quality, "enabled", False):
            quality_report = quality.report()
            quality_report.publish_metrics()
        if getattr(registry, "enabled", False):
            metrics_snap = registry.snapshot()

        if wall_s is None:
            wall_s = self._wall if self._wall is not None else 0.0

        return RunManifest(
            run_id=self.run_id,
            kind=self.kind,
            name=self.name,
            started_utc=self.started_utc,
            argv=self.argv,
            params=self.params,
            config_hash=config_fingerprint(self.params),
            seed=self.seed,
            git_sha=git_revision(),
            python=platform.python_version(),
            platform=f"{platform.system()}-{platform.machine()}",
            wall_s=float(wall_s),
            peak_rss_bytes=peak_rss_bytes(),
            exit_code=exit_code,
            span_table=span_table,
            span_digest=span_digest,
            metrics=metrics_snap,
            quality=quality_report,
            results=dict(results or {}),
        )


def write_manifest_json(manifest: RunManifest, path: str | Path) -> Path:
    """Write one manifest as a standalone JSON file (``BENCH_<name>.json``)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(manifest.to_dict(), sort_keys=True, indent=2) + "\n",
        encoding="utf-8",
    )
    return path


def record_bench(
    name: str,
    wall_s: float,
    collector: Any = None,
    registry: Any = None,
    quality: Any = None,
    results: Mapping[str, float] | None = None,
    params: Mapping[str, Any] | None = None,
    seed: int | None = None,
    out_dir: str | Path = ".",
) -> RunManifest:
    """Ledger one benchmark run and drop its ``BENCH_<name>.json``.

    The benchmark-harness entry point into the manifest writer: builds a
    ``kind="bench"`` manifest named ``bench.<name>`` from the given sinks
    and timings, writes ``<out_dir>/BENCH_<name>.json`` (CI uploads these
    as artifacts), and -- when the run ledger is enabled (see
    :func:`default_ledger_path`) -- appends the manifest so ``repro obs
    check`` can compare benchmark runs over time.
    """
    recorder = RunRecorder(
        kind="bench", name=f"bench.{name}", params=params, seed=seed
    )
    manifest = recorder.finish(
        exit_code=0,
        collector=collector,
        registry=registry,
        quality=quality,
        results=results,
        wall_s=wall_s,
    )
    safe = name.replace("/", "_")
    write_manifest_json(manifest, Path(out_dir) / f"BENCH_{safe}.json")
    ledger = default_ledger_path()
    if ledger is not None:
        RunLedger(ledger).append(manifest)
    return manifest
