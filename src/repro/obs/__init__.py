"""Observability for the BST pipeline: logging, tracing, metrics, profiling.

Everything here is zero-dependency (stdlib only) and **off by default**:
the module-level span collector and metrics registry are no-op objects,
so instrumented library code adds only a function call per stage until a
caller opts in (the CLI's ``--log-level`` / ``--trace-out`` /
``--metrics`` / ``--profile`` flags, or the ``use_collector`` /
``use_registry`` context managers in tests and benchmarks).

See docs/OBSERVABILITY.md for the span/metric naming convention.
"""

from __future__ import annotations

from repro.obs.logging import configure_logging, get_logger, kv
from repro.obs.metrics import (
    MetricsRegistry,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.quality import (
    QualityMonitor,
    QualityReport,
    get_quality,
    set_quality,
    use_quality,
)
from repro.obs.trace import (
    Span,
    SpanCollector,
    current_span,
    current_trace_id,
    get_collector,
    new_trace_id,
    set_collector,
    should_sample,
    span,
    use_collector,
    use_trace_id,
)

__all__ = [
    "AlertEngine",
    "AlertEvaluator",
    "AlertRule",
    "MetricsRegistry",
    "ProfileReport",
    "QualityMonitor",
    "QualityReport",
    "RunLedger",
    "RunManifest",
    "RunRecorder",
    "Span",
    "SpanCollector",
    "configure_logging",
    "current_span",
    "current_trace_id",
    "default_serve_rules",
    "get_collector",
    "get_logger",
    "get_quality",
    "get_registry",
    "kv",
    "load_rules",
    "new_trace_id",
    "profile_block",
    "set_collector",
    "set_quality",
    "set_registry",
    "should_sample",
    "span",
    "use_collector",
    "use_quality",
    "use_registry",
    "use_trace_id",
]

_RUNS_EXPORTS = ("RunLedger", "RunManifest", "RunRecorder")
_ALERTS_EXPORTS = (
    "AlertEngine",
    "AlertEvaluator",
    "AlertRule",
    "default_serve_rules",
    "load_rules",
)


def __getattr__(name: str):
    # cProfile/pstats load only when profiling is actually requested;
    # the run-ledger and alerting machinery load only on first use.
    if name in ("profile_block", "ProfileReport"):
        from repro.obs import profile as _profile

        return getattr(_profile, name)
    if name in _RUNS_EXPORTS:
        from repro.obs import runs as _runs

        return getattr(_runs, name)
    if name in _ALERTS_EXPORTS:
        from repro.obs import alerts as _alerts

        return getattr(_alerts, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
