"""Observability for the BST pipeline: logging, tracing, metrics, profiling.

Everything here is zero-dependency (stdlib only) and **off by default**:
the module-level span collector and metrics registry are no-op objects,
so instrumented library code adds only a function call per stage until a
caller opts in (the CLI's ``--log-level`` / ``--trace-out`` /
``--metrics`` / ``--profile`` flags, or the ``use_collector`` /
``use_registry`` context managers in tests and benchmarks).

See docs/OBSERVABILITY.md for the span/metric naming convention.
"""

from __future__ import annotations

from repro.obs.logging import configure_logging, get_logger, kv
from repro.obs.metrics import (
    MetricsRegistry,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.quality import (
    QualityMonitor,
    QualityReport,
    get_quality,
    set_quality,
    use_quality,
)
from repro.obs.trace import (
    Span,
    SpanCollector,
    current_span,
    get_collector,
    set_collector,
    span,
    use_collector,
)

__all__ = [
    "MetricsRegistry",
    "ProfileReport",
    "QualityMonitor",
    "QualityReport",
    "RunLedger",
    "RunManifest",
    "RunRecorder",
    "Span",
    "SpanCollector",
    "configure_logging",
    "current_span",
    "get_collector",
    "get_logger",
    "get_quality",
    "get_registry",
    "kv",
    "profile_block",
    "set_collector",
    "set_quality",
    "set_registry",
    "span",
    "use_collector",
    "use_quality",
    "use_registry",
]

_RUNS_EXPORTS = ("RunLedger", "RunManifest", "RunRecorder")


def __getattr__(name: str):
    # cProfile/pstats load only when profiling is actually requested;
    # the run-ledger machinery loads only when a manifest is recorded.
    if name in ("profile_block", "ProfileReport"):
        from repro.obs import profile as _profile

        return getattr(_profile, name)
    if name in _RUNS_EXPORTS:
        from repro.obs import runs as _runs

        return getattr(_runs, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
