"""Streaming data-quality monitors for the BST pipeline.

The paper's core claim — a speed test number is uninterpretable without
its context — applies to our own runs: a Table 2 accuracy figure means
nothing if the input distribution silently drifted (NaN bursts, negative
speeds, a heavy tail the simulator never produced before).  This module
watches the data as it flows:

- :class:`FieldMonitor` — per-field streaming counters (NaN / negative /
  zero / implausibly-large values), moment accumulators (mean/std via
  running sums), min/max, and a bounded deterministic reservoir that
  yields p50/p95/p99 and a tail ratio without retaining the stream.
- :class:`QualityMonitor` — a session of field monitors plus
  tier-assignment health: the entropy of the assigned-tier distribution
  (a collapsed fit assigns everything to one tier → entropy ~0) and the
  unmapped-group rate (catalog upload groups no mixture component
  mapped to).
- :class:`QualityReport` — the finished snapshot: renderable text,
  JSON-able dict, and a ``publish_metrics`` hook that surfaces the
  headline rates as ``quality.*`` gauges in the active metrics registry.

Like tracing and metrics, quality monitoring is **off by default**: the
module-level monitor is a null object whose field monitors are shared
inert instances, so the ``observe_*`` calls wired through the vendor
simulators, ``pipeline/contextualize`` and ``core/bst`` cost one
attribute check when nobody is listening.  Install a monitor with
``set_quality`` / ``use_quality`` (the CLI does this whenever the run
ledger is enabled; see :mod:`repro.obs.runs`).
"""

from __future__ import annotations

import math
import threading
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

__all__ = [
    "FieldMonitor",
    "FieldQuality",
    "QualityMonitor",
    "QualityReport",
    "get_quality",
    "set_quality",
    "use_quality",
]

# Speeds above 10 Gbps do not occur on the simulated (or, for the paper's
# datasets, residential) access networks; treat them as implausible.
DEFAULT_OUTLIER_ABOVE = 10_000.0

RESERVOIR_CAPACITY = 512


def _field_seed(name: str) -> int:
    """Deterministic per-field RNG seed (independent of PYTHONHASHSEED)."""
    return zlib.crc32(name.encode("utf-8"))


@dataclass
class FieldQuality:
    """Finished snapshot of one monitored field."""

    name: str
    count: int
    n_nan: int
    n_negative: int
    n_zero: int
    n_outlier: int
    minimum: float
    maximum: float
    mean: float
    std: float
    p50: float
    p95: float
    p99: float

    @property
    def nan_rate(self) -> float:
        return self.n_nan / self.count if self.count else 0.0

    @property
    def negative_rate(self) -> float:
        return self.n_negative / self.count if self.count else 0.0

    @property
    def outlier_rate(self) -> float:
        return self.n_outlier / self.count if self.count else 0.0

    @property
    def tail_ratio(self) -> float:
        """p99 / p50 — a heavy-tail indicator (1.0 = no tail)."""
        if not math.isfinite(self.p50) or self.p50 <= 0:
            return float("nan")
        return self.p99 / self.p50

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "count": self.count,
            "nan": self.n_nan,
            "negative": self.n_negative,
            "zero": self.n_zero,
            "outlier": self.n_outlier,
            "min": _json_float(self.minimum),
            "max": _json_float(self.maximum),
            "mean": _json_float(self.mean),
            "std": _json_float(self.std),
            "p50": _json_float(self.p50),
            "p95": _json_float(self.p95),
            "p99": _json_float(self.p99),
            "tail_ratio": _json_float(self.tail_ratio),
        }

    @classmethod
    def from_dict(cls, row: dict[str, Any]) -> "FieldQuality":
        return cls(
            name=row["name"],
            count=int(row["count"]),
            n_nan=int(row["nan"]),
            n_negative=int(row["negative"]),
            n_zero=int(row["zero"]),
            n_outlier=int(row["outlier"]),
            minimum=_restore_float(row["min"]),
            maximum=_restore_float(row["max"]),
            mean=_restore_float(row["mean"]),
            std=_restore_float(row["std"]),
            p50=_restore_float(row["p50"]),
            p95=_restore_float(row["p95"]),
            p99=_restore_float(row["p99"]),
        )


class FieldMonitor:
    """Streaming per-field quality accumulator.

    O(1) state per field: counts, running first/second moments over the
    finite values, min/max, and a capacity-bounded reservoir sample used
    for percentile estimates.  The reservoir RNG is seeded from the
    field name (CRC32), so the same stream of ``observe_array`` calls
    produces the same sketch in every process.
    """

    __slots__ = (
        "name",
        "outlier_above",
        "count",
        "n_nan",
        "n_negative",
        "n_zero",
        "n_outlier",
        "_sum",
        "_sumsq",
        "_min",
        "_max",
        "_reservoir",
        "_seen",
        "_rng",
        "_lock",
    )

    def __init__(
        self, name: str, outlier_above: float = DEFAULT_OUTLIER_ABOVE
    ) -> None:
        self.name = name
        self.outlier_above = float(outlier_above)
        self.count = 0
        self.n_nan = 0
        self.n_negative = 0
        self.n_zero = 0
        self.n_outlier = 0
        self._sum = 0.0
        self._sumsq = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._reservoir: list[float] = []
        self._seen = 0
        self._rng = np.random.default_rng(_field_seed(name))
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Observe one value (see :meth:`observe_array` for batches)."""
        self.observe_array(np.asarray([value], dtype=float))

    def observe_array(self, values: Any) -> None:
        """Observe a batch of values (vectorised; NaN/inf welcome)."""
        arr = np.asarray(values, dtype=float).ravel()
        if arr.size == 0:
            return
        finite_mask = np.isfinite(arr)
        finite = arr[finite_mask]
        with self._lock:
            self.count += int(arr.size)
            self.n_nan += int(arr.size - finite_mask.sum())
            if finite.size:
                self.n_negative += int((finite < 0).sum())
                self.n_zero += int((finite == 0).sum())
                self.n_outlier += int((finite > self.outlier_above).sum())
                self._sum += float(finite.sum())
                self._sumsq += float(np.square(finite).sum())
                self._min = min(self._min, float(finite.min()))
                self._max = max(self._max, float(finite.max()))
                self._fill_reservoir(finite)

    def _fill_reservoir(self, finite: np.ndarray) -> None:
        # Vectorised Algorithm R: item t (0-based, global) replaces slot
        # j = uniform(0, t) when j lands inside the reservoir.
        cap = RESERVOIR_CAPACITY
        idx = 0
        if len(self._reservoir) < cap:
            take = min(cap - len(self._reservoir), finite.size)
            self._reservoir.extend(float(v) for v in finite[:take])
            self._seen += take
            idx = take
        rest = finite[idx:]
        if rest.size:
            positions = self._seen + np.arange(rest.size)
            slots = (self._rng.random(rest.size) * (positions + 1)).astype(
                np.int64
            )
            hits = slots < cap
            for slot, value in zip(slots[hits], rest[hits]):
                self._reservoir[int(slot)] = float(value)
            self._seen += int(rest.size)

    def _percentile(self, sorted_res: np.ndarray, q: float) -> float:
        if sorted_res.size == 0:
            return float("nan")
        return float(np.quantile(sorted_res, q))

    def snapshot(self) -> FieldQuality:
        """The current :class:`FieldQuality` view of this field."""
        with self._lock:
            n_finite = self.count - self.n_nan
            if n_finite > 0:
                mean = self._sum / n_finite
                var = max(self._sumsq / n_finite - mean * mean, 0.0)
                std = math.sqrt(var)
            else:
                mean = std = float("nan")
            sorted_res = np.sort(np.asarray(self._reservoir, dtype=float))
            return FieldQuality(
                name=self.name,
                count=self.count,
                n_nan=self.n_nan,
                n_negative=self.n_negative,
                n_zero=self.n_zero,
                n_outlier=self.n_outlier,
                minimum=self._min if n_finite else float("nan"),
                maximum=self._max if n_finite else float("nan"),
                mean=mean,
                std=std,
                p50=self._percentile(sorted_res, 0.50),
                p95=self._percentile(sorted_res, 0.95),
                p99=self._percentile(sorted_res, 0.99),
            )


class _NullFieldMonitor:
    """Shared inert field monitor for the disabled quality session."""

    __slots__ = ()
    name = ""
    count = 0

    def observe(self, value: float) -> None:
        pass

    def observe_array(self, values: Any) -> None:
        pass


_NULL_FIELD = _NullFieldMonitor()


class _NullQualityMonitor:
    """Default monitor: records nothing, enables the wiring fast path."""

    enabled = False

    def field(self, name: str, outlier_above: float = DEFAULT_OUTLIER_ABOVE):
        return _NULL_FIELD

    def drop_fields(self, prefix: str) -> int:
        return 0

    def observe_assignments(self, tiers: Any) -> None:
        pass

    def observe_group_mapping(self, n_unmapped: int, n_groups: int) -> None:
        pass

    def observe_dropped_rows(self, dropped: int, total: int) -> None:
        pass


@dataclass
class QualityReport:
    """Finished data-quality snapshot of one run.

    ``tier_entropy`` is the Shannon entropy (bits) of the assigned-tier
    distribution, ``tier_entropy_normalized`` the same divided by
    ``log2(#tiers)`` (1.0 = uniform, 0.0 = collapsed — both extremes are
    suspicious for crowdsourced speed tests).
    """

    fields: list[FieldQuality] = field(default_factory=list)
    n_assignments: int = 0
    tier_entropy: float = float("nan")
    tier_entropy_normalized: float = float("nan")
    tier_counts: dict[str, int] = field(default_factory=dict)
    unmapped_groups: int = 0
    total_groups: int = 0
    dropped_rows: int = 0
    total_rows: int = 0

    @property
    def unmapped_group_rate(self) -> float:
        if not self.total_groups:
            return 0.0
        return self.unmapped_groups / self.total_groups

    @property
    def dropped_row_rate(self) -> float:
        if not self.total_rows:
            return 0.0
        return self.dropped_rows / self.total_rows

    def to_dict(self) -> dict[str, Any]:
        return {
            "fields": [fq.to_dict() for fq in self.fields],
            "n_assignments": self.n_assignments,
            "tier_entropy": _json_float(self.tier_entropy),
            "tier_entropy_normalized": _json_float(
                self.tier_entropy_normalized
            ),
            "tier_counts": dict(self.tier_counts),
            "unmapped_groups": self.unmapped_groups,
            "total_groups": self.total_groups,
            "unmapped_group_rate": self.unmapped_group_rate,
            "dropped_rows": self.dropped_rows,
            "total_rows": self.total_rows,
            "dropped_row_rate": self.dropped_row_rate,
        }

    @classmethod
    def from_dict(cls, row: dict[str, Any]) -> "QualityReport":
        return cls(
            fields=[FieldQuality.from_dict(f) for f in row.get("fields", [])],
            n_assignments=int(row.get("n_assignments", 0)),
            tier_entropy=_restore_float(row.get("tier_entropy")),
            tier_entropy_normalized=_restore_float(
                row.get("tier_entropy_normalized")
            ),
            tier_counts={
                str(k): int(v) for k, v in row.get("tier_counts", {}).items()
            },
            unmapped_groups=int(row.get("unmapped_groups", 0)),
            total_groups=int(row.get("total_groups", 0)),
            dropped_rows=int(row.get("dropped_rows", 0)),
            total_rows=int(row.get("total_rows", 0)),
        )

    def scalars(self) -> dict[str, float]:
        """Flat headline numbers, for metrics publishing and `obs check`."""
        out: dict[str, float] = {}
        for fq in self.fields:
            prefix = f"quality.{fq.name}"
            out[f"{prefix}.nan_rate"] = fq.nan_rate
            out[f"{prefix}.negative_rate"] = fq.negative_rate
            out[f"{prefix}.outlier_rate"] = fq.outlier_rate
            if math.isfinite(fq.tail_ratio):
                out[f"{prefix}.tail_ratio"] = fq.tail_ratio
        if self.n_assignments:
            out["quality.tier_entropy"] = self.tier_entropy
            if math.isfinite(self.tier_entropy_normalized):
                out["quality.tier_entropy_normalized"] = (
                    self.tier_entropy_normalized
                )
        if self.total_groups:
            out["quality.unmapped_group_rate"] = self.unmapped_group_rate
        if self.total_rows:
            out["quality.dropped_row_rate"] = self.dropped_row_rate
        return out

    def publish_metrics(self) -> None:
        """Surface the headline rates as ``quality.*`` gauges.

        A no-op when no metrics registry is installed.
        """
        from repro.obs import metrics as obs_metrics

        for name, value in self.scalars().items():
            obs_metrics.gauge(name).set(value)

    def render(self) -> str:
        """Plain-text quality table (the `-- data quality --` section)."""
        lines: list[str] = []
        if self.fields:
            width = max(len(fq.name) for fq in self.fields)
            header = (
                f"{'field'.ljust(width)}  {'n':>7}  {'nan':>5}  {'neg':>4}  "
                f"{'out':>4}  {'p50':>9}  {'p99':>9}  {'tail':>6}"
            )
            lines.append(header)
            for fq in self.fields:
                lines.append(
                    f"{fq.name.ljust(width)}  {fq.count:>7}  "
                    f"{fq.n_nan:>5}  {fq.n_negative:>4}  {fq.n_outlier:>4}  "
                    f"{_fmt(fq.p50):>9}  {_fmt(fq.p99):>9}  "
                    f"{_fmt(fq.tail_ratio):>6}"
                )
        if self.n_assignments:
            lines.append(
                f"tier entropy: {self.tier_entropy:.3f} bits "
                f"(normalized {_fmt(self.tier_entropy_normalized)}) "
                f"over {self.n_assignments} assignments"
            )
        if self.total_groups:
            lines.append(
                f"unmapped upload groups: {self.unmapped_groups}/"
                f"{self.total_groups} ({self.unmapped_group_rate:.1%})"
            )
        if self.total_rows:
            lines.append(
                f"dropped rows: {self.dropped_rows}/{self.total_rows} "
                f"({self.dropped_row_rate:.1%})"
            )
        if not lines:
            lines.append("(no quality data recorded)")
        return "\n".join(lines)


class QualityMonitor:
    """One run's worth of data-quality accumulation (thread-safe)."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._fields: dict[str, FieldMonitor] = {}
        self._tier_counts: dict[str, int] = {}
        self._n_assignments = 0
        self._unmapped_groups = 0
        self._total_groups = 0
        self._dropped_rows = 0
        self._total_rows = 0

    def field(
        self, name: str, outlier_above: float = DEFAULT_OUTLIER_ABOVE
    ) -> FieldMonitor:
        """The named field monitor (created on first use)."""
        with self._lock:
            mon = self._fields.get(name)
            if mon is None:
                mon = self._fields[name] = FieldMonitor(
                    name, outlier_above=outlier_above
                )
            return mon

    def drop_fields(self, prefix: str) -> int:
        """Forget every field monitor whose name starts with ``prefix``.

        Serving uses this on model hot-swap: the per-model drift fields
        must restart from scratch (``warming_up``) against the new
        model's training stats instead of carrying the drifted history.
        Returns the number of monitors dropped.
        """
        with self._lock:
            victims = [
                name for name in self._fields if name.startswith(prefix)
            ]
            for name in victims:
                del self._fields[name]
            return len(victims)

    def observe_assignments(self, tiers: Any) -> None:
        """Record a batch of per-measurement tier assignments."""
        arr = np.asarray(tiers).ravel()
        if arr.size == 0:
            return
        values, counts = np.unique(arr, return_counts=True)
        with self._lock:
            self._n_assignments += int(arr.size)
            for value, count in zip(values, counts):
                key = str(value)
                self._tier_counts[key] = (
                    self._tier_counts.get(key, 0) + int(count)
                )

    def observe_group_mapping(self, n_unmapped: int, n_groups: int) -> None:
        """Record a stage-one fit's unmapped-group outcome."""
        with self._lock:
            self._unmapped_groups += int(n_unmapped)
            self._total_groups += int(n_groups)

    def observe_dropped_rows(self, dropped: int, total: int) -> None:
        """Record rows dropped before fitting (non-finite input)."""
        with self._lock:
            self._dropped_rows += int(dropped)
            self._total_rows += int(total)

    def report(self) -> QualityReport:
        """Build the finished :class:`QualityReport`."""
        with self._lock:
            monitors = [self._fields[name] for name in sorted(self._fields)]
            tier_counts = dict(self._tier_counts)
            n_assignments = self._n_assignments
            unmapped = self._unmapped_groups
            total_groups = self._total_groups
            dropped = self._dropped_rows
            total_rows = self._total_rows
        entropy = entropy_norm = float("nan")
        if n_assignments:
            probs = np.asarray(
                [c / n_assignments for c in tier_counts.values()]
            )
            probs = probs[probs > 0]
            entropy = float(-(probs * np.log2(probs)).sum())
            k = len(tier_counts)
            entropy_norm = entropy / math.log2(k) if k > 1 else 0.0
        return QualityReport(
            fields=[monitor.snapshot() for monitor in monitors],
            n_assignments=n_assignments,
            tier_entropy=entropy,
            tier_entropy_normalized=entropy_norm,
            tier_counts=tier_counts,
            unmapped_groups=unmapped,
            total_groups=total_groups,
            dropped_rows=dropped,
            total_rows=total_rows,
        )


_monitor: QualityMonitor | _NullQualityMonitor = _NullQualityMonitor()


def get_quality() -> QualityMonitor | _NullQualityMonitor:
    """The active quality monitor (a null monitor when quality is off)."""
    return _monitor


def set_quality(
    monitor: QualityMonitor | _NullQualityMonitor | None,
) -> QualityMonitor | _NullQualityMonitor:
    """Install ``monitor`` (None restores the null); returns the old one."""
    global _monitor
    previous = _monitor
    _monitor = monitor if monitor is not None else _NullQualityMonitor()
    return previous


@contextmanager
def use_quality(
    monitor: QualityMonitor | None = None,
) -> Iterator[QualityMonitor]:
    """Scoped quality monitoring: install, restore the previous on exit.

    >>> with use_quality() as q:
    ...     q.field("demo").observe_array([1.0, float("nan")])
    >>> q.report().fields[0].n_nan
    1
    """
    monitor = monitor or QualityMonitor()
    previous = set_quality(monitor)
    try:
        yield monitor
    finally:
        set_quality(previous)


def _fmt(value: float) -> str:
    if not math.isfinite(value):
        return "n/a"
    return f"{value:.3g}"


def _json_float(value: float | None) -> float | None:
    """NaN/inf are not valid JSON; encode them as None."""
    if value is None or not math.isfinite(value):
        return None
    return float(value)


def _restore_float(value: Any) -> float:
    return float("nan") if value is None else float(value)
