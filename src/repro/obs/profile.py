"""On-demand ``cProfile`` wrapping for any span tree or code block.

The CLI's ``--profile`` flag (and any caller that wants function-level
attribution below the span granularity) wraps work in
:func:`profile_block`::

    with profile_block() as report:
        run_experiment("tab2")
    print(report.render())

This module is imported lazily (``repro.obs`` exposes it via module
``__getattr__``) so the profiler machinery stays out of un-instrumented
runs.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from contextlib import contextmanager
from typing import Iterator

__all__ = ["ProfileReport", "profile_block"]


class ProfileReport:
    """Holds a finished profile; render on demand."""

    def __init__(self) -> None:
        self.profile: cProfile.Profile | None = None

    def render(self, sort: str = "cumulative", limit: int = 25) -> str:
        """Top ``limit`` functions by ``sort`` as plain text."""
        if self.profile is None:
            return "(profile still running)"
        buffer = io.StringIO()
        stats = pstats.Stats(self.profile, stream=buffer)
        stats.sort_stats(sort).print_stats(limit)
        return buffer.getvalue().rstrip()

    def stats(self) -> pstats.Stats:
        if self.profile is None:
            raise RuntimeError("profile still running")
        return pstats.Stats(self.profile)


@contextmanager
def profile_block() -> Iterator[ProfileReport]:
    """Run the enclosed block under ``cProfile``.

    The report is populated when the block exits (including on error),
    so ``report.render()`` inside the block returns a placeholder.
    """
    report = ProfileReport()
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield report
    finally:
        profiler.disable()
        report.profile = profiler
