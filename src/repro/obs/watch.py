"""Live terminal dashboard over a serving tier's telemetry.

Backs ``repro obs watch``: poll a running server's ``/metrics``
(Prometheus text) and ``/healthz`` (JSON) endpoints and render one
refreshing snapshot per interval — throughput, windowed latency
quantiles, error rates, drift verdicts, and active alerts.  The fetch
and render halves are separate functions so tests can drive them
without a terminal or a sleep loop.
"""

from __future__ import annotations

import math
from typing import Any, Callable

from repro.obs.metrics import parse_prometheus_text

__all__ = ["render_snapshot", "take_snapshot", "watch"]

#: ANSI "clear screen + home" prefix used between refreshes.
_CLEAR = "\x1b[2J\x1b[H"


def _sample(
    series: dict[str, list[tuple[dict[str, str], float]]],
    name: str,
    **labels: str,
) -> float:
    """First sample of ``name`` whose labels include ``labels``; nan if none."""
    for sample_labels, value in series.get(name, []):
        if all(sample_labels.get(k) == v for k, v in labels.items()):
            return value
    return float("nan")


def take_snapshot(client: Any) -> dict[str, Any]:
    """One joint poll of ``/metrics`` + ``/healthz``.

    ``client`` is a :class:`repro.serve.client.ServeClient` (or any
    object with ``metrics_text()`` and ``healthz()``).
    """
    series = parse_prometheus_text(client.metrics_text())
    health = client.healthz()
    window = None
    for samples in series.values():
        for labels, _ in samples:
            if "window" in labels:
                window = labels["window"]
                break
        if window is not None:
            break
    latency = {
        quantile: _sample(
            series,
            "serve_request_latency_s_window",
            quantile=quantile,
        )
        for quantile in ("0.5", "0.95", "0.99")
    }
    stream = None
    if any(name.startswith("stream_") for name in series):
        stream = {
            "events_total": _sample(series, "stream_events_total"),
            "events_rate": _sample(series, "stream_events_rate"),
            "lag_s": _sample(series, "stream_lag_s"),
            "drifted_models": _sample(series, "stream_drifted_models"),
            "active_refits": _sample(series, "stream_active_refits"),
            "refits_total": _sample(series, "stream_refits_total"),
            "refit_failures_total": _sample(
                series, "stream_refit_failures_total"
            ),
            "refit_p95_s": _sample(
                series, "stream_refit_latency_s_window", quantile="0.95"
            ),
            "reloads_total": _sample(series, "serve_reloads_total"),
        }
    return {
        "window": window or "n/a",
        "uptime_s": health.get("uptime_s", float("nan")),
        "requests_total": _sample(series, "serve_requests_total"),
        "requests_rate": _sample(series, "serve_requests_rate"),
        "errors_total": _sample(series, "serve_errors_total"),
        "errors_4xx_rate": _sample(series, "serve_errors_4xx_rate"),
        "errors_5xx_rate": _sample(series, "serve_errors_5xx_rate"),
        "latency": latency,
        "models_loaded": health.get("models_loaded", 0),
        "drift": health.get("drift", []),
        "alerts": health.get("alerts", {}),
        "stream": stream,
    }


def _num(value: float, unit: str = "") -> str:
    if isinstance(value, float) and math.isnan(value):
        return "-"
    return f"{value:g}{unit}"


def render_snapshot(snap: dict[str, Any]) -> str:
    """Fixed-width text rendering of one :func:`take_snapshot` result."""
    latency = snap["latency"]
    drifted = [d["model"] for d in snap["drift"] if d.get("drifted")]
    alerts = snap.get("alerts", {})
    active = alerts.get("active", [])
    lines = [
        f"-- serve watch (window {snap['window']}, "
        f"up {_num(snap['uptime_s'], 's')}) --",
        f"requests   total={_num(snap['requests_total'])} "
        f"rate={_num(snap['requests_rate'], '/s')}",
        f"errors     total={_num(snap['errors_total'])} "
        f"4xx={_num(snap['errors_4xx_rate'], '/s')} "
        f"5xx={_num(snap['errors_5xx_rate'], '/s')}",
        "latency    "
        + " ".join(
            f"{label}={_latency_ms(latency[q])}"
            for q, label in (
                ("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99"),
            )
        ),
        f"models     loaded={snap['models_loaded']} "
        f"drifted={','.join(drifted) if drifted else 'none'}",
        f"alerts     active={len(active)} "
        f"fired={alerts.get('fired', 0)} "
        f"resolved={alerts.get('resolved', 0)}",
    ]
    stream = snap.get("stream")
    if stream is not None:
        # The panel appears only when the server actually emits
        # stream.* metrics (repro serve --refit / repro stream run).
        lines.append(
            f"stream     events={_num(stream['events_total'])} "
            f"rate={_num(stream['events_rate'], '/s')} "
            f"lag={_num(stream['lag_s'], 's')}"
        )
        lines.append(
            f"lifecycle  refits={_num(stream['refits_total'])} "
            f"failed={_num(stream['refit_failures_total'])} "
            f"active={_num(stream['active_refits'])} "
            f"drifted={_num(stream['drifted_models'])} "
            f"reloads={_num(stream['reloads_total'])} "
            f"swap_p95={_num(stream['refit_p95_s'], 's')}"
        )
    for alert in active:
        lines.append(
            f"  ! [{alert['severity']}] {alert['rule']}: "
            f"{alert['message']} "
            f"(value={_num(float(alert['value']))}, "
            f"{alert['since_s']:.0f}s)"
        )
    return "\n".join(lines)


def _latency_ms(seconds: float) -> str:
    if isinstance(seconds, float) and math.isnan(seconds):
        return "-"
    return f"{seconds * 1e3:.1f}ms"


def watch(
    client: Any,
    interval_s: float = 2.0,
    max_polls: int = 0,
    clear: bool = True,
    out: Callable[[str], None] = print,
    sleep: Callable[[float], None] | None = None,
) -> int:
    """Poll-and-render loop; returns the number of snapshots rendered.

    ``max_polls=0`` loops until interrupted (the CLI catches
    KeyboardInterrupt).  ``sleep`` is injectable so tests can run the
    loop without waiting.
    """
    import time

    sleep = sleep if sleep is not None else time.sleep
    rendered = 0
    while True:
        text = render_snapshot(take_snapshot(client))
        out((_CLEAR if clear and rendered else "") + text)
        rendered += 1
        if max_polls and rendered >= max_polls:
            return rendered
        sleep(interval_s)
