"""Structured logging built on the stdlib ``logging`` module.

Every module logs through a child of the ``repro`` logger::

    from repro.obs.logging import get_logger
    log = get_logger("stats.gmm")
    log.warning("EM hit the iteration cap", extra=kv(n_iter=200, k=4))

Nothing is printed unless the application opts in: the ``repro`` root
logger carries a :class:`logging.NullHandler`, so an uninstrumented CLI
run and the test suite stay byte-identical to a build without logging.
``configure_logging`` (driven by the CLI's ``--log-level``/
``--log-format`` flags) attaches a real stderr handler in either
``human`` (single-line text) or ``json`` (JSON-lines, one object per
record, with the ``kv`` fields inlined) format.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import Any, TextIO

__all__ = ["configure_logging", "get_logger", "kv", "JsonFormatter"]

ROOT_LOGGER_NAME = "repro"
_KV_ATTR = "repro_kv"
_OBS_HANDLER_ATTR = "repro_obs_handler"

# Quiet by default: a NullHandler on the package root keeps the stdlib
# "lastResort" stderr handler from firing for un-configured programs.
logging.getLogger(ROOT_LOGGER_NAME).addHandler(logging.NullHandler())


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` namespace (``repro.<name>``)."""
    if not name:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name == ROOT_LOGGER_NAME or name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def kv(**fields: Any) -> dict[str, Any]:
    """Structured fields for a log call: ``log.info(msg, extra=kv(n=3))``."""
    return {_KV_ATTR: fields}


class JsonFormatter(logging.Formatter):
    """One JSON object per record; ``kv`` fields become top-level keys."""

    def format(self, record: logging.LogRecord) -> str:
        row: dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        fields = getattr(record, _KV_ATTR, None)
        if fields:
            for key, value in fields.items():
                if key not in row:
                    row[key] = _scalar(value)
        if record.exc_info:
            row["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(row)


class HumanFormatter(logging.Formatter):
    """``LEVEL logger: message key=value ...`` single-line text."""

    def format(self, record: logging.LogRecord) -> str:
        base = (
            f"{record.levelname:<7} {record.name}: {record.getMessage()}"
        )
        fields = getattr(record, _KV_ATTR, None)
        if fields:
            pairs = " ".join(
                f"{key}={_scalar(value)}" for key, value in fields.items()
            )
            base = f"{base} {pairs}"
        if record.exc_info:
            base = f"{base}\n{self.formatException(record.exc_info)}"
        return base


def configure_logging(
    level: str = "warning",
    fmt: str = "human",
    stream: TextIO | None = None,
) -> logging.Logger:
    """Attach a handler to the ``repro`` root logger (idempotent).

    Parameters
    ----------
    level:
        Threshold name: ``debug``, ``info``, ``warning``, or ``error``.
    fmt:
        ``human`` or ``json``.
    stream:
        Output stream; defaults to ``sys.stderr`` so log lines never mix
        with CSV/report output on stdout.
    """
    numeric = logging.getLevelName(level.upper())
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level {level!r}")
    if fmt == "json":
        formatter: logging.Formatter = JsonFormatter()
    elif fmt == "human":
        formatter = HumanFormatter()
    else:
        raise ValueError(f"unknown log format {fmt!r}; use human or json")

    root = logging.getLogger(ROOT_LOGGER_NAME)
    # Re-configuration replaces the previous obs handler instead of
    # stacking duplicates.
    for handler in list(root.handlers):
        if getattr(handler, _OBS_HANDLER_ATTR, False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(formatter)
    setattr(handler, _OBS_HANDLER_ATTR, True)
    root.addHandler(handler)
    root.setLevel(numeric)
    # With a real handler attached, propagating to the application root
    # would double-print under configured root loggers.
    root.propagate = False
    return root


def reset_logging() -> None:
    """Remove obs handlers and restore the quiet defaults (for tests)."""
    root = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in list(root.handlers):
        if getattr(handler, _OBS_HANDLER_ATTR, False):
            root.removeHandler(handler)
    root.setLevel(logging.NOTSET)
    root.propagate = True


def _scalar(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return str(value)
