"""Span-based tracing for the BST pipeline.

A *span* is a named, timed region of work with key/value attributes::

    with span("bst.fit_upload", n=uploads.size) as sp:
        ...
        sp.set(n_iter=fit.n_iter, converged=fit.converged)

Spans nest: a span opened while another is active records that span as
its parent, so a ``contextualize`` run yields a tree (pipeline ->
``bst.fit`` -> per-stage fits -> KDE / EM / assignment leaves).

Tracing is **off by default**.  The module-level collector starts as a
no-op: ``span(...)`` then yields a shared inert span object without
taking timestamps or allocating, so instrumented library code costs a
single function call when nobody is listening.  Activate collection by
installing a :class:`SpanCollector` (``set_collector`` or the
``use_collector`` context manager); the collector is thread-safe and can
export the finished spans as JSON lines.

Naming convention: ``<module>.<stage>`` (e.g. ``bst.fit_upload``,
``kde.count_peaks``, ``gmm.fit``, ``ndt_join.join``); see
docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
import zlib
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = [
    "Span",
    "SpanCollector",
    "current_span",
    "current_trace_id",
    "get_collector",
    "new_span_id",
    "new_trace_id",
    "set_collector",
    "should_sample",
    "span",
    "use_collector",
    "use_trace_id",
]

_ids = itertools.count(1)  # itertools.count is atomic under CPython's GIL


def new_span_id() -> int:
    """A fresh process-unique span id (for adopting foreign spans)."""
    return next(_ids)


_trace_id: ContextVar[str | None] = ContextVar(
    "repro_obs_trace_id", default=None
)


def new_trace_id() -> str:
    """A fresh 16-hex-char request trace id.

    Trace ids label individual requests for log/span correlation; they
    are intentionally non-deterministic so concurrent servers never
    collide, and nothing in the pipeline's numeric output depends on
    them.
    """
    return os.urandom(8).hex()  # lint: allow[DET003] correlation id, not results


def current_trace_id() -> str | None:
    """The trace id bound to this context, or None outside a request."""
    return _trace_id.get()


@contextmanager
def use_trace_id(trace_id: str | None) -> Iterator[str | None]:
    """Bind ``trace_id`` to the current context for the block's duration."""
    token = _trace_id.set(trace_id)
    try:
        yield trace_id
    finally:
        _trace_id.reset(token)


def should_sample(trace_id: str, rate: float) -> bool:
    """Deterministic per-trace sampling decision at ``rate`` (0..1).

    Hashes the trace id, so every participant in a request agrees on
    the decision without coordination, and a given id always samples
    the same way (stable across processes).
    """
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    bucket = zlib.crc32(trace_id.encode("utf-8")) % 10_000
    return bucket < rate * 10_000


@dataclass
class Span:
    """One finished-or-open timed region of work."""

    name: str
    span_id: int
    parent_id: int | None = None
    depth: int = 0
    start_s: float = 0.0
    end_s: float | None = None
    attributes: dict[str, Any] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def set(self, **attributes: Any) -> "Span":
        """Attach key/value attributes; returns self for chaining."""
        self.attributes.update(attributes)
        return self

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "start_s": round(self.start_s, 9),
            "duration_s": round(self.duration_s, 9),
            "attributes": _jsonable(self.attributes),
        }


class _NoopSpan:
    """Inert stand-in yielded when no collector is installed."""

    __slots__ = ()
    name = ""
    attributes: dict[str, Any] = {}
    duration_s = 0.0

    def set(self, **attributes: Any) -> "_NoopSpan":
        return self


_NOOP_SPAN = _NoopSpan()


class _NoopCollector:
    """Default collector: records nothing, enables the span fast path."""

    enabled = False

    def record(self, sp: Span) -> None:  # pragma: no cover - never called
        pass


class SpanCollector:
    """Thread-safe in-process store of finished spans."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._epoch = time.perf_counter()

    def record(self, sp: Span) -> None:
        with self._lock:
            self._spans.append(sp)

    def spans(self) -> list[Span]:
        """Snapshot of the finished spans, in completion order."""
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def find(self, name: str) -> list[Span]:
        """Finished spans with the given name."""
        return [sp for sp in self.spans() if sp.name == name]

    def aggregate(self) -> dict[str, tuple[int, float]]:
        """Per-name ``(count, total_seconds)`` over the finished spans."""
        totals: dict[str, tuple[int, float]] = {}
        for sp in self.spans():
            count, total = totals.get(sp.name, (0, 0.0))
            totals[sp.name] = (count + 1, total + sp.duration_s)
        return totals

    def aggregate_stats(self) -> dict[str, dict[str, float]]:
        """Per-name duration statistics over the finished spans.

        Returns ``{name: {count, total_s, p50_s, p95_s, p99_s}}`` with
        exact percentiles (every finished span is retained in-process).
        This is the "span table" a run manifest records and the bench
        harness prints.
        """
        durations: dict[str, list[float]] = {}
        for sp in self.spans():
            durations.setdefault(sp.name, []).append(sp.duration_s)
        stats: dict[str, dict[str, float]] = {}
        for name, values in durations.items():
            values.sort()
            n = len(values)

            def q(frac: float) -> float:
                return values[min(n - 1, max(0, round(frac * (n - 1))))]

            stats[name] = {
                "count": n,
                "total_s": round(sum(values), 9),
                "p50_s": round(q(0.50), 9),
                "p95_s": round(q(0.95), 9),
                "p99_s": round(q(0.99), 9),
            }
        return stats

    def adopt_spans(
        self,
        rows: list[dict],
        parent_id: int | None = None,
        rebase_to: float | None = None,
        **extra_attributes,
    ) -> None:
        """Re-record spans exported from another process.

        ``rows`` are ``Span.to_dict()`` payloads from a worker's private
        collector.  Ids are remapped to fresh local ids, worker-root
        spans are re-parented under ``parent_id`` (e.g. the enclosing
        ``parallel.map`` span), start times are shifted so the earliest
        worker span aligns with ``rebase_to`` (durations are preserved
        verbatim), and ``extra_attributes`` (e.g. ``worker=<pid>``) are
        stamped on every adopted span.
        """
        if not rows:
            return
        id_map = {row["span_id"]: new_span_id() for row in rows}
        offset = 0.0
        if rebase_to is not None:
            offset = rebase_to - min(row["start_s"] for row in rows)
        base_depth = 0
        if parent_id is not None:
            base_depth = 1 + min(row.get("depth", 0) for row in rows)
        for row in rows:
            local_parent = row.get("parent_id")
            adopted = Span(
                name=row["name"],
                span_id=id_map[row["span_id"]],
                parent_id=(
                    id_map[local_parent]
                    if local_parent in id_map
                    else parent_id
                ),
                depth=row.get("depth", 0) + base_depth,
                start_s=row["start_s"] + offset,
                end_s=row["start_s"] + offset + row["duration_s"],
                attributes={**row.get("attributes", {}), **extra_attributes},
            )
            self.record(adopted)

    def export_jsonl(self, path) -> int:
        """Write one JSON object per finished span; returns the count.

        Start times are rebased to the collector's creation so traces
        from different runs are comparable.
        """
        spans = self.spans()
        with open(path, "w", encoding="utf-8") as fh:
            for sp in spans:
                row = sp.to_dict()
                row["start_s"] = round(sp.start_s - self._epoch, 9)
                fh.write(json.dumps(row) + "\n")
        return len(spans)

    def render_tree(self) -> str:
        """Indented text rendering of the span tree (slowest-path view)."""
        spans = self.spans()
        by_parent: dict[int | None, list[Span]] = {}
        known = {sp.span_id for sp in spans}
        for sp in spans:
            parent = sp.parent_id if sp.parent_id in known else None
            by_parent.setdefault(parent, []).append(sp)
        lines: list[str] = []

        def walk(parent: int | None, indent: int) -> None:
            for sp in sorted(
                by_parent.get(parent, []), key=lambda s: s.start_s
            ):
                attrs = " ".join(
                    f"{k}={v}" for k, v in sorted(sp.attributes.items())
                )
                lines.append(
                    f"{'  ' * indent}{sp.name}  "
                    f"{sp.duration_s * 1e3:.2f} ms"
                    + (f"  [{attrs}]" if attrs else "")
                )
                walk(sp.span_id, indent + 1)

        walk(None, 0)
        return "\n".join(lines)


_collector: SpanCollector | _NoopCollector = _NoopCollector()
_stack: ContextVar[tuple[tuple[int, int], ...]] = ContextVar(
    "repro_obs_span_stack", default=()
)


def get_collector() -> SpanCollector | _NoopCollector:
    """The active collector (a no-op collector when tracing is off)."""
    return _collector


def set_collector(
    collector: SpanCollector | _NoopCollector | None,
) -> SpanCollector | _NoopCollector:
    """Install ``collector`` (None restores the no-op); returns the old one."""
    global _collector
    previous = _collector
    _collector = collector if collector is not None else _NoopCollector()
    return previous


@contextmanager
def use_collector(
    collector: SpanCollector | None = None,
) -> Iterator[SpanCollector]:
    """Scoped tracing: install a collector, restore the previous on exit.

    >>> with use_collector() as collector:
    ...     with span("demo.stage"):
    ...         pass
    >>> [sp.name for sp in collector.spans()]
    ['demo.stage']
    """
    collector = collector or SpanCollector()
    previous = set_collector(collector)
    try:
        yield collector
    finally:
        set_collector(previous)


def current_span() -> Span | _NoopSpan:
    """The innermost open span, or the inert no-op span when none is."""
    if not _collector.enabled:
        return _NOOP_SPAN
    stack = _stack.get()
    if not stack:
        return _NOOP_SPAN
    sp = _open_spans.get(stack[-1][0])
    return sp if sp is not None else _NOOP_SPAN


_open_spans: dict[int, Span] = {}


@contextmanager
def span(name: str, **attributes: Any) -> Iterator[Span | _NoopSpan]:
    """Open a named, timed span; a no-op when no collector is installed."""
    collector = _collector
    if not collector.enabled:
        yield _NOOP_SPAN
        return
    stack = _stack.get()
    parent_id, depth = (
        (stack[-1][0], stack[-1][1] + 1) if stack else (None, 0)
    )
    sp = Span(
        name=name,
        span_id=next(_ids),
        parent_id=parent_id,
        depth=depth,
        attributes=dict(attributes),
        start_s=time.perf_counter(),
    )
    _open_spans[sp.span_id] = sp
    token = _stack.set(stack + ((sp.span_id, depth),))
    try:
        yield sp
    finally:
        sp.end_s = time.perf_counter()
        _stack.reset(token)
        _open_spans.pop(sp.span_id, None)
        collector.record(sp)


def _jsonable(attributes: dict[str, Any]) -> dict[str, Any]:
    """Coerce attribute values to JSON-safe scalars."""
    out: dict[str, Any] = {}
    for key, value in attributes.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        elif hasattr(value, "item"):  # numpy scalar
            out[key] = value.item()
        else:
            out[key] = str(value)
    return out
