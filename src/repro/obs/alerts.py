"""Declarative alerting over windowed metrics and drift verdicts.

ROADMAP item 1 calls for disruption detection on the live serving
stream; this module is the rule layer over the windowed instruments in
:mod:`repro.obs.metrics` and ``AssignmentService.drift_status()``.  A
rule names a metric and a predicate; the engine evaluates every rule
against the current window and drives a firing → resolved lifecycle
with optional hold times so flapping signals do not page::

    rules = default_serve_rules()
    engine = AlertEngine(rules, registry=service.metrics,
                         drift_provider=service.drift_status,
                         log_path="results/alerts.jsonl")
    engine.evaluate()           # one pass; or AlertEvaluator(engine)
    engine.active()             # currently-firing alerts

Rule kinds:

``threshold``
    Compare a windowed statistic of one instrument (``rate``/``sum``
    of a counter, ``value`` of a gauge or cumulative counter,
    ``count``/``mean``/``p50``/``p95``/``p99`` of a histogram window)
    against a constant.
``rate_of_change``
    Compare the change in a counter's per-second rate between the
    trailing window and the window before it (detects collapses and
    surges, e.g. throughput falling off a cliff).
``drift``
    Compare the number of drifted models reported by the engine's
    ``drift_provider`` (``AssignmentService.drift_status()``) against
    a constant.

Transitions append JSON lines to ``log_path`` and bump the
``serve.alerts_fired`` / ``serve.alerts_resolved`` counters and the
``serve.alerts_active`` gauge, so alert activity is itself visible in
``/metrics``.  See docs/ALERTING.md for the JSON rule syntax.
"""

from __future__ import annotations

import json
import math
import threading
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

from repro.obs import metrics as obs_metrics
from repro.obs.logging import get_logger, kv
from repro.obs.metrics import DEFAULT_WINDOW_S, MetricsRegistry
from repro.obs.trace import span

__all__ = [
    "AlertEngine",
    "AlertEvaluator",
    "AlertRule",
    "default_serve_rules",
    "load_rules",
]

log = get_logger("obs.alerts")

_KINDS = ("threshold", "rate_of_change", "drift")
_STATS = ("rate", "sum", "value", "count", "mean", "p50", "p95", "p99")
_OPS: dict[str, Callable[[float, float], bool]] = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}
_SEVERITIES = ("info", "warning", "critical")


@dataclass(frozen=True)
class AlertRule:
    """One declarative predicate over the telemetry stream."""

    name: str
    kind: str = "threshold"
    metric: str = ""
    stat: str = "rate"
    window_s: float = DEFAULT_WINDOW_S
    op: str = ">"
    threshold: float = 0.0
    min_hold_s: float = 0.0
    resolve_hold_s: float = 0.0
    severity: str = "warning"
    message: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("alert rules need a name")
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown rule kind {self.kind!r}; expected one of {_KINDS}"
            )
        if self.kind != "drift" and not self.metric:
            raise ValueError(f"rule {self.name!r} names no metric")
        if self.stat not in _STATS:
            raise ValueError(
                f"unknown stat {self.stat!r}; expected one of {_STATS}"
            )
        if self.op not in _OPS:
            raise ValueError(
                f"unknown comparison {self.op!r}; "
                f"expected one of {tuple(_OPS)}"
            )
        if self.severity not in _SEVERITIES:
            raise ValueError(
                f"unknown severity {self.severity!r}; "
                f"expected one of {_SEVERITIES}"
            )
        if self.window_s <= 0:
            raise ValueError(f"rule {self.name!r}: window_s must be > 0")

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "AlertRule":
        known = {f for f in cls.__dataclass_fields__}
        extra = set(payload) - known
        if extra:
            raise ValueError(
                f"unknown rule field(s) {sorted(extra)} in "
                f"{payload.get('name', '<unnamed>')!r}"
            )
        return cls(**payload)

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    def describe(self) -> str:
        """Human-readable predicate, used as the default message."""
        if self.kind == "drift":
            return f"drifted models {self.op} {self.threshold:g}"
        if self.kind == "rate_of_change":
            return (
                f"Δrate({self.metric}, {self.window_s:g}s) "
                f"{self.op} {self.threshold:g}/s"
            )
        return (
            f"{self.stat}({self.metric}, {self.window_s:g}s) "
            f"{self.op} {self.threshold:g}"
        )

    def value_from(
        self,
        registry: MetricsRegistry,
        drift_verdicts: Sequence[dict[str, Any]],
    ) -> float:
        """The rule's current input value; ``nan`` when no data exists.

        A ``nan`` value compares false against any threshold, so rules
        over instruments that have not reported yet stay quiet instead
        of firing on missing data.
        """
        if self.kind == "drift":
            return float(
                sum(1 for d in drift_verdicts if d.get("drifted"))
            )
        counters, gauges, histograms = registry.instruments()
        if self.kind == "rate_of_change":
            inst = counters.get(self.metric)
            if inst is None:
                return float("nan")
            recent = inst.window_sum(self.window_s)
            previous = inst.window_sum(2 * self.window_s) - recent
            return (recent - previous) / self.window_s
        inst = (
            counters.get(self.metric)
            or gauges.get(self.metric)
            or histograms.get(self.metric)
        )
        if inst is None:
            return float("nan")
        if isinstance(inst, obs_metrics.Counter):
            if self.stat == "rate":
                return inst.rate(self.window_s)
            if self.stat == "sum":
                return inst.window_sum(self.window_s)
            if self.stat == "value":
                return inst.value
            return float("nan")
        if isinstance(inst, obs_metrics.Gauge):
            return inst.value if self.stat == "value" else float("nan")
        snap = inst.window_snapshot(self.window_s)
        return snap.get(self.stat, float("nan"))

    def breached(self, value: float) -> bool:
        if math.isnan(value):
            return False
        return _OPS[self.op](value, self.threshold)


@dataclass
class _RuleState:
    """Mutable lifecycle state the engine tracks per rule."""

    rule: AlertRule
    firing: bool = False
    breach_since: float | None = None
    clear_since: float | None = None
    fired_at: float | None = None
    last_value: float = field(default=float("nan"))
    n_fired: int = 0


class AlertEngine:
    """Evaluates rules against a registry; owns the alert lifecycle.

    Lifecycle per rule: a breach must persist ``min_hold_s`` before the
    alert fires (one ``fired`` event — no re-fires while it stays
    breached, which is the dedup), and the predicate must stay clear
    ``resolve_hold_s`` before it resolves.  ``evaluate`` is safe to
    call from any thread; transitions are appended to ``log_path`` as
    JSON lines.
    """

    def __init__(
        self,
        rules: Iterable[AlertRule],
        registry: MetricsRegistry,
        drift_provider: Callable[[], Sequence[dict[str, Any]]] | None = None,
        log_path: str | Path | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        rules = list(rules)
        names = [rule.name for rule in rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate rule names in {names}")
        self._lock = threading.Lock()
        self._states = {rule.name: _RuleState(rule) for rule in rules}
        self.registry = registry
        self.drift_provider = drift_provider
        self.log_path = Path(log_path) if log_path else None
        self._clock = clock if clock is not None else time.monotonic
        self._n_evaluations = 0
        if self.log_path is not None:
            self.log_path.parent.mkdir(parents=True, exist_ok=True)
            self._append_log(
                {
                    "event": "start",
                    "rules": [rule.name for rule in rules],
                }
            )

    @property
    def rules(self) -> list[AlertRule]:
        return [state.rule for state in self._states.values()]

    def evaluate(self, now: float | None = None) -> list[dict[str, Any]]:
        """One evaluation pass; returns the transition events it caused."""
        with span("alerts.evaluate", n_rules=len(self._states)) as sp:
            # Gather drift verdicts before taking the engine lock: the
            # provider takes the service lock, and holding both here
            # would order engine-lock -> service-lock against any
            # service path that later asks the engine for state.
            drift_verdicts: Sequence[dict[str, Any]] = ()
            if self.drift_provider is not None and any(
                state.rule.kind == "drift"
                for state in self._states.values()
            ):
                drift_verdicts = self.drift_provider()
            events: list[dict[str, Any]] = []
            with self._lock:
                t = self._clock() if now is None else float(now)
                self._n_evaluations += 1
                for state in self._states.values():
                    rule = state.rule
                    value = rule.value_from(self.registry, drift_verdicts)
                    state.last_value = value
                    if rule.breached(value):
                        state.clear_since = None
                        if state.breach_since is None:
                            state.breach_since = t
                        if (
                            not state.firing
                            and t - state.breach_since >= rule.min_hold_s
                        ):
                            state.firing = True
                            state.fired_at = t
                            state.n_fired += 1
                            events.append(self._event("fired", state, t))
                    else:
                        state.breach_since = None
                        if state.firing:
                            if state.clear_since is None:
                                state.clear_since = t
                            if t - state.clear_since >= rule.resolve_hold_s:
                                state.firing = False
                                events.append(
                                    self._event("resolved", state, t)
                                )
                                state.fired_at = None
                                state.clear_since = None
                n_active = sum(
                    1 for state in self._states.values() if state.firing
                )
            sp.set(n_events=len(events), n_active=n_active)
        for event in events:
            self._append_log(event)
            self._count(f"serve.alerts_{event['event']}")
            log.warning(
                "alert %s", event["event"],
                extra=kv(rule=event["rule"], value=event["value"]),
            )
        for registry in self._sinks():
            registry.gauge("serve.alerts_active").set(float(n_active))
        return events

    def active(self) -> list[dict[str, Any]]:
        """Currently-firing alerts, most severe first."""
        with self._lock:
            t = self._clock()
            rows = [
                {
                    "rule": state.rule.name,
                    "severity": state.rule.severity,
                    "value": state.last_value,
                    "threshold": state.rule.threshold,
                    "since_s": (
                        t - state.fired_at
                        if state.fired_at is not None
                        else 0.0
                    ),
                    "message": state.rule.message
                    or state.rule.describe(),
                }
                for state in self._states.values()
                if state.firing
            ]
        order = {sev: i for i, sev in enumerate(_SEVERITIES)}
        rows.sort(key=lambda r: (-order[r["severity"]], r["rule"]))
        return rows

    def counts(self) -> dict[str, int]:
        with self._lock:
            fired = sum(s.n_fired for s in self._states.values())
            active = sum(1 for s in self._states.values() if s.firing)
            return {
                "fired": fired,
                "active": active,
                "resolved": fired - active,
                "evaluations": self._n_evaluations,
            }

    def _event(
        self, kind: str, state: _RuleState, t: float
    ) -> dict[str, Any]:
        rule = state.rule
        value = state.last_value
        return {
            "event": kind,
            "rule": rule.name,
            "severity": rule.severity,
            "kind": rule.kind,
            "metric": rule.metric,
            "value": None if math.isnan(value) else round(value, 6),
            "threshold": rule.threshold,
            "t_mono_s": round(t, 3),
            "message": rule.message or rule.describe(),
        }

    def _sinks(self) -> list[MetricsRegistry]:
        registries = [self.registry]
        active = obs_metrics.get_registry()
        if active.enabled and active is not self.registry:
            registries.append(active)  # type: ignore[arg-type]
        return registries

    def _count(self, name: str) -> None:
        for registry in self._sinks():
            registry.counter(name).inc()

    def _append_log(self, event: dict[str, Any]) -> None:
        if self.log_path is None:
            return
        row = dict(event)
        row["ts_utc"] = time.strftime(
            "%Y-%m-%dT%H:%M:%SZ",
            time.gmtime(time.time()),  # lint: allow[DET002] provenance
        )
        try:
            with open(self.log_path, "a", encoding="utf-8") as fh:
                fh.write(json.dumps(row) + "\n")
        except OSError as exc:
            log.error(
                "alert log write failed",
                extra=kv(path=str(self.log_path), error=str(exc)),
            )


class AlertEvaluator:
    """Background loop calling ``engine.evaluate()`` every interval."""

    def __init__(self, engine: AlertEngine, interval_s: float = 1.0) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.engine = engine
        self.interval_s = float(interval_s)
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="obs-alerts", daemon=True
        )

    def start(self) -> "AlertEvaluator":
        self._thread.start()
        return self

    def stop(self, timeout_s: float = 5.0) -> None:
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout=timeout_s)

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.engine.evaluate()
            except Exception as exc:
                log.error(
                    "alert evaluation failed", extra=kv(error=str(exc))
                )


def default_serve_rules() -> tuple[AlertRule, ...]:
    """The stock rule set the serving tier runs when none is supplied."""
    return (
        AlertRule(
            name="high_5xx_rate",
            metric="serve.errors_5xx",
            stat="rate",
            window_s=60.0,
            op=">",
            threshold=0.1,
            resolve_hold_s=5.0,
            severity="critical",
            message="server error rate above 0.1/s over the last minute",
        ),
        AlertRule(
            name="client_error_burst",
            metric="serve.errors_4xx",
            stat="rate",
            window_s=60.0,
            op=">",
            threshold=5.0,
            severity="warning",
            message="client errors above 5/s over the last minute",
        ),
        AlertRule(
            name="latency_p95_high",
            metric="serve.request_latency_s",
            stat="p95",
            window_s=60.0,
            op=">",
            threshold=0.5,
            min_hold_s=5.0,
            resolve_hold_s=5.0,
            severity="warning",
            message="p95 request latency above 500 ms over the last minute",
        ),
        AlertRule(
            name="throughput_collapse",
            kind="rate_of_change",
            metric="serve.requests",
            window_s=60.0,
            op="<",
            threshold=-5.0,
            severity="warning",
            message="request rate fell by more than 5/s minute-over-minute",
        ),
        AlertRule(
            name="model_drift",
            kind="drift",
            op=">",
            threshold=0.0,
            resolve_hold_s=0.0,
            severity="critical",
            message="serving traffic drifted from training distribution",
        ),
    )


def load_rules(path: str | Path) -> list[AlertRule]:
    """Load rules from a JSON file: a list, or ``{"rules": [...]}``."""
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    if isinstance(payload, dict):
        payload = payload.get("rules", [])
    if not isinstance(payload, list):
        raise ValueError(f"{path}: expected a list of rule objects")
    return [AlertRule.from_dict(entry) for entry in payload]
