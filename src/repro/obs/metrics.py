"""Counters, gauges, and histograms for the BST pipeline.

Instrumented code asks the active registry for a named instrument and
updates it::

    from repro.obs import metrics as obs_metrics
    obs_metrics.counter("tests.generated").inc(len(table))
    obs_metrics.histogram("em.iterations").observe(fit.n_iter)
    obs_metrics.gauge("em.converged").set(1.0 if fit.converged else 0.0)

Like tracing, metrics are **off by default**: the module-level registry
is a null registry whose instruments are shared inert objects, so an
``inc``/``observe``/``set`` in library code costs two attribute lookups
when nobody is listening.  Install a :class:`MetricsRegistry` (via
``set_registry`` or ``use_registry``) to start aggregating; ``render``
turns the aggregate into the plain-text summary the CLI prints under
``--metrics``.

Naming convention: ``<module>.<quantity>`` (e.g. ``em.iterations``,
``kde.peaks_found``, ``ndt_join.unmatched``); see docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter",
    "gauge",
    "get_registry",
    "histogram",
    "set_registry",
    "use_registry",
]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self.value += amount


class Gauge:
    """Last-written value (e.g. a convergence flag or a ratio)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = float("nan")

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Streaming distribution summary: count / min / mean / max.

    Keeps O(1) state (no raw samples), which is enough for the summary
    table and safe for arbitrarily long runs.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")


class _NullInstrument:
    """Shared inert counter/gauge/histogram for the disabled registry."""

    __slots__ = ()
    name = ""
    value = 0.0
    count = 0
    total = 0.0
    mean = float("nan")

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class _NullRegistry:
    """Default registry: hands out the shared inert instrument."""

    enabled = False

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT


class MetricsRegistry:
    """Thread-safe named-instrument store."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            inst = self._counters.get(name)
            if inst is None:
                inst = self._counters[name] = Counter(name)
            return inst

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            inst = self._gauges.get(name)
            if inst is None:
                inst = self._gauges[name] = Gauge(name)
            return inst

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            inst = self._histograms.get(name)
            if inst is None:
                inst = self._histograms[name] = Histogram(name)
            return inst

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Plain-dict view of every instrument (for tests / JSON export)."""
        with self._lock:
            out: dict[str, dict[str, float]] = {}
            for name, c in self._counters.items():
                out[name] = {"type": "counter", "value": c.value}
            for name, g in self._gauges.items():
                out[name] = {"type": "gauge", "value": g.value}
            for name, h in self._histograms.items():
                out[name] = {
                    "type": "histogram",
                    "count": h.count,
                    "min": h.min,
                    "mean": h.mean,
                    "max": h.max,
                }
            return out

    def __len__(self) -> int:
        with self._lock:
            return (
                len(self._counters)
                + len(self._gauges)
                + len(self._histograms)
            )

    def render(self) -> str:
        """Plain-text summary table, instruments sorted by name."""
        rows: list[str] = ["-- metrics summary --"]
        snap = self.snapshot()
        if not snap:
            rows.append("(no metrics recorded)")
            return "\n".join(rows)
        width = max(len(name) for name in snap)
        for name in sorted(snap):
            entry = snap[name]
            if entry["type"] == "counter":
                detail = f"counter    {entry['value']:g}"
            elif entry["type"] == "gauge":
                detail = f"gauge      {entry['value']:g}"
            else:
                detail = (
                    f"histogram  n={entry['count']} "
                    f"min={entry['min']:g} "
                    f"mean={entry['mean']:.4g} "
                    f"max={entry['max']:g}"
                )
            rows.append(f"{name.ljust(width)}  {detail}")
        return "\n".join(rows)


_registry: MetricsRegistry | _NullRegistry = _NullRegistry()


def get_registry() -> MetricsRegistry | _NullRegistry:
    """The active registry (a null registry when metrics are off)."""
    return _registry


def set_registry(
    registry: MetricsRegistry | _NullRegistry | None,
) -> MetricsRegistry | _NullRegistry:
    """Install ``registry`` (None restores the null); returns the old one."""
    global _registry
    previous = _registry
    _registry = registry if registry is not None else _NullRegistry()
    return previous


@contextmanager
def use_registry(
    registry: MetricsRegistry | None = None,
) -> Iterator[MetricsRegistry]:
    """Scoped metrics: install a registry, restore the previous on exit.

    >>> with use_registry() as reg:
    ...     counter("demo.count").inc()
    >>> reg.counter("demo.count").value
    1.0
    """
    registry = registry or MetricsRegistry()
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


def counter(name: str):
    """The named counter in the active registry."""
    return _registry.counter(name)


def gauge(name: str):
    """The named gauge in the active registry."""
    return _registry.gauge(name)


def histogram(name: str):
    """The named histogram in the active registry."""
    return _registry.histogram(name)
