"""Counters, gauges, and histograms for the BST pipeline.

Instrumented code asks the active registry for a named instrument and
updates it::

    from repro.obs import metrics as obs_metrics
    obs_metrics.counter("tests.generated").inc(len(table))
    obs_metrics.histogram("em.iterations").observe(fit.n_iter)
    obs_metrics.gauge("em.converged").set(1.0 if fit.converged else 0.0)

Like tracing, metrics are **off by default**: the module-level registry
is a null registry whose instruments are shared inert objects, so an
``inc``/``observe``/``set`` in library code costs two attribute lookups
when nobody is listening.  Install a :class:`MetricsRegistry` (via
``set_registry`` or ``use_registry``) to start aggregating; ``render``
turns the aggregate into the plain-text summary the CLI prints under
``--metrics``.

Naming convention: ``<module>.<quantity>`` (e.g. ``em.iterations``,
``kde.peaks_found``, ``ndt_join.unmatched``); see docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import random
import threading
import zlib
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter",
    "gauge",
    "get_registry",
    "histogram",
    "set_registry",
    "use_registry",
]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self.value += amount


class Gauge:
    """Last-written value (e.g. a convergence flag or a ratio)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = float("nan")

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Streaming distribution summary: count / min / mean / max + quantiles.

    Keeps O(1) state — running count/total/min/max plus a bounded
    reservoir sample (capacity :data:`RESERVOIR_CAPACITY`) from which
    p50/p95/p99 are estimated — so arbitrarily long runs stay cheap.
    The reservoir RNG is seeded from the instrument name (CRC32), so the
    same observation sequence yields the same quantile estimates in
    every process.
    """

    RESERVOIR_CAPACITY = 1024

    __slots__ = (
        "name", "count", "total", "min", "max",
        "_reservoir", "_rng", "_lock",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._reservoir: list[float] = []
        self._rng = random.Random(zlib.crc32(name.encode("utf-8")))
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            # Algorithm R: item t replaces a random slot with prob cap/t.
            if len(self._reservoir) < self.RESERVOIR_CAPACITY:
                self._reservoir.append(value)
            else:
                slot = self._rng.randrange(self.count)
                if slot < self.RESERVOIR_CAPACITY:
                    self._reservoir[slot] = value

    @property
    def mean(self) -> float:
        with self._lock:
            return self.total / self.count if self.count else float("nan")

    def percentile(self, q: float) -> float:
        """Estimated ``q``-quantile (0..1) from the reservoir sample.

        Exact while ``count <= RESERVOIR_CAPACITY``; an unbiased sample
        estimate beyond that.  ``nan`` when nothing was observed.
        """
        with self._lock:
            sample = sorted(self._reservoir)
        if not sample:
            return float("nan")
        rank = min(len(sample) - 1, max(0, round(q * (len(sample) - 1))))
        return sample[int(rank)]

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p95(self) -> float:
        return self.percentile(0.95)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)

    def _dump(self) -> dict[str, Any]:
        with self._lock:
            return {
                "count": self.count,
                "total": self.total,
                "min": self.min,
                "max": self.max,
                "reservoir": list(self._reservoir),
            }

    def _merge(self, dump: dict[str, Any]) -> None:
        """Fold another histogram's dump into this one (worker merge)."""
        with self._lock:
            self.count += int(dump["count"])
            self.total += float(dump["total"])
            self.min = min(self.min, float(dump["min"]))
            self.max = max(self.max, float(dump["max"]))
            combined = self._reservoir + [
                float(v) for v in dump["reservoir"]
            ]
            if len(combined) > self.RESERVOIR_CAPACITY:
                # Deterministic down-sample (seeded from name + count).
                rng = random.Random(
                    zlib.crc32(self.name.encode("utf-8")) ^ self.count
                )
                combined = rng.sample(combined, self.RESERVOIR_CAPACITY)
            self._reservoir = combined


class _NullInstrument:
    """Shared inert counter/gauge/histogram for the disabled registry."""

    __slots__ = ()
    name = ""
    value = 0.0
    count = 0
    total = 0.0
    mean = float("nan")
    p50 = float("nan")
    p95 = float("nan")
    p99 = float("nan")

    def percentile(self, q: float) -> float:
        return float("nan")

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class _NullRegistry:
    """Default registry: hands out the shared inert instrument."""

    enabled = False

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT


class MetricsRegistry:
    """Thread-safe named-instrument store."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            inst = self._counters.get(name)
            if inst is None:
                inst = self._counters[name] = Counter(name)
            return inst

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            inst = self._gauges.get(name)
            if inst is None:
                inst = self._gauges[name] = Gauge(name)
            return inst

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            inst = self._histograms.get(name)
            if inst is None:
                inst = self._histograms[name] = Histogram(name)
            return inst

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Plain-dict view of every instrument (for tests / JSON export)."""
        with self._lock:
            out: dict[str, dict[str, float]] = {}
            for name, c in self._counters.items():
                out[name] = {"type": "counter", "value": c.value}
            for name, g in self._gauges.items():
                out[name] = {"type": "gauge", "value": g.value}
            for name, h in self._histograms.items():
                out[name] = {
                    "type": "histogram",
                    "count": h.count,
                    "min": h.min,
                    "mean": h.mean,
                    "p50": h.p50,
                    "p95": h.p95,
                    "p99": h.p99,
                    "max": h.max,
                }
            return out

    def dump(self) -> dict[str, dict]:
        """Full mergeable state (including histogram reservoirs).

        Unlike :meth:`snapshot` (a human/JSON view), a dump can be fed
        to :meth:`merge_dump` on another registry without losing the
        quantile sketches — this is how :func:`repro.core.parallel.
        parallel_map` folds worker-process metrics into the parent.
        """
        with self._lock:
            return {
                "counters": {
                    name: c.value for name, c in self._counters.items()
                },
                "gauges": {
                    name: g.value for name, g in self._gauges.items()
                },
                "histograms": {
                    name: h._dump() for name, h in self._histograms.items()
                },
            }

    def merge_dump(self, dump: dict[str, dict]) -> None:
        """Fold another registry's :meth:`dump` into this one.

        Counters add, gauges take the incoming value (last write wins,
        in merge order), histograms merge their summary state and
        reservoirs deterministically.
        """
        for name, value in dump.get("counters", {}).items():
            self.counter(name).inc(float(value))
        for name, value in dump.get("gauges", {}).items():
            self.gauge(name).set(float(value))
        for name, hist_dump in dump.get("histograms", {}).items():
            self.histogram(name)._merge(hist_dump)

    def __len__(self) -> int:
        with self._lock:
            return (
                len(self._counters)
                + len(self._gauges)
                + len(self._histograms)
            )

    def render(self) -> str:
        """Plain-text summary table, instruments sorted by name."""
        rows: list[str] = ["-- metrics summary --"]
        snap = self.snapshot()
        if not snap:
            rows.append("(no metrics recorded)")
            return "\n".join(rows)
        width = max(len(name) for name in snap)
        for name in sorted(snap):
            entry = snap[name]
            if entry["type"] == "counter":
                detail = f"counter    {entry['value']:g}"
            elif entry["type"] == "gauge":
                detail = f"gauge      {entry['value']:g}"
            else:
                detail = (
                    f"histogram  n={entry['count']} "
                    f"min={entry['min']:g} "
                    f"mean={entry['mean']:.4g} "
                    f"p50={entry['p50']:.4g} "
                    f"p95={entry['p95']:.4g} "
                    f"p99={entry['p99']:.4g} "
                    f"max={entry['max']:g}"
                )
            rows.append(f"{name.ljust(width)}  {detail}")
        return "\n".join(rows)


_registry: MetricsRegistry | _NullRegistry = _NullRegistry()


def get_registry() -> MetricsRegistry | _NullRegistry:
    """The active registry (a null registry when metrics are off)."""
    return _registry


def set_registry(
    registry: MetricsRegistry | _NullRegistry | None,
) -> MetricsRegistry | _NullRegistry:
    """Install ``registry`` (None restores the null); returns the old one."""
    global _registry
    previous = _registry
    _registry = registry if registry is not None else _NullRegistry()
    return previous


@contextmanager
def use_registry(
    registry: MetricsRegistry | None = None,
) -> Iterator[MetricsRegistry]:
    """Scoped metrics: install a registry, restore the previous on exit.

    >>> with use_registry() as reg:
    ...     counter("demo.count").inc()
    >>> reg.counter("demo.count").value
    1.0
    """
    registry = registry or MetricsRegistry()
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


def counter(name: str):
    """The named counter in the active registry."""
    return _registry.counter(name)


def gauge(name: str):
    """The named gauge in the active registry."""
    return _registry.gauge(name)


def histogram(name: str):
    """The named histogram in the active registry."""
    return _registry.histogram(name)
