"""Counters, gauges, and histograms for the BST pipeline.

Instrumented code asks the active registry for a named instrument and
updates it::

    from repro.obs import metrics as obs_metrics
    obs_metrics.counter("tests.generated").inc(len(table))
    obs_metrics.histogram("em.iterations").observe(fit.n_iter)
    obs_metrics.gauge("em.converged").set(1.0 if fit.converged else 0.0)

Like tracing, metrics are **off by default**: the module-level registry
is a null registry whose instruments are shared inert objects, so an
``inc``/``observe``/``set`` in library code costs two attribute lookups
when nobody is listening.  Install a :class:`MetricsRegistry` (via
``set_registry`` or ``use_registry``) to start aggregating; ``render``
turns the aggregate into the plain-text summary the CLI prints under
``--metrics``.

Counters and histograms additionally keep **windowed** state: a ring of
tick-stamped one-second buckets (default horizon 300 s) so callers can
ask for rate-over-window and windowed quantiles — "requests/s over the
last minute", "p95 latency over the last minute" — next to the
cumulative-since-start values::

    obs_metrics.counter("serve.requests").rate(window_s=60.0)
    obs_metrics.histogram("serve.request_latency_s").window_percentile(
        0.95, window_s=60.0
    )

Writes stay O(1): a bucket is lazily reset the first time a new tick
lands in its slot, so there is no background sweeper thread.  Reads walk
the ring (at most ``horizon_s / bucket_s`` slots).  Instruments accept
an injectable ``clock`` callable (default ``time.monotonic``) so tests
can drive window expiry deterministically.

Naming convention: ``<module>.<quantity>`` (e.g. ``em.iterations``,
``kde.peaks_found``, ``ndt_join.unmatched``); see docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import math
import random
import re
import threading
import time
import zlib
from contextlib import contextmanager
from typing import Any, Callable, Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter",
    "gauge",
    "get_registry",
    "histogram",
    "parse_prometheus_text",
    "render_prometheus",
    "set_registry",
    "use_registry",
]

#: Default look-back horizon retained by windowed instruments.
WINDOW_HORIZON_S = 300.0
#: Width of one ring bucket.
WINDOW_BUCKET_S = 1.0
#: Default window used when callers do not pass ``window_s``.
DEFAULT_WINDOW_S = 60.0
#: Per-bucket cap on retained raw samples for windowed quantiles.
WINDOW_BUCKET_SAMPLES = 32


class _CounterRing:
    """Ring of tick-stamped bucket sums backing ``Counter`` windows.

    Not itself locked: the owning instrument mutates it under its own
    ``_lock``.  A slot is valid only while its stored tick matches the
    tick that maps to it; stale slots are reset on write and skipped on
    read, so idle periods cost nothing.
    """

    __slots__ = ("bucket_s", "n_buckets", "_sums", "_ticks", "_clock")

    def __init__(
        self,
        bucket_s: float = WINDOW_BUCKET_S,
        horizon_s: float = WINDOW_HORIZON_S,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.bucket_s = float(bucket_s)
        self.n_buckets = max(1, int(round(horizon_s / self.bucket_s)))
        self._sums = [0.0] * self.n_buckets
        self._ticks = [-1] * self.n_buckets
        self._clock = clock if clock is not None else time.monotonic

    def add(self, amount: float) -> None:
        tick = int(self._clock() / self.bucket_s)
        slot = tick % self.n_buckets
        if self._ticks[slot] != tick:
            self._ticks[slot] = tick
            self._sums[slot] = 0.0
        self._sums[slot] += amount

    def total(self, window_s: float) -> float:
        """Sum of amounts recorded within the trailing ``window_s``."""
        now_tick = int(self._clock() / self.bucket_s)
        width = max(1, int(round(window_s / self.bucket_s)))
        width = min(width, self.n_buckets)
        lo = now_tick - width
        return sum(
            s
            for s, t in zip(self._sums, self._ticks)
            if lo < t <= now_tick
        )


class _HistogramRing:
    """Ring of tick-stamped bucket summaries backing ``Histogram`` windows.

    Each live bucket keeps an exact count/total plus a capped sample
    list (:data:`WINDOW_BUCKET_SAMPLES`) from which windowed quantiles
    are estimated.  Mutated only under the owning instrument's lock.
    """

    __slots__ = (
        "bucket_s", "n_buckets", "sample_cap",
        "_ticks", "_counts", "_totals", "_samples", "_clock",
    )

    def __init__(
        self,
        bucket_s: float = WINDOW_BUCKET_S,
        horizon_s: float = WINDOW_HORIZON_S,
        sample_cap: int = WINDOW_BUCKET_SAMPLES,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.bucket_s = float(bucket_s)
        self.n_buckets = max(1, int(round(horizon_s / self.bucket_s)))
        self.sample_cap = int(sample_cap)
        self._ticks = [-1] * self.n_buckets
        self._counts = [0] * self.n_buckets
        self._totals = [0.0] * self.n_buckets
        self._samples: list[list[float]] = [[] for _ in range(self.n_buckets)]
        self._clock = clock if clock is not None else time.monotonic

    def add(self, value: float, rng: random.Random) -> None:
        tick = int(self._clock() / self.bucket_s)
        slot = tick % self.n_buckets
        if self._ticks[slot] != tick:
            self._ticks[slot] = tick
            self._counts[slot] = 0
            self._totals[slot] = 0.0
            self._samples[slot] = []
        self._counts[slot] += 1
        self._totals[slot] += value
        samples = self._samples[slot]
        if len(samples) < self.sample_cap:
            samples.append(value)
        else:
            # Algorithm R within the bucket: keep a uniform sample.
            pick = rng.randrange(self._counts[slot])
            if pick < self.sample_cap:
                samples[pick] = value

    def collect(self, window_s: float) -> tuple[int, float, list[float]]:
        """``(count, total, samples)`` for the trailing ``window_s``."""
        now_tick = int(self._clock() / self.bucket_s)
        width = max(1, int(round(window_s / self.bucket_s)))
        width = min(width, self.n_buckets)
        lo = now_tick - width
        count = 0
        total = 0.0
        samples: list[float] = []
        for slot in range(self.n_buckets):
            t = self._ticks[slot]
            if lo < t <= now_tick:
                count += self._counts[slot]
                total += self._totals[slot]
                samples.extend(self._samples[slot])
        return count, total, samples


class Counter:
    """Monotonically increasing count with an optional trailing window."""

    __slots__ = ("name", "value", "_lock", "_ring")

    def __init__(
        self,
        name: str,
        windowed: bool = True,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()
        self._ring = _CounterRing(clock=clock) if windowed else None

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self.value += amount
            if self._ring is not None:
                self._ring.add(amount)

    def window_sum(self, window_s: float = DEFAULT_WINDOW_S) -> float:
        """Amount added during the trailing ``window_s`` seconds."""
        with self._lock:
            if self._ring is None:
                return 0.0
            return self._ring.total(window_s)

    def rate(self, window_s: float = DEFAULT_WINDOW_S) -> float:
        """Increments per second over the trailing ``window_s``."""
        window_s = float(window_s)
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        return self.window_sum(window_s) / window_s


class Gauge:
    """Last-written value (e.g. a convergence flag or a ratio)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = float("nan")

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Streaming distribution summary: count / min / mean / max + quantiles.

    Keeps O(1) state — running count/total/min/max plus a bounded
    reservoir sample (capacity :data:`RESERVOIR_CAPACITY`) from which
    p50/p95/p99 are estimated — so arbitrarily long runs stay cheap.
    The reservoir RNG is seeded from the instrument name (CRC32), so the
    same observation sequence yields the same quantile estimates in
    every process.
    """

    RESERVOIR_CAPACITY = 1024

    __slots__ = (
        "name", "count", "total", "min", "max",
        "_reservoir", "_rng", "_lock", "_wring",
    )

    def __init__(
        self,
        name: str,
        windowed: bool = True,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._reservoir: list[float] = []
        self._rng = random.Random(zlib.crc32(name.encode("utf-8")))
        self._lock = threading.Lock()
        self._wring = _HistogramRing(clock=clock) if windowed else None

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            # Algorithm R: item t replaces a random slot with prob cap/t.
            if len(self._reservoir) < self.RESERVOIR_CAPACITY:
                self._reservoir.append(value)
            else:
                slot = self._rng.randrange(self.count)
                if slot < self.RESERVOIR_CAPACITY:
                    self._reservoir[slot] = value
            if self._wring is not None:
                self._wring.add(value, self._rng)

    def window_snapshot(
        self, window_s: float = DEFAULT_WINDOW_S
    ) -> dict[str, float]:
        """Summary of observations in the trailing ``window_s``.

        ``count``/``total``/``mean`` are exact; ``min``/``max`` and the
        quantiles are estimated from the per-bucket samples (exact while
        each bucket saw at most :data:`WINDOW_BUCKET_SAMPLES` values).
        """
        with self._lock:
            if self._wring is None:
                count, total, samples = 0, 0.0, []
            else:
                count, total, samples = self._wring.collect(window_s)
        samples.sort()

        def q(frac: float) -> float:
            if not samples:
                return float("nan")
            rank = min(
                len(samples) - 1, max(0, round(frac * (len(samples) - 1)))
            )
            return samples[int(rank)]

        return {
            "count": float(count),
            "total": total,
            "mean": total / count if count else float("nan"),
            "min": samples[0] if samples else float("nan"),
            "max": samples[-1] if samples else float("nan"),
            "p50": q(0.50),
            "p95": q(0.95),
            "p99": q(0.99),
        }

    def window_percentile(
        self, q: float, window_s: float = DEFAULT_WINDOW_S
    ) -> float:
        """Estimated ``q``-quantile over the trailing ``window_s``."""
        with self._lock:
            if self._wring is None:
                return float("nan")
            _, _, samples = self._wring.collect(window_s)
        if not samples:
            return float("nan")
        samples.sort()
        rank = min(
            len(samples) - 1, max(0, round(q * (len(samples) - 1)))
        )
        return samples[int(rank)]

    @property
    def mean(self) -> float:
        with self._lock:
            return self.total / self.count if self.count else float("nan")

    def percentile(self, q: float) -> float:
        """Estimated ``q``-quantile (0..1) from the reservoir sample.

        Exact while ``count <= RESERVOIR_CAPACITY``; an unbiased sample
        estimate beyond that.  ``nan`` when nothing was observed.
        """
        with self._lock:
            sample = sorted(self._reservoir)
        if not sample:
            return float("nan")
        rank = min(len(sample) - 1, max(0, round(q * (len(sample) - 1))))
        return sample[int(rank)]

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p95(self) -> float:
        return self.percentile(0.95)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)

    def _dump(self) -> dict[str, Any]:
        with self._lock:
            return {
                "count": self.count,
                "total": self.total,
                "min": self.min,
                "max": self.max,
                "reservoir": list(self._reservoir),
            }

    def _merge(self, dump: dict[str, Any]) -> None:
        """Fold another histogram's dump into this one (worker merge)."""
        with self._lock:
            self.count += int(dump["count"])
            self.total += float(dump["total"])
            self.min = min(self.min, float(dump["min"]))
            self.max = max(self.max, float(dump["max"]))
            combined = self._reservoir + [
                float(v) for v in dump["reservoir"]
            ]
            if len(combined) > self.RESERVOIR_CAPACITY:
                # Deterministic down-sample (seeded from name + count).
                rng = random.Random(
                    zlib.crc32(self.name.encode("utf-8")) ^ self.count
                )
                combined = rng.sample(combined, self.RESERVOIR_CAPACITY)
            self._reservoir = combined


class _NullInstrument:
    """Shared inert counter/gauge/histogram for the disabled registry."""

    __slots__ = ()
    name = ""
    value = 0.0
    count = 0
    total = 0.0
    mean = float("nan")
    p50 = float("nan")
    p95 = float("nan")
    p99 = float("nan")

    def percentile(self, q: float) -> float:
        return float("nan")

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def window_sum(self, window_s: float = DEFAULT_WINDOW_S) -> float:
        return 0.0

    def rate(self, window_s: float = DEFAULT_WINDOW_S) -> float:
        return 0.0

    def window_snapshot(
        self, window_s: float = DEFAULT_WINDOW_S
    ) -> dict[str, float]:
        nan = float("nan")
        return {
            "count": 0.0, "total": 0.0, "mean": nan, "min": nan,
            "max": nan, "p50": nan, "p95": nan, "p99": nan,
        }

    def window_percentile(
        self, q: float, window_s: float = DEFAULT_WINDOW_S
    ) -> float:
        return float("nan")


_NULL_INSTRUMENT = _NullInstrument()


class _NullRegistry:
    """Default registry: hands out the shared inert instrument."""

    enabled = False

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT


class MetricsRegistry:
    """Thread-safe named-instrument store.

    ``clock`` (default ``time.monotonic``) is handed to every created
    instrument's window ring; inject a fake clock to step windows
    deterministically in tests.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self._lock = threading.Lock()
        self._clock = clock
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            inst = self._counters.get(name)
            if inst is None:
                inst = self._counters[name] = Counter(
                    name, clock=self._clock
                )
            return inst

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            inst = self._gauges.get(name)
            if inst is None:
                inst = self._gauges[name] = Gauge(name)
            return inst

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            inst = self._histograms.get(name)
            if inst is None:
                inst = self._histograms[name] = Histogram(
                    name, clock=self._clock
                )
            return inst

    def instruments(
        self,
    ) -> tuple[dict[str, Counter], dict[str, Gauge], dict[str, Histogram]]:
        """``(counters, gauges, histograms)`` snapshot, without creating."""
        with self._lock:
            return (
                dict(self._counters),
                dict(self._gauges),
                dict(self._histograms),
            )

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Plain-dict view of every instrument (for tests / JSON export)."""
        with self._lock:
            out: dict[str, dict[str, float]] = {}
            for name, c in self._counters.items():
                out[name] = {"type": "counter", "value": c.value}
            for name, g in self._gauges.items():
                out[name] = {"type": "gauge", "value": g.value}
            for name, h in self._histograms.items():
                out[name] = {
                    "type": "histogram",
                    "count": h.count,
                    "min": h.min,
                    "mean": h.mean,
                    "p50": h.p50,
                    "p95": h.p95,
                    "p99": h.p99,
                    "max": h.max,
                }
            return out

    def dump(self) -> dict[str, dict]:
        """Full mergeable state (including histogram reservoirs).

        Unlike :meth:`snapshot` (a human/JSON view), a dump can be fed
        to :meth:`merge_dump` on another registry without losing the
        quantile sketches — this is how :func:`repro.core.parallel.
        parallel_map` folds worker-process metrics into the parent.
        """
        with self._lock:
            return {
                "counters": {
                    name: c.value for name, c in self._counters.items()
                },
                "gauges": {
                    name: g.value for name, g in self._gauges.items()
                },
                "histograms": {
                    name: h._dump() for name, h in self._histograms.items()
                },
            }

    def merge_dump(self, dump: dict[str, dict]) -> None:
        """Fold another registry's :meth:`dump` into this one.

        Counters add, gauges take the incoming value (last write wins,
        in merge order), histograms merge their summary state and
        reservoirs deterministically.
        """
        for name, value in dump.get("counters", {}).items():
            self.counter(name).inc(float(value))
        for name, value in dump.get("gauges", {}).items():
            self.gauge(name).set(float(value))
        for name, hist_dump in dump.get("histograms", {}).items():
            self.histogram(name)._merge(hist_dump)

    def __len__(self) -> int:
        with self._lock:
            return (
                len(self._counters)
                + len(self._gauges)
                + len(self._histograms)
            )

    def render(self) -> str:
        """Plain-text summary table, instruments sorted by name."""
        rows: list[str] = ["-- metrics summary --"]
        snap = self.snapshot()
        if not snap:
            rows.append("(no metrics recorded)")
            return "\n".join(rows)
        width = max(len(name) for name in snap)
        for name in sorted(snap):
            entry = snap[name]
            if entry["type"] == "counter":
                detail = f"counter    {entry['value']:g}"
            elif entry["type"] == "gauge":
                detail = f"gauge      {entry['value']:g}"
            else:
                detail = (
                    f"histogram  n={entry['count']} "
                    f"min={entry['min']:g} "
                    f"mean={entry['mean']:.4g} "
                    f"p50={entry['p50']:.4g} "
                    f"p95={entry['p95']:.4g} "
                    f"p99={entry['p99']:.4g} "
                    f"max={entry['max']:g}"
                )
            rows.append(f"{name.ljust(width)}  {detail}")
        return "\n".join(rows)


_registry: MetricsRegistry | _NullRegistry = _NullRegistry()


def get_registry() -> MetricsRegistry | _NullRegistry:
    """The active registry (a null registry when metrics are off)."""
    return _registry


def set_registry(
    registry: MetricsRegistry | _NullRegistry | None,
) -> MetricsRegistry | _NullRegistry:
    """Install ``registry`` (None restores the null); returns the old one."""
    global _registry
    previous = _registry
    _registry = registry if registry is not None else _NullRegistry()
    return previous


@contextmanager
def use_registry(
    registry: MetricsRegistry | None = None,
) -> Iterator[MetricsRegistry]:
    """Scoped metrics: install a registry, restore the previous on exit.

    >>> with use_registry() as reg:
    ...     counter("demo.count").inc()
    >>> reg.counter("demo.count").value
    1.0
    """
    registry = registry or MetricsRegistry()
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


def counter(name: str):
    """The named counter in the active registry."""
    return _registry.counter(name)


def gauge(name: str):
    """The named gauge in the active registry."""
    return _registry.gauge(name)


def histogram(name: str):
    """The named histogram in the active registry."""
    return _registry.histogram(name)


def _prom_name(name: str) -> str:
    """A dotted instrument name as a Prometheus metric name."""
    out = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if out and out[0].isdigit():
        out = "_" + out
    return out


def _prom_value(value: float) -> str:
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return format(value, ".10g")


def render_prometheus(
    registry: MetricsRegistry | _NullRegistry,
    window_s: float = DEFAULT_WINDOW_S,
) -> str:
    """Prometheus text exposition (v0.0.4) of every instrument.

    Cumulative counters render as ``<name>_total``; windowed rates as a
    ``<name>_rate`` gauge labelled with the window.  Histograms render
    as summaries (cumulative quantiles from the reservoir) plus
    ``<name>_window*`` gauges for the trailing-window view.  Instruments
    created with ``windowed=False`` skip the windowed families.
    """
    window_label = f'window="{format(float(window_s), "g")}s"'
    lines: list[str] = []
    counters, gauges, histograms = (
        registry.instruments()
        if isinstance(registry, MetricsRegistry)
        else ({}, {}, {})
    )
    for name in sorted(counters):
        c = counters[name]
        base = _prom_name(name)
        lines.append(f"# TYPE {base}_total counter")
        lines.append(f"{base}_total {_prom_value(c.value)}")
        if c._ring is not None:
            lines.append(f"# TYPE {base}_rate gauge")
            lines.append(
                f"{base}_rate{{{window_label}}} "
                f"{_prom_value(c.rate(window_s))}"
            )
    for name in sorted(gauges):
        g = gauges[name]
        base = _prom_name(name)
        lines.append(f"# TYPE {base} gauge")
        lines.append(f"{base} {_prom_value(g.value)}")
    for name in sorted(histograms):
        h = histograms[name]
        base = _prom_name(name)
        lines.append(f"# TYPE {base} summary")
        for q in (0.5, 0.95, 0.99):
            lines.append(
                f'{base}{{quantile="{q}"}} '
                f"{_prom_value(h.percentile(q))}"
            )
        lines.append(f"{base}_sum {_prom_value(h.total)}")
        lines.append(f"{base}_count {_prom_value(h.count)}")
        if h._wring is not None:
            snap = h.window_snapshot(window_s)
            lines.append(f"# TYPE {base}_window gauge")
            for q in ("0.5", "0.95", "0.99"):
                key = {"0.5": "p50", "0.95": "p95", "0.99": "p99"}[q]
                lines.append(
                    f'{base}_window{{{window_label},quantile="{q}"}} '
                    f"{_prom_value(snap[key])}"
                )
            lines.append(f"# TYPE {base}_window_count gauge")
            lines.append(
                f"{base}_window_count{{{window_label}}} "
                f"{_prom_value(snap['count'])}"
            )
    return "\n".join(lines) + "\n" if lines else ""


_PROM_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+\d+)?$"
)
_PROM_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus_text(
    text: str,
) -> dict[str, list[tuple[dict[str, str], float]]]:
    """Parse Prometheus text exposition into ``{name: [(labels, value)]}``.

    Strict enough for round-trip tests and the smoke gate: any
    non-comment, non-blank line that fails the sample grammar raises
    ``ValueError``.
    """
    out: dict[str, list[tuple[dict[str, str], float]]] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _PROM_LINE.match(line)
        if match is None:
            raise ValueError(
                f"malformed exposition line {lineno}: {raw!r}"
            )
        labels = {
            key: value.replace('\\"', '"').replace("\\\\", "\\")
            for key, value in _PROM_LABEL.findall(
                match.group("labels") or ""
            )
        }
        try:
            value = float(match.group("value"))
        except ValueError as exc:
            raise ValueError(
                f"malformed sample value on line {lineno}: {raw!r}"
            ) from exc
        out.setdefault(match.group("name"), []).append((labels, value))
    return out
