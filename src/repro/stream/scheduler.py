"""Drift-triggered model lifecycle: the refit scheduler.

:class:`RefitScheduler` closes the loop the serving tier left open --
drift is *detected* (``/healthz`` verdicts, ``model_drift`` alerts) but
nothing acts on it.  The scheduler polls a
:class:`~repro.stream.monitor.StreamMonitor` for rolling drift
verdicts, debounces them, and refits the affected ``(city, isp)`` shard
on the monitor's retained recent sample:

1. **min-hold** -- a verdict must stay drifted for ``min_hold_s``
   before a refit starts (a single noisy window refits nothing);
2. **cooldown** -- a shard that just refit is immune for
   ``cooldown_s`` even if verdicts keep arriving (repeated verdicts
   inside the cooldown provably cause no second refit);
3. **max-concurrent** -- at most ``max_concurrent`` refits run per
   poll cycle, so a fleet-wide disruption cannot stampede the fitter.

A refit fits :class:`~repro.core.bst.BSTModel` on the monitor's recent
raw sample (``jobs`` fans the per-group download fits out through
:mod:`repro.core.parallel`), registers the result content-addressed
under the *same* model key, hot-swaps serving workers through the
``reload_cb`` (``POST /reload``; see docs/STREAMING.md), rebaselines
the monitor, and appends a ``kind="refit"`` manifest to the run ledger
with full provenance (old/new digest, sample size, the triggering
verdict, drift-to-swap latency).

The scheduler never reads the wall clock: ``clock`` and ``sleep`` are
injected (:mod:`repro.stream.clock`), so the end-to-end lifecycle --
including the debounce timings and the ``stream.refit_latency_s``
histogram -- is deterministic under :class:`SimClock`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.core.bst import BSTConfig, BSTModel
from repro.obs import metrics as obs_metrics
from repro.obs.logging import get_logger, kv
from repro.obs.metrics import MetricsRegistry
from repro.obs.runs import RunLedger, RunRecorder, default_ledger_path
from repro.obs.trace import span
from repro.serve.registry import ModelKey, ModelRegistry
from repro.stream.monitor import StreamMonitor

__all__ = ["RefitPolicy", "RefitScheduler"]

log = get_logger("repro.stream.scheduler")


@dataclass(frozen=True)
class RefitPolicy:
    """Debounce knobs for the refit scheduler (times in clock seconds)."""

    min_hold_s: float = 5.0
    cooldown_s: float = 300.0
    max_concurrent: int = 1
    min_samples: int = 200

    def __post_init__(self) -> None:
        if self.min_hold_s < 0 or self.cooldown_s < 0:
            raise ValueError("debounce intervals cannot be negative")
        if self.max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")


class RefitScheduler:
    """Consumes drift verdicts, emits debounced shard-local refits.

    Parameters
    ----------
    registry:
        The serving model registry refits are registered into.
    monitor:
        Drift-verdict and refit-sample source.
    policy:
        Debounce configuration (:class:`RefitPolicy`).
    clock:
        Injectable monotonic clock -- **required**; the scheduler keeps
        every timestamp it reasons about on this clock.
    config:
        :class:`BSTConfig` used for refits (default config when None).
    reload_cb:
        Called with the list of refit model slugs after registration;
        wire this to ``ServeClient.reload`` / the router fan-out so
        serving processes hot-swap.  None skips the swap (standalone
        simulation against a registry nobody is serving from).
    jobs:
        Worker processes for each refit's per-group download fits
        (through :mod:`repro.core.parallel`; 1 = serial).
    ledger_path:
        Run-ledger path for refit provenance; defaults to
        :func:`repro.obs.runs.default_ledger_path` (None disables).
    metrics:
        Optional extra :class:`MetricsRegistry` for ``stream.*``
        instruments (the global one always gets them).
    """

    def __init__(
        self,
        registry: ModelRegistry,
        monitor: StreamMonitor,
        policy: RefitPolicy | None = None,
        clock: Callable[[], float] | None = None,
        config: BSTConfig | None = None,
        reload_cb: Callable[[list[str]], Any] | None = None,
        jobs: int = 1,
        ledger_path: str | None = "auto",
        metrics: MetricsRegistry | None = None,
    ):
        if clock is None:
            raise ValueError(
                "RefitScheduler needs an injected clock; pass "
                "stream.clock.system_clock() to run on real time"
            )
        self.registry = registry
        self.monitor = monitor
        self.policy = policy or RefitPolicy()
        self.clock = clock
        self.config = config
        self.reload_cb = reload_cb
        self.jobs = int(jobs)
        self.ledger_path = (
            default_ledger_path() if ledger_path == "auto" else ledger_path
        )
        self.metrics = metrics
        self._lock = threading.Lock()
        self._breach_since: dict[str, float] = {}
        self._last_refit: dict[str, float] = {}
        self.n_refits = 0
        self.n_failures = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._sleep: Callable[[float], None] | None = None

    # -- one poll cycle --------------------------------------------------
    def poll(self) -> list[dict[str, Any]]:
        """Evaluate verdicts once; run any refits that clear debounce.

        Returns one provenance dict per completed refit (empty when
        everything is healthy or still debouncing).
        """
        verdicts = self.monitor.verdicts()
        now = self.clock()
        due: list[dict[str, Any]] = []
        with self._lock:
            for verdict in verdicts:
                slug = verdict["model"]
                if not verdict["drifted"]:
                    self._breach_since.pop(slug, None)
                    continue
                since = self._breach_since.setdefault(slug, now)
                if now - since < self.policy.min_hold_s:
                    continue
                last = self._last_refit.get(slug)
                if last is not None and now - last < self.policy.cooldown_s:
                    continue
                if len(due) >= self.policy.max_concurrent:
                    continue
                due.append(dict(verdict, breach_since=since))
            # Reserve the slots inside the lock so a concurrent poll
            # cannot double-refit the same shard.
            for verdict in due:
                self._last_refit[verdict["model"]] = now
        if not due:
            return []
        self._set_gauge("stream.active_refits", float(len(due)))
        completed: list[dict[str, Any]] = []
        try:
            for verdict in due:
                outcome = self._refit_one(verdict)
                if outcome is not None:
                    completed.append(outcome)
        finally:
            self._set_gauge("stream.active_refits", 0.0)
        if completed and self.reload_cb is not None:
            slugs = [c["model"] for c in completed]
            try:
                self.reload_cb(slugs)
            except Exception as exc:
                log.error(
                    "hot-swap reload failed", extra=kv(error=repr(exc))
                )
        for outcome in completed:
            self.monitor.rebaseline(outcome["city"], outcome["isp"])
            self._record_refit(outcome)
        return completed

    def _refit_one(self, verdict: dict[str, Any]) -> dict[str, Any] | None:
        slug = verdict["model"]
        key = ModelKey.from_slug(slug)
        downloads, uploads = self.monitor.recent_sample(
            verdict["city"], verdict["isp"]
        )
        if len(downloads) < self.policy.min_samples:
            log.warning(
                "skipping refit: not enough retained samples",
                extra=kv(model=slug, n=len(downloads)),
            )
            with self._lock:
                # Release the reservation so the shard retries next poll.
                self._last_refit.pop(slug, None)
            return None
        t_start = self.clock()
        try:
            with span("stream.refit", model=slug, n=len(downloads)):
                old = self.registry.lookup(key)
                catalog = self.registry.load(key)[0].catalog
                result = BSTModel(catalog, self.config).fit(
                    downloads, uploads, jobs=self.jobs
                )
                record = self.registry.register(
                    key, result, downloads=downloads, uploads=uploads
                )
        except Exception as exc:
            self.n_failures += 1
            self._bump("stream.refit_failures", 1)
            log.error(
                "refit failed", extra=kv(model=slug, error=repr(exc))
            )
            return None
        t_done = self.clock()
        self.n_refits += 1
        self._bump("stream.refits", 1)
        latency = t_done - verdict["breach_since"]
        self._observe_hist("stream.refit_latency_s", latency)
        log.info(
            "refit shard",
            extra=kv(
                model=slug,
                old_digest=(old.digest[:16] if old else ""),
                new_digest=record.digest[:16],
                n_samples=len(downloads),
            ),
        )
        return {
            "model": slug,
            "city": verdict["city"],
            "isp": verdict["isp"],
            "old_digest": old.digest if old else None,
            "new_digest": record.digest,
            "n_samples": int(len(downloads)),
            "breach_since": verdict["breach_since"],
            "refit_started": t_start,
            "refit_done": t_done,
            "drift_to_swap_s": latency,
            "trigger": _jsonable(verdict["directions"]),
        }

    def _record_refit(self, outcome: dict[str, Any]) -> None:
        """Append the refit's provenance manifest to the run ledger."""
        if not self.ledger_path:
            return
        recorder = RunRecorder(
            kind="refit",
            name="stream.refit",
            params={
                "model": outcome["model"],
                "city": outcome["city"],
                "isp": outcome["isp"],
                "old_digest": outcome["old_digest"],
                "new_digest": outcome["new_digest"],
                "n_samples": outcome["n_samples"],
                "trigger": outcome["trigger"],
                "policy": {
                    "min_hold_s": self.policy.min_hold_s,
                    "cooldown_s": self.policy.cooldown_s,
                    "max_concurrent": self.policy.max_concurrent,
                },
            },
        )
        manifest = recorder.finish(
            exit_code=0,
            collector=False,
            registry=False,
            quality=False,
            results={
                "drift_to_swap_s": outcome["drift_to_swap_s"],
                "n_samples": float(outcome["n_samples"]),
            },
            wall_s=outcome["refit_done"] - outcome["refit_started"],
        )
        try:
            RunLedger(self.ledger_path).append(manifest)
        except OSError as exc:
            log.error(
                "could not append refit to run ledger",
                extra=kv(path=str(self.ledger_path), error=repr(exc)),
            )

    # -- background daemon ----------------------------------------------
    def start(
        self,
        interval_s: float = 1.0,
        sleep: Callable[[float], None] | None = None,
    ) -> "RefitScheduler":
        """Run :meth:`poll` every ``interval_s`` in a daemon thread.

        ``sleep`` is injectable like ``clock``; the default waits on the
        stop event (real time), which is what live serving wants.
        """
        if self._thread is not None:
            return self
        self._sleep = sleep
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run,
            args=(float(interval_s),),
            name="refit-scheduler",
            daemon=True,
        )
        self._thread.start()
        return self

    def _run(self, interval_s: float) -> None:
        while not self._stop.is_set():
            try:
                self.poll()
            except Exception as exc:
                log.error(
                    "refit poll crashed", extra=kv(error=repr(exc))
                )
            if self._sleep is not None:
                self._sleep(interval_s)
                if self._stop.is_set():
                    return
            else:
                self._stop.wait(interval_s)

    def stop(self) -> None:
        """Stop the daemon and join it."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=10)
            self._thread = None

    # -- instrument plumbing --------------------------------------------
    def _bump(self, name: str, n: float) -> None:
        obs_metrics.counter(name).inc(n)
        if self.metrics is not None:
            self.metrics.counter(name).inc(n)

    def _set_gauge(self, name: str, value: float) -> None:
        obs_metrics.gauge(name).set(value)
        if self.metrics is not None:
            self.metrics.gauge(name).set(value)

    def _observe_hist(self, name: str, value: float) -> None:
        obs_metrics.histogram(name).observe(value)
        if self.metrics is not None:
            self.metrics.histogram(name).observe(value)


def _jsonable(value: Any) -> Any:
    """Round-trip-safe copy of a verdict fragment (numpy scalars -> py)."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    return value
