"""Measurement firehose: seeded, time-stamped micro-batches.

Crowdsourced speed tests arrive continuously; this module turns the
repo's static vendor simulators (:mod:`repro.vendors`) into a stream
source.  A :class:`MeasurementStream` seeds one *base pool* of events
through the real simulator (so the marginal speed/tier/context
distributions are the calibrated vendor ones), then emits micro-batches
by vectorised bootstrap resampling from that pool with a small
multiplicative jitter -- the per-row Python loop inside the simulators
tops out around 5k rows/s, far below streaming rates, while the
resampling path sustains hundreds of thousands of events per second
with the same marginals.  Everything is deterministic per ``seed``.

Stream time is *simulated*: event ``k`` is stamped by integrating the
configured arrival rate, optionally modulated by the paper's Figure 11
diurnal profile (:data:`~repro.vendors.schema.DIURNAL_BIN_WEIGHTS`), so
a batch knows exactly when its events "happened" regardless of how fast
the caller drains the stream.  Real-time pacing, when wanted, is the
caller's job (sleep until the wall clock catches up with ``t_s``).

Drift is injected declaratively: a :class:`DriftSegment` names a
stream-time interval and how the traffic changes inside it --
download/upload scaling (congestion onset, an access-network incident)
and tier-share shift (the subscriber mix drifting toward lower tiers,
as the bias-correction literature observes month over month).

:class:`StreamMux` merges several vendor streams into one feed in
timestamp order, buffering at most one pending batch per source.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.pipeline.ndt_join import join_ndt_tests
from repro.vendors.schema import DIURNAL_BIN_WEIGHTS

__all__ = [
    "DriftSegment",
    "MeasurementStream",
    "StreamBatch",
    "StreamMux",
]

_VENDORS = ("ookla", "mlab", "mba")


@dataclass(frozen=True)
class DriftSegment:
    """One stream-time interval in which the traffic distribution shifts.

    ``download_scale`` / ``upload_scale`` multiply measured speeds for
    events inside the segment (0.4 models severe congestion onset).
    ``tier_share_shift`` drops that fraction of upper-half-tier events,
    shifting the subscriber mix toward lower tiers.
    """

    start_s: float
    duration_s: float = float("inf")
    download_scale: float = 1.0
    upload_scale: float = 1.0
    tier_share_shift: float = 0.0

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ValueError("segment start_s cannot be negative")
        if self.duration_s <= 0:
            raise ValueError("segment duration_s must be positive")
        if self.download_scale <= 0 or self.upload_scale <= 0:
            raise ValueError("speed scales must be positive")
        if not 0.0 <= self.tier_share_shift < 1.0:
            raise ValueError("tier_share_shift must be in [0, 1)")

    def active(self, t_s: np.ndarray) -> np.ndarray:
        """Boolean mask of event timestamps inside the segment."""
        t_s = np.asarray(t_s, dtype=float)
        return (t_s >= self.start_s) & (t_s < self.start_s + self.duration_s)


@dataclass
class StreamBatch:
    """One micro-batch of normalised measurement events."""

    vendor: str
    city: str
    isp: str
    t_s: float  # stream time of the batch's last event
    timestamps_s: np.ndarray  # per event, ascending
    downloads: np.ndarray  # Mbps
    uploads: np.ndarray  # Mbps
    tiers: np.ndarray  # ground-truth plan tier per event (int64)
    hours: np.ndarray  # stream-derived local hour per event (0-23)

    def __len__(self) -> int:
        return len(self.downloads)


def _diurnal_factor(hour: float) -> float:
    """Arrival-rate multiplier for one local hour (mean 1.0)."""
    bin_index = int(hour // 6) % len(DIURNAL_BIN_WEIGHTS)
    return DIURNAL_BIN_WEIGHTS[bin_index] * len(DIURNAL_BIN_WEIGHTS)


class MeasurementStream:
    """Seeded micro-batch source over one vendor simulator.

    Parameters
    ----------
    vendor:
        ``ookla`` | ``mlab`` | ``mba``.  M-Lab's one-directional NDT
        records are session-joined (:func:`join_ndt_tests`) before they
        enter the pool, so every emitted event is a download/upload pair.
    city:
        City id (state id for the MBA panel).
    events_per_s:
        Mean arrival rate; with ``diurnal=True`` it is modulated by the
        Figure 11 time-of-day profile around this mean.
    batch_size:
        Events per emitted :class:`StreamBatch`.
    pool_size:
        Size of the simulator-generated base pool events are resampled
        from.
    jitter_sigma:
        Log-normal sigma of the per-event multiplicative speed jitter
        applied on top of the resampled pool values (0 disables).
    segments:
        Drift segments to apply, in any order.
    start_s:
        Stream-time origin (e.g. ``8 * 3600.0`` starts mid-morning).

    Examples
    --------
    >>> stream = MeasurementStream("ookla", "A", seed=7, pool_size=512)
    >>> batch = stream.next_batch()
    >>> len(batch), batch.city
    (256, 'A')
    >>> bool(batch.timestamps_s[-1] == batch.t_s)
    True
    """

    def __init__(
        self,
        vendor: str = "ookla",
        city: str = "A",
        seed: int = 0,
        events_per_s: float = 1000.0,
        batch_size: int = 256,
        pool_size: int = 4096,
        jitter_sigma: float = 0.05,
        diurnal: bool = True,
        segments: Sequence[DriftSegment] = (),
        start_s: float = 0.0,
    ):
        if vendor not in _VENDORS:
            raise ValueError(
                f"unknown vendor {vendor!r}; expected one of {_VENDORS}"
            )
        if events_per_s <= 0:
            raise ValueError("events_per_s must be positive")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if pool_size < batch_size:
            raise ValueError("pool_size must be >= batch_size")
        if jitter_sigma < 0:
            raise ValueError("jitter_sigma cannot be negative")
        self.vendor = vendor
        self.city = city.upper()
        self.seed = int(seed)
        self.events_per_s = float(events_per_s)
        self.batch_size = int(batch_size)
        self.pool_size = int(pool_size)
        self.jitter_sigma = float(jitter_sigma)
        self.diurnal = bool(diurnal)
        self.segments = tuple(
            sorted(segments, key=lambda seg: seg.start_s)
        )
        self._t = float(start_s)
        self._rng = np.random.default_rng(self.seed + 104729)
        self._pool: dict[str, np.ndarray] | None = None
        self.isp = ""
        self.catalog = None  # PlanCatalog, set when the pool builds
        self.n_emitted = 0

    # -- base pool -------------------------------------------------------
    def _build_pool(self) -> dict[str, np.ndarray]:
        """Generate the base pool through the real vendor simulator."""
        if self.vendor == "ookla":
            from repro.vendors.ookla import OoklaSimulator

            sim = OoklaSimulator(self.city, seed=self.seed)
            table = sim.generate(self.pool_size)
            tiers = table["true_tier"]
        elif self.vendor == "mlab":
            from repro.vendors.mlab import MLabSimulator

            sim = MLabSimulator(self.city, seed=self.seed)
            # Sessions yield ~1 joined pair each; generate a margin so
            # the joined pool is at least pool_size rows.
            table = join_ndt_tests(sim.generate(self.pool_size * 2))
            tiers = table["true_tier"]
        else:
            from repro.vendors.mba import MBASimulator

            sim = MBASimulator(self.city, seed=self.seed)
            table = sim.generate(self.pool_size)
            tiers = table["tier"]
        self.isp = sim.catalog.isp_name
        self.catalog = sim.catalog
        downloads = np.asarray(table["download_mbps"], dtype=float)
        uploads = np.asarray(table["upload_mbps"], dtype=float)
        tiers = np.asarray(tiers, dtype=np.int64)
        keep = (downloads > 0) & (uploads > 0)
        n = min(int(keep.sum()), self.pool_size)
        if n == 0:
            raise RuntimeError(
                f"{self.vendor} simulator produced no usable events"
            )
        idx = np.flatnonzero(keep)[:n]
        return {
            "downloads": downloads[idx],
            "uploads": uploads[idx],
            "tiers": tiers[idx],
        }

    @property
    def pool(self) -> dict[str, np.ndarray]:
        if self._pool is None:
            self._pool = self._build_pool()
        return self._pool

    # -- emission --------------------------------------------------------
    def next_batch(self) -> StreamBatch:
        """Emit the next micro-batch and advance stream time."""
        pool = self.pool
        n = self.batch_size
        hour_now = (self._t / 3600.0) % 24.0
        factor = _diurnal_factor(hour_now) if self.diurnal else 1.0
        rate = self.events_per_s * factor
        dt = n / rate
        timestamps = self._t + (np.arange(1, n + 1, dtype=float) / n) * dt
        self._t = float(timestamps[-1])

        idx = self._rng.integers(0, len(pool["downloads"]), size=n)
        downloads = pool["downloads"][idx].copy()
        uploads = pool["uploads"][idx].copy()
        tiers = pool["tiers"][idx].copy()
        if self.jitter_sigma > 0:
            downloads *= np.exp(
                self._rng.normal(0.0, self.jitter_sigma, size=n)
            )
            uploads *= np.exp(
                self._rng.normal(0.0, self.jitter_sigma, size=n)
            )

        keep = np.ones(n, dtype=bool)
        for segment in self.segments:
            mask = segment.active(timestamps)
            if not mask.any():
                continue
            downloads[mask] *= segment.download_scale
            uploads[mask] *= segment.upload_scale
            if segment.tier_share_shift > 0.0:
                upper = tiers > np.median(pool["tiers"])
                drop = (
                    mask
                    & upper
                    & (self._rng.random(n) < segment.tier_share_shift)
                )
                keep &= ~drop
        if not keep.all():
            timestamps = timestamps[keep]
            downloads = downloads[keep]
            uploads = uploads[keep]
            tiers = tiers[keep]
        hours = ((timestamps / 3600.0) % 24.0).astype(np.int64)
        self.n_emitted += len(downloads)
        return StreamBatch(
            vendor=self.vendor,
            city=self.city,
            isp=self.isp,
            t_s=self._t,
            timestamps_s=timestamps,
            downloads=downloads,
            uploads=uploads,
            tiers=tiers,
            hours=hours,
        )

    def batches(self, n_batches: int) -> Iterator[StreamBatch]:
        """Emit ``n_batches`` micro-batches."""
        for _ in range(max(n_batches, 0)):
            yield self.next_batch()

    @property
    def t_s(self) -> float:
        """Current stream time (the last emitted event's timestamp)."""
        return self._t


class StreamMux:
    """Bounded fan-in merging vendor streams in timestamp order.

    Buffers exactly one pending batch per source (the bound), pops the
    one with the earliest ``t_s``, and refills from that source -- so a
    fast vendor never starves a slow one and merged output timestamps
    are non-decreasing.

    Examples
    --------
    >>> a = MeasurementStream("ookla", "A", seed=1, pool_size=512,
    ...                       events_per_s=500.0)
    >>> b = MeasurementStream("mba", "A", seed=2, pool_size=512,
    ...                       events_per_s=200.0)
    >>> mux = StreamMux([a, b])
    >>> first = mux.next_batch()
    >>> second = mux.next_batch()
    >>> bool(first.t_s <= second.t_s)
    True
    """

    def __init__(self, streams: Sequence[MeasurementStream]):
        streams = list(streams)
        if not streams:
            raise ValueError("StreamMux needs at least one source stream")
        self.streams = streams
        self._pending: list[StreamBatch | None] = [None] * len(streams)

    @property
    def max_buffered(self) -> int:
        """The fan-in bound: one pending batch per source."""
        return len(self.streams)

    def next_batch(self) -> StreamBatch:
        """The buffered batch with the earliest stream timestamp."""
        for i, batch in enumerate(self._pending):
            if batch is None:
                self._pending[i] = self.streams[i].next_batch()
        earliest = min(
            range(len(self._pending)),
            key=lambda i: self._pending[i].t_s,  # type: ignore[union-attr]
        )
        batch = self._pending[earliest]
        self._pending[earliest] = None
        assert batch is not None
        return batch

    def batches(self, n_batches: int) -> Iterator[StreamBatch]:
        for _ in range(max(n_batches, 0)):
            yield self.next_batch()
