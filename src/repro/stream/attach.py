"""Attach the online lifecycle to a live serving process.

``repro serve --refit`` calls :func:`attach_refit` after building the
server: it taps successfully-assigned traffic into a
:class:`~repro.stream.monitor.StreamMonitor` (so the windowed stats see
exactly what the models see), wires the scheduler's hot-swap callback
to the server's ``/reload`` machinery, and starts the
:class:`~repro.stream.scheduler.RefitScheduler` daemon on the real
clock (the only place :func:`repro.stream.clock.system_clock` is
handed out).

Works against both server shapes:

- a single-process :class:`~repro.serve.server.ServeServer` -- the tap
  feeds from ``AssignmentService._observe`` and the swap calls
  ``AssignmentService.reload`` in-process;
- a :class:`~repro.serve.router.RouterServer` -- the tap feeds from the
  router's forward path and the swap fans ``POST /reload`` out to the
  owning worker shards.
"""

from __future__ import annotations

from typing import Any

from repro.core.bst import BSTConfig
from repro.obs.logging import get_logger, kv
from repro.stream.clock import system_clock
from repro.stream.monitor import StreamMonitor
from repro.stream.scheduler import RefitPolicy, RefitScheduler

__all__ = ["attach_refit"]

log = get_logger("repro.stream.attach")


def attach_refit(
    server: Any,
    policy: RefitPolicy | None = None,
    config: BSTConfig | None = None,
    interval_s: float = 5.0,
    window_s: float = 60.0,
    jobs: int = 1,
    ledger_path: str | None = "auto",
) -> tuple[StreamMonitor, RefitScheduler]:
    """Wire monitor + scheduler into a built server and start polling.

    Returns ``(monitor, scheduler)``; the caller owns stopping the
    scheduler (``scheduler.stop()``) when the server shuts down.
    """
    clock = system_clock()
    if hasattr(server, "service"):  # single-process ServeServer
        service = server.service
        registry = service.registry
        monitor = StreamMonitor(
            registry=registry,
            metrics=service.metrics,
            clock=clock,
            window_s=window_s,
        )
        service.stream_tap = monitor.observe_arrays
        reload_cb = service.reload
        mode = "in-process"
    elif hasattr(server, "router"):  # sharded RouterServer
        router = server.router
        registry = router.registry
        monitor = StreamMonitor(
            registry=registry,
            metrics=router.metrics,
            clock=clock,
            window_s=window_s,
        )
        router.stream_tap = monitor.observe_arrays
        reload_cb = router.reload_models
        mode = "router fan-out"
    else:
        raise TypeError(
            f"cannot attach a refit scheduler to {type(server).__name__}; "
            "expected a ServeServer or RouterServer"
        )
    scheduler = RefitScheduler(
        registry=registry,
        monitor=monitor,
        policy=policy,
        clock=clock,
        config=config,
        reload_cb=reload_cb,
        jobs=jobs,
        ledger_path=ledger_path,
    )
    scheduler.start(interval_s=interval_s)
    log.info(
        "refit scheduler attached",
        extra=kv(mode=mode, interval_s=interval_s),
    )
    return monitor, scheduler
