"""Online monitoring of the measurement firehose.

:class:`StreamMonitor` consumes :class:`~repro.stream.firehose.StreamBatch`
micro-batches and maintains, per ``(city, isp)`` group:

- **windowed moments** -- a ring of stream-time buckets holding Welford
  ``(n, mean, M2)`` triples, merged with Chan's parallel update, so the
  sliding-window mean/std costs O(buckets) to read and O(1) per batch to
  write;
- **windowed quantiles** -- the existing deterministic reservoir sketch
  (:class:`repro.obs.quality.FieldMonitor`), rotated every window so the
  p50/p95 reflect recent traffic rather than the whole stream;
- **a refit sample** -- a bounded ring of the most recent raw
  ``(download, upload)`` pairs, which is exactly the data a
  drift-triggered refit trains on (:mod:`repro.stream.scheduler`);
- **disruption state** -- sudden tier-share shift against the long-run
  mix, and congestion onset against the per-time-of-day baseline.

Windows are measured in *stream time* (event timestamps), not wall
time, so a simulated run is deterministic; the injected ``clock`` is
used only for the ``stream.lag_s`` gauge (how far monitoring trails the
stream).  Drift verdicts compare the windowed mean against the serving
registry's ``training_stats`` and are shaped exactly like
``AssignmentService.drift_status()`` output, so the same
``model_drift`` alert rule (:func:`repro.obs.alerts.default_serve_rules`)
consumes either source.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Callable

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs.logging import get_logger, kv
from repro.obs.metrics import MetricsRegistry
from repro.obs.quality import FieldMonitor
from repro.serve.registry import ModelRegistry
from repro.stream.firehose import StreamBatch

__all__ = ["GroupStats", "StreamMonitor"]

log = get_logger("repro.stream.monitor")

_DIRECTIONS = ("download_mbps", "upload_mbps")

# Buckets per sliding window: granularity of expiry, not of the stats.
_N_BUCKETS = 12


class _WindowedMoments:
    """Sliding-window Welford moments over stream time.

    A ring of ``_N_BUCKETS`` buckets each spanning ``window_s / n`` of
    stream time and holding one ``(n, mean, M2)`` triple.  A batch is
    folded into its bucket with Chan's parallel combine; a read merges
    the non-expired buckets the same way.
    """

    __slots__ = ("bucket_s", "ticks", "n", "mean", "m2")

    def __init__(self, window_s: float):
        self.bucket_s = float(window_s) / _N_BUCKETS
        self.ticks = np.full(_N_BUCKETS, -1, dtype=np.int64)
        self.n = np.zeros(_N_BUCKETS, dtype=np.int64)
        self.mean = np.zeros(_N_BUCKETS, dtype=float)
        self.m2 = np.zeros(_N_BUCKETS, dtype=float)

    @staticmethod
    def _combine(
        na: float, ma: float, m2a: float, nb: float, mb: float, m2b: float
    ) -> tuple[float, float, float]:
        n = na + nb
        if n == 0:
            return 0.0, 0.0, 0.0
        delta = mb - ma
        mean = ma + delta * nb / n
        m2 = m2a + m2b + delta * delta * na * nb / n
        return n, mean, m2

    def observe(self, t_s: float, values: np.ndarray) -> None:
        values = values[np.isfinite(values)]
        if values.size == 0:
            return
        tick = int(t_s // self.bucket_s)
        slot = tick % _N_BUCKETS
        if self.ticks[slot] != tick:
            self.ticks[slot] = tick
            self.n[slot] = 0
            self.mean[slot] = 0.0
            self.m2[slot] = 0.0
        nb = float(values.size)
        mb = float(values.mean())
        m2b = float(((values - mb) ** 2).sum())
        n, mean, m2 = self._combine(
            float(self.n[slot]), self.mean[slot], self.m2[slot], nb, mb, m2b
        )
        self.n[slot] = int(n)
        self.mean[slot] = mean
        self.m2[slot] = m2

    def snapshot(self, now_s: float) -> tuple[int, float, float]:
        """``(n, mean, std)`` over buckets still inside the window."""
        tick = int(now_s // self.bucket_s)
        n, mean, m2 = 0.0, 0.0, 0.0
        for slot in range(_N_BUCKETS):
            if self.ticks[slot] < 0 or self.ticks[slot] <= tick - _N_BUCKETS:
                continue
            n, mean, m2 = self._combine(
                n, mean, m2, float(self.n[slot]), self.mean[slot],
                self.m2[slot],
            )
        if n == 0:
            return 0, float("nan"), float("nan")
        std = math.sqrt(m2 / n) if n > 0 else float("nan")
        return int(n), float(mean), float(std)


class _RotatingReservoir:
    """Window-rotated :class:`FieldMonitor` for recent-traffic quantiles."""

    __slots__ = ("name", "window_s", "period", "current", "previous")

    def __init__(self, name: str, window_s: float):
        self.name = name
        self.window_s = float(window_s)
        self.period = -1
        self.current = FieldMonitor(name)
        self.previous: FieldMonitor | None = None

    def observe(self, t_s: float, values: np.ndarray) -> None:
        period = int(t_s // self.window_s)
        if period != self.period:
            self.previous = self.current if self.period >= 0 else None
            self.current = FieldMonitor(self.name)
            self.period = period
        self.current.observe_array(values)

    def percentiles(self) -> tuple[float, float]:
        """``(p50, p95)`` of the freshest reservoir with data."""
        mon = self.current
        if mon.count == 0 and self.previous is not None:
            mon = self.previous
        snap = mon.snapshot()
        return snap.p50, snap.p95


class GroupStats:
    """All per-(city, isp) monitoring state (owned by StreamMonitor)."""

    __slots__ = (
        "city",
        "isp",
        "moments",
        "reservoirs",
        "sample_down",
        "sample_up",
        "sample_pos",
        "sample_len",
        "n_events",
        "last_t_s",
        "tier_n",
        "tier_upper",
        "win_tier",
        "bin_stats",
        "median_tier",
    )

    def __init__(self, city: str, isp: str, window_s: float, cap: int):
        self.city = city
        self.isp = isp
        self.moments = {d: _WindowedMoments(window_s) for d in _DIRECTIONS}
        self.reservoirs = {
            d: _RotatingReservoir(f"stream.{city}|{isp}.{d}", window_s)
            for d in _DIRECTIONS
        }
        # Refit sample: bounded ring of the latest raw pairs.
        self.sample_down = np.zeros(cap, dtype=float)
        self.sample_up = np.zeros(cap, dtype=float)
        self.sample_pos = 0
        self.sample_len = 0
        self.n_events = 0
        self.last_t_s = float("-inf")
        # Long-run vs windowed tier mix (upper-half-tier share).
        self.tier_n = 0
        self.tier_upper = 0
        self.win_tier = _WindowedMoments(window_s)
        # Per-diurnal-bin long-run download mean for congestion onset.
        self.bin_stats: dict[int, tuple[int, float]] = {}
        self.median_tier: float | None = None

    def push_sample(self, downloads: np.ndarray, uploads: np.ndarray) -> None:
        cap = len(self.sample_down)
        n = len(downloads)
        if n >= cap:
            self.sample_down[:] = downloads[-cap:]
            self.sample_up[:] = uploads[-cap:]
            self.sample_pos = 0
            self.sample_len = cap
            return
        end = self.sample_pos + n
        if end <= cap:
            self.sample_down[self.sample_pos : end] = downloads
            self.sample_up[self.sample_pos : end] = uploads
        else:
            head = cap - self.sample_pos
            self.sample_down[self.sample_pos :] = downloads[:head]
            self.sample_up[self.sample_pos :] = uploads[:head]
            self.sample_down[: n - head] = downloads[head:]
            self.sample_up[: n - head] = uploads[head:]
        self.sample_pos = end % cap
        self.sample_len = min(self.sample_len + n, cap)

    def sample(self) -> tuple[np.ndarray, np.ndarray]:
        """The retained raw pairs, oldest first."""
        if self.sample_len < len(self.sample_down):
            return (
                self.sample_down[: self.sample_len].copy(),
                self.sample_up[: self.sample_len].copy(),
            )
        order = np.concatenate(
            [
                np.arange(self.sample_pos, len(self.sample_down)),
                np.arange(0, self.sample_pos),
            ]
        )
        return self.sample_down[order], self.sample_up[order]


class StreamMonitor:
    """Windowed stream statistics, drift verdicts, disruption detection.

    Parameters
    ----------
    registry:
        Serving model registry whose ``training_stats`` are the drift
        baseline; groups with no registered model never report drift.
    metrics:
        Optional :class:`MetricsRegistry` that receives the ``stream.*``
        instruments in addition to the global one.
    clock:
        Injectable monotonic clock; used only for the ``stream.lag_s``
        gauge.  ``None`` disables lag tracking (pure simulation).
    window_s:
        Sliding-window span, in *stream* seconds.
    drift_rel_threshold / min_samples:
        A direction is drifted when the windowed mean deviates from the
        training mean by more than the relative threshold, after at
        least ``min_samples`` windowed events (mirrors
        ``ServeConfig.drift_rel_threshold`` / ``drift_min_samples``).
    tier_shift_threshold:
        Absolute change in upper-half-tier share (windowed vs long-run)
        that flags a subscriber-mix disruption.
    congestion_drop_frac:
        Fractional drop of the windowed download mean below the
        long-run mean *for the same time-of-day bin* that flags
        congestion onset.
    sample_cap:
        Per-group refit-sample ring size.
    """

    def __init__(
        self,
        registry: ModelRegistry | None = None,
        metrics: MetricsRegistry | None = None,
        clock: Callable[[], float] | None = None,
        window_s: float = 60.0,
        drift_rel_threshold: float = 0.5,
        min_samples: int = 200,
        tier_shift_threshold: float = 0.2,
        congestion_drop_frac: float = 0.4,
        sample_cap: int = 8192,
    ):
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        if sample_cap < 1:
            raise ValueError("sample_cap must be >= 1")
        self.registry = registry
        self.metrics = metrics
        self.clock = clock
        self.window_s = float(window_s)
        self.drift_rel_threshold = float(drift_rel_threshold)
        self.min_samples = int(min_samples)
        self.tier_shift_threshold = float(tier_shift_threshold)
        self.congestion_drop_frac = float(congestion_drop_frac)
        self.sample_cap = int(sample_cap)
        self._lock = threading.Lock()
        self._groups: dict[tuple[str, str], GroupStats] = {}
        self._baselines: dict[tuple[str, str], tuple[str, dict] | None] = {}
        self._drift_flagged: dict[str, bool] = {}
        self._active_disruptions: dict[tuple[str, str, str], dict] = {}
        self.n_events = 0
        self.n_batches = 0

    # -- ingestion -------------------------------------------------------
    def observe(self, batch: StreamBatch) -> None:
        """Fold one firehose micro-batch into the windowed state."""
        self.observe_arrays(
            batch.city,
            batch.isp,
            batch.downloads,
            batch.uploads,
            tiers=batch.tiers,
            hours=batch.hours,
            t_s=batch.t_s,
        )

    def observe_arrays(
        self,
        city: str,
        isp: str,
        downloads: np.ndarray,
        uploads: np.ndarray,
        tiers: np.ndarray | None = None,
        hours: np.ndarray | None = None,
        t_s: float | None = None,
    ) -> None:
        """Entry point for serve-path taps (no StreamBatch at hand).

        ``t_s`` defaults to the injected clock, so live serving traffic
        windows by arrival time while simulated batches window by their
        own stream timestamps.
        """
        downloads = np.asarray(downloads, dtype=float).ravel()
        uploads = np.asarray(uploads, dtype=float).ravel()
        if downloads.size == 0:
            return
        if t_s is None:
            t_s = self.clock() if self.clock is not None else 0.0
        with self._lock:
            group = self._groups.get((city, isp))
            if group is None:
                group = self._groups[(city, isp)] = GroupStats(
                    city, isp, self.window_s, self.sample_cap
                )
            group.n_events += int(downloads.size)
            group.last_t_s = max(group.last_t_s, float(t_s))
            group.moments["download_mbps"].observe(t_s, downloads)
            group.moments["upload_mbps"].observe(t_s, uploads)
            group.reservoirs["download_mbps"].observe(t_s, downloads)
            group.reservoirs["upload_mbps"].observe(t_s, uploads)
            group.push_sample(downloads, uploads)
            if tiers is not None and len(tiers):
                self._observe_tiers(group, t_s, np.asarray(tiers))
            if hours is not None and len(hours):
                self._observe_bins(group, downloads, np.asarray(hours))
            self.n_events += int(downloads.size)
            self.n_batches += 1
        self._bump("stream.events", downloads.size)
        self._bump("stream.batches", 1)
        if self.clock is not None:
            self._gauge("stream.lag_s", max(self.clock() - t_s, 0.0))

    def _observe_tiers(
        self, group: GroupStats, t_s: float, tiers: np.ndarray
    ) -> None:
        if group.median_tier is None:
            # Long-run mix reference, frozen at first sight of the group.
            group.median_tier = float(np.median(tiers))
        upper = (tiers > group.median_tier).astype(float)
        group.tier_n += int(tiers.size)
        group.tier_upper += int(upper.sum())
        group.win_tier.observe(t_s, upper)

    def _observe_bins(
        self, group: GroupStats, downloads: np.ndarray, hours: np.ndarray
    ) -> None:
        bins = (hours // 6).astype(np.int64)
        for b in np.unique(bins):
            vals = downloads[bins == b]
            n_old, mean_old = group.bin_stats.get(int(b), (0, 0.0))
            n_new = n_old + int(vals.size)
            mean_new = mean_old + (float(vals.mean()) - mean_old) * (
                vals.size / n_new
            )
            group.bin_stats[int(b)] = (n_new, mean_new)

    # -- baselines -------------------------------------------------------
    def _baseline(self, city: str, isp: str) -> tuple[str, dict] | None:
        """(slug, training_stats) of the newest registered model."""
        key = (city, isp)
        with self._lock:
            if key in self._baselines:
                return self._baselines[key]
        # Registry I/O happens outside the lock; a racing fill writes
        # the same answer, so last-writer-wins is benign.
        found: tuple[str, dict] | None = None
        if self.registry is not None:
            records = [
                r
                for r in self.registry.records()
                if r.key.city == city and r.key.isp == isp
            ]
            if records:
                latest = max(records, key=lambda r: r.created_s)
                found = (latest.key.slug, latest.training_stats)
        with self._lock:
            self._baselines[key] = found
        return found

    def rebaseline(self, city: str, isp: str) -> None:
        """Drop the cached baseline (call after a refit registers)."""
        with self._lock:
            self._baselines.pop((city, isp), None)

    # -- verdicts --------------------------------------------------------
    def verdicts(self) -> list[dict[str, Any]]:
        """Rolling drift verdicts, shaped like ``drift_status()`` output.

        Poll-stable: the ``stream.drift_flags`` counter moves only on a
        group's not-drifted -> drifted transition.
        """
        with self._lock:
            groups = list(self._groups.values())
        out: list[dict[str, Any]] = []
        n_drifted = 0
        for group in groups:
            baseline = self._baseline(group.city, group.isp)
            if baseline is None:
                continue
            slug, training_stats = baseline
            directions: dict[str, Any] = {}
            drifted = False
            for direction in _DIRECTIONS:
                train = training_stats.get(direction)
                if not train or not train.get("mean"):
                    continue
                n, mean, std = group.moments[direction].snapshot(
                    group.last_t_s
                )
                if n < self.min_samples:
                    directions[direction] = {
                        "status": "warming_up",
                        "n_observed": n,
                    }
                    continue
                rel = float(abs(mean - train["mean"]) / abs(train["mean"]))
                p50, p95 = group.reservoirs[direction].percentiles()
                direction_drifted = rel > self.drift_rel_threshold
                drifted = bool(drifted or direction_drifted)
                directions[direction] = {
                    "status": "drifted" if direction_drifted else "ok",
                    "n_observed": n,
                    "observed_mean": mean,
                    "observed_std": std,
                    "observed_p50": p50,
                    "observed_p95": p95,
                    "training_mean": train["mean"],
                    "relative_delta": rel,
                }
            with self._lock:
                was = self._drift_flagged.get(slug, False)
                self._drift_flagged[slug] = drifted
            if drifted and not was:
                self._bump("stream.drift_flags", 1)
                log.warning(
                    "stream traffic drifted from training distribution",
                    extra=kv(model=slug, group=f"{group.city}|{group.isp}"),
                )
            if drifted:
                n_drifted += 1
            out.append(
                {
                    "model": slug,
                    "city": group.city,
                    "isp": group.isp,
                    "drifted": drifted,
                    "directions": directions,
                }
            )
        self._gauge("stream.drifted_models", float(n_drifted))
        return out

    # -- disruptions -----------------------------------------------------
    def disruptions(self) -> list[dict[str, Any]]:
        """Active disruption events (tier-share shift, congestion onset).

        Poll-stable like :meth:`verdicts`: ``stream.disruptions`` counts
        only inactive -> active transitions.
        """
        with self._lock:
            groups = list(self._groups.values())
        events: list[dict[str, Any]] = []
        for group in groups:
            events.extend(self._tier_shift(group))
            events.extend(self._congestion(group))
        active_keys = set()
        with self._lock:
            for event in events:
                key = (event["city"], event["isp"], event["kind"])
                active_keys.add(key)
                if key not in self._active_disruptions:
                    self._active_disruptions[key] = event
                    self._bump("stream.disruptions", 1)
                    log.warning(
                        "stream disruption detected",
                        extra=kv(
                            kind=event["kind"],
                            group=f"{event['city']}|{event['isp']}",
                        ),
                    )
            for key in list(self._active_disruptions):
                if key not in active_keys:
                    del self._active_disruptions[key]
        return events

    def _tier_shift(self, group: GroupStats) -> list[dict[str, Any]]:
        if group.tier_n < self.min_samples:
            return []
        n, win_share, _ = group.win_tier.snapshot(group.last_t_s)
        if n < self.min_samples:
            return []
        longrun = group.tier_upper / group.tier_n
        delta = win_share - longrun
        if abs(delta) <= self.tier_shift_threshold:
            return []
        return [
            {
                "city": group.city,
                "isp": group.isp,
                "kind": "tier_shift",
                "observed_share": win_share,
                "longrun_share": longrun,
                "delta": delta,
            }
        ]

    def _congestion(self, group: GroupStats) -> list[dict[str, Any]]:
        if group.last_t_s == float("-inf"):
            return []
        current_bin = int(((group.last_t_s / 3600.0) % 24.0) // 6)
        baseline = group.bin_stats.get(current_bin)
        if baseline is None or baseline[0] < self.min_samples:
            return []
        n, mean, _ = group.moments["download_mbps"].snapshot(group.last_t_s)
        if n < self.min_samples:
            return []
        floor = baseline[1] * (1.0 - self.congestion_drop_frac)
        if mean >= floor:
            return []
        return [
            {
                "city": group.city,
                "isp": group.isp,
                "kind": "congestion",
                "observed_mean": mean,
                "bin_mean": baseline[1],
                "time_bin": current_bin,
            }
        ]

    # -- refit support ---------------------------------------------------
    def recent_sample(
        self, city: str, isp: str
    ) -> tuple[np.ndarray, np.ndarray]:
        """The retained raw ``(downloads, uploads)`` for one group."""
        with self._lock:
            group = self._groups.get((city, isp))
            if group is None:
                return np.empty(0), np.empty(0)
            return group.sample()

    def group_names(self) -> list[tuple[str, str]]:
        with self._lock:
            return sorted(self._groups)

    # -- instrument plumbing --------------------------------------------
    def _bump(self, name: str, n: float) -> None:
        obs_metrics.counter(name).inc(n)
        if self.metrics is not None:
            self.metrics.counter(name).inc(n)

    def _gauge(self, name: str, value: float) -> None:
        obs_metrics.gauge(name).set(value)
        if self.metrics is not None:
            self.metrics.gauge(name).set(value)
