"""Injectable clocks for the streaming subsystem.

Every ``repro.stream`` component that needs the current time takes a
``clock`` callable (and, where it waits, a ``sleep`` callable) instead
of reading the wall clock directly -- the DET005 lint rule enforces
this for the whole package, so a simulated run under :class:`SimClock`
is deterministic down to the drift-to-swap latency histogram.  This
module is the single sanctioned bridge to the real clock.

- :class:`SimClock` -- a manually-advanced clock for simulation and
  tests.  ``sleep`` advances it, so code written against an injectable
  ``(clock, sleep)`` pair runs instantly and deterministically.
- :func:`system_clock` / :func:`system_sleep` -- the real monotonic
  clock, for ``repro serve --refit`` against live traffic.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

__all__ = ["SimClock", "system_clock", "system_sleep"]


class SimClock:
    """A monotonic clock that only moves when told to.

    Thread-safe: the stream driver advances it from the feed loop while
    monitor windows and scheduler debounce timers read it concurrently.

    Examples
    --------
    >>> clock = SimClock()
    >>> clock.advance(2.5)
    >>> clock.now()
    2.5
    >>> clock.advance_to(2.0)  # never moves backwards
    >>> clock.now()
    2.5
    """

    def __init__(self, start_s: float = 0.0):
        self._lock = threading.Lock()
        self._now = float(start_s)

    def now(self) -> float:
        with self._lock:
            return self._now

    def advance(self, dt_s: float) -> None:
        if dt_s < 0:
            raise ValueError("a monotonic clock cannot move backwards")
        with self._lock:
            self._now += float(dt_s)

    def advance_to(self, t_s: float) -> None:
        """Advance to ``t_s`` if it is ahead; no-op otherwise."""
        with self._lock:
            self._now = max(self._now, float(t_s))

    def sleep(self, dt_s: float) -> None:
        """Injectable ``sleep``: advancing time is all sleeping means here."""
        self.advance(max(dt_s, 0.0))

    def __call__(self) -> float:
        return self.now()


def system_clock() -> Callable[[], float]:
    """The real monotonic clock, for serving live traffic."""
    # lint: allow[DET005] the one sanctioned wall-clock bridge
    return time.monotonic


def system_sleep() -> Callable[[float], None]:
    """The real ``sleep``, paired with :func:`system_clock`."""
    # lint: allow[DET005] the one sanctioned wall-clock bridge
    return time.sleep
