"""Measurement firehose and online model lifecycle.

The paper fits its contextualized BST models once, on a static
snapshot -- but crowdsourced speed tests arrive continuously and their
context mix drifts (tier composition shifts month over month; see
PAPERS.md).  This package turns the repo into a continuously-operating
system:

- :mod:`repro.stream.firehose` -- seeded, time-stamped micro-batches
  over the vendor simulators, with injectable drift segments and a
  timestamp-ordered :class:`~repro.stream.firehose.StreamMux`;
- :mod:`repro.stream.monitor` -- windowed per-(city, isp) stream
  statistics, rolling drift verdicts against registry
  ``training_stats``, and disruption detection;
- :mod:`repro.stream.scheduler` -- the debounced
  :class:`~repro.stream.scheduler.RefitScheduler` that refits drifted
  shards, registers the result, and hot-swaps serving via ``/reload``;
- :mod:`repro.stream.run` -- the standalone simulation harness behind
  ``repro stream run``;
- :mod:`repro.stream.attach` -- wiring for ``repro serve --refit``;
- :mod:`repro.stream.clock` -- the injectable clock (DET005 bans every
  other wall-clock reference in this package).
"""

from repro.stream.clock import SimClock, system_clock, system_sleep
from repro.stream.firehose import (
    DriftSegment,
    MeasurementStream,
    StreamBatch,
    StreamMux,
)
from repro.stream.monitor import StreamMonitor
from repro.stream.scheduler import RefitPolicy, RefitScheduler

__all__ = [
    "DriftSegment",
    "MeasurementStream",
    "RefitPolicy",
    "RefitScheduler",
    "SimClock",
    "StreamBatch",
    "StreamMonitor",
    "StreamMux",
    "system_clock",
    "system_sleep",
]
