"""Standalone stream session: firehose -> monitor -> alerts -> refits.

:class:`StreamSession` is the simulation harness behind ``repro stream
run`` and the streaming benchmark: it drains a firehose source
(:class:`~repro.stream.firehose.MeasurementStream` or
:class:`~repro.stream.firehose.StreamMux`), advances a
:class:`~repro.stream.clock.SimClock` to each batch's stream timestamp,
feeds the monitor, and periodically evaluates disruptions, alert rules,
and the refit scheduler -- all on simulated time, so two runs with the
same seeds produce identical ledgers down to the drift-to-swap latency.

:func:`warmup_and_register` bootstraps the lifecycle: it fits a model
on the firehose's base pool (the "static snapshot" the paper trains
on) and registers it, which is what the stream then drifts away from.
"""

from __future__ import annotations

from typing import Any, Union

from repro.core.bst import BSTConfig, BSTModel
from repro.obs.alerts import AlertEngine, default_serve_rules
from repro.obs.logging import get_logger, kv
from repro.obs.metrics import MetricsRegistry
from repro.serve.registry import ModelRecord, ModelRegistry
from repro.stream.clock import SimClock
from repro.stream.firehose import MeasurementStream, StreamMux
from repro.stream.monitor import StreamMonitor
from repro.stream.scheduler import RefitScheduler

__all__ = ["StreamSession", "warmup_and_register"]

log = get_logger("repro.stream.run")

Source = Union[MeasurementStream, StreamMux]


def warmup_and_register(
    stream: MeasurementStream,
    registry: ModelRegistry,
    config: BSTConfig | None = None,
    jobs: int = 1,
) -> ModelRecord:
    """Fit the stream's base pool and register it as the serving model.

    The pool is the pre-drift snapshot, so the registered
    ``training_stats`` are the baseline the stream monitor compares
    live windows against.
    """
    pool = stream.pool  # forces the simulator to build the base pool
    result = BSTModel(stream.catalog, config).fit(
        pool["downloads"], pool["uploads"], jobs=jobs
    )
    key = registry.key_for(stream.city, stream.catalog, config)
    record = registry.register(
        key, result, downloads=pool["downloads"], uploads=pool["uploads"]
    )
    log.info(
        "registered warmup model",
        extra=kv(model=key.slug, n=len(pool["downloads"])),
    )
    return record


class StreamSession:
    """Drive a firehose through monitoring and the refit lifecycle.

    Parameters
    ----------
    source:
        The batch source (single stream or mux).
    monitor:
        Receives every batch; its verdicts drive alerts and refits.
    clock:
        The :class:`SimClock` shared with the scheduler and alert
        engine; advanced to each batch's stream timestamp.
    scheduler:
        Optional :class:`RefitScheduler` polled every
        ``poll_interval_s`` of stream time.
    alerts:
        Optional :class:`AlertEngine` evaluated on the same cadence;
        None builds one from :func:`default_serve_rules` wired to the
        monitor's verdicts.
    """

    def __init__(
        self,
        source: Source,
        monitor: StreamMonitor,
        clock: SimClock,
        scheduler: RefitScheduler | None = None,
        alerts: AlertEngine | None = None,
        poll_interval_s: float = 1.0,
    ):
        if alerts is None:
            alerts = AlertEngine(
                default_serve_rules(),
                registry=monitor.metrics or MetricsRegistry(clock=clock),
                drift_provider=monitor.verdicts,
                clock=clock,
            )
        self.source = source
        self.monitor = monitor
        self.clock = clock
        self.scheduler = scheduler
        self.alerts = alerts
        self.poll_interval_s = float(poll_interval_s)
        self.refits: list[dict[str, Any]] = []
        self.alert_events: list[dict[str, Any]] = []

    def run(
        self,
        duration_s: float | None = None,
        max_batches: int | None = None,
    ) -> dict[str, Any]:
        """Drain the source until a limit is hit; return a summary.

        At least one of ``duration_s`` (stream time) and
        ``max_batches`` must be given.
        """
        if duration_s is None and max_batches is None:
            raise ValueError("give duration_s and/or max_batches")
        t_end = (
            self.clock.now() + float(duration_s)
            if duration_s is not None
            else float("inf")
        )
        n_batches = 0
        n_events = 0
        next_poll = self.clock.now()
        while True:
            if max_batches is not None and n_batches >= max_batches:
                break
            if self.clock.now() >= t_end:
                break
            batch = self.source.next_batch()
            self.clock.advance_to(batch.t_s)
            self.monitor.observe(batch)
            n_batches += 1
            n_events += len(batch)
            if self.clock.now() >= next_poll:
                self._poll()
                next_poll = self.clock.now() + self.poll_interval_s
        self._poll()
        return {
            "n_batches": n_batches,
            "n_events": n_events,
            "stream_t_s": self.clock.now(),
            "refits": list(self.refits),
            "alerts": self.alerts.counts(),
            "alert_events": list(self.alert_events),
            "verdicts": self.monitor.verdicts(),
            "disruptions": self.monitor.disruptions(),
        }

    def _poll(self) -> None:
        self.monitor.disruptions()
        self.alert_events.extend(self.alerts.evaluate(now=self.clock.now()))
        if self.scheduler is not None:
            self.refits.extend(self.scheduler.poll())
