"""Synthetic street-address dataset (the Zillow ZTRAX substitute).

Section 4.1: "we utilize the residential property address dataset from
Zillow to create an address set for each of the four cities in our study.
Then, we randomly select 100K residential addresses for each city and
collect the ISP-offered plans."  This module generates clean, well-formed
street addresses attached to census blocks so the plan-query tool has
realistic input.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.market.census import CensusGrid

__all__ = ["Address", "AddressDataset"]

_STREET_NAMES = (
    "Oak", "Maple", "Cedar", "Pine", "Elm", "Walnut", "Chestnut", "Birch",
    "Sycamore", "Willow", "Juniper", "Laurel", "Magnolia", "Hickory",
    "Aspen", "Poplar", "Cypress", "Redwood", "Alder", "Hawthorn",
)
_STREET_TYPES = ("St", "Ave", "Dr", "Ln", "Rd", "Ct", "Way", "Pl")


@dataclass(frozen=True)
class Address:
    """A formatted residential street address tied to a census block."""

    street_number: int
    street_name: str
    street_type: str
    city: str
    block_id: str

    @property
    def formatted(self) -> str:
        return (
            f"{self.street_number} {self.street_name} {self.street_type}, "
            f"City-{self.city}"
        )


class AddressDataset:
    """Residential addresses for one city, generated from its census grid.

    Each census block gets one address per household; addresses within a
    block share a street (blocks are small).  Generation is deterministic
    per seed.
    """

    def __init__(self, grid: CensusGrid, seed: int = 0):
        self.city = grid.city
        rng = np.random.default_rng(seed)
        addresses: list[Address] = []
        for block in grid.blocks:
            name = _STREET_NAMES[int(rng.integers(0, len(_STREET_NAMES)))]
            stype = _STREET_TYPES[int(rng.integers(0, len(_STREET_TYPES)))]
            base = int(rng.integers(1, 9000))
            for i in range(block.households):
                addresses.append(
                    Address(
                        street_number=base + 2 * i,
                        street_name=name,
                        street_type=stype,
                        city=grid.city,
                        block_id=block.block_id,
                    )
                )
        self.addresses: tuple[Address, ...] = tuple(addresses)

    def __len__(self) -> int:
        return len(self.addresses)

    def sample(self, n: int, seed: int = 0) -> list[Address]:
        """Random sample of ``n`` addresses without replacement.

        This is the paper's "randomly select 100K residential addresses"
        step, capped at the dataset size.
        """
        if n < 0:
            raise ValueError("sample size cannot be negative")
        n = min(n, len(self.addresses))
        rng = np.random.default_rng(seed)
        picks = rng.choice(len(self.addresses), size=n, replace=False)
        return [self.addresses[i] for i in picks]
