"""IP geolocation error model.

Section 3.4 of the paper justifies the ethics of using M-Lab data:
"IP geolocation errors can exceed 30 KM, making it difficult to isolate
specific users/homes", while Ookla's truncated GPS coordinates are
"accurate to 111 metres".  This module models both localisation
channels so the claim can be *measured*: given a census grid with a
physical extent, how often does each channel attribute a test to the
correct block?

Used by the localisation analysis test/bench and available as a
substrate for any extension that wants spatial attribution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.market.census import CensusBlock, CensusGrid

__all__ = [
    "GeolocationModel",
    "GPS_TRUNCATION_ERROR_M",
    "IP_GEOLOCATION_MEDIAN_ERROR_M",
    "block_attribution_accuracy",
]

# Section 3.4: GPS coordinates truncated after three decimal points are
# accurate to ~111 m; IP geolocation errors routinely reach tens of km.
GPS_TRUNCATION_ERROR_M = 111.0
IP_GEOLOCATION_MEDIAN_ERROR_M = 12_000.0


@dataclass(frozen=True)
class GeolocationModel:
    """Samples localisation error for one channel.

    ``median_error_m`` sets the scale; errors are lognormal around it
    with multiplicative spread ``sigma`` and an isotropic direction.
    """

    median_error_m: float
    sigma: float = 0.8

    def __post_init__(self):
        if self.median_error_m <= 0:
            raise ValueError("median error must be positive")

    @classmethod
    def gps_truncated(cls) -> "GeolocationModel":
        """Ookla's 3-decimal GPS truncation (~111 m)."""
        return cls(median_error_m=GPS_TRUNCATION_ERROR_M, sigma=0.3)

    @classmethod
    def ip_geolocation(cls) -> "GeolocationModel":
        """Commodity IP geolocation (median ~12 km, heavy tail)."""
        return cls(median_error_m=IP_GEOLOCATION_MEDIAN_ERROR_M, sigma=0.8)

    def sample_offsets_m(
        self, n: int, rng: np.random.Generator
    ) -> np.ndarray:
        """(n, 2) array of (east, north) localisation offsets in metres."""
        if n < 0:
            raise ValueError("n cannot be negative")
        radius = np.exp(
            rng.normal(np.log(self.median_error_m), self.sigma, size=n)
        )
        angle = rng.uniform(0.0, 2.0 * np.pi, size=n)
        return np.column_stack(
            [radius * np.cos(angle), radius * np.sin(angle)]
        )


def _block_center_m(
    block: CensusBlock, block_size_m: float
) -> tuple[float, float]:
    return (
        (block.col + 0.5) * block_size_m,
        (block.row + 0.5) * block_size_m,
    )


def block_attribution_accuracy(
    grid: CensusGrid,
    model: GeolocationModel,
    tests_per_block: int = 5,
    block_size_m: float = 250.0,
    seed: int = 0,
) -> float:
    """Fraction of localised tests attributed to the correct block.

    Simulates ``tests_per_block`` measurements at each block's centre,
    perturbs them with the channel's error model, snaps each back to
    the containing block, and scores the match.  With GPS truncation
    most tests stay in their ~250 m block; with IP geolocation almost
    none do -- the paper's ethics argument, quantified.
    """
    if tests_per_block < 1:
        raise ValueError("tests_per_block must be positive")
    if block_size_m <= 0:
        raise ValueError("block size must be positive")
    rng = np.random.default_rng(seed)
    correct = 0
    total = 0
    for block in grid.blocks:
        center_x, center_y = _block_center_m(block, block_size_m)
        offsets = model.sample_offsets_m(tests_per_block, rng)
        xs = center_x + offsets[:, 0]
        ys = center_y + offsets[:, 1]
        cols = np.floor(xs / block_size_m).astype(int)
        rows = np.floor(ys / block_size_m).astype(int)
        correct += int(
            np.sum((cols == block.col) & (rows == block.row))
        )
        total += tests_per_block
    return correct / total
