"""The four city/ISP plan menus used in the paper.

City-A's menu is given explicitly in Section 4.1: six plans, three at a
shared 5 Mbps upload (25, 100, 200 Mbps down) and three faster downloads
(400, 800, 1200) at 10, 15 and 35 Mbps upload.  Cities B-D are described
only through their upload groups (Tables 5-7) and the appendix density
figures; the download menus chosen here are model parameters consistent
with those tables (see DESIGN.md Section 6).

States A-D (the MBA panels) use the same menus as their city's ISP; the
State-A panel drops Tier 1 because "there are no records of the 25 Mbps
download (5 Mbps upload) subscription plan in the MBA-State-A dataset"
(Section 4.3).
"""

from __future__ import annotations

from repro.market.plans import Plan, PlanCatalog

__all__ = [
    "CITY_IDS",
    "city_catalog",
    "state_catalog",
    "all_city_catalogs",
    "catalog_from_menu",
]

CITY_IDS = ("A", "B", "C", "D")

# City-A / ISP-A: verbatim from Section 4.1.
_CITY_A_PLANS = [
    Plan(25, 5, tier=1),
    Plan(100, 5, tier=2),
    Plan(200, 5, tier=3),
    Plan(400, 10, tier=4),
    Plan(800, 15, tier=5),
    Plan(1200, 35, tier=6),
]

# City-B / ISP-B: Table 5 groups tiers as 1-2 (upload ~5.5), 3 (~11.5),
# 4-5 (~22) and 6 (~39); Figure 16 shows two download plans below
# ~150 Mbps, one near 300, two between 400-800, and one gigabit plan.
_CITY_B_PLANS = [
    Plan(50, 5.5, tier=1),
    Plan(100, 5.5, tier=2),
    Plan(300, 11.5, tier=3),
    Plan(500, 22, tier=4),
    Plan(600, 22, tier=5),
    Plan(1200, 39, tier=6),
]

# City-C / ISP-C: Table 6 groups tiers 1-3 (~5), 4-5 (~11.5), 6-7 (~22)
# and 8 (~38.5); Figure 17 shows three low-download plans, two mid, two
# high, one gigabit.
_CITY_C_PLANS = [
    Plan(25, 5, tier=1),
    Plan(75, 5, tier=2),
    Plan(100, 5, tier=3),
    Plan(200, 11.5, tier=4),
    Plan(300, 11.5, tier=5),
    Plan(500, 22, tier=6),
    Plan(800, 22, tier=7),
    Plan(1200, 38.5, tier=8),
]

# City-D / ISP-D: Table 7 groups tiers 1-2 (~3.5), 3-4 (~9.7) and 5 (~28.7);
# Figure 18 shows two plans below 100 Mbps, two in 100-400, one near gigabit.
_CITY_D_PLANS = [
    Plan(50, 3.5, tier=1),
    Plan(100, 3.5, tier=2),
    Plan(200, 10, tier=3),
    Plan(400, 10, tier=4),
    Plan(940, 30, tier=5),
]

_CITY_MENUS = {
    "A": ("ISP-A", _CITY_A_PLANS),
    "B": ("ISP-B", _CITY_B_PLANS),
    "C": ("ISP-C", _CITY_C_PLANS),
    "D": ("ISP-D", _CITY_D_PLANS),
}

# Tiers observed in each state's MBA panel.  State-A drops tier 1
# (Section 4.3); the other panels observe every tier.
_STATE_TIER_RESTRICTIONS: dict[str, tuple[int, ...] | None] = {
    "A": (2, 3, 4, 5, 6),
    "B": None,
    "C": None,
    "D": None,
}


def city_catalog(city: str) -> PlanCatalog:
    """Plan catalog of the dominant residential ISP in ``city`` (A-D)."""
    try:
        isp_name, plans = _CITY_MENUS[city.upper()]
    except KeyError:
        raise KeyError(f"unknown city {city!r}; expected one of {CITY_IDS}") from None
    return PlanCatalog(isp_name, plans)


def state_catalog(state: str) -> PlanCatalog:
    """Plan catalog observed in the MBA panel of ``state`` (A-D)."""
    catalog = city_catalog(state)
    restriction = _STATE_TIER_RESTRICTIONS[state.upper()]
    if restriction is None:
        return catalog
    return catalog.restrict_to_tiers(restriction)


def all_city_catalogs() -> dict[str, PlanCatalog]:
    """All four city catalogs, keyed by city id."""
    return {city: city_catalog(city) for city in CITY_IDS}


def catalog_from_menu(isp_name: str, menu) -> PlanCatalog:
    """Build a catalog from a ``[(download, upload), ...]`` menu.

    The entry point for applying BST to an ISP outside the four studied
    cities: collect the plan menu (e.g. with the query tool against the
    real ISP) and hand it here.  Tiers are numbered by ascending
    download speed.
    """
    plans = [Plan(down, up) for down, up in menu]
    return PlanCatalog(isp_name, plans)
