"""Subscription plans and ISP plan catalogs.

A :class:`Plan` is one ISP offering -- an advertised download and upload
speed pair plus a tier label.  A :class:`PlanCatalog` is the full menu an
ISP sells in a city.  The catalog also exposes the *upload groups* that the
BST methodology exploits: plans sharing the same advertised upload speed
(e.g. ISP-A's 25/100/200 Mbps download plans all upload at 5 Mbps), which
is why upload speed narrows the candidate tier set so effectively.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Plan", "UploadGroup", "PlanCatalog"]


@dataclass(frozen=True, order=True)
class Plan:
    """One advertised subscription plan.

    Ordering is by (download, upload) so catalogs sort naturally from the
    slowest to the premium tier.
    """

    download_mbps: float
    upload_mbps: float
    tier: int = field(compare=False, default=0)
    name: str = field(compare=False, default="")

    def __post_init__(self):
        if self.download_mbps <= 0 or self.upload_mbps <= 0:
            raise ValueError("plan speeds must be positive")
        if self.upload_mbps > self.download_mbps:
            raise ValueError(
                "residential plans in this model are asymmetric "
                "(upload <= download)"
            )

    @property
    def label(self) -> str:
        return self.name or f"{self.download_mbps:g}/{self.upload_mbps:g}"


@dataclass(frozen=True)
class UploadGroup:
    """Plans sharing one advertised upload speed.

    ``tier_label`` is the paper-style span label, e.g. ``"Tier 1-3"`` for
    ISP-A's three 5 Mbps-upload plans.
    """

    upload_mbps: float
    plans: tuple[Plan, ...]

    @property
    def tier_label(self) -> str:
        tiers = sorted(p.tier for p in self.plans)
        if tiers[0] == tiers[-1]:
            return f"Tier {tiers[0]}"
        return f"Tier {tiers[0]}-{tiers[-1]}"

    @property
    def download_speeds(self) -> tuple[float, ...]:
        return tuple(p.download_mbps for p in self.plans)


class PlanCatalog:
    """The plan menu an ISP offers in one city/state.

    Plans are stored sorted by (download, upload) and assigned 1-based tier
    numbers in that order unless explicit tiers were provided.

    Examples
    --------
    >>> catalog = PlanCatalog("ISP-A", [Plan(25, 5), Plan(1200, 35)])
    >>> [p.tier for p in catalog.plans]
    [1, 2]
    >>> catalog.upload_speeds
    (5, 35)
    """

    def __init__(self, isp_name: str, plans):
        plans = sorted(plans)
        if not plans:
            raise ValueError("a catalog needs at least one plan")
        seen = set()
        for plan in plans:
            key = (plan.download_mbps, plan.upload_mbps)
            if key in seen:
                raise ValueError(f"duplicate plan {key}")
            seen.add(key)
        if any(p.tier == 0 for p in plans):
            plans = [
                Plan(
                    p.download_mbps,
                    p.upload_mbps,
                    tier=i + 1,
                    name=p.name,
                )
                for i, p in enumerate(plans)
            ]
        self.isp_name = isp_name
        self.plans: tuple[Plan, ...] = tuple(plans)
        self._by_tier = {p.tier: p for p in self.plans}
        if len(self._by_tier) != len(self.plans):
            raise ValueError("plan tiers must be unique")

    # ------------------------------------------------------------------
    @property
    def num_plans(self) -> int:
        return len(self.plans)

    @property
    def tiers(self) -> tuple[int, ...]:
        return tuple(p.tier for p in self.plans)

    def plan_for_tier(self, tier: int) -> Plan:
        try:
            return self._by_tier[tier]
        except KeyError:
            raise KeyError(
                f"{self.isp_name} has no tier {tier}; tiers: {self.tiers}"
            ) from None

    @property
    def upload_speeds(self) -> tuple[float, ...]:
        """Distinct advertised upload speeds, ascending."""
        return tuple(sorted({p.upload_mbps for p in self.plans}))

    @property
    def download_speeds(self) -> tuple[float, ...]:
        """Advertised download speeds, ascending."""
        return tuple(p.download_mbps for p in self.plans)

    def upload_groups(self) -> tuple[UploadGroup, ...]:
        """Plans grouped by shared upload speed, ascending by upload."""
        groups = []
        for upload in self.upload_speeds:
            members = tuple(
                p for p in self.plans if p.upload_mbps == upload
            )
            groups.append(UploadGroup(upload_mbps=upload, plans=members))
        return tuple(groups)

    def group_for_upload(self, upload_mbps: float) -> UploadGroup:
        """The upload group advertising exactly ``upload_mbps``."""
        for group in self.upload_groups():
            if group.upload_mbps == upload_mbps:
                return group
        raise KeyError(
            f"{self.isp_name} offers no {upload_mbps} Mbps upload; "
            f"offered: {self.upload_speeds}"
        )

    def nearest_upload_group(self, upload_mbps: float) -> UploadGroup:
        """The upload group whose advertised speed is closest to a value."""
        groups = self.upload_groups()
        return min(groups, key=lambda g: abs(g.upload_mbps - upload_mbps))

    def plan_for_speeds(
        self, download_mbps: float, upload_mbps: float
    ) -> Plan:
        """Exact advertised-speed lookup (raises KeyError when absent)."""
        for plan in self.plans:
            if (
                plan.download_mbps == download_mbps
                and plan.upload_mbps == upload_mbps
            ):
                return plan
        raise KeyError(
            f"{self.isp_name} has no {download_mbps}/{upload_mbps} plan"
        )

    def restrict_to_tiers(self, tiers) -> "PlanCatalog":
        """A sub-catalog with only ``tiers`` (keeps original tier numbers).

        Used to model the MBA panel in State-A, which has no subscriber on
        the 25/5 plan (Section 4.3).
        """
        keep = set(tiers)
        plans = [p for p in self.plans if p.tier in keep]
        if not plans:
            raise ValueError(f"no plans left after restricting to {tiers}")
        return PlanCatalog(self.isp_name, plans)

    def __repr__(self) -> str:
        menu = ", ".join(p.label for p in self.plans)
        return f"PlanCatalog({self.isp_name}: {menu})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PlanCatalog):
            return NotImplemented
        return self.isp_name == other.isp_name and self.plans == other.plans

    def __hash__(self) -> int:
        return hash((self.isp_name, self.plans))
