"""Subscriber population model: who bought which plan, on what devices.

The paper's datasets are samples of real subscriber behaviour.  This module
generates the synthetic population those samples are drawn from: each user
belongs to a household with a subscription tier, a home WiFi environment
(band, router placement -> RSSI), and a measurement device (platform,
kernel memory).  Tier-share and platform-mix defaults are calibrated to the
per-tier measurement counts of Table 3 (City-A) and Tables 5-7 (Cities
B-D), so the generated datasets reproduce the paper's headline skew:
the bulk of crowdsourced tests originate from lower subscription tiers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.market.plans import Plan, PlanCatalog

__all__ = [
    "Household",
    "Subscriber",
    "PopulationConfig",
    "SubscriberPopulation",
    "PLATFORMS",
    "default_city_config",
    "ookla_tier_group_weights",
    "mlab_tier_group_weights",
]

PLATFORMS = (
    "android",
    "ios",
    "desktop-wifi",
    "desktop-ethernet",
    "web",
)

# RSSI bins (dBm) used throughout Section 6.1, best to worst.
RSSI_BIN_EDGES = ((-30.0, -20.0), (-50.0, -30.0), (-70.0, -50.0), (-88.0, -70.0))
# Kernel-memory bins (GB) of Figure 9d, worst to best.
MEMORY_BIN_EDGES = ((0.5, 2.0), (2.0, 4.0), (4.0, 6.0), (6.0, 12.0))


@dataclass(frozen=True)
class Household:
    """One home: the subscription and the WiFi environment live here."""

    household_id: str
    city: str
    tier: int
    plan: Plan
    rssi_mean_dbm: float
    band_ghz: float  # 2.4 or 5.0 -- the band the household's devices camp on

    def __post_init__(self):
        if self.band_ghz not in (2.4, 5.0):
            raise ValueError(f"band must be 2.4 or 5.0 GHz, got {self.band_ghz}")


@dataclass(frozen=True)
class Subscriber:
    """One speed test user: a device inside a household."""

    user_id: str
    household: Household
    platform: str  # one of PLATFORMS
    access: str  # "wifi" | "ethernet"
    memory_gb: float
    n_tests: int

    def __post_init__(self):
        if self.platform not in PLATFORMS:
            raise ValueError(f"unknown platform {self.platform!r}")
        if self.access not in ("wifi", "ethernet"):
            raise ValueError(f"unknown access {self.access!r}")
        if self.n_tests < 1:
            raise ValueError("a subscriber must run at least one test")

    @property
    def tier(self) -> int:
        return self.household.tier

    @property
    def plan(self) -> Plan:
        return self.household.plan


# ---------------------------------------------------------------------------
# Calibrated tier-group weights (fraction of tests per upload group),
# derived from the per-tier measurement counts in Tables 3 and 5-7.
# ---------------------------------------------------------------------------
_OOKLA_GROUP_WEIGHTS = {
    "A": (0.428, 0.147, 0.218, 0.207),
    "B": (0.277, 0.136, 0.389, 0.198),
    "C": (0.356, 0.133, 0.343, 0.168),
    "D": (0.357, 0.346, 0.297),
}
_MLAB_GROUP_WEIGHTS = {
    "A": (0.623, 0.150, 0.144, 0.083),
    "B": (0.390, 0.173, 0.368, 0.069),
    "C": (0.533, 0.197, 0.202, 0.068),
    "D": (0.455, 0.389, 0.156),
}


def ookla_tier_group_weights(city: str) -> tuple[float, ...]:
    """Fraction of Ookla tests per upload group (Tables 3, 5-7)."""
    return _OOKLA_GROUP_WEIGHTS[city.upper()]


def mlab_tier_group_weights(city: str) -> tuple[float, ...]:
    """Fraction of M-Lab tests per upload group (Tables 3, 5-7)."""
    return _MLAB_GROUP_WEIGHTS[city.upper()]


@dataclass(frozen=True)
class PopulationConfig:
    """Knobs of the population generator.

    Attributes
    ----------
    tier_group_weights:
        Probability of each upload group (ascending by upload speed).
        ``None`` means uniform.
    within_group_weights:
        Relative weight of the 1st, 2nd, ... plan inside an upload group,
        lower plans first.  The paper observes lower plans dominate.
    platform_mix:
        Probability of each entry of :data:`PLATFORMS`; calibrated to the
        Table 3 platform counts.
    web_wifi_fraction:
        Web tests carry no device metadata, but they still traverse a real
        access link; this is the fraction of web users on WiFi.
    band_5ghz_fraction:
        Fraction of WiFi households camping on 5 GHz (the paper: ~77% of
        Android tests are 5 GHz).
    rssi_bin_probs:
        Probability of each RSSI bin of :data:`RSSI_BIN_EDGES`
        (best to worst; Figure 9c reports 5/37/49/9 percent).
    memory_bin_probs:
        Probability of each memory bin of :data:`MEMORY_BIN_EDGES`
        (worst to best; Figure 9d reports 7/17/17/59 percent).
    heavy_user_fraction / heavy_user_mean_tests:
        Fraction of users who test repeatedly (>= 5 tests) and their mean
        test count; Section 4.1 reports 23k of 85k City-A app users ran at
        least five tests.
    """

    tier_group_weights: tuple[float, ...] | None = None
    within_group_weights: tuple[float, ...] = (0.5, 0.3, 0.2)
    platform_mix: tuple[float, ...] = (0.093, 0.354, 0.053, 0.025, 0.475)
    web_wifi_fraction: float = 0.90
    band_5ghz_fraction: float = 0.77
    rssi_bin_probs: tuple[float, float, float, float] = (0.05, 0.37, 0.49, 0.09)
    memory_bin_probs: tuple[float, float, float, float] = (0.07, 0.17, 0.17, 0.59)
    heavy_user_fraction: float = 0.27
    heavy_user_mean_tests: float = 7.0

    def __post_init__(self):
        for name in ("rssi_bin_probs", "memory_bin_probs", "platform_mix"):
            probs = getattr(self, name)
            if abs(sum(probs) - 1.0) > 1e-6:
                raise ValueError(f"{name} must sum to 1, got {sum(probs)}")
        if len(self.platform_mix) != len(PLATFORMS):
            raise ValueError("platform_mix must match PLATFORMS")
        if not 0 <= self.heavy_user_fraction <= 1:
            raise ValueError("heavy_user_fraction must be in [0, 1]")


def default_city_config(city: str, vendor: str = "ookla") -> PopulationConfig:
    """The calibrated config for one city and vendor ("ookla" | "mlab")."""
    vendor = vendor.lower()
    if vendor == "ookla":
        weights = ookla_tier_group_weights(city)
    elif vendor == "mlab":
        weights = mlab_tier_group_weights(city)
    else:
        raise ValueError(f"unknown vendor {vendor!r}")
    return PopulationConfig(tier_group_weights=weights)


class SubscriberPopulation:
    """Generates subscribers for one city against its plan catalog.

    Examples
    --------
    >>> from repro.market.isps import city_catalog
    >>> pop = SubscriberPopulation("A", city_catalog("A"), seed=0)
    >>> users = pop.generate_users(100)
    >>> len(users)
    100
    >>> all(u.plan in pop.catalog.plans for u in users)
    True
    """

    def __init__(
        self,
        city: str,
        catalog: PlanCatalog,
        config: PopulationConfig | None = None,
        seed: int = 0,
    ):
        self.city = city.upper()
        self.catalog = catalog
        self.config = config or PopulationConfig()
        self.seed = seed
        self._tier_probs = self._build_tier_probs()

    def _build_tier_probs(self) -> dict[int, float]:
        """Per-plan-tier probabilities from group weights x within-group."""
        groups = self.catalog.upload_groups()
        cfg = self.config
        group_weights = cfg.tier_group_weights
        if group_weights is None:
            group_weights = tuple(1.0 / len(groups) for _ in groups)
        if len(group_weights) != len(groups):
            raise ValueError(
                f"tier_group_weights has {len(group_weights)} entries but "
                f"the catalog has {len(groups)} upload groups"
            )
        total = sum(group_weights)
        probs: dict[int, float] = {}
        for group, g_weight in zip(groups, group_weights):
            inner = list(cfg.within_group_weights)[: len(group.plans)]
            if len(inner) < len(group.plans):
                inner += [inner[-1]] * (len(group.plans) - len(inner))
            inner_total = sum(inner)
            for plan, w in zip(group.plans, inner):
                probs[plan.tier] = (g_weight / total) * (w / inner_total)
        return probs

    @property
    def tier_probabilities(self) -> dict[int, float]:
        """The effective per-tier sampling probabilities (sums to 1)."""
        return dict(self._tier_probs)

    # ------------------------------------------------------------------
    def generate_users(
        self,
        n_users: int,
        seed: int | None = None,
    ) -> list[Subscriber]:
        """Generate ``n_users`` subscribers (deterministic per seed)."""
        if n_users < 0:
            raise ValueError("n_users cannot be negative")
        rng = np.random.default_rng(self.seed if seed is None else seed)
        cfg = self.config
        tiers = np.asarray(sorted(self._tier_probs))
        tier_p = np.asarray([self._tier_probs[t] for t in tiers])
        tier_p = tier_p / tier_p.sum()

        chosen_tiers = rng.choice(tiers, size=n_users, p=tier_p)
        platforms = rng.choice(
            len(PLATFORMS), size=n_users, p=np.asarray(cfg.platform_mix)
        )
        users: list[Subscriber] = []
        for i in range(n_users):
            tier = int(chosen_tiers[i])
            plan = self.catalog.plan_for_tier(tier)
            platform = PLATFORMS[int(platforms[i])]
            access = self._access_for_platform(platform, rng)
            band = (
                5.0
                if rng.random() < cfg.band_5ghz_fraction
                else 2.4
            )
            household = Household(
                household_id=f"{self.city}-h{i:07d}",
                city=self.city,
                tier=tier,
                plan=plan,
                rssi_mean_dbm=self._sample_rssi(rng),
                band_ghz=band,
            )
            users.append(
                Subscriber(
                    user_id=f"{self.city}-u{i:07d}",
                    household=household,
                    platform=platform,
                    access=access,
                    memory_gb=self._sample_memory(platform, rng),
                    n_tests=self._sample_test_count(rng),
                )
            )
        return users

    def _access_for_platform(self, platform: str, rng) -> str:
        if platform in ("android", "ios", "desktop-wifi"):
            return "wifi"
        if platform == "desktop-ethernet":
            return "ethernet"
        # Web tests: no metadata recorded, but a physical link still exists.
        return (
            "wifi"
            if rng.random() < self.config.web_wifi_fraction
            else "ethernet"
        )

    def _sample_rssi(self, rng) -> float:
        bin_index = int(
            rng.choice(len(RSSI_BIN_EDGES), p=np.asarray(self.config.rssi_bin_probs))
        )
        lo, hi = RSSI_BIN_EDGES[bin_index]
        return float(rng.uniform(lo, hi))

    def _sample_memory(self, platform: str, rng) -> float:
        if platform.startswith("desktop") or platform == "web":
            # Desktops rarely hit the mobile kernel-memory ceiling.
            return float(rng.uniform(8.0, 32.0))
        bin_index = int(
            rng.choice(
                len(MEMORY_BIN_EDGES), p=np.asarray(self.config.memory_bin_probs)
            )
        )
        lo, hi = MEMORY_BIN_EDGES[bin_index]
        return float(rng.uniform(lo, hi))

    def _sample_test_count(self, rng) -> int:
        cfg = self.config
        if rng.random() < cfg.heavy_user_fraction:
            # Heavy users: at least five tests, geometric tail above.
            extra_mean = max(cfg.heavy_user_mean_tests - 5.0, 0.5)
            return 5 + int(rng.geometric(1.0 / (1.0 + extra_mean))) - 1
        return int(rng.integers(1, 4))

    def with_config(self, **overrides) -> "SubscriberPopulation":
        """Clone this population with config fields overridden."""
        return SubscriberPopulation(
            self.city,
            self.catalog,
            config=replace(self.config, **overrides),
            seed=self.seed,
        )
