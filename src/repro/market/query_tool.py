"""Per-address ISP plan-availability queries (the tool of Major et al.).

Section 4.1: the authors "augment the tool proposed in [42] to collect
available download/upload speed plans for major residential ISPs at
specific U.S. street addresses", rate-limiting queries "to prevent
overloading ISP infrastructure".  This module simulates that tool against
the market model: querying an address returns the ISP's plan menu at that
address, and a query budget enforces the rate-limiting discipline.

The key empirical observation the tool surfaces -- "the plan choices remain
unchanged across different street addresses within a city" -- is a property
of the market model here, and :func:`discover_city_menu` *rediscovers* it
the way the paper does, by querying a sample of addresses and comparing
menus.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.market.addresses import Address, AddressDataset
from repro.market.plans import Plan, PlanCatalog

__all__ = ["PlanQueryTool", "QueryBudgetExceeded", "discover_city_menu"]


class QueryBudgetExceeded(RuntimeError):
    """Raised when more queries are issued than the configured budget."""


@dataclass(frozen=True)
class QueryResult:
    """The plan menu an ISP reports as available at one address."""

    address: Address
    isp_name: str
    plans: tuple[Plan, ...]


class PlanQueryTool:
    """Query the plans an ISP offers at a street address.

    Parameters
    ----------
    catalog:
        The ground-truth city menu.  Real ISPs serve the same tiered menu
        across a city (the paper's first observation), so the tool answers
        every in-city address with the catalog's plans.
    query_budget:
        Maximum number of queries this tool instance may issue, modelling
        the paper's care "to prevent overloading ISP infrastructure".
    """

    def __init__(self, catalog: PlanCatalog, query_budget: int = 100_000):
        if query_budget < 1:
            raise ValueError("query budget must be positive")
        self.catalog = catalog
        self.query_budget = query_budget
        self.queries_issued = 0

    @property
    def queries_remaining(self) -> int:
        return self.query_budget - self.queries_issued

    def query(self, address: Address) -> QueryResult:
        """Return the ISP's advertised menu at ``address``.

        Raises :class:`QueryBudgetExceeded` past the budget.
        """
        if self.queries_issued >= self.query_budget:
            raise QueryBudgetExceeded(
                f"budget of {self.query_budget} queries exhausted"
            )
        self.queries_issued += 1
        return QueryResult(
            address=address,
            isp_name=self.catalog.isp_name,
            plans=self.catalog.plans,
        )


def discover_city_menu(
    tool: PlanQueryTool,
    addresses: AddressDataset,
    sample_size: int = 1000,
    seed: int = 0,
) -> PlanCatalog:
    """Rediscover a city's plan menu by querying sampled addresses.

    Mirrors Section 4.1: sample residential addresses, query each, and
    verify the menus agree.  Returns the discovered catalog; raises
    ``ValueError`` if menus differ across addresses (which would invalidate
    the paper's city-wide-menu assumption).
    """
    sampled = addresses.sample(sample_size, seed=seed)
    if not sampled:
        raise ValueError("no addresses available to query")
    menus = set()
    isp_name = None
    for address in sampled:
        result = tool.query(address)
        menus.add(result.plans)
        isp_name = result.isp_name
    if len(menus) != 1:
        raise ValueError(
            f"plan menus differ across {len(menus)} address groups; "
            "cannot form a single city catalog"
        )
    assert isp_name is not None
    return PlanCatalog(isp_name, list(menus.pop()))
