"""Broadband market model: ISP plan catalogs, coverage, and subscribers.

This subpackage replaces the paper's proprietary market inputs:

- FCC Form 477 census-block deployment data -> :mod:`repro.market.census`
- Zillow ZTRAX street addresses -> :mod:`repro.market.addresses`
- the per-address ISP plan-query tool of Major et al. [42]
  -> :mod:`repro.market.query_tool`
- the four city/ISP plan menus described in Sections 4.1 and the appendix
  -> :mod:`repro.market.isps`
- the subscriber population (who bought which tier, on which devices)
  -> :mod:`repro.market.population`
"""

from repro.market.plans import Plan, PlanCatalog, UploadGroup
from repro.market.isps import (
    CITY_IDS,
    city_catalog,
    state_catalog,
    all_city_catalogs,
    catalog_from_menu,
)
from repro.market.census import CensusBlock, CensusGrid, Form477Record, Form477Dataset
from repro.market.addresses import Address, AddressDataset
from repro.market.query_tool import PlanQueryTool, QueryBudgetExceeded
from repro.market.population import (
    Household,
    Subscriber,
    SubscriberPopulation,
    PopulationConfig,
)

__all__ = [
    "Plan",
    "PlanCatalog",
    "UploadGroup",
    "CITY_IDS",
    "city_catalog",
    "state_catalog",
    "all_city_catalogs",
    "catalog_from_menu",
    "CensusBlock",
    "CensusGrid",
    "Form477Record",
    "Form477Dataset",
    "Address",
    "AddressDataset",
    "PlanQueryTool",
    "QueryBudgetExceeded",
    "Household",
    "Subscriber",
    "SubscriberPopulation",
    "PopulationConfig",
]
