"""FCC Form 477 substrate: census blocks and ISP coverage.

The paper uses Form 477 once (Section 3.1): "we use this dataset to compute
the number of census blocks served by an ISP in a city and pick the one
that covers the highest number of blocks".  This module simulates a city's
census-block grid with per-ISP coverage records so that the dominant-ISP
selection step can be run, tested, and benchmarked.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "CensusBlock",
    "CensusGrid",
    "Form477Record",
    "Form477Dataset",
    "build_city_form477",
]


@dataclass(frozen=True)
class CensusBlock:
    """One census block: a 15-digit-style id plus a grid position."""

    block_id: str
    row: int
    col: int
    households: int

    def __post_init__(self):
        if self.households < 0:
            raise ValueError("household count cannot be negative")


@dataclass(frozen=True)
class Form477Record:
    """One ISP's deployment claim for one block (Form 477 row)."""

    block_id: str
    isp_name: str
    max_download_mbps: float
    max_upload_mbps: float


class CensusGrid:
    """A city's census blocks laid out on a rows x cols grid.

    Household counts are drawn from a seeded lognormal so block sizes vary
    realistically; the geometry is only used for coverage footprints.
    """

    def __init__(
        self,
        city: str,
        rows: int = 24,
        cols: int = 24,
        seed: int = 0,
        mean_households: float = 60.0,
    ):
        if rows < 1 or cols < 1:
            raise ValueError("grid must have at least one block")
        self.city = city
        self.rows = rows
        self.cols = cols
        rng = np.random.default_rng(seed)
        sigma = 0.6
        mu = np.log(mean_households) - sigma**2 / 2
        counts = rng.lognormal(mu, sigma, size=rows * cols).astype(int)
        counts = np.maximum(counts, 1)
        self.blocks: tuple[CensusBlock, ...] = tuple(
            CensusBlock(
                block_id=f"{city}{r:03d}{c:03d}",
                row=r,
                col=c,
                households=int(counts[r * cols + c]),
            )
            for r in range(rows)
            for c in range(cols)
        )
        self._by_id = {b.block_id: b for b in self.blocks}

    def __len__(self) -> int:
        return len(self.blocks)

    def block(self, block_id: str) -> CensusBlock:
        try:
            return self._by_id[block_id]
        except KeyError:
            raise KeyError(f"no block {block_id!r} in {self.city}") from None

    @property
    def total_households(self) -> int:
        return sum(b.households for b in self.blocks)


class Form477Dataset:
    """Per-ISP coverage claims over a :class:`CensusGrid`.

    Coverage is modelled as a rectangular footprint fraction per ISP: the
    dominant cable ISP covers nearly the whole grid, competitors cover
    sub-rectangles.  That is enough structure for the paper's
    "pick the ISP covering the most blocks" step to be meaningful.
    """

    def __init__(self, grid: CensusGrid):
        self.grid = grid
        self._records: list[Form477Record] = []
        self._covered: dict[str, set[str]] = {}

    def add_isp_coverage(
        self,
        isp_name: str,
        coverage_fraction: float,
        max_download_mbps: float,
        max_upload_mbps: float,
        seed: int = 0,
    ) -> int:
        """Claim a contiguous footprint covering ``coverage_fraction`` rows.

        Returns the number of blocks claimed.  An ISP can only be added
        once per dataset.
        """
        if not 0.0 < coverage_fraction <= 1.0:
            raise ValueError("coverage_fraction must be in (0, 1]")
        if isp_name in self._covered:
            raise ValueError(f"{isp_name} already has coverage records")
        rng = np.random.default_rng(seed)
        rows_covered = max(1, round(self.grid.rows * coverage_fraction))
        start_row = int(rng.integers(0, self.grid.rows - rows_covered + 1))
        claimed: set[str] = set()
        for block in self.grid.blocks:
            if start_row <= block.row < start_row + rows_covered:
                self._records.append(
                    Form477Record(
                        block_id=block.block_id,
                        isp_name=isp_name,
                        max_download_mbps=max_download_mbps,
                        max_upload_mbps=max_upload_mbps,
                    )
                )
                claimed.add(block.block_id)
        self._covered[isp_name] = claimed
        return len(claimed)

    @property
    def records(self) -> tuple[Form477Record, ...]:
        return tuple(self._records)

    @property
    def isp_names(self) -> tuple[str, ...]:
        return tuple(self._covered)

    def blocks_covered(self, isp_name: str) -> int:
        """Number of blocks an ISP claims (0 for unknown ISPs)."""
        return len(self._covered.get(isp_name, ()))

    def dominant_isp(self) -> str:
        """The ISP covering the most census blocks (Section 3.1).

        Ties break lexicographically for determinism.
        """
        if not self._covered:
            raise ValueError("no coverage records")
        return min(
            self._covered,
            key=lambda isp: (-len(self._covered[isp]), isp),
        )

    def households_covered(self, isp_name: str) -> int:
        return sum(
            self.grid.block(block_id).households
            for block_id in self._covered.get(isp_name, ())
        )


def build_city_form477(
    city: str,
    dominant_isp: str,
    seed: int = 0,
) -> Form477Dataset:
    """Convenience builder: a grid with one dominant ISP plus competitors."""
    grid = CensusGrid(city=city, seed=seed)
    dataset = Form477Dataset(grid)
    dataset.add_isp_coverage(
        dominant_isp, 0.97, max_download_mbps=1200, max_upload_mbps=35,
        seed=seed,
    )
    dataset.add_isp_coverage(
        f"DSL-{city}", 0.55, max_download_mbps=100, max_upload_mbps=10,
        seed=seed + 1,
    )
    dataset.add_isp_coverage(
        f"Fiber-{city}", 0.30, max_download_mbps=940, max_upload_mbps=880,
        seed=seed + 2,
    )
    return dataset
