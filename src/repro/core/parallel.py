"""Process-pool fan-out for independent fits.

The BST pipeline contains several embarrassingly parallel stages: the
per-upload-group download fits inside :meth:`BSTModel.fit`, and the
per-(city, ISP) fits the multi-city experiments run.  This module gives
them one shared primitive, :func:`parallel_map`, which fans a picklable
worker out over a ``concurrent.futures`` process pool while preserving
input order -- so a parallel run returns *byte-identical* results to the
serial one (every worker is deterministic given its arguments, and
results are gathered in submission order).

Conventions shared by every ``jobs`` knob in the repo (``BSTConfig.jobs``,
``BSTModel.fit(jobs=...)``, ``contextualize(jobs=...)``,
``run_experiment(jobs=...)`` and the ``--jobs`` CLI flag):

- ``1`` (the default) runs serially in-process -- no pool, no pickling,
  exactly the pre-parallel code path;
- ``N > 1`` uses a pool of ``N`` worker processes;
- ``0`` (or any negative value) means "all CPUs" (``os.cpu_count()``).

Observability caveat: spans and metrics recorded *inside* a worker
process stay in that process (the collector/registry are per-process
in-memory sinks).  The parent wraps each fan-out in a ``parallel.map``
span carrying ``jobs`` and ``tasks``, so the fan-out itself is always
visible; per-task interior spans are only recorded on the serial path.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from repro.obs import metrics as obs_metrics
from repro.obs.trace import span

__all__ = ["resolve_jobs", "parallel_map"]

T = TypeVar("T")
R = TypeVar("R")


def resolve_jobs(jobs: int | None) -> int:
    """Normalise a ``jobs`` knob to a concrete worker count (>= 1).

    ``None`` and ``1`` mean serial; ``0`` or negative mean all CPUs.
    """
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs <= 0:
        return max(1, os.cpu_count() or 1)
    return jobs


def parallel_map(
    fn: Callable[[T], R],
    tasks: Iterable[T],
    jobs: int | None,
    span_name: str = "parallel.map",
) -> list[R]:
    """Map ``fn`` over ``tasks``, optionally across a process pool.

    Results come back in task order regardless of completion order, so
    parallel output is identical to ``[fn(t) for t in tasks]``.  With an
    effective worker count of 1 (or fewer than two tasks) no pool is
    created and the serial path runs unchanged -- including any spans or
    metrics ``fn`` records.  ``fn`` and every task must be picklable when
    a pool is used.
    """
    tasks_list: Sequence[T] = list(tasks)
    workers = min(resolve_jobs(jobs), len(tasks_list))
    if workers <= 1:
        return [fn(task) for task in tasks_list]
    with span(span_name, jobs=workers, tasks=len(tasks_list)):
        with ProcessPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(fn, tasks_list))
    obs_metrics.counter("parallel.pool_tasks").inc(len(tasks_list))
    return results
