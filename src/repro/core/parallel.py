"""Process-pool fan-out for independent fits.

The BST pipeline contains several embarrassingly parallel stages: the
per-upload-group download fits inside :meth:`BSTModel.fit`, and the
per-(city, ISP) fits the multi-city experiments run.  This module gives
them one shared primitive, :func:`parallel_map`, which fans a picklable
worker out over a ``concurrent.futures`` process pool while preserving
input order -- so a parallel run returns *byte-identical* results to the
serial one (every worker is deterministic given its arguments, and
results are gathered in submission order).

Conventions shared by every ``jobs`` knob in the repo (``BSTConfig.jobs``,
``BSTModel.fit(jobs=...)``, ``contextualize(jobs=...)``,
``run_experiment(jobs=...)`` and the ``--jobs`` CLI flag):

- ``1`` (the default) runs serially in-process -- no pool, no pickling,
  exactly the pre-parallel code path;
- ``N > 1`` uses a pool of ``N`` worker processes;
- ``0`` (or any negative value) means "all CPUs" (``os.cpu_count()``).

Observability: when the parent has a span collector or metrics registry
installed, each pooled task runs under a fresh in-worker collector and
registry, and the finished spans plus the metrics state are shipped back
with the task result and merged into the parent sinks -- worker spans
re-parent under the fan-out's ``parallel.map`` span (stamped with
``worker=<pid>`` and ``task=<index>``), counters add, histograms merge
including their quantile reservoirs.  A ``--trace-out``/``--metrics``
run therefore sees the same stages with ``--jobs N`` as with the serial
path.  When neither sink is installed the tasks are submitted bare, so
an uninstrumented parallel run pays no capture overhead.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.trace import span

__all__ = ["resolve_jobs", "parallel_map"]

T = TypeVar("T")
R = TypeVar("R")


def resolve_jobs(jobs: int | None) -> int:
    """Normalise a ``jobs`` knob to a concrete worker count (>= 1).

    ``None`` and ``1`` mean serial; ``0`` or negative mean all CPUs.
    """
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs <= 0:
        return max(1, os.cpu_count() or 1)
    return jobs


class _ObsTask:
    """Picklable wrapper running one task under fresh in-worker sinks.

    Returns ``(result, span_rows, metrics_dump, worker_pid)`` so the
    parent can merge the worker's observability state; the wrapped
    ``fn``'s return value is passed through untouched, keeping pooled
    results byte-identical to serial ones.
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[T], R]) -> None:
        self.fn = fn

    def __call__(
        self, task: T
    ) -> tuple[R, list[dict], dict[str, dict], int]:
        from repro.obs import use_collector, use_registry

        with use_collector() as collector, use_registry() as registry:
            result = self.fn(task)
        rows = [sp.to_dict() for sp in collector.spans()]
        # to_dict drops end_s; start_s stays on the worker's own
        # perf_counter timeline and is rebased by the parent.
        for sp, row in zip(collector.spans(), rows):
            row["start_s"] = sp.start_s
        return result, rows, registry.dump(), os.getpid()


def parallel_map(
    fn: Callable[[T], R],
    tasks: Iterable[T],
    jobs: int | None,
    span_name: str = "parallel.map",
) -> list[R]:
    """Map ``fn`` over ``tasks``, optionally across a process pool.

    Results come back in task order regardless of completion order, so
    parallel output is identical to ``[fn(t) for t in tasks]``.  With an
    effective worker count of 1 (or fewer than two tasks) no pool is
    created and the serial path runs unchanged.  ``fn`` and every task
    must be picklable when a pool is used.

    Spans and metrics recorded inside pooled workers are captured and
    merged into the parent's active sinks (see the module docstring);
    without active sinks the capture machinery stays out of the way.
    """
    tasks_list: Sequence[T] = list(tasks)
    workers = min(resolve_jobs(jobs), len(tasks_list))
    if workers <= 1:
        return [fn(task) for task in tasks_list]

    collector = obs_trace.get_collector()
    registry = obs_metrics.get_registry()
    capture = collector.enabled or registry.enabled

    with span(span_name, jobs=workers, tasks=len(tasks_list)) as pool_span:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            if capture:
                wrapped = pool.map(_ObsTask(fn), tasks_list)
                results: list[R] = []
                for index, (result, rows, dump, pid) in enumerate(wrapped):
                    results.append(result)
                    _merge_worker_obs(
                        collector, registry, pool_span,
                        rows, dump, pid, index,
                    )
            else:
                results = list(pool.map(fn, tasks_list))
    obs_metrics.counter("parallel.pool_tasks").inc(len(tasks_list))
    return results


def _merge_worker_obs(
    collector: Any,
    registry: Any,
    pool_span: Any,
    rows: list[dict],
    dump: dict[str, dict],
    pid: int,
    index: int,
) -> None:
    """Fold one pooled task's spans and metrics into the parent sinks."""
    if collector.enabled and rows:
        parent_id = getattr(pool_span, "span_id", None)
        collector.adopt_spans(
            rows,
            parent_id=parent_id,
            rebase_to=getattr(pool_span, "start_s", None),
            worker=pid,
            task=index,
        )
    if registry.enabled:
        registry.merge_dump(dump)
