"""Longitudinal tier analysis: plan changes in a user's test history.

Section 5.2 measures *stability*: for most users, every test in a month
maps to one tier (alpha = 1).  The complementary longitudinal question
-- did this user's subscription *change* across months? -- matters for
interpreting multi-month aggregates (an upgrade mid-year looks like an
access-network improvement if plans are ignored).

:func:`detect_tier_changes` finds change points in a user's monthly
tier assignments, using the per-month majority tier and requiring the
new tier to persist (a single-month flip is BST noise, not an upgrade).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.frame import ColumnTable

__all__ = ["TierChange", "monthly_majority_tiers", "detect_tier_changes"]


@dataclass(frozen=True)
class TierChange:
    """One detected subscription change for a user."""

    user_id: str
    month: int  # first month on the new tier
    old_tier: int
    new_tier: int

    @property
    def is_upgrade(self) -> bool:
        return self.new_tier > self.old_tier


def monthly_majority_tiers(
    table: ColumnTable,
    user_column: str = "user_id",
    month_column: str = "month",
    tier_column: str = "bst_tier",
    min_tests: int = 2,
) -> dict[str, dict[int, int]]:
    """Per user: the majority-assigned tier of each qualifying month.

    Months with fewer than ``min_tests`` tests are skipped -- a single
    test is too little evidence to call the month's tier.
    """
    if min_tests < 1:
        raise ValueError("min_tests must be >= 1")
    out: dict[str, dict[int, int]] = {}
    for (user, month), group in table.groupby(
        [user_column, month_column]
    ):
        tiers = np.asarray(group[tier_column], dtype=np.int64)
        if tiers.size < min_tests:
            continue
        values, counts = np.unique(tiers, return_counts=True)
        majority = int(values[np.argmax(counts)])
        out.setdefault(str(user), {})[int(month)] = majority
    return out


def detect_tier_changes(
    table: ColumnTable,
    user_column: str = "user_id",
    month_column: str = "month",
    tier_column: str = "bst_tier",
    min_tests: int = 2,
    persistence_months: int = 2,
) -> list[TierChange]:
    """Detect persistent subscription changes per user.

    A change is reported when the majority tier switches and the new
    tier holds for at least ``persistence_months`` consecutive observed
    months (single-month flips are attributed to assignment noise).
    """
    if persistence_months < 1:
        raise ValueError("persistence_months must be >= 1")
    monthly = monthly_majority_tiers(
        table,
        user_column=user_column,
        month_column=month_column,
        tier_column=tier_column,
        min_tests=min_tests,
    )
    changes: list[TierChange] = []
    for user, by_month in monthly.items():
        months = sorted(by_month)
        if len(months) < 1 + persistence_months:
            continue
        current = by_month[months[0]]
        i = 1
        while i < len(months):
            candidate = by_month[months[i]]
            if candidate != current:
                run = [
                    by_month[m] for m in months[i : i + persistence_months]
                ]
                if (
                    len(run) >= persistence_months
                    and all(t == candidate for t in run)
                ):
                    changes.append(
                        TierChange(
                            user_id=user,
                            month=months[i],
                            old_tier=current,
                            new_tier=candidate,
                        )
                    )
                    current = candidate
                    i += persistence_months
                    continue
            i += 1
    return changes
