"""JSON serialisation of plan catalogs and BST fits.

Contextualising a large city is the pipeline's dominant cost; saving
the fit lets the CLI, the model registry (:mod:`repro.serve.registry`),
and downstream tools reuse assignments without refitting.  Everything
round-trips through plain JSON-able dicts.

Every payload carries a ``schema_version`` field.  Version 2 adds the
mixture variances/weights and the ``clustering`` marker that the online
tier-assignment predictor needs; version-1 payloads (no version field,
or ``schema_version: 1``) still load, but cannot drive prediction on
new data.  Unknown versions, truncated payloads, and corrupt JSON all
raise ``ValueError`` with a message that names the problem -- a registry
must never mis-deserialise a model silently.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from repro.core.bst import BSTResult, DownloadStageFit, UploadStageFit
from repro.market.plans import Plan, PlanCatalog

__all__ = [
    "SCHEMA_VERSION",
    "catalog_to_dict",
    "catalog_from_dict",
    "bst_result_to_dict",
    "bst_result_from_dict",
    "save_bst_result",
    "load_bst_result",
]

SCHEMA_VERSION = 2

_KNOWN_VERSIONS = (1, 2)


def _check_schema(data: Mapping[str, Any], what: str) -> int:
    """Validate a payload's ``schema_version``; returns the version.

    A payload without the field is treated as legacy version 1 (written
    before the field existed).  Anything else unknown raises
    ``ValueError`` -- never ``KeyError`` -- so callers can distinguish
    "wrong format" from a plain programming error.
    """
    if not isinstance(data, Mapping):
        raise ValueError(
            f"{what} payload must be a JSON object, "
            f"got {type(data).__name__}"
        )
    version = data.get("schema_version", 1)
    if not isinstance(version, int) or isinstance(version, bool) \
            or version not in _KNOWN_VERSIONS:
        raise ValueError(
            f"unknown {what} schema_version {version!r}; this build "
            f"reads versions {list(_KNOWN_VERSIONS)}"
        )
    return version


def catalog_to_dict(catalog: PlanCatalog) -> dict:
    """Plain-dict form of a plan catalog."""
    return {
        "schema_version": SCHEMA_VERSION,
        "isp_name": catalog.isp_name,
        "plans": [
            {
                "download_mbps": p.download_mbps,
                "upload_mbps": p.upload_mbps,
                "tier": p.tier,
                "name": p.name,
            }
            for p in catalog.plans
        ],
    }


def catalog_from_dict(data: dict) -> PlanCatalog:
    """Inverse of :func:`catalog_to_dict`.

    Raises ``ValueError`` on unknown schema versions or truncated
    payloads (missing fields).
    """
    _check_schema(data, "plan catalog")
    try:
        plans = [
            Plan(
                download_mbps=entry["download_mbps"],
                upload_mbps=entry["upload_mbps"],
                tier=entry["tier"],
                name=entry.get("name", ""),
            )
            for entry in data["plans"]
        ]
        return PlanCatalog(data["isp_name"], plans)
    except (KeyError, TypeError) as exc:
        raise ValueError(
            f"truncated plan catalog payload: missing or malformed "
            f"field ({exc})"
        ) from exc


def bst_result_to_dict(result: BSTResult) -> dict:
    """Plain-dict form of a BST fit (JSON-serialisable)."""
    upload = result.upload_stage
    return {
        "schema_version": SCHEMA_VERSION,
        "catalog": catalog_to_dict(result.catalog),
        "upload_stage": {
            "cluster_means": upload.cluster_means.tolist(),
            "cluster_weights": upload.cluster_weights.tolist(),
            "cluster_counts": upload.cluster_counts.tolist(),
            "kde_peak_count": upload.kde_peak_count,
            "converged": upload.converged,
            "n_iter": upload.n_iter,
            "component_means": upload.component_means.tolist(),
            "component_groups": list(upload.component_groups),
            "component_variances": upload.component_variances.tolist(),
            "component_weights": upload.component_weights.tolist(),
            "clustering": upload.clustering,
        },
        "download_stages": {
            str(gi): {
                "group_index": stage.group_index,
                "cluster_means": stage.cluster_means.tolist(),
                "cluster_weights": stage.cluster_weights.tolist(),
                "cluster_counts": stage.cluster_counts.tolist(),
                "cluster_tiers": list(stage.cluster_tiers),
                "kde_peak_count": stage.kde_peak_count,
                "n_components": stage.n_components,
                "cluster_variances": stage.cluster_variances.tolist(),
                "clustering": stage.clustering,
            }
            for gi, stage in result.download_stages.items()
        },
        "group_indices": result.group_indices.tolist(),
        "tiers": result.tiers.tolist(),
    }


def bst_result_from_dict(data: dict) -> BSTResult:
    """Inverse of :func:`bst_result_to_dict`.

    Raises ``ValueError`` (never ``KeyError``) on unknown schema
    versions and on truncated payloads.  Version-1 payloads load with
    empty predictor parameters (no variances/weights); applying such a
    fit to new data via :class:`repro.serve.engine.TierAssigner` fails
    with an informative error, refitting does not.
    """
    _check_schema(data, "BST fit")
    try:
        catalog = catalog_from_dict(data["catalog"])
        upload_data = data["upload_stage"]
        upload = UploadStageFit(
            groups=catalog.upload_groups(),
            cluster_means=np.asarray(upload_data["cluster_means"]),
            cluster_weights=np.asarray(upload_data["cluster_weights"]),
            cluster_counts=np.asarray(
                upload_data["cluster_counts"], dtype=np.int64
            ),
            kde_peak_count=int(upload_data["kde_peak_count"]),
            converged=bool(upload_data["converged"]),
            n_iter=int(upload_data["n_iter"]),
            component_means=np.asarray(upload_data["component_means"]),
            component_groups=tuple(upload_data["component_groups"]),
            component_variances=np.asarray(
                upload_data.get("component_variances", []), dtype=float
            ),
            component_weights=np.asarray(
                upload_data.get("component_weights", []), dtype=float
            ),
            clustering=str(upload_data.get("clustering", "gmm")),
        )
        stages = {
            int(gi): DownloadStageFit(
                group_index=int(entry["group_index"]),
                cluster_means=np.asarray(entry["cluster_means"]),
                cluster_weights=np.asarray(entry["cluster_weights"]),
                cluster_counts=np.asarray(
                    entry["cluster_counts"], dtype=np.int64
                ),
                cluster_tiers=tuple(entry["cluster_tiers"]),
                kde_peak_count=int(entry["kde_peak_count"]),
                n_components=int(entry["n_components"]),
                cluster_variances=np.asarray(
                    entry.get("cluster_variances", []), dtype=float
                ),
                clustering=str(entry.get("clustering", "gmm")),
            )
            for gi, entry in data["download_stages"].items()
        }
        return BSTResult(
            catalog=catalog,
            upload_stage=upload,
            download_stages=stages,
            group_indices=np.asarray(data["group_indices"], dtype=np.int64),
            tiers=np.asarray(data["tiers"], dtype=np.int64),
        )
    except ValueError:
        raise
    except (KeyError, TypeError, AttributeError) as exc:
        raise ValueError(
            f"truncated BST fit payload: missing or malformed field "
            f"({exc})"
        ) from exc


def save_bst_result(result: BSTResult, path: str | Path) -> None:
    """Write a BST fit to a JSON file."""
    Path(path).write_text(json.dumps(bst_result_to_dict(result)))


def load_bst_result(path: str | Path) -> BSTResult:
    """Read a BST fit back from :func:`save_bst_result` output.

    Raises ``ValueError`` on empty/truncated files, corrupt JSON, and
    unknown schema versions (see :func:`bst_result_from_dict`).
    """
    path = Path(path)
    text = path.read_text()
    if not text.strip():
        raise ValueError(f"truncated BST fit file {path}: empty")
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"corrupt BST fit file {path}: {exc}") from exc
    return bst_result_from_dict(data)
