"""JSON serialisation of plan catalogs and BST fits.

Contextualising a large city is the pipeline's dominant cost; saving
the fit lets the CLI and downstream tools reuse assignments without
refitting.  Everything round-trips through plain JSON-able dicts.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.bst import BSTResult, DownloadStageFit, UploadStageFit
from repro.market.plans import Plan, PlanCatalog

__all__ = [
    "catalog_to_dict",
    "catalog_from_dict",
    "bst_result_to_dict",
    "bst_result_from_dict",
    "save_bst_result",
    "load_bst_result",
]


def catalog_to_dict(catalog: PlanCatalog) -> dict:
    """Plain-dict form of a plan catalog."""
    return {
        "isp_name": catalog.isp_name,
        "plans": [
            {
                "download_mbps": p.download_mbps,
                "upload_mbps": p.upload_mbps,
                "tier": p.tier,
                "name": p.name,
            }
            for p in catalog.plans
        ],
    }


def catalog_from_dict(data: dict) -> PlanCatalog:
    """Inverse of :func:`catalog_to_dict`."""
    plans = [
        Plan(
            download_mbps=entry["download_mbps"],
            upload_mbps=entry["upload_mbps"],
            tier=entry["tier"],
            name=entry.get("name", ""),
        )
        for entry in data["plans"]
    ]
    return PlanCatalog(data["isp_name"], plans)


def bst_result_to_dict(result: BSTResult) -> dict:
    """Plain-dict form of a BST fit (JSON-serialisable)."""
    upload = result.upload_stage
    return {
        "catalog": catalog_to_dict(result.catalog),
        "upload_stage": {
            "cluster_means": upload.cluster_means.tolist(),
            "cluster_weights": upload.cluster_weights.tolist(),
            "cluster_counts": upload.cluster_counts.tolist(),
            "kde_peak_count": upload.kde_peak_count,
            "converged": upload.converged,
            "n_iter": upload.n_iter,
            "component_means": upload.component_means.tolist(),
            "component_groups": list(upload.component_groups),
        },
        "download_stages": {
            str(gi): {
                "group_index": stage.group_index,
                "cluster_means": stage.cluster_means.tolist(),
                "cluster_weights": stage.cluster_weights.tolist(),
                "cluster_counts": stage.cluster_counts.tolist(),
                "cluster_tiers": list(stage.cluster_tiers),
                "kde_peak_count": stage.kde_peak_count,
                "n_components": stage.n_components,
            }
            for gi, stage in result.download_stages.items()
        },
        "group_indices": result.group_indices.tolist(),
        "tiers": result.tiers.tolist(),
    }


def bst_result_from_dict(data: dict) -> BSTResult:
    """Inverse of :func:`bst_result_to_dict`."""
    catalog = catalog_from_dict(data["catalog"])
    upload_data = data["upload_stage"]
    upload = UploadStageFit(
        groups=catalog.upload_groups(),
        cluster_means=np.asarray(upload_data["cluster_means"]),
        cluster_weights=np.asarray(upload_data["cluster_weights"]),
        cluster_counts=np.asarray(
            upload_data["cluster_counts"], dtype=np.int64
        ),
        kde_peak_count=int(upload_data["kde_peak_count"]),
        converged=bool(upload_data["converged"]),
        n_iter=int(upload_data["n_iter"]),
        component_means=np.asarray(upload_data["component_means"]),
        component_groups=tuple(upload_data["component_groups"]),
    )
    stages = {
        int(gi): DownloadStageFit(
            group_index=int(entry["group_index"]),
            cluster_means=np.asarray(entry["cluster_means"]),
            cluster_weights=np.asarray(entry["cluster_weights"]),
            cluster_counts=np.asarray(
                entry["cluster_counts"], dtype=np.int64
            ),
            cluster_tiers=tuple(entry["cluster_tiers"]),
            kde_peak_count=int(entry["kde_peak_count"]),
            n_components=int(entry["n_components"]),
        )
        for gi, entry in data["download_stages"].items()
    }
    return BSTResult(
        catalog=catalog,
        upload_stage=upload,
        download_stages=stages,
        group_indices=np.asarray(data["group_indices"], dtype=np.int64),
        tiers=np.asarray(data["tiers"], dtype=np.int64),
    )


def save_bst_result(result: BSTResult, path: str | Path) -> None:
    """Write a BST fit to a JSON file."""
    Path(path).write_text(json.dumps(bst_result_to_dict(result)))


def load_bst_result(path: str | Path) -> BSTResult:
    """Read a BST fit back from :func:`save_bst_result` output."""
    return bst_result_from_dict(json.loads(Path(path).read_text()))
