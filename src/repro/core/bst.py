"""The Broadband Subscription Tier (BST) two-stage clustering pipeline.

Stage one clusters the *upload* speeds: the ISP sells only a handful of
distinct upload rates, local factors rarely bottleneck them, so a
measurement's upload speed pins down its *upload group* -- the set of
plans sharing that advertised upload.  Stage two clusters the *download*
speeds within each upload group and maps every download cluster to the
plan whose advertised download is nearest in log space (reproducing the
paper's Tier 1-3 cluster-to-plan associations of Section 5.1).

The fitted :class:`BSTResult` carries per-measurement tier assignments
plus everything the evaluation needs: per-stage cluster means, weights,
counts, and the KDE peak counts that seeded each stage.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import BSTConfig
from repro.core.parallel import parallel_map, resolve_jobs
from repro.market.plans import PlanCatalog, UploadGroup
from repro.obs import metrics as obs_metrics
from repro.obs.logging import get_logger, kv
from repro.obs.quality import get_quality
from repro.obs.trace import span
from repro.stats.gmm import GaussianMixture
from repro.stats.kde import GaussianKDE
from repro.stats.kmeans import KMeans1D
from repro.stats.peaks import count_density_peaks

log = get_logger("core.bst")

__all__ = ["BSTModel", "BSTResult", "UploadStageFit", "DownloadStageFit"]


@dataclass
class UploadStageFit:
    """Stage-one outcome: upload clusters and group assignments.

    ``cluster_means[i]`` is the fitted mean of the component matched to
    ``groups[i]`` (ascending by advertised upload speed) -- the Table 3
    "means for upload speed clusters that form near the offered upload
    speeds".  ``component_means``/``component_groups`` expose the full
    mixture, including any off-menu components (e.g. the ~1 Mbps cluster
    the paper observes in M-Lab data, Section 5.1): each component maps
    to the upload group whose advertised speed is log-nearest.

    ``component_variances``/``component_weights`` carry the full mixture
    parameters (empty for k-means fits, which need only the means) so a
    saved fit can assign *new* measurements later exactly as the fit-time
    ``predict`` did -- the predictor contract :mod:`repro.serve` builds
    on.  ``clustering`` records which estimator produced the labels.
    """

    groups: tuple[UploadGroup, ...]
    cluster_means: np.ndarray
    cluster_weights: np.ndarray
    cluster_counts: np.ndarray
    kde_peak_count: int
    converged: bool
    n_iter: int
    component_means: np.ndarray = field(default_factory=lambda: np.array([]))
    component_groups: tuple[int, ...] = ()
    component_variances: np.ndarray = field(
        default_factory=lambda: np.array([])
    )
    component_weights: np.ndarray = field(
        default_factory=lambda: np.array([])
    )
    clustering: str = "gmm"

    def mean_for_group(self, group_index: int) -> float:
        """Fitted cluster mean for one upload group.

        Raises ``ValueError`` when no mixture component mapped to the
        group (its ``cluster_means`` slot holds the ``nan`` prefill) --
        a silent ``nan`` here used to leak into Table 3-style reports.
        """
        mean = float(self.cluster_means[group_index])
        if math.isnan(mean):
            label = self.groups[group_index].tier_label
            raise ValueError(
                f"no fitted component mapped to upload group "
                f"{group_index} ({label}); its cluster mean is undefined"
            )
        return mean


@dataclass
class DownloadStageFit:
    """Stage-two outcome for one upload group.

    ``cluster_tiers[j]`` is the plan tier that download cluster ``j``
    (ascending by mean) was mapped to.  ``cluster_variances`` holds the
    full mixture variances (empty for k-means fits) so the stage can
    assign new downloads later (see :mod:`repro.serve`).
    """

    group_index: int
    cluster_means: np.ndarray
    cluster_weights: np.ndarray
    cluster_counts: np.ndarray
    cluster_tiers: tuple[int, ...]
    kde_peak_count: int
    n_components: int
    cluster_variances: np.ndarray = field(
        default_factory=lambda: np.array([])
    )
    clustering: str = "gmm"


@dataclass
class BSTResult:
    """Per-measurement subscription-tier assignments plus fit diagnostics."""

    catalog: PlanCatalog
    upload_stage: UploadStageFit
    download_stages: dict[int, DownloadStageFit]
    group_indices: np.ndarray  # per measurement, index into upload groups
    tiers: np.ndarray  # per measurement, assigned plan tier

    def __len__(self) -> int:
        return len(self.tiers)

    def plan_download_for_rows(self) -> np.ndarray:
        """Advertised download speed (Mbps) of each row's assigned plan."""
        lookup = {
            p.tier: p.download_mbps for p in self.catalog.plans
        }
        return np.asarray([lookup[int(t)] for t in self.tiers], dtype=float)

    def plan_upload_for_rows(self) -> np.ndarray:
        """Advertised upload speed (Mbps) of each row's assigned plan."""
        lookup = {p.tier: p.upload_mbps for p in self.catalog.plans}
        return np.asarray([lookup[int(t)] for t in self.tiers], dtype=float)

    def group_label_for_rows(self) -> list[str]:
        """Paper-style span label (e.g. "Tier 1-3") of each row's group."""
        labels = [g.tier_label for g in self.upload_stage.groups]
        return [labels[int(i)] for i in self.group_indices]


class BSTModel:
    """Fits the BST methodology for one ISP catalog.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.market.isps import city_catalog
    >>> rng = np.random.default_rng(0)
    >>> ups = np.concatenate([rng.normal(5.5, .4, 400), rng.normal(40, 2, 400)])
    >>> downs = np.concatenate([rng.normal(110, 9, 400), rng.normal(900, 60, 400)])
    >>> model = BSTModel(city_catalog("A"))
    >>> result = model.fit(downs, ups)
    >>> sorted(set(result.tiers.tolist())) == [2, 6]
    True
    """

    def __init__(self, catalog: PlanCatalog, config: BSTConfig | None = None):
        self.catalog = catalog
        self.config = config or BSTConfig()

    def describe(self) -> str:
        """Text rendering of the methodology (the paper's Figure 3)."""
        groups = self.catalog.upload_groups()
        group_lines = "\n".join(
            f"   |  {g.tier_label}: upload {g.upload_mbps:g} Mbps -> "
            f"downloads {', '.join(f'{d:g}' for d in g.download_speeds)}"
            for g in groups
        )
        clusterer = self.config.clustering.upper()
        return (
            f"BST methodology for {self.catalog.isp_name} "
            f"({self.catalog.num_plans} plans)\n"
            "1. Plan discovery (query tool): the city-wide menu\n"
            f"{group_lines}\n"
            "2. Stage one -- upload speeds:\n"
            "   KDE (log-space) confirms one density peak per offered "
            "upload;\n"
            f"   {clusterer}-EM (means seeded at the offered uploads"
            f"{', MAP prior' if self.config.upload_mean_prior else ''}) "
            "assigns each test to an upload group.\n"
            "3. Stage two -- download speeds, within each group:\n"
            "   KDE counts the download clusters (WiFi can create more "
            f"than the menu, capped at {self.config.max_download_clusters});\n"
            f"   {clusterer}-EM fits them; each cluster maps to the "
            "log-nearest advertised download.\n"
            "4. Output: a subscription tier per <download, upload> tuple."
        )

    # ------------------------------------------------------------------
    # Stage one: upload clustering
    # ------------------------------------------------------------------
    def fit_upload_stage(
        self, uploads: np.ndarray
    ) -> tuple[UploadStageFit, np.ndarray]:
        """Cluster uploads into the catalog's upload groups.

        Crowdsourced uploads carry off-menu mass (tests whose upload was
        WiFi-capped well below every advertised rate -- the paper's
        ~1 Mbps M-Lab cluster).  Fitting only one component per offered
        speed lets that smear drag cluster means off their peaks, so
        extra components are added for it and every component is then
        mapped to the log-nearest offered upload speed.

        ``uploads`` must be finite, like :meth:`fit` requires: the
        returned group indices align one-to-one with the input rows, so
        silently dropping NaNs (the old behaviour) would misalign them
        for the caller.  Filter non-finite rows first.

        Returns the fit plus the per-measurement group index.
        """
        uploads = _require_finite(uploads, "uploads")
        with span("bst.fit_upload", n=int(uploads.size)) as sp:
            fit, group_indices = self._fit_upload_stage(uploads)
            sp.set(
                kde_peaks=fit.kde_peak_count,
                k=int(len(fit.component_means)),
                n_iter=fit.n_iter,
                converged=fit.converged,
            )
        obs_metrics.counter("bst.upload_fits").inc()
        quality = get_quality()
        if quality.enabled:
            # An upload group no mixture component mapped to has no
            # defined cluster mean -- Table 3-style reports render n/a
            # and downstream medians silently lose that plan.  Track how
            # often fits leave groups unmapped.
            n_unmapped = int(np.isnan(fit.cluster_means).sum())
            quality.observe_group_mapping(n_unmapped, len(fit.groups))
        log.debug(
            "upload stage fitted",
            extra=kv(
                n=int(uploads.size),
                kde_peaks=fit.kde_peak_count,
                n_iter=fit.n_iter,
                converged=fit.converged,
            ),
        )
        return fit, group_indices

    def _fit_upload_stage(
        self, uploads: np.ndarray
    ) -> tuple[UploadStageFit, np.ndarray]:
        groups = self.catalog.upload_groups()
        k_groups = len(groups)
        if uploads.size < k_groups:
            raise ValueError(
                f"need at least {k_groups} upload measurements, "
                f"got {uploads.size}"
            )
        peak_count = count_density_peaks(
            uploads,
            num_grid=self.config.kde_grid_points,
            min_prominence_frac=self.config.min_prominence_frac,
            min_height_frac=self.config.min_height_frac,
            log_space=self.config.kde_log_space,
            kde_method=self.config.kde_method,
        )
        offered = np.asarray([g.upload_mbps for g in groups], dtype=float)

        # Off-menu mass: uploads whose log distance to every offered
        # speed exceeds ~35%.
        positive = np.maximum(uploads, 1e-6)
        log_dist = np.min(
            np.abs(np.log(positive)[:, None] - np.log(offered)[None, :]),
            axis=1,
        )
        outliers = uploads[log_dist > np.log(1.35)]
        outlier_frac = outliers.size / uploads.size
        if outlier_frac < 0.02:
            n_extra = 0
        elif outlier_frac < 0.10:
            n_extra = 1
        elif outlier_frac < 0.25:
            n_extra = 2
        else:
            n_extra = 3
        n_extra = min(n_extra, max(0, uploads.size - k_groups))

        if self.config.seed_means_from_catalog:
            extra_means = (
                np.quantile(
                    outliers,
                    [(i + 1) / (n_extra + 1) for i in range(n_extra)],
                )
                if n_extra
                else np.array([])
            )
            means_init = np.concatenate([offered, extra_means])
        else:
            means_init = None
        k = k_groups + n_extra
        labels, means, weights, variances, converged, n_iter = self._cluster(
            uploads,
            k,
            means_init,
            mean_prior=self.config.upload_mean_prior,
        )

        # Map each fitted component to its log-nearest offered upload.
        with span("bst.assign", stage="upload", n=int(uploads.size)):
            component_groups = tuple(
                int(np.argmin(np.abs(np.log(max(m, 1e-6)) - np.log(offered))))
                for m in means
            )
            group_indices = np.asarray(
                [component_groups[label] for label in labels], dtype=np.int64
            )

            # Per-group reported mean: the component nearest the offered
            # speed among those mapped to the group (Table 3's cluster
            # means).
            cluster_means = np.full(k_groups, np.nan)
            cluster_weights = np.zeros(k_groups)
            for gi in range(k_groups):
                members = [
                    ci for ci, g in enumerate(component_groups) if g == gi
                ]
                if not members:
                    continue
                nearest = min(
                    members, key=lambda ci: abs(means[ci] - offered[gi])
                )
                cluster_means[gi] = means[nearest]
                cluster_weights[gi] = sum(weights[ci] for ci in members)
            counts = np.bincount(group_indices, minlength=k_groups)
        fit = UploadStageFit(
            groups=groups,
            cluster_means=cluster_means,
            cluster_weights=cluster_weights,
            cluster_counts=counts,
            kde_peak_count=peak_count,
            converged=converged,
            n_iter=n_iter,
            component_means=means,
            component_groups=component_groups,
            component_variances=variances,
            component_weights=weights,
            clustering=self.config.clustering,
        )
        return fit, group_indices

    # ------------------------------------------------------------------
    # Stage two: download clustering within one upload group
    # ------------------------------------------------------------------
    def fit_download_stage(
        self,
        downloads: np.ndarray,
        group: UploadGroup,
        group_index: int,
    ) -> tuple[DownloadStageFit, np.ndarray]:
        """Cluster one group's downloads and map clusters to plan tiers.

        ``downloads`` must be finite (the returned tiers align one-to-one
        with the input rows; see :meth:`fit_upload_stage`).

        Returns the fit plus the per-measurement tier assignment.
        """
        downloads = _require_finite(downloads, "downloads")
        plans = group.plans
        if downloads.size == 0:
            raise ValueError("empty download sample for a populated group")
        with span(
            "bst.fit_download",
            group=group.tier_label,
            n=int(downloads.size),
        ) as sp:
            peak_count = count_density_peaks(
                downloads,
                num_grid=self.config.kde_grid_points,
                min_prominence_frac=self.config.min_prominence_frac,
                min_height_frac=self.config.min_height_frac,
                log_space=self.config.kde_log_space,
                kde_method=self.config.kde_method,
            )
            # At least one cluster per offered plan; WiFi degradation can
            # create more (the paper caps the extra structure at 10).
            k = int(
                np.clip(
                    peak_count, len(plans), self.config.max_download_clusters
                )
            )
            k = min(k, downloads.size)
            labels, means, weights, variances, _, _ = self._cluster(
                downloads, k, None
            )
            with span("bst.assign", stage="download", n=int(downloads.size)):
                counts = np.bincount(labels, minlength=k)
                cluster_tiers = tuple(
                    _nearest_plan_tier(m, plans) for m in means
                )
                tiers = np.asarray(
                    [cluster_tiers[label] for label in labels]
                )
            sp.set(kde_peaks=peak_count, k=k)
        obs_metrics.counter("bst.download_fits").inc()
        fit = DownloadStageFit(
            group_index=group_index,
            cluster_means=means,
            cluster_weights=weights,
            cluster_counts=counts,
            cluster_tiers=cluster_tiers,
            kde_peak_count=peak_count,
            n_components=k,
            cluster_variances=variances,
            clustering=self.config.clustering,
        )
        return fit, tiers

    # ------------------------------------------------------------------
    def fit(self, downloads, uploads, jobs: int | None = None) -> BSTResult:
        """Run both stages over paired download/upload measurements.

        ``jobs`` overrides ``config.jobs`` for this call: the independent
        per-upload-group download fits fan out over a process pool when
        the effective worker count exceeds 1.  Results are identical to
        the serial path (every group fit is deterministic given the
        config seed, and groups are gathered in index order); only the
        in-worker spans/metrics stay unrecorded (see
        :mod:`repro.core.parallel`).
        """
        downloads = np.asarray(downloads, dtype=float)
        uploads = np.asarray(uploads, dtype=float)
        if downloads.shape != uploads.shape:
            raise ValueError("downloads and uploads must pair one-to-one")
        finite = np.isfinite(downloads) & np.isfinite(uploads)
        if not finite.all():
            raise ValueError(
                "BST input must be finite; filter NaNs before fitting"
            )
        effective_jobs = resolve_jobs(
            self.config.jobs if jobs is None else jobs
        )
        with span(
            "bst.fit",
            isp=self.catalog.isp_name,
            n=int(downloads.size),
            jobs=effective_jobs,
        ):
            upload_fit, group_indices = self.fit_upload_stage(uploads)
            tiers = np.zeros(len(downloads), dtype=np.int64)
            download_stages: dict[int, DownloadStageFit] = {}
            populated = [
                (gi, group, np.flatnonzero(group_indices == gi))
                for gi, group in enumerate(upload_fit.groups)
            ]
            populated = [
                (gi, group, rows)
                for gi, group, rows in populated
                if rows.size
            ]
            stage_results = parallel_map(
                _download_stage_task,
                [
                    (self, downloads[rows], group, gi)
                    for gi, group, rows in populated
                ],
                effective_jobs,
                span_name="bst.fit_downloads",
            )
            for (gi, _, rows), (stage, member_tiers) in zip(
                populated, stage_results
            ):
                download_stages[gi] = stage
                tiers[rows] = member_tiers
        obs_metrics.counter("bst.measurements_assigned").inc(
            int(downloads.size)
        )
        quality = get_quality()
        if quality.enabled:
            quality.observe_assignments(tiers)
        return BSTResult(
            catalog=self.catalog,
            upload_stage=upload_fit,
            download_stages=download_stages,
            group_indices=group_indices,
            tiers=tiers,
        )

    # ------------------------------------------------------------------
    def _cluster(
        self,
        values: np.ndarray,
        k: int,
        means_init: np.ndarray | None,
        mean_prior: float = 0.0,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, bool, int]:
        """Run the configured clusterer.

        Returns labels/means/weights/variances (variances are empty for
        k-means, whose predictor needs only the centers).
        """
        if self.config.clustering == "gmm":
            gmm = GaussianMixture(
                k,
                max_iter=self.config.gmm_max_iter,
                tol=self.config.gmm_tol,
                seed=self.config.seed,
                means_init=means_init,
                mean_prior_strength=(
                    mean_prior if means_init is not None else 0.0
                ),
            )
            fit = gmm.fit(values)
            labels = gmm.predict(values)
            return (
                labels,
                fit.means,
                fit.weights,
                fit.variances,
                fit.converged,
                fit.n_iter,
            )
        kmeans = KMeans1D(k, means_init=means_init)
        fit = kmeans.fit(values)
        labels = kmeans.predict(values)
        weights = np.bincount(labels, minlength=k) / values.size
        return (
            labels,
            fit.centers,
            weights,
            np.array([]),
            fit.converged,
            fit.n_iter,
        )


def _download_stage_task(
    args: tuple["BSTModel", np.ndarray, UploadGroup, int],
) -> tuple[DownloadStageFit, np.ndarray]:
    """Picklable per-group worker for the parallel download-stage fan-out."""
    model, downloads, group, group_index = args
    return model.fit_download_stage(downloads, group, group_index)


def _require_finite(values, name: str) -> np.ndarray:
    """Validate that a stage input is wholly finite (no silent drops).

    Stage outputs (group indices, tiers) align one-to-one with their
    input rows; dropping non-finite values here would silently misalign
    them for standalone callers.
    """
    values = np.asarray(values, dtype=float)
    finite = np.isfinite(values)
    if not finite.all():
        bad = int(values.size - finite.sum())
        raise ValueError(
            f"{name} must be finite ({bad} of {values.size} values are "
            "NaN/inf); filter non-finite rows before fitting"
        )
    return values


def _nearest_plan_tier(cluster_mean: float, plans) -> int:
    """Map a download-cluster mean to the log-nearest plan's tier.

    Log distance reproduces the paper's associations: in City-A Tier 1-3,
    clusters at 8.04 and 27.14 Mbps map to the 25 Mbps plan, 57.85 and
    115.65 to the 100 Mbps plan, and 214.01 to the 200 Mbps plan.
    """
    if cluster_mean <= 0:
        return plans[0].tier
    distances = [
        abs(np.log(cluster_mean) - np.log(p.download_mbps)) for p in plans
    ]
    return plans[int(np.argmin(distances))].tier
