"""The paper's primary contribution: the Broadband Subscription Tier (BST)
methodology, plus its evaluation metrics.

BST (Section 4.2) is a two-stage hierarchical unsupervised clustering
pipeline that maps each ``<download speed, upload speed>`` measurement
tuple to an ISP subscription plan:

1. **Upload stage** -- KDE confirms that the upload-speed distribution has
   as many clusters as the ISP offers distinct upload speeds; GMM-EM then
   assigns each measurement to an *upload group* (the set of plans sharing
   one advertised upload speed).  Upload speed is the stable fingerprint:
   plan uploads are few, slow, and rarely bottlenecked locally.
2. **Download stage** -- within each upload group, KDE counts the download
   clusters (WiFi degradation can create more clusters than plans), GMM-EM
   fits them, and each cluster is mapped to the plan whose advertised
   download speed is nearest in log space.

:mod:`repro.core.assignment` scores assignments against ground truth (the
Table 2 accuracy evaluation); :mod:`repro.core.consistency` implements the
per-user consistency factor (Figure 2) and the alpha tier-stability metric
(Figure 8).
"""

from repro.core.config import BSTConfig
from repro.core.bst import (
    BSTModel,
    BSTResult,
    UploadStageFit,
    DownloadStageFit,
)
from repro.core.assignment import (
    upload_group_accuracy,
    tier_accuracy,
    accuracy_report,
    AccuracyReport,
)
from repro.core.consistency import (
    per_user_consistency_factors,
    alpha_values,
)
from repro.core.longitudinal import (
    TierChange,
    detect_tier_changes,
    monthly_majority_tiers,
)

__all__ = [
    "BSTConfig",
    "BSTModel",
    "BSTResult",
    "UploadStageFit",
    "DownloadStageFit",
    "upload_group_accuracy",
    "tier_accuracy",
    "accuracy_report",
    "AccuracyReport",
    "per_user_consistency_factors",
    "alpha_values",
    "TierChange",
    "detect_tier_changes",
    "monthly_majority_tiers",
]
