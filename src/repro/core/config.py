"""Configuration of the BST methodology."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BSTConfig"]


@dataclass(frozen=True)
class BSTConfig:
    """Knobs of the two-stage BST clustering pipeline.

    Attributes
    ----------
    seed_means_from_catalog:
        Initialise the upload-stage GMM means at the ISP's advertised
        upload speeds (the paper "possess[es] the information about the
        mapping between different offered download and upload speeds",
        Section 4.2).  Turning this off is the fully blind variant.
    max_download_clusters:
        Cap on stage-two components; the paper associates measurements
        with (up to) 10 download clusters per upload group (Section 5.1).
    min_prominence_frac / min_height_frac:
        KDE peak-significance thresholds (see :mod:`repro.stats.peaks`).
    kde_grid_points:
        Grid resolution for the KDE stage.
    kde_log_space:
        Count KDE peaks on log-transformed speeds (speeds span decades;
        a linear bandwidth over-smooths the narrow low-speed clusters).
    kde_method:
        KDE grid evaluation strategy for the peak-count probes:
        ``"auto"`` (default) engages the linear-binning fast path at
        large n, ``"exact"``/``"binned"`` force one path (see
        docs/PERFORMANCE.md).
    gmm_max_iter / gmm_tol:
        EM stopping parameters.
    upload_mean_prior:
        MAP-EM prior strength anchoring stage-one components at the
        advertised upload speeds (see
        :class:`~repro.stats.gmm.GaussianMixture`).  Only applies when
        ``seed_means_from_catalog`` is on.
    clustering:
        "gmm" (the paper's choice) or "kmeans" (the ablation baseline).
    seed:
        Seed for any randomised initialisation.
    jobs:
        Worker processes for the independent per-upload-group download
        fits in :meth:`BSTModel.fit`: ``1`` (default) is serial, ``N > 1``
        a process pool of ``N``, ``0`` all CPUs.  Parallel runs produce
        results identical to serial ones (see
        :mod:`repro.core.parallel` and docs/PERFORMANCE.md).
    """

    seed_means_from_catalog: bool = True
    max_download_clusters: int = 10
    min_prominence_frac: float = 0.05
    min_height_frac: float = 0.02
    kde_grid_points: int = 512
    kde_log_space: bool = True
    kde_method: str = "auto"
    gmm_max_iter: int = 200
    gmm_tol: float = 1e-6
    upload_mean_prior: float = 0.2
    clustering: str = "gmm"
    seed: int = 0
    jobs: int = 1

    def __post_init__(self):
        if self.max_download_clusters < 1:
            raise ValueError("max_download_clusters must be >= 1")
        if self.clustering not in ("gmm", "kmeans"):
            raise ValueError(
                f"clustering must be 'gmm' or 'kmeans', got {self.clustering!r}"
            )
        if self.kde_grid_points < 16:
            raise ValueError("kde_grid_points must be >= 16")
        if self.kde_method not in ("auto", "exact", "binned"):
            raise ValueError(
                "kde_method must be 'auto', 'exact', or 'binned', "
                f"got {self.kde_method!r}"
            )
        if self.upload_mean_prior < 0:
            raise ValueError("upload_mean_prior cannot be negative")
