"""Per-user consistency metrics: the consistency factor and alpha.

Two metrics from the paper:

- **Consistency factor** (Section 4.1, Figure 2): for each user with at
  least ``min_tests`` measurements, the ratio of the mean to the 95th
  percentile of that user's speeds.  Upload speeds are far more
  consistent (median 0.87) than download speeds (median 0.58), which is
  the observation that motivates clustering uploads first.
- **Alpha** (Section 5.2, Figure 8): for each (user, month) with more
  than ``min_tests`` tests, the largest fraction of that user's monthly
  tests assigned to a single tier.  Alpha near 1 means BST assigns the
  user stably; the paper reports a median of 1.
"""

from __future__ import annotations

import numpy as np

from repro.frame import ColumnTable
from repro.stats.descriptive import consistency_factor

__all__ = ["per_user_consistency_factors", "alpha_values"]


def per_user_consistency_factors(
    table: ColumnTable,
    speed_column: str,
    user_column: str = "user_id",
    min_tests: int = 5,
) -> ColumnTable:
    """Consistency factor of ``speed_column`` for each qualifying user.

    Only users with at least ``min_tests`` measurements qualify (the paper
    uses "at least five tests").  Returns a table with columns
    ``user_id``, ``n_tests``, ``consistency_factor``.
    """
    if min_tests < 1:
        raise ValueError("min_tests must be >= 1")
    users: list = []
    counts: list[int] = []
    factors: list[float] = []
    for (user,), group in table.groupby(user_column):
        speeds = group[speed_column]
        if len(speeds) < min_tests:
            continue
        users.append(user)
        counts.append(len(speeds))
        factors.append(consistency_factor(speeds))
    return ColumnTable(
        {
            "user_id": np.asarray(users, dtype=object),
            "n_tests": np.asarray(counts, dtype=np.int64),
            "consistency_factor": np.asarray(factors, dtype=float),
        }
    )


def alpha_values(
    table: ColumnTable,
    tier_column: str = "bst_tier",
    user_column: str = "user_id",
    month_column: str = "month",
    min_tests: int = 5,
) -> ColumnTable:
    """Alpha per (user, month): the max single-tier share of their tests.

    Follows Equation 1 of the paper: for user ``u`` in month ``m`` the
    per-tier ratios ``r_ium = N_i / sum_k N_k`` and
    ``alpha_um = max_i r_ium``.  Only (user, month) pairs with more than
    ``min_tests`` tests are reported (Section 5.2 uses "more than five
    speed tests in a month").
    """
    if min_tests < 1:
        raise ValueError("min_tests must be >= 1")
    users: list = []
    months: list[int] = []
    alphas: list[float] = []
    for (user, month), group in table.groupby([user_column, month_column]):
        tiers = group[tier_column]
        if len(tiers) <= min_tests:
            continue
        counts = np.unique(np.asarray(tiers), return_counts=True)[1]
        users.append(user)
        months.append(int(month))
        alphas.append(float(counts.max() / counts.sum()))
    return ColumnTable(
        {
            "user_id": np.asarray(users, dtype=object),
            "month": np.asarray(months, dtype=np.int64),
            "alpha": np.asarray(alphas, dtype=float),
        }
    )
