"""Accuracy evaluation of BST assignments against ground truth.

The paper validates BST on the MBA dataset, where the subscribed plan is
known: ``accuracy = #correctly associated measurements / #total
measurements`` (Section 4.3).  Two granularities are reported: upload
*group* accuracy (Table 2, >96% in every state) and full plan-tier
accuracy within each group (100% for the State-A clusters studied).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bst import BSTResult
from repro.market.plans import PlanCatalog

__all__ = [
    "upload_group_accuracy",
    "tier_accuracy",
    "accuracy_report",
    "AccuracyReport",
]


def _group_index_of_tier(catalog: PlanCatalog, tier: int) -> int:
    """Which upload group a plan tier belongs to."""
    for gi, group in enumerate(catalog.upload_groups()):
        if any(p.tier == tier for p in group.plans):
            return gi
    raise KeyError(f"tier {tier} not in catalog {catalog.isp_name}")


def upload_group_accuracy(result: BSTResult, true_tiers) -> float:
    """Fraction of measurements assigned to the correct upload group."""
    true_tiers = np.asarray(true_tiers)
    if len(true_tiers) != len(result):
        raise ValueError("ground truth length mismatch")
    if len(result) == 0:
        raise ValueError("empty result has no accuracy")
    true_groups = np.asarray(
        [_group_index_of_tier(result.catalog, int(t)) for t in true_tiers]
    )
    return float(np.mean(result.group_indices == true_groups))


def tier_accuracy(result: BSTResult, true_tiers) -> float:
    """Fraction of measurements assigned to the correct plan tier."""
    true_tiers = np.asarray(true_tiers, dtype=np.int64)
    if len(true_tiers) != len(result):
        raise ValueError("ground truth length mismatch")
    if len(result) == 0:
        raise ValueError("empty result has no accuracy")
    return float(np.mean(result.tiers == true_tiers))


@dataclass(frozen=True)
class AccuracyReport:
    """Accuracy summary for one BST fit against ground truth."""

    n_measurements: int
    upload_group_accuracy: float
    tier_accuracy: float
    per_group_tier_accuracy: dict[str, float]
    confusion: dict[tuple[int, int], int]  # (true_tier, assigned_tier) -> n


def accuracy_report(result: BSTResult, true_tiers) -> AccuracyReport:
    """Full evaluation: overall, per-upload-group, and confusion counts."""
    true_tiers = np.asarray(true_tiers, dtype=np.int64)
    if len(true_tiers) != len(result):
        raise ValueError("ground truth length mismatch")
    if len(result) == 0:
        raise ValueError("empty result has no accuracy")
    groups = result.upload_stage.groups
    per_group: dict[str, float] = {}
    for gi, group in enumerate(groups):
        rows = np.flatnonzero(result.group_indices == gi)
        if rows.size == 0:
            continue
        per_group[group.tier_label] = float(
            np.mean(result.tiers[rows] == true_tiers[rows])
        )
    confusion: dict[tuple[int, int], int] = {}
    for true_t, got_t in zip(true_tiers.tolist(), result.tiers.tolist()):
        key = (int(true_t), int(got_t))
        confusion[key] = confusion.get(key, 0) + 1
    return AccuracyReport(
        n_measurements=len(result),
        upload_group_accuracy=upload_group_accuracy(result, true_tiers),
        tier_accuracy=tier_accuracy(result, true_tiers),
        per_group_tier_accuracy=per_group,
        confusion=confusion,
    )
