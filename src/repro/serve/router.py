"""Front router for a fleet of sharded assignment workers.

Scaling one Python server past a point means processes, not threads:
the router spawns N :mod:`repro.serve.worker` subprocesses, each owning
the ``(city, isp)`` models whose :func:`~repro.serve.registry.shard_for`
hash lands on its shard, and exposes one endpoint with the same HTTP
contract as the single-process server:

- ``POST /assign``  -- resolved against the registry index, forwarded
  to the owning shard's worker, response relayed verbatim (the worker
  honours the router's ``X-Trace-Id``, so traces join up end to end);
- ``GET /models``   -- answered from the shared registry directly;
- ``GET /healthz``  -- router process table plus every worker's own
  health document;
- ``GET /metrics``  -- the workers' expositions scraped, parsed, and
  aggregated (counters/gauges summed, quantile samples combined by
  max) with the router's own ``serve.router.*`` instruments appended;
- ``POST /reload``  -- fanned out to the owning shards (all shards for
  an empty body) so a drift-triggered refit hot-swaps every worker
  serving the affected model; see docs/STREAMING.md.

A worker that dies (crash, OOM kill) is restarted on the next request
that needs its shard — ``serve.router.worker_restarts`` counts these —
and the failed forward is retried once against the fresh process.
Workers are stopped with SIGTERM on ``server_close`` and shut down
gracefully, so the router inherits the single server's drain-on-exit
contract.
"""

from __future__ import annotations

import json
import math
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any

from repro.obs.logging import get_logger, kv
from repro.obs.metrics import (
    MetricsRegistry,
    parse_prometheus_text,
    render_prometheus,
)
from repro.obs.trace import new_trace_id
from repro.serve.registry import (
    ModelKey,
    ModelRecord,
    ModelRegistry,
    shard_for,
)

log = get_logger("serve.router")

__all__ = [
    "RouterConfig",
    "RouterServer",
    "WorkerHandle",
    "build_router",
]

_SERVING_RE = re.compile(r"serving on http://([^\s:]+):(\d+)")


def _escape_label(value: str) -> str:
    """Escape a label value per the Prometheus text exposition rules."""
    return value.replace("\\", "\\\\").replace('"', '\\"')


def _slug_city_isp(slug: str) -> tuple[str, str]:
    """The ``(city, isp)`` a model slug shards by (raises ValueError)."""
    key = ModelKey.from_slug(slug)
    return key.city, key.isp


@dataclass(frozen=True)
class RouterConfig:
    """Knobs of the router process."""

    host: str = "127.0.0.1"
    port: int = 8000
    n_workers: int = 2
    default_city: str = ""
    request_timeout_s: float = 30.0  # per forwarded request
    start_timeout_s: float = 60.0  # worker bind deadline
    max_body_bytes: int = 8 * 1024 * 1024
    metrics_window_s: float = 60.0
    worker_quantized: bool = False  # workers serve via lookup tables
    worker_trace_sample: float = 1.0


class WorkerHandle:
    """One supervised worker subprocess and its base URL.

    ``start`` spawns ``python -m repro.serve.worker`` with this
    handle's shard assignment, parses the ``serving on ...`` line for
    the ephemeral port, and keeps draining the child's stdout on a
    daemon thread.  ``restart`` is start-over-again: used by the router
    when a forward finds the process dead.
    """

    def __init__(
        self,
        shard: int,
        registry_root: str | Path,
        config: RouterConfig,
    ) -> None:
        self.shard = int(shard)
        self.registry_root = str(registry_root)
        self.config = config
        self.proc: subprocess.Popen | None = None
        self.base_url = ""
        self.restarts = 0
        self._lock = threading.Lock()

    @property
    def alive(self) -> bool:
        with self._lock:
            return self.proc is not None and self.proc.poll() is None

    @property
    def pid(self) -> int | None:
        with self._lock:
            return self.proc.pid if self.proc is not None else None

    def start(self) -> None:
        """Spawn the worker and wait for it to bind (idempotent)."""
        with self._lock:
            if self.proc is not None and self.proc.poll() is None:
                return
            argv = [
                sys.executable,
                "-m",
                "repro.serve.worker",
                "--registry",
                self.registry_root,
                "--host",
                "127.0.0.1",
                "--port",
                "0",
                "--shard",
                str(self.shard),
                "--shards",
                str(self.config.n_workers),
                "--trace-sample",
                str(self.config.worker_trace_sample),
            ]
            if self.config.default_city:
                argv += ["--default-city", self.config.default_city]
            if self.config.worker_quantized:
                argv.append("--quantized")
            env = dict(os.environ)
            src_root = str(Path(__file__).resolve().parents[2])
            existing = env.get("PYTHONPATH", "")
            env["PYTHONPATH"] = (
                f"{src_root}{os.pathsep}{existing}" if existing else src_root
            )
            self.proc = subprocess.Popen(
                argv,
                stdout=subprocess.PIPE,
                stderr=subprocess.DEVNULL,
                env=env,
                text=True,
            )
            self.base_url = self._await_bind(self.proc)
            pid, url = self.proc.pid, self.base_url
        log.info(
            "worker started", extra=kv(shard=self.shard, pid=pid, url=url)
        )

    def restart(self) -> None:
        """Reap the dead process (if any) and spawn a fresh worker."""
        with self._lock:
            if self.proc is not None and self.proc.poll() is None:
                return  # already healthy; a racing restart beat us
            if self.proc is not None:
                self.proc.wait()
                self.proc = None
            self.restarts += 1
        self.start()

    def stop(self, timeout_s: float = 15.0) -> None:
        """SIGTERM the worker and wait for its graceful exit."""
        with self._lock:
            proc, self.proc = self.proc, None
        if proc is None or proc.poll() is not None:
            return
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=timeout_s)
        except subprocess.TimeoutExpired:
            log.warning(
                "worker ignored SIGTERM; killing",
                extra=kv(shard=self.shard, pid=proc.pid),
            )
            proc.kill()
            proc.wait()

    # ------------------------------------------------------------------
    def _await_bind(self, proc: subprocess.Popen) -> str:
        """Read stdout until the worker names its port; then drain it."""
        deadline = time.monotonic() + self.config.start_timeout_s
        assert proc.stdout is not None
        while True:
            if time.monotonic() > deadline:
                proc.kill()
                raise RuntimeError(
                    f"worker shard {self.shard} did not bind within "
                    f"{self.config.start_timeout_s:.0f}s"
                )
            line = proc.stdout.readline()
            if not line:
                code = proc.wait()
                raise RuntimeError(
                    f"worker shard {self.shard} exited with code {code} "
                    "before binding"
                )
            match = _SERVING_RE.search(line)
            if match:
                threading.Thread(
                    target=self._drain, args=(proc.stdout,), daemon=True
                ).start()
                return f"http://{match.group(1)}:{match.group(2)}"

    @staticmethod
    def _drain(stream) -> None:
        for _ in stream:
            pass


class _RouterService:
    """Request routing, worker supervision, and telemetry aggregation."""

    def __init__(
        self,
        registry: ModelRegistry,
        config: RouterConfig,
        workers: list[WorkerHandle],
    ) -> None:
        self.registry = registry
        self.config = config
        self.workers = workers
        self.metrics = MetricsRegistry()
        self._started = time.monotonic()
        # Optional observer of successfully-forwarded traffic, called as
        # tap(city, isp, downloads, uploads); repro.stream.attach points
        # this at a StreamMonitor when `repro serve --refit` is on.
        self.stream_tap = None

    # -- routing ---------------------------------------------------------
    def resolve_record(self, payload: dict[str, Any]) -> ModelRecord:
        """The registry record a payload's selectors address.

        Mirrors ``AssignmentService.resolve`` (missing selectors match
        anything, ties go to the most recent registration) so the
        router forwards to the worker that will pick the same model.
        """
        city = payload.get("city") or self.config.default_city or None
        isp = payload.get("isp")
        config_hash = payload.get("config_hash")
        candidates = [
            record
            for record in self.registry.records()
            if (city is None or record.key.city == city)
            and (isp is None or record.key.isp == isp)
            and (config_hash is None or record.key.config_hash == config_hash)
        ]
        if not candidates:
            raise KeyError(
                "no registered model matches "
                f"city={city!r} isp={isp!r} config_hash={config_hash!r}"
            )
        return max(candidates, key=lambda r: r.created_s)

    def forward_assign(
        self, body: bytes, record: ModelRecord, trace_id: str
    ) -> tuple[int, bytes]:
        """POST the raw body to the owning shard; returns (status, body).

        A dead worker is restarted and the request retried once on the
        fresh process; 4xx/5xx worker responses relay as-is (they carry
        the worker's structured error JSON and the shared trace id).
        """
        shard = shard_for(
            record.key.city, record.key.isp, self.config.n_workers
        )
        handle = self.workers[shard]
        for attempt in (0, 1):
            try:
                status, payload = self._post(handle, body, trace_id)
                self.metrics.counter("serve.router.forwarded").inc()
                return status, payload
            except (urllib.error.URLError, ConnectionError, OSError) as exc:
                if attempt == 1:
                    raise
                log.warning(
                    "worker unreachable; restarting shard",
                    extra=kv(
                        shard=shard, error=str(exc), trace_id=trace_id
                    ),
                )
                self.metrics.counter("serve.router.worker_restarts").inc()
                self.metrics.counter("serve.router.retries").inc()
                handle.restart()
        raise AssertionError("unreachable")  # pragma: no cover

    def _post(
        self,
        handle: WorkerHandle,
        body: bytes,
        trace_id: str,
        path: str = "/assign",
    ) -> tuple[int, bytes]:
        request = urllib.request.Request(
            f"{handle.base_url}{path}",
            data=body,
            headers={
                "Content-Type": "application/json",
                "X-Trace-Id": trace_id,
            },
            method="POST",
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.config.request_timeout_s
            ) as response:
                return response.status, response.read()
        except urllib.error.HTTPError as exc:
            # Structured worker error (400/404/503/...): relay verbatim.
            return exc.code, exc.read()

    def reload_models(
        self, slugs: list[str] | None = None, trace_id: str = ""
    ) -> dict[str, Any]:
        """Fan ``POST /reload`` out to the shards that own ``slugs``.

        None (or an empty list) reloads every worker.  The router's own
        registry cache is evicted too, so ``resolve_record`` sees fresh
        index entries.  Worker outcomes are reported per shard; an
        unreachable worker is an error row, not a failed fan-out.
        """
        self.registry.evict_cache()
        if slugs:
            shards = sorted(
                {
                    shard_for(*_slug_city_isp(slug), self.config.n_workers)
                    for slug in slugs
                }
            )
        else:
            shards = list(range(len(self.workers)))
        body = json.dumps({"slugs": slugs} if slugs else {}).encode("utf-8")
        reloaded: list[str] = []
        worker_rows: list[dict[str, Any]] = []
        for shard in shards:
            handle = self.workers[shard]
            try:
                status, payload = self._post(
                    handle, body, trace_id or new_trace_id(), path="/reload"
                )
                row: dict[str, Any] = {"shard": shard, "status": status}
                if status == 200:
                    outcome = json.loads(payload)
                    row["reloaded"] = outcome.get("reloaded", [])
                    reloaded.extend(row["reloaded"])
            except (urllib.error.URLError, ConnectionError, OSError) as exc:
                row = {"shard": shard, "error": str(exc)}
            worker_rows.append(row)
        self.metrics.counter("serve.router.reloads").inc()
        log.info(
            "fanned out model reload",
            extra=kv(
                shards=",".join(str(s) for s in shards),
                models=",".join(reloaded) if reloaded else "(none)",
            ),
        )
        return {"reloaded": sorted(set(reloaded)), "workers": worker_rows}

    # -- aggregation -----------------------------------------------------
    def scrape_worker(self, handle: WorkerHandle, path: str) -> bytes:
        request = urllib.request.Request(f"{handle.base_url}{path}")
        with urllib.request.urlopen(
            request, timeout=self.config.request_timeout_s
        ) as response:
            return response.read()

    def health(self) -> dict[str, Any]:
        worker_rows = []
        worker_health = []
        for handle in self.workers:
            worker_rows.append(
                {
                    "shard": handle.shard,
                    "url": handle.base_url,
                    "pid": handle.pid,
                    "alive": handle.alive,
                    "restarts": handle.restarts,
                }
            )
            try:
                worker_health.append(
                    json.loads(self.scrape_worker(handle, "/healthz"))
                )
            except (urllib.error.URLError, OSError, ValueError) as exc:
                worker_health.append({"error": str(exc)})
        alive = sum(1 for row in worker_rows if row["alive"])
        self.metrics.gauge("serve.router.workers_alive").set(alive)
        return {
            "status": "ok" if alive == len(self.workers) else "degraded",
            "router": {
                "uptime_s": round(time.monotonic() - self._started, 3),
                "n_workers": len(self.workers),
                "workers_alive": alive,
                "workers": worker_rows,
            },
            "workers": worker_health,
        }

    def metrics_text(self) -> str:
        """One exposition: workers' samples merged + router's own.

        Counter totals, rates, and plain gauges sum across workers;
        quantile-labelled samples (summary/window percentiles) combine
        by max — "worst shard" is the operative read for a latency
        quantile aggregated without raw observations.
        """
        merged: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
        maxed: set[tuple[str, tuple[tuple[str, str], ...]]] = set()
        for handle in self.workers:
            try:
                text = self.scrape_worker(handle, "/metrics").decode("utf-8")
                families = parse_prometheus_text(text)
            except (urllib.error.URLError, OSError, ValueError) as exc:
                log.warning(
                    "worker metrics scrape failed",
                    extra=kv(shard=handle.shard, error=str(exc)),
                )
                continue
            for name, samples in families.items():
                for labels, value in samples:
                    if math.isnan(value):
                        continue
                    key = (name, tuple(sorted(labels.items())))
                    if "quantile" in labels:
                        maxed.add(key)
                        merged[key] = max(merged.get(key, value), value)
                    else:
                        merged[key] = merged.get(key, 0.0) + value
        lines: list[str] = []
        last_family = None
        for name, labels in sorted(merged):
            if name != last_family:
                kind = "counter" if name.endswith("_total") else "gauge"
                lines.append(f"# TYPE {name} {kind}")
                last_family = name
            label_text = ",".join(
                f'{k}="{_escape_label(v)}"' for k, v in labels
            )
            rendered = f"{name}{{{label_text}}}" if label_text else name
            lines.append(
                f"{rendered} {format(merged[(name, labels)], '.10g')}"
            )
        own = render_prometheus(
            self.metrics, window_s=self.config.metrics_window_s
        )
        return "\n".join(lines) + ("\n" + own if own else "\n")

    def models(self) -> list[dict[str, Any]]:
        # lint: allow[DET002] age_s compares against stored epoch stamps
        now = time.time()
        return [
            {**record.to_dict(), "age_s": round(record.age_s(now), 3)}
            for record in self.registry.records()
        ]

    # -- lifecycle -------------------------------------------------------
    def start_workers(self) -> None:
        for handle in self.workers:
            handle.start()
        self.metrics.gauge("serve.router.workers_alive").set(
            sum(1 for handle in self.workers if handle.alive)
        )

    def close(self) -> None:
        for handle in self.workers:
            handle.stop()


class _RouterHandler(BaseHTTPRequestHandler):
    """HTTP routing for :class:`RouterServer`."""

    protocol_version = "HTTP/1.1"
    server: "RouterServer"

    def setup(self) -> None:
        super().setup()
        self.connection.settimeout(
            self.server.router.config.request_timeout_s
        )

    def log_message(self, format: str, *args: Any) -> None:
        log.debug("http " + format % args)

    # -- plumbing --------------------------------------------------------
    def _send_body(
        self, status: int, body: bytes, content_type: str
    ) -> None:
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("X-Trace-Id", self._trace_id)
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: dict | list) -> None:
        self._send_body(
            status, json.dumps(payload).encode("utf-8"), "application/json"
        )

    def _error(self, status: int, message: str) -> None:
        self.server.router.metrics.counter("serve.router.errors").inc()
        self._send_json(
            status,
            {
                "error": {
                    "code": status,
                    "message": message,
                    "trace_id": self._trace_id,
                }
            },
        )

    # -- routes ----------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        self._handle(self._route_get)

    def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
        self._handle(self._route_post)

    def _handle(self, route) -> None:
        router = self.server.router
        router.metrics.counter("serve.router.requests").inc()
        self._trace_id = new_trace_id()
        self._status = 500
        start = time.perf_counter()
        try:
            route()
        except BrokenPipeError:
            pass  # client went away; nothing to send
        except Exception as exc:  # defensive: never kill the thread
            log.error(
                "unhandled router error",
                extra=kv(
                    path=self.path,
                    error=repr(exc),
                    trace_id=self._trace_id,
                ),
            )
            try:
                self._error(500, f"internal error: {exc}")
            # lint: allow[COR003] best-effort 500; the socket may be gone
            except Exception:
                pass
        finally:
            router.metrics.histogram(
                "serve.router.request_latency_s"
            ).observe(time.perf_counter() - start)

    def _route_get(self) -> None:
        path = self.path.split("?", 1)[0]
        router = self.server.router
        if path == "/healthz":
            self._send_json(200, router.health())
        elif path == "/models":
            self._send_json(200, {"models": router.models()})
        elif path == "/metrics":
            self._send_body(
                200,
                router.metrics_text().encode("utf-8"),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        else:
            self._error(404, f"unknown path {path!r}")

    def _route_post(self) -> None:
        path = self.path.split("?", 1)[0]
        router = self.server.router
        if path == "/reload":
            self._route_reload()
            return
        if path != "/assign":
            self._error(404, f"unknown path {path!r}")
            return
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            self._error(400, "missing request body")
            return
        if length > router.config.max_body_bytes:
            self._error(
                413,
                f"request body of {length} bytes exceeds the "
                f"{router.config.max_body_bytes}-byte limit",
            )
            return
        body = self.rfile.read(length)
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as exc:
            self._error(400, f"invalid JSON body: {exc}")
            return
        if not isinstance(payload, dict):
            self._error(400, "request body must be a JSON object")
            return
        try:
            record = router.resolve_record(payload)
        except KeyError as exc:
            self._error(404, str(exc).strip("'\""))
            return
        try:
            status, response = router.forward_assign(
                body, record, self._trace_id
            )
        except (urllib.error.URLError, ConnectionError, OSError) as exc:
            self._error(502, f"worker unavailable: {exc}")
            return
        self._send_body(status, response, "application/json")
        if status == 200:
            tap = router.stream_tap
            if tap is not None:
                try:
                    tap(
                        record.key.city,
                        record.key.isp,
                        payload.get("downloads", ()),
                        payload.get("uploads", ()),
                    )
                # lint: allow[COR003] the tap must never fail a request
                except Exception as exc:
                    log.warning(
                        "stream tap failed", extra=kv(error=repr(exc))
                    )

    def _route_reload(self) -> None:
        """``POST /reload``: fan the hot-swap out to the worker fleet."""
        router = self.server.router
        length = int(self.headers.get("Content-Length") or 0)
        if length > router.config.max_body_bytes:
            self._error(
                413,
                f"request body of {length} bytes exceeds the "
                f"{router.config.max_body_bytes}-byte limit",
            )
            return
        slugs = None
        if length > 0:
            try:
                payload = json.loads(self.rfile.read(length))
            except json.JSONDecodeError as exc:
                self._error(400, f"invalid JSON body: {exc}")
                return
            if not isinstance(payload, dict):
                self._error(400, "reload body must be a JSON object")
                return
            slugs = payload.get("slugs")
            if slugs is not None and (
                not isinstance(slugs, list)
                or not all(isinstance(s, str) for s in slugs)
            ):
                self._error(400, "'slugs' must be a list of model slugs")
                return
        try:
            response = router.reload_models(slugs, trace_id=self._trace_id)
        except ValueError as exc:
            self._error(400, str(exc))
            return
        response["trace_id"] = self._trace_id
        self._send_json(200, response)


class RouterServer(ThreadingHTTPServer):
    """Threading front server bound to one worker fleet.

    Shares ``serve_until_shutdown``'s duck-typed contract with
    :class:`~repro.serve.server.ServeServer`: ``server_close`` joins
    handler threads, then SIGTERMs every worker and waits for their
    graceful exits.
    """

    daemon_threads = False
    block_on_close = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], router: _RouterService):
        self.router = router
        super().__init__(address, _RouterHandler)

    def server_close(self) -> None:
        super().server_close()  # joins handler threads first
        self.router.close()


def build_router(
    registry_root: str | Path, config: RouterConfig | None = None
) -> RouterServer:
    """A ready-to-run router with its workers started.

    ``port=0`` binds an ephemeral port.  Raises ``RuntimeError`` when a
    worker fails to bind within ``config.start_timeout_s``.
    """
    config = config or RouterConfig()
    registry = ModelRegistry(registry_root)
    workers = [
        WorkerHandle(shard, registry_root, config)
        for shard in range(config.n_workers)
    ]
    router = _RouterService(registry, config, workers)
    server = RouterServer((config.host, config.port), router)
    try:
        router.start_workers()
    except Exception:
        server.server_close()
        raise
    return server
