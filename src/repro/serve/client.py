"""Stdlib client for the tier-assignment service.

A small ``urllib``-based wrapper over the HTTP API in
:mod:`repro.serve.server` -- no third-party HTTP library.  Non-2xx
responses raise :class:`ServeError` carrying the HTTP status plus the
server's structured error body (``code`` / ``message`` / ``trace_id``),
so callers can distinguish a bad request (400) from a missing model
(404) and quote the trace id when reporting a failure.  Every call
accepts a per-request ``timeout_s`` overriding the client default.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any, Sequence

__all__ = ["ServeClient", "ServeError"]


class ServeError(RuntimeError):
    """A non-2xx response from the assignment service.

    ``status`` is the HTTP status line; ``code`` / ``message`` /
    ``trace_id`` mirror the server's JSON error body (``code`` falls
    back to the HTTP status, ``trace_id`` is None when the server sent
    none -- e.g. connection failures).
    """

    def __init__(
        self,
        status: int,
        message: str,
        code: int | None = None,
        trace_id: str | None = None,
    ):
        detail = f"HTTP {status}: {message}"
        if trace_id:
            detail += f" [trace {trace_id}]"
        super().__init__(detail)
        self.status = status
        self.message = message
        self.code = status if code is None else int(code)
        self.trace_id = trace_id


class ServeClient:
    """Client for one assignment-service endpoint.

    >>> client = ServeClient("http://127.0.0.1:8731")  # doctest: +SKIP
    >>> client.assign([110.0], [5.5])["tiers"]         # doctest: +SKIP
    [0]
    """

    def __init__(self, base_url: str, timeout_s: float = 10.0):
        self.base_url = base_url.rstrip("/")
        self.timeout_s = float(timeout_s)

    # ------------------------------------------------------------------
    def assign(
        self,
        downloads: Sequence[float],
        uploads: Sequence[float],
        city: str | None = None,
        isp: str | None = None,
        config_hash: str | None = None,
        stream: bool = False,
        timeout_s: float | None = None,
    ) -> dict[str, Any]:
        """POST ``/assign``; returns the decoded response payload."""
        payload: dict[str, Any] = {
            "downloads": list(downloads),
            "uploads": list(uploads),
        }
        if city is not None:
            payload["city"] = city
        if isp is not None:
            payload["isp"] = isp
        if config_hash is not None:
            payload["config_hash"] = config_hash
        if stream:
            payload["stream"] = True
        return self._request("POST", "/assign", payload, timeout_s)

    def assign_one(
        self,
        download: float,
        upload: float,
        **selectors: Any,
    ) -> tuple[int, str]:
        """Assign one tuple; returns ``(tier, group_label)``."""
        out = self.assign([download], [upload], stream=True, **selectors)
        return int(out["tiers"][0]), str(out["group_labels"][0])

    def models(self, timeout_s: float | None = None) -> list[dict[str, Any]]:
        """GET ``/models``; returns the registry records."""
        return self._request("GET", "/models", None, timeout_s)["models"]

    def healthz(self, timeout_s: float | None = None) -> dict[str, Any]:
        """GET ``/healthz``; returns the health document."""
        return self._request("GET", "/healthz", None, timeout_s)

    def metrics_text(self, timeout_s: float | None = None) -> str:
        """GET ``/metrics``; returns the raw Prometheus exposition text."""
        return self._open("GET", "/metrics", None, timeout_s).decode(
            "utf-8"
        )

    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        timeout_s: float | None = None,
    ) -> Any:
        return json.loads(
            self._open(method, path, payload, timeout_s).decode("utf-8")
        )

    def _open(
        self,
        method: str,
        path: str,
        payload: dict | None,
        timeout_s: float | None,
    ) -> bytes:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            url, data=data, headers=headers, method=method
        )
        timeout = self.timeout_s if timeout_s is None else float(timeout_s)
        try:
            with urllib.request.urlopen(
                request, timeout=timeout
            ) as response:
                return response.read()
        except urllib.error.HTTPError as exc:
            raise _serve_error(exc) from exc
        except urllib.error.URLError as exc:
            raise ServeError(
                0, f"cannot reach {url}: {exc.reason}"
            ) from exc


def _serve_error(exc: urllib.error.HTTPError) -> ServeError:
    """Decode the server's JSON error body into a :class:`ServeError`.

    Understands the structured ``{"error": {code, message, trace_id}}``
    body, the legacy ``{"error": "<message>"}`` shape, and falls back
    to the HTTP reason for non-JSON bodies (e.g. a proxy in the way).
    """
    code: int | None = None
    trace_id: str | None = None
    try:
        body = json.loads(exc.read().decode("utf-8"))
        error = body.get("error", exc.reason)
        if isinstance(error, dict):
            message = str(error.get("message", exc.reason))
            code = error.get("code")
            trace_id = error.get("trace_id")
        else:
            message = str(error)
    except (ValueError, AttributeError, UnicodeDecodeError, OSError):
        message = str(exc.reason)
    return ServeError(exc.code, message, code=code, trace_id=trace_id)
