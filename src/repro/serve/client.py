"""Stdlib client for the tier-assignment service.

A small ``urllib``-based wrapper over the HTTP API in
:mod:`repro.serve.server` -- no third-party HTTP library.  Non-2xx
responses raise :class:`ServeError` carrying the HTTP status plus the
server's structured error body (``code`` / ``message`` / ``trace_id``),
so callers can distinguish a bad request (400) from a missing model
(404) and quote the trace id when reporting a failure.  Every call
accepts a per-request ``timeout_s`` overriding the client default.

503 responses are **retried**: the server answers queue saturation and
shutdown-in-progress with a structured 503 plus ``Retry-After``
(see ``serve.server._route_post``), and the client honours it -- up to
``retries`` extra attempts, sleeping the server-suggested delay (capped
at ``max_backoff_s``) or, when the header is missing or unparseable, a
deterministic exponential backoff ``backoff_s * 2**attempt``.  There is
deliberately no jitter: two identical client runs issue identical
request schedules, which keeps serving tests and benchmarks
reproducible.  ``retries=0`` opts out entirely.  Each retry bumps the
``serve.client.retries`` counter (visible whenever the process has a
metrics registry installed).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Sequence

from repro.obs import metrics as obs_metrics

__all__ = ["ServeClient", "ServeError"]


class ServeError(RuntimeError):
    """A non-2xx response from the assignment service.

    ``status`` is the HTTP status line; ``code`` / ``message`` /
    ``trace_id`` mirror the server's JSON error body (``code`` falls
    back to the HTTP status, ``trace_id`` is None when the server sent
    none -- e.g. connection failures).
    """

    def __init__(
        self,
        status: int,
        message: str,
        code: int | None = None,
        trace_id: str | None = None,
    ):
        detail = f"HTTP {status}: {message}"
        if trace_id:
            detail += f" [trace {trace_id}]"
        super().__init__(detail)
        self.status = status
        self.message = message
        self.code = status if code is None else int(code)
        self.trace_id = trace_id


class ServeClient:
    """Client for one assignment-service endpoint.

    ``retries`` bounds how many extra attempts a 503 earns (0 disables
    retrying); ``backoff_s`` seeds the deterministic fallback backoff
    and ``max_backoff_s`` caps any single sleep, including
    server-suggested ``Retry-After`` values.  ``sleep`` is injectable
    for tests.

    >>> client = ServeClient("http://127.0.0.1:8731")  # doctest: +SKIP
    >>> client.assign([110.0], [5.5])["tiers"]         # doctest: +SKIP
    [0]
    """

    def __init__(
        self,
        base_url: str,
        timeout_s: float = 10.0,
        retries: int = 2,
        backoff_s: float = 0.05,
        max_backoff_s: float = 2.0,
        sleep: Callable[[float], None] | None = None,
    ):
        if retries < 0:
            raise ValueError("retries cannot be negative")
        if backoff_s < 0 or max_backoff_s < 0:
            raise ValueError("backoff intervals cannot be negative")
        self.base_url = base_url.rstrip("/")
        self.timeout_s = float(timeout_s)
        self.retries = int(retries)
        self.backoff_s = float(backoff_s)
        self.max_backoff_s = float(max_backoff_s)
        self._sleep = sleep if sleep is not None else time.sleep
        self.n_retries = 0  # lifetime count, mirrors serve.client.retries

    # ------------------------------------------------------------------
    def assign(
        self,
        downloads: Sequence[float],
        uploads: Sequence[float],
        city: str | None = None,
        isp: str | None = None,
        config_hash: str | None = None,
        stream: bool = False,
        timeout_s: float | None = None,
    ) -> dict[str, Any]:
        """POST ``/assign``; returns the decoded response payload."""
        payload: dict[str, Any] = {
            "downloads": list(downloads),
            "uploads": list(uploads),
        }
        if city is not None:
            payload["city"] = city
        if isp is not None:
            payload["isp"] = isp
        if config_hash is not None:
            payload["config_hash"] = config_hash
        if stream:
            payload["stream"] = True
        return self._request("POST", "/assign", payload, timeout_s)

    def assign_one(
        self,
        download: float,
        upload: float,
        **selectors: Any,
    ) -> tuple[int, str]:
        """Assign one tuple; returns ``(tier, group_label)``."""
        out = self.assign([download], [upload], stream=True, **selectors)
        return int(out["tiers"][0]), str(out["group_labels"][0])

    def models(self, timeout_s: float | None = None) -> list[dict[str, Any]]:
        """GET ``/models``; returns the registry records."""
        return self._request("GET", "/models", None, timeout_s)["models"]

    def healthz(self, timeout_s: float | None = None) -> dict[str, Any]:
        """GET ``/healthz``; returns the health document."""
        return self._request("GET", "/healthz", None, timeout_s)

    def reload(
        self,
        slugs: Sequence[str] | None = None,
        timeout_s: float | None = None,
    ) -> dict[str, Any]:
        """POST ``/reload``; hot-swap models (None reloads all)."""
        payload = {"slugs": list(slugs)} if slugs else {}
        return self._request("POST", "/reload", payload, timeout_s)

    def metrics_text(self, timeout_s: float | None = None) -> str:
        """GET ``/metrics``; returns the raw Prometheus exposition text."""
        return self._open("GET", "/metrics", None, timeout_s).decode(
            "utf-8"
        )

    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        timeout_s: float | None = None,
    ) -> Any:
        return json.loads(
            self._open(method, path, payload, timeout_s).decode("utf-8")
        )

    def _open(
        self,
        method: str,
        path: str,
        payload: dict | None,
        timeout_s: float | None,
    ) -> bytes:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        timeout = self.timeout_s if timeout_s is None else float(timeout_s)
        for attempt in range(self.retries + 1):
            request = urllib.request.Request(
                url, data=data, headers=headers, method=method
            )
            try:
                with urllib.request.urlopen(
                    request, timeout=timeout
                ) as response:
                    return response.read()
            except urllib.error.HTTPError as exc:
                if exc.code == 503 and attempt < self.retries:
                    delay = self._retry_delay(exc, attempt)
                    exc.read()  # drain so the connection can be reused
                    self.n_retries += 1
                    obs_metrics.counter("serve.client.retries").inc()
                    self._sleep(delay)
                    continue
                raise _serve_error(exc) from exc
            except urllib.error.URLError as exc:
                raise ServeError(
                    0, f"cannot reach {url}: {exc.reason}"
                ) from exc
        raise AssertionError("unreachable")  # pragma: no cover

    def _retry_delay(
        self, exc: urllib.error.HTTPError, attempt: int
    ) -> float:
        """The server's ``Retry-After`` (seconds), else the fallback.

        Deterministic by construction: no jitter, so a given attempt
        number always waits the same time.
        """
        header = ""
        if exc.headers is not None:
            header = exc.headers.get("Retry-After", "") or ""
        try:
            delay = float(header)
            if delay < 0:
                raise ValueError
        except ValueError:
            delay = self.backoff_s * (2.0**attempt)
        return min(delay, self.max_backoff_s)


def _serve_error(exc: urllib.error.HTTPError) -> ServeError:
    """Decode the server's JSON error body into a :class:`ServeError`.

    Understands the structured ``{"error": {code, message, trace_id}}``
    body, the legacy ``{"error": "<message>"}`` shape, and falls back
    to the HTTP reason for non-JSON bodies (e.g. a proxy in the way).
    """
    code: int | None = None
    trace_id: str | None = None
    try:
        body = json.loads(exc.read().decode("utf-8"))
        error = body.get("error", exc.reason)
        if isinstance(error, dict):
            message = str(error.get("message", exc.reason))
            code = error.get("code")
            trace_id = error.get("trace_id")
        else:
            message = str(error)
    except (ValueError, AttributeError, UnicodeDecodeError, OSError):
        message = str(exc.reason)
    return ServeError(exc.code, message, code=code, trace_id=trace_id)
