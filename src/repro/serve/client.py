"""Stdlib client for the tier-assignment service.

A small ``urllib``-based wrapper over the HTTP API in
:mod:`repro.serve.server` -- no third-party HTTP library.  Non-2xx
responses raise :class:`ServeError` carrying the HTTP status and the
server's ``error`` message, so callers can distinguish a bad request
(400) from a missing model (404).
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any, Sequence

__all__ = ["ServeClient", "ServeError"]


class ServeError(RuntimeError):
    """A non-2xx response from the assignment service."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServeClient:
    """Client for one assignment-service endpoint.

    >>> client = ServeClient("http://127.0.0.1:8731")  # doctest: +SKIP
    >>> client.assign([110.0], [5.5])["tiers"]         # doctest: +SKIP
    [0]
    """

    def __init__(self, base_url: str, timeout_s: float = 10.0):
        self.base_url = base_url.rstrip("/")
        self.timeout_s = float(timeout_s)

    # ------------------------------------------------------------------
    def assign(
        self,
        downloads: Sequence[float],
        uploads: Sequence[float],
        city: str | None = None,
        isp: str | None = None,
        config_hash: str | None = None,
        stream: bool = False,
    ) -> dict[str, Any]:
        """POST ``/assign``; returns the decoded response payload."""
        payload: dict[str, Any] = {
            "downloads": list(downloads),
            "uploads": list(uploads),
        }
        if city is not None:
            payload["city"] = city
        if isp is not None:
            payload["isp"] = isp
        if config_hash is not None:
            payload["config_hash"] = config_hash
        if stream:
            payload["stream"] = True
        return self._request("POST", "/assign", payload)

    def assign_one(
        self,
        download: float,
        upload: float,
        **selectors: Any,
    ) -> tuple[int, str]:
        """Assign one tuple; returns ``(tier, group_label)``."""
        out = self.assign([download], [upload], stream=True, **selectors)
        return int(out["tiers"][0]), str(out["group_labels"][0])

    def models(self) -> list[dict[str, Any]]:
        """GET ``/models``; returns the registry records."""
        return self._request("GET", "/models")["models"]

    def healthz(self) -> dict[str, Any]:
        """GET ``/healthz``; returns the health document."""
        return self._request("GET", "/healthz")

    # ------------------------------------------------------------------
    def _request(
        self, method: str, path: str, payload: dict | None = None
    ) -> Any:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            url, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout_s
            ) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode("utf-8")).get(
                    "error", exc.reason
                )
            except Exception:
                message = str(exc.reason)
            raise ServeError(exc.code, message) from exc
        except urllib.error.URLError as exc:
            raise ServeError(0, f"cannot reach {url}: {exc.reason}") from exc
