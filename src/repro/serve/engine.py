"""Online tier assignment against a fitted BST model.

The fit pipeline (:meth:`repro.core.bst.BSTModel.fit`) labels the
*training* sample; serving needs the inverse direction -- take an
already-fitted :class:`~repro.core.bst.BSTResult` and assign tiers to
measurements that arrive later, without refitting.  Two layers:

- :class:`TierAssigner` -- vectorised batch (and single-tuple)
  assignment.  It rebuilds the exact fit-time predictors from the
  stage parameters the fit recorded (GMM posterior argmax, or nearest
  k-means center), so applying an assigner to the data the model was
  trained on reproduces ``result.tiers`` byte-for-byte.  The download
  stage runs as one grouped pass: a stable argsort segments the request
  matrix by upload group, each present group's predictor evaluates one
  contiguous slice, and a single inverse scatter restores request order
  -- no per-group masking scans over the whole batch.
- :class:`QuantizedLookup` -- an optional quantized nearest-plan lookup
  table compiled from a frozen assigner: both BST stages are 1-D label
  functions, so assignment reduces to two ``searchsorted`` threshold
  lookups once the stage decision boundaries are bisected down to
  adjacent float64s.  ``build`` proves byte-identity against the exact
  GMM path on the training sample before the table may serve.
- :class:`MicroBatcher` -- a bounded micro-batching queue for streaming
  input: concurrent single-tuple submissions coalesce into one
  vectorised ``assign`` call per flush (configurable flush size and
  interval); a full queue blocks producers (backpressure) instead of
  growing without bound.  ``submit`` and ``close`` synchronise on one
  lock, so a submission racing shutdown either resolves its future or
  fails fast with :class:`BatcherClosedError` -- never a lost future.

Upload groups that had no download-stage fit (no training measurement
landed in them) fall back to the log-nearest advertised download among
the group's plans; the ``serve.fallback_assigned`` counter tracks how
often serving leaves the fitted region.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.bst import BSTResult
from repro.obs import metrics as obs_metrics
from repro.obs.logging import get_logger, kv
from repro.obs.quality import get_quality
from repro.obs.trace import current_trace_id, span, use_trace_id
from repro.stats.gmm import GaussianMixture, GMMFitResult
from repro.stats.kmeans import KMeans1D, KMeansResult

log = get_logger("serve.engine")

__all__ = [
    "AssignmentBatch",
    "BatcherClosedError",
    "MicroBatcher",
    "QuantizedLookup",
    "TierAssigner",
]


class BatcherClosedError(RuntimeError):
    """A submission arrived at (or after) :meth:`MicroBatcher.close`."""


@dataclass
class AssignmentBatch:
    """Outcome of one vectorised assignment call."""

    tiers: np.ndarray  # per measurement, assigned plan tier
    group_indices: np.ndarray  # per measurement, upload-group index
    n_fallback: int  # rows assigned via the no-stage fallback

    def __len__(self) -> int:
        return len(self.tiers)


def _mixture_predictor(
    means: np.ndarray,
    variances: np.ndarray,
    weights: np.ndarray,
    clustering: str,
    stage: str,
) -> Callable[[np.ndarray], np.ndarray]:
    """The exact fit-time label predictor for one stage.

    Reuses the estimators' own ``predict`` implementations (not a
    reimplementation) so labels match what ``BSTModel.fit`` produced --
    including tie-breaking -- bit for bit.
    """
    means = np.asarray(means, dtype=float)
    if means.size == 0:
        raise ValueError(
            f"BST fit has no {stage} component means; cannot build a "
            "predictor"
        )
    if clustering == "kmeans":
        km = KMeans1D(means.size)
        km.result_ = KMeansResult(
            centers=means, inertia=0.0, n_iter=0, converged=True
        )
        return km.predict
    variances = np.asarray(variances, dtype=float)
    weights = np.asarray(weights, dtype=float)
    if variances.size != means.size or weights.size != means.size:
        raise ValueError(
            f"BST fit lacks {stage} mixture variances/weights (saved "
            "with schema_version 1?); refit the model to serve new data"
        )
    gmm = GaussianMixture(means.size)
    gmm.result_ = GMMFitResult(
        means=means,
        variances=variances,
        weights=weights,
        log_likelihood=0.0,
        n_iter=0,
        converged=True,
    )
    return gmm.predict


def _validate_batch(downloads, uploads) -> tuple[np.ndarray, np.ndarray]:
    """Shared ``assign`` input contract: 1-D, paired, finite, non-empty."""
    downloads = np.asarray(downloads, dtype=float)
    uploads = np.asarray(uploads, dtype=float)
    if downloads.shape != uploads.shape:
        raise ValueError("downloads and uploads must pair one-to-one")
    if downloads.ndim != 1:
        downloads = downloads.ravel()
        uploads = uploads.ravel()
    if downloads.size == 0:
        raise ValueError("empty assignment batch")
    finite = np.isfinite(downloads) & np.isfinite(uploads)
    if not finite.all():
        bad = int(downloads.size - finite.sum())
        raise ValueError(
            f"assignment input must be finite ({bad} of "
            f"{downloads.size} tuples are NaN/inf)"
        )
    return downloads, uploads


class TierAssigner:
    """Vectorised tier assignment against a frozen BST fit.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.bst import BSTModel
    >>> from repro.market.isps import city_catalog
    >>> rng = np.random.default_rng(0)
    >>> ups = np.concatenate([rng.normal(5.5, .4, 400), rng.normal(40, 2, 400)])
    >>> downs = np.concatenate([rng.normal(110, 9, 400), rng.normal(900, 60, 400)])
    >>> result = BSTModel(city_catalog("A")).fit(downs, ups)
    >>> assigner = TierAssigner(result)
    >>> batch = assigner.assign(downs, ups)
    >>> bool(np.array_equal(batch.tiers, result.tiers))
    True
    """

    def __init__(self, result: BSTResult):
        self.result = result
        self.catalog = result.catalog
        upload = result.upload_stage
        if not upload.component_groups:
            raise ValueError(
                "BST fit records no upload component-to-group mapping; "
                "refit the model to serve new data"
            )
        self._upload_predict = _mixture_predictor(
            upload.component_means,
            upload.component_variances,
            upload.component_weights,
            upload.clustering,
            "upload-stage",
        )
        self._component_groups = np.asarray(
            upload.component_groups, dtype=np.int64
        )
        self._download_predict: dict[
            int, Callable[[np.ndarray], np.ndarray]
        ] = {}
        self._download_tiers: dict[int, np.ndarray] = {}
        for gi, stage in result.download_stages.items():
            self._download_predict[gi] = _mixture_predictor(
                stage.cluster_means,
                stage.cluster_variances,
                stage.cluster_weights,
                stage.clustering,
                f"download-stage (group {gi})",
            )
            self._download_tiers[gi] = np.asarray(
                stage.cluster_tiers, dtype=np.int64
            )
        # Fallback for groups with no fitted download stage: the
        # log-nearest advertised download among the group's plans.
        self._fallback_log_downloads: dict[int, np.ndarray] = {}
        self._fallback_tiers: dict[int, np.ndarray] = {}
        for gi, group in enumerate(upload.groups):
            self._fallback_log_downloads[gi] = np.log(
                np.asarray([p.download_mbps for p in group.plans])
            )
            self._fallback_tiers[gi] = np.asarray(
                [p.tier for p in group.plans], dtype=np.int64
            )

    # ------------------------------------------------------------------
    def assign(self, downloads, uploads) -> AssignmentBatch:
        """Assign a batch of ``<download, upload>`` tuples to plan tiers.

        Inputs must be finite and pair one-to-one, exactly like
        :meth:`BSTModel.fit` requires.  On the model's own training
        sample the returned tiers equal ``result.tiers`` byte-for-byte.
        """
        downloads, uploads = _validate_batch(downloads, uploads)
        with span(
            "serve.assign",
            isp=self.catalog.isp_name,
            n=int(downloads.size),
        ) as sp:
            trace_id = current_trace_id()
            if trace_id is not None:
                sp.set(trace_id=trace_id)
            labels = self._upload_predict(uploads)
            group_indices = self._component_groups[labels]
            tiers, n_fallback = self._assign_downloads(
                group_indices, downloads
            )
            sp.set(n_fallback=n_fallback)
        obs_metrics.counter("serve.assigned").inc(int(downloads.size))
        if n_fallback:
            obs_metrics.counter("serve.fallback_assigned").inc(n_fallback)
            log.debug(
                "assigned rows in upload groups with no fitted "
                "download stage",
                extra=kv(n_fallback=n_fallback, n=int(downloads.size)),
            )
        quality = get_quality()
        if quality.enabled:
            quality.observe_assignments(tiers)
        return AssignmentBatch(
            tiers=tiers,
            group_indices=group_indices,
            n_fallback=n_fallback,
        )

    def _assign_downloads(
        self, group_indices: np.ndarray, downloads: np.ndarray
    ) -> tuple[np.ndarray, int]:
        """Grouped download-stage prediction over the whole batch.

        A stable argsort segments the batch by upload group, so each
        present group's predictor evaluates one contiguous slice and a
        single inverse scatter restores request order.  The stable sort
        keeps rows of a group in ascending request order -- exactly the
        order the old per-group masking produced -- so tier labels stay
        byte-identical while the per-group O(n) masking scans and
        scattered writes disappear.
        """
        order = np.argsort(group_indices, kind="stable")
        sorted_groups = group_indices[order]
        sorted_downloads = downloads[order]
        present, starts = np.unique(sorted_groups, return_index=True)
        bounds = np.append(starts, sorted_groups.size)
        sorted_tiers = np.empty(downloads.size, dtype=np.int64)
        n_fallback = 0
        for gi, lo, hi in zip(present, bounds[:-1], bounds[1:]):
            gi = int(gi)
            segment = sorted_downloads[lo:hi]
            predict = self._download_predict.get(gi)
            if predict is None:
                sorted_tiers[lo:hi] = self._fallback_assign(gi, segment)
                n_fallback += segment.size
            else:
                sorted_tiers[lo:hi] = self._download_tiers[gi][
                    predict(segment)
                ]
        tiers = np.empty(downloads.size, dtype=np.int64)
        tiers[order] = sorted_tiers
        return tiers, n_fallback

    def _fallback_assign(self, gi: int, downloads: np.ndarray) -> np.ndarray:
        log_plans = self._fallback_log_downloads[gi]
        log_downloads = np.log(np.maximum(downloads, 1e-6))
        nearest = np.argmin(
            np.abs(log_downloads[:, None] - log_plans[None, :]), axis=1
        )
        return self._fallback_tiers[gi][nearest]

    def assign_one(self, download: float, upload: float) -> tuple[int, int]:
        """Assign one tuple; returns ``(tier, group_index)``."""
        batch = self.assign([download], [upload])
        return int(batch.tiers[0]), int(batch.group_indices[0])

    def to_result(self, downloads, uploads) -> BSTResult:
        """A :class:`BSTResult` for new data under this frozen fit.

        Shares the stage fits (cluster means/weights/diagnostics) with
        the training result; only ``group_indices``/``tiers`` describe
        the new rows.  This is what the ``contextualize`` reuse path
        attaches to its :class:`ContextualizedDataset`.
        """
        batch = self.assign(downloads, uploads)
        return BSTResult(
            catalog=self.catalog,
            upload_stage=self.result.upload_stage,
            download_stages=self.result.download_stages,
            group_indices=batch.group_indices,
            tiers=batch.tiers,
        )

    def group_labels(self, group_indices: np.ndarray) -> list[str]:
        """Paper-style span labels for a batch's group indices."""
        labels = [g.tier_label for g in self.result.upload_stage.groups]
        return [labels[int(i)] for i in group_indices]


# ---------------------------------------------------------------------------
# Quantized nearest-plan lookup table
# ---------------------------------------------------------------------------
def _label_cuts(values, label_fn) -> tuple[np.ndarray, np.ndarray]:
    """Threshold table ``(cuts, labels)`` reproducing ``label_fn``.

    Both BST stages are 1-D label functions, so their decision
    boundaries are points on the speed axis.  The table is built by
    evaluating ``label_fn`` on the sorted unique sample, then bisecting
    every label change down to *adjacent float64s* -- so the table flips
    at exactly the float where the predictor does.  For any value
    inside a scanned interval, ``labels[searchsorted(cuts, v, "right")]
    == label_fn(v)``; outside the sample's hull, or inside a
    non-monotonic pocket no sample point exposed, the caller must prove
    equality empirically (see :meth:`QuantizedLookup.verify`).
    """
    points = np.unique(np.asarray(values, dtype=float))
    if points.size == 0:
        raise ValueError("cannot tabulate a predictor without samples")
    labels = np.asarray(label_fn(points), dtype=np.int64)
    change = np.flatnonzero(labels[:-1] != labels[1:])
    lo = points[change].copy()
    hi = points[change + 1].copy()
    left = labels[change]
    while True:
        gap = np.nextafter(lo, hi) < hi
        if not gap.any():
            break
        mid = lo + (hi - lo) * 0.5
        mid = np.maximum(np.nextafter(lo, hi), np.minimum(mid, np.nextafter(hi, lo)))
        same = np.asarray(label_fn(mid), dtype=np.int64) == left
        lo = np.where(gap & same, mid, lo)
        hi = np.where(gap & ~same, mid, hi)
    region_labels = np.concatenate(
        ([labels[0]], labels[change + 1])
    ).astype(np.int64)
    return hi.astype(float), region_labels


class QuantizedLookup:
    """Quantized nearest-plan lookup table over a frozen assigner.

    Compiles a :class:`TierAssigner` into two layers of threshold
    tables: upload value -> upload group, then (per group) download
    value -> plan tier -- covering fitted GMM / k-means download stages
    *and* the log-nearest-plan fallback alike.  Assignment is then two
    ``searchsorted`` gathers: no log-pdf evaluation on the hot path.

    :meth:`build` proves byte-identity against the exact GMM path on
    the training sample before the table may serve (``strict=True``
    raises on any mismatch); groups the sample never visited keep using
    the exact predictors at assign time, so the table never extrapolates
    a group it was not built for.  ``to_dict``/``from_dict`` round-trip
    the (tiny) tables through JSON so a registry can persist the proof
    alongside the model.
    """

    LOOKUP_SCHEMA = 1

    def __init__(
        self,
        assigner: TierAssigner,
        upload_cuts: np.ndarray,
        upload_labels: np.ndarray,
        download_tables: dict[int, tuple[np.ndarray, np.ndarray]],
        verified_n: int = 0,
    ):
        self.assigner = assigner
        self._upload_cuts = np.asarray(upload_cuts, dtype=float)
        self._upload_labels = np.asarray(upload_labels, dtype=np.int64)
        self._download_tables = {
            int(gi): (
                np.asarray(cuts, dtype=float),
                np.asarray(labels, dtype=np.int64),
            )
            for gi, (cuts, labels) in download_tables.items()
        }
        self.verified_n = int(verified_n)

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        assigner: TierAssigner,
        downloads,
        uploads,
        strict: bool = True,
    ) -> "QuantizedLookup":
        """Compile and *prove* a lookup table on a training sample.

        Raises ``ValueError`` when ``strict`` and any training tuple
        disagrees with the exact path (the table must never silently
        approximate).  With ``strict=False`` the unproven table is
        returned with ``verified_n == 0``; callers can still
        :meth:`verify` later.
        """
        downloads, uploads = _validate_batch(downloads, uploads)
        upload_cuts, upload_labels = _label_cuts(
            uploads,
            lambda u: assigner._component_groups[assigner._upload_predict(u)],
        )
        exact = assigner.assign(downloads, uploads)
        tables: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for gi in np.unique(exact.group_indices):
            gi = int(gi)
            rows = exact.group_indices == gi
            predict = assigner._download_predict.get(gi)
            if predict is None:
                label_fn = lambda d, g=gi: assigner._fallback_assign(g, d)
            else:
                label_fn = lambda d, g=gi, p=predict: (
                    assigner._download_tiers[g][p(d)]
                )
            tables[gi] = _label_cuts(downloads[rows], label_fn)
        lookup = cls(assigner, upload_cuts, upload_labels, tables)
        verified = lookup.verify(downloads, uploads)
        if strict and not verified:
            raise ValueError(
                "quantized lookup table disagrees with the exact GMM "
                "path on the training sample; refusing to serve it"
            )
        lookup.verified_n = int(downloads.size) if verified else 0
        return lookup

    def verify(self, downloads, uploads) -> bool:
        """Byte-identity proof: table output == exact path output."""
        exact = self.assigner.assign(downloads, uploads)
        table = self.assign(downloads, uploads)
        return bool(
            np.array_equal(exact.tiers, table.tiers)
            and np.array_equal(exact.group_indices, table.group_indices)
        )

    # ------------------------------------------------------------------
    def assign(self, downloads, uploads) -> AssignmentBatch:
        """Assign a batch via the threshold tables.

        Rows landing in upload groups the table was not built for run
        through the exact predictors (same segment machinery as
        :meth:`TierAssigner._assign_downloads`).
        """
        downloads, uploads = _validate_batch(downloads, uploads)
        group_indices = self._upload_labels[
            np.searchsorted(self._upload_cuts, uploads, side="right")
        ]
        order = np.argsort(group_indices, kind="stable")
        sorted_groups = group_indices[order]
        sorted_downloads = downloads[order]
        present, starts = np.unique(sorted_groups, return_index=True)
        bounds = np.append(starts, sorted_groups.size)
        sorted_tiers = np.empty(downloads.size, dtype=np.int64)
        n_fallback = 0
        for gi, lo, hi in zip(present, bounds[:-1], bounds[1:]):
            gi = int(gi)
            segment = sorted_downloads[lo:hi]
            table = self._download_tables.get(gi)
            if table is not None:
                cuts, labels = table
                sorted_tiers[lo:hi] = labels[
                    np.searchsorted(cuts, segment, side="right")
                ]
            elif self.assigner._download_predict.get(gi) is not None:
                predict = self.assigner._download_predict[gi]
                sorted_tiers[lo:hi] = self.assigner._download_tiers[gi][
                    predict(segment)
                ]
            else:
                sorted_tiers[lo:hi] = self.assigner._fallback_assign(
                    gi, segment
                )
            if self.assigner._download_predict.get(gi) is None:
                n_fallback += segment.size
        tiers = np.empty(downloads.size, dtype=np.int64)
        tiers[order] = sorted_tiers
        obs_metrics.counter("serve.lookup_assigned").inc(
            int(downloads.size)
        )
        quality = get_quality()
        if quality.enabled:
            quality.observe_assignments(tiers)
        return AssignmentBatch(
            tiers=tiers,
            group_indices=group_indices,
            n_fallback=n_fallback,
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-able form of the tables (small enough for an index)."""
        return {
            "lookup_schema": self.LOOKUP_SCHEMA,
            "upload_cuts": self._upload_cuts.tolist(),
            "upload_labels": self._upload_labels.tolist(),
            "download_tables": {
                str(gi): {
                    "cuts": cuts.tolist(),
                    "labels": labels.tolist(),
                }
                for gi, (cuts, labels) in self._download_tables.items()
            },
            "verified_n": self.verified_n,
        }

    @classmethod
    def from_dict(
        cls, assigner: TierAssigner, data: dict
    ) -> "QuantizedLookup":
        """Rebuild a persisted table against its (reloaded) assigner."""
        schema = data.get("lookup_schema")
        if schema != cls.LOOKUP_SCHEMA:
            raise ValueError(
                f"unknown lookup_schema {schema!r}; this build reads "
                f"{cls.LOOKUP_SCHEMA}"
            )
        try:
            return cls(
                assigner,
                upload_cuts=np.asarray(data["upload_cuts"], dtype=float),
                upload_labels=np.asarray(
                    data["upload_labels"], dtype=np.int64
                ),
                download_tables={
                    int(gi): (
                        np.asarray(entry["cuts"], dtype=float),
                        np.asarray(entry["labels"], dtype=np.int64),
                    )
                    for gi, entry in data["download_tables"].items()
                },
                verified_n=int(data.get("verified_n", 0)),
            )
        except (KeyError, TypeError) as exc:
            raise ValueError(
                f"truncated lookup table payload: missing field ({exc})"
            ) from exc


# ---------------------------------------------------------------------------
# Micro-batching for streaming input
# ---------------------------------------------------------------------------
_SENTINEL = object()


class MicroBatcher:
    """Bounded micro-batching queue in front of a :class:`TierAssigner`.

    Producers call :meth:`submit` (or the blocking :meth:`assign_one`);
    a single worker thread drains the queue and flushes one vectorised
    ``assign`` per batch -- when ``max_batch`` tuples are pending, or
    ``flush_interval_s`` after the first pending tuple, whichever comes
    first.  The queue holds at most ``max_pending`` tuples; a full queue
    blocks ``submit`` (backpressure) rather than buffering unboundedly.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.bst import BSTModel
    >>> from repro.market.isps import city_catalog
    >>> rng = np.random.default_rng(0)
    >>> ups = np.concatenate([rng.normal(5.5, .4, 400), rng.normal(40, 2, 400)])
    >>> downs = np.concatenate([rng.normal(110, 9, 400), rng.normal(900, 60, 400)])
    >>> assigner = TierAssigner(BSTModel(city_catalog("A")).fit(downs, ups))
    >>> batcher = MicroBatcher(assigner)
    >>> tier, group = batcher.assign_one(110.0, 5.5)
    >>> batcher.close()
    >>> (tier, group) == assigner.assign_one(110.0, 5.5)
    True
    """

    def __init__(
        self,
        assigner: TierAssigner,
        max_batch: int = 256,
        flush_interval_s: float = 0.005,
        max_pending: int = 4096,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_pending < max_batch:
            raise ValueError("max_pending must be >= max_batch")
        self.assigner = assigner
        self.max_batch = int(max_batch)
        self.flush_interval_s = float(flush_interval_s)
        self._queue: queue.Queue = queue.Queue(maxsize=int(max_pending))
        self._closed = threading.Event()
        # Serialises the closed-check-then-enqueue in submit() against
        # close(): without it a producer could pass the check, lose the
        # race, and enqueue *behind* the shutdown sentinel -- its future
        # would never resolve.  The flush worker never takes this lock,
        # so a producer blocked on a full queue (backpressure) cannot
        # deadlock close(): the worker keeps draining underneath it.
        self._submit_lock = threading.Lock()
        self._worker = threading.Thread(
            target=self._run, name="serve-microbatch", daemon=True
        )
        self._worker.start()

    # ------------------------------------------------------------------
    def submit(
        self,
        download: float,
        upload: float,
        timeout_s: float | None = None,
    ) -> Future:
        """Enqueue one tuple; resolves to ``(tier, group_index)``.

        Blocks while the queue is full (bounded buffering); raises
        ``queue.Full`` when ``timeout_s`` elapses first, and
        :class:`BatcherClosedError` at (or after) :meth:`close` -- a
        submission racing shutdown either resolves its future or fails
        here explicitly, never hangs.
        """
        fut: Future = Future()
        with self._submit_lock:
            if self._closed.is_set():
                raise BatcherClosedError("MicroBatcher is closed")
            # Capture the submitter's trace id: the flush happens on the
            # worker thread, outside the request's context.
            self._queue.put(
                (float(download), float(upload), fut, current_trace_id()),
                timeout=timeout_s,
            )
        return fut

    def assign_one(
        self,
        download: float,
        upload: float,
        timeout_s: float = 30.0,
    ) -> tuple[int, int]:
        """Submit one tuple and wait for its ``(tier, group_index)``.

        ``timeout_s`` bounds the *whole* call: time spent blocked on a
        full queue comes out of the same budget as waiting for the
        flush result, instead of each phase spending the full timeout.
        """
        deadline = time.monotonic() + timeout_s
        fut = self.submit(download, upload, timeout_s=timeout_s)
        remaining = max(deadline - time.monotonic(), 0.0)
        return fut.result(timeout=remaining)

    def close(self, timeout_s: float = 10.0) -> None:
        """Stop accepting work, drain pending tuples, join the worker."""
        with self._submit_lock:
            already_closed = self._closed.is_set()
            self._closed.set()
        if already_closed:
            return
        self._queue.put(_SENTINEL)
        self._worker.join(timeout=timeout_s)

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _run(self) -> None:
        pending: list[tuple[float, float, Future, str | None]] = []
        deadline = 0.0
        stop = False
        while not stop:
            if pending:
                wait = max(deadline - time.monotonic(), 0.0)
            else:
                wait = None  # idle: block until work arrives
            try:
                item = self._queue.get(timeout=wait)
            except queue.Empty:
                item = None
            if item is _SENTINEL:
                stop = True
                # Drain whatever was enqueued before the sentinel.
                while True:
                    try:
                        extra = self._queue.get_nowait()
                    except queue.Empty:
                        break
                    if extra is not _SENTINEL:
                        pending.append(extra)
            elif item is not None:
                if not pending:
                    deadline = time.monotonic() + self.flush_interval_s
                pending.append(item)
            flush_due = pending and (
                len(pending) >= self.max_batch
                or time.monotonic() >= deadline
            )
            if flush_due and not stop:
                batch, pending = (
                    pending[: self.max_batch],
                    pending[self.max_batch:],
                )
                self._flush(batch)
                if pending:
                    deadline = time.monotonic()  # flush backlog promptly
        # Closing: flush everything still pending, in batch-sized chunks.
        while pending:
            batch, pending = (
                pending[: self.max_batch],
                pending[self.max_batch:],
            )
            self._flush(batch)

    def _flush(
        self, batch: Sequence[tuple[float, float, Future, str | None]]
    ) -> None:
        downloads = np.asarray([item[0] for item in batch])
        uploads = np.asarray([item[1] for item in batch])
        obs_metrics.counter("serve.batch_flushes").inc()
        obs_metrics.histogram("serve.batch_size").observe(len(batch))
        try:
            with use_trace_id(_batch_trace_label(batch)):
                result = self.assigner.assign(downloads, uploads)
        except Exception as exc:  # propagate to every waiter
            for _, _, fut, _ in batch:
                if not fut.cancelled():
                    fut.set_exception(exc)
            return
        for i, (_, _, fut, _) in enumerate(batch):
            if not fut.cancelled():
                fut.set_result(
                    (int(result.tiers[i]), int(result.group_indices[i]))
                )


def _batch_trace_label(
    batch: Sequence[tuple[float, float, Future, str | None]],
) -> str | None:
    """A joint trace label for one flush: up to 4 ids, then ``+N``.

    A flush serves many requests, so the ``serve.assign`` span gets a
    composite id that still lets an operator find the contributing
    requests.
    """
    unique = list(
        dict.fromkeys(item[3] for item in batch if item[3] is not None)
    )
    if not unique:
        return None
    label = ",".join(unique[:4])
    if len(unique) > 4:
        label += f"+{len(unique) - 4}"
    return label
