"""Content-addressed, versioned store of fitted BST models.

A registry maps a :class:`ModelKey` -- ``(city, isp, config_hash)``,
where the hash is :func:`repro.obs.runs.config_fingerprint` over the
:class:`~repro.core.config.BSTConfig` that produced the fit -- to a
fitted :class:`~repro.core.bst.BSTResult` stored on disk:

- ``<root>/objects/<digest>.json`` -- the serialized fit
  (:func:`repro.core.serialize.bst_result_to_dict`), named by the
  SHA-256 of its canonical JSON bytes.  Registering the same fit twice
  writes one object (content addressing makes registration idempotent).
- ``<root>/objects/<digest>.arrays`` -- an mmap-able binary sidecar of
  the same fit: a small JSON header (stage parameters, catalog) plus
  the raw bytes of the big per-row arrays (``group_indices``,
  ``tiers``).  :meth:`ModelRegistry.load_shared` maps it read-only, so
  N worker processes serving the same model share one page-cache copy
  of the arrays and skip the multi-megabyte JSON parse entirely.
- ``<root>/index.json`` -- the key -> record mapping, where a
  :class:`ModelRecord` carries the digest plus staleness metadata
  (creation time, training-set size, schema version), the training
  distribution summary the serving drift check compares against, and
  -- when the training sample was supplied at registration -- a
  quantized lookup table proven byte-identical to the exact GMM path
  on that sample (see :class:`repro.serve.engine.QuantizedLookup`).

All writes are atomic (temp file + ``os.replace``), so a crashed
registration never leaves a half-written object or index.  Loads go
through a bounded in-process LRU cache; ``serve.registry.*`` counters
report hit/miss/load traffic.

:func:`shard_for` is the one place the ``(city, isp) -> shard`` hash
lives: the router and the sharded workers must agree on it byte for
byte.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import threading
import time
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.bst import BSTResult
from repro.core.config import BSTConfig
from repro.core.serialize import (
    SCHEMA_VERSION,
    bst_result_from_dict,
    bst_result_to_dict,
)
from repro.market.plans import PlanCatalog
from repro.obs import metrics as obs_metrics
from repro.obs.logging import get_logger, kv
from repro.obs.runs import config_fingerprint
from repro.obs.trace import span

log = get_logger("serve.registry")

__all__ = ["ModelKey", "ModelRecord", "ModelRegistry", "shard_for"]

INDEX_SCHEMA = 1

DEFAULT_CACHE_SIZE = 8

# Sidecar format: magic, then an 8-byte little-endian header length,
# then the JSON header, then raw array bytes at the offsets the header
# names.  Bump the magic when the layout changes.
_SHARED_MAGIC = b"RPROARR1"


def shard_for(city: str, isp: str, n_shards: int) -> int:
    """The worker shard owning ``(city, isp)`` models.

    Deterministic (crc32, no ``PYTHONHASHSEED`` dependence) and shared
    by the router and every worker -- both sides must route a model to
    the same process.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    return zlib.crc32(f"{city}|{isp}".encode("utf-8")) % int(n_shards)


@dataclass(frozen=True)
class ModelKey:
    """Identity of one registered model: city, ISP, and config hash."""

    city: str
    isp: str
    config_hash: str

    @property
    def slug(self) -> str:
        return f"{self.city}|{self.isp}|{self.config_hash}"

    @classmethod
    def from_slug(cls, slug: str) -> "ModelKey":
        parts = slug.split("|")
        if len(parts) != 3:
            raise ValueError(f"malformed model key slug {slug!r}")
        return cls(city=parts[0], isp=parts[1], config_hash=parts[2])


@dataclass
class ModelRecord:
    """Index entry for one registered model (JSON-able)."""

    key: ModelKey
    digest: str
    created_utc: str
    created_s: float  # epoch seconds, for staleness arithmetic
    train_size: int
    schema_version: int = SCHEMA_VERSION
    training_stats: dict[str, dict[str, float]] = field(default_factory=dict)
    # Quantized lookup table proven byte-identical on the training
    # sample at registration (None when no sample was supplied or the
    # proof failed); see repro.serve.engine.QuantizedLookup.
    lookup: dict[str, Any] | None = None

    def age_s(self, now: float | None = None) -> float:
        """Seconds since registration."""
        # lint: allow[DET002] age compares against the stored epoch stamp
        now = time.time() if now is None else now
        return max(now - self.created_s, 0.0)

    def is_stale(self, max_age_s: float, now: float | None = None) -> bool:
        """Whether the model is older than ``max_age_s``."""
        return self.age_s(now) > max_age_s

    def to_dict(self) -> dict[str, Any]:
        return {
            "city": self.key.city,
            "isp": self.key.isp,
            "config_hash": self.key.config_hash,
            "digest": self.digest,
            "created_utc": self.created_utc,
            "created_s": self.created_s,
            "train_size": self.train_size,
            "schema_version": self.schema_version,
            "training_stats": self.training_stats,
            "lookup": self.lookup,
        }

    @classmethod
    def from_dict(cls, row: dict[str, Any]) -> "ModelRecord":
        try:
            return cls(
                key=ModelKey(
                    city=row["city"],
                    isp=row["isp"],
                    config_hash=row["config_hash"],
                ),
                digest=row["digest"],
                created_utc=row.get("created_utc", ""),
                created_s=float(row.get("created_s", 0.0)),
                train_size=int(row.get("train_size", 0)),
                schema_version=int(row.get("schema_version", 1)),
                training_stats=dict(row.get("training_stats", {})),
                lookup=row.get("lookup"),
            )
        except (KeyError, TypeError) as exc:
            raise ValueError(
                f"truncated model record: missing field ({exc})"
            ) from exc


def _direction_stats(values: np.ndarray) -> dict[str, float]:
    """Training-distribution summary one direction's drift check uses."""
    values = np.asarray(values, dtype=float)
    finite = values[np.isfinite(values)]
    if finite.size == 0:
        return {}
    return {
        "n": int(finite.size),
        "mean": float(finite.mean()),
        "std": float(finite.std()),
        "p50": float(np.quantile(finite, 0.50)),
        "p95": float(np.quantile(finite, 0.95)),
    }


def _atomic_write(path: Path, data: bytes) -> None:
    """Write-then-rename so readers never observe a partial file."""
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    tmp.write_bytes(data)
    os.replace(tmp, path)


def _pad16(n: int) -> int:
    """``n`` rounded up to a multiple of 16 (array offset alignment)."""
    return (n + 15) // 16 * 16


def _read_shared(path: Path) -> BSTResult:
    """Rehydrate a fit from its ``.arrays`` sidecar, zero-copy.

    The big int64 arrays come back as read-only views over a shared
    read-only ``mmap`` of the file; the mapping stays alive for as long
    as the views reference it (numpy holds the buffer).
    """
    with open(path, "rb") as fh:
        mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
    if mm[: len(_SHARED_MAGIC)] != _SHARED_MAGIC:
        raise ValueError(f"corrupt model sidecar {path}: bad magic")
    header_len = int.from_bytes(
        mm[len(_SHARED_MAGIC) : len(_SHARED_MAGIC) + 8], "little"
    )
    header_start = len(_SHARED_MAGIC) + 8
    try:
        header = json.loads(
            mm[header_start : header_start + header_len].decode("utf-8")
        )
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ValueError(f"corrupt model sidecar {path}: {exc}") from exc
    if header.get("shared_schema") != 1:
        raise ValueError(
            f"unknown sidecar schema {header.get('shared_schema')!r} in "
            f"{path}; this build reads 1"
        )
    data = dict(header["dict"])
    offset = _pad16(header_start + header_len)
    for spec in header["arrays"]:
        count = int(spec["count"])
        view = np.frombuffer(
            mm, dtype=np.dtype(spec["dtype"]), count=count, offset=offset
        )
        data[spec["name"]] = view
        offset = _pad16(offset + view.nbytes)
    return bst_result_from_dict(data)


class ModelRegistry:
    """Directory-backed model store with an in-process LRU cache.

    Thread-safe: index read-modify-write and cache mutation run under
    one lock.  Multiple registries may point at the same root (e.g. a
    server and a batch CLI); content addressing keeps concurrent
    registration of identical fits idempotent.
    """

    def __init__(
        self,
        root: str | Path,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> None:
        if cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        self.root = Path(root)
        self.cache_size = int(cache_size)
        self._lock = threading.RLock()
        self._cache: OrderedDict[str, BSTResult] = OrderedDict()

    # ------------------------------------------------------------------
    @property
    def index_path(self) -> Path:
        return self.root / "index.json"

    @property
    def objects_dir(self) -> Path:
        return self.root / "objects"

    def object_path(self, digest: str) -> Path:
        return self.objects_dir / f"{digest}.json"

    def key_for(
        self,
        city: str,
        catalog: PlanCatalog,
        config: BSTConfig | None = None,
    ) -> ModelKey:
        """The registry key for a (city, catalog, config) combination."""
        return ModelKey(
            city=str(city),
            isp=catalog.isp_name,
            config_hash=config_fingerprint(config or BSTConfig()),
        )

    # ------------------------------------------------------------------
    def register(
        self,
        key: ModelKey,
        result: BSTResult,
        downloads=None,
        uploads=None,
    ) -> ModelRecord:
        """Store a fitted model under ``key``; returns its record.

        ``downloads``/``uploads`` (the training sample, optional) feed
        the record's ``training_stats`` -- the baseline the serving
        drift check compares live traffic against -- and, when both
        are present, the quantized lookup table: compiled from the fit
        and *proven byte-identical* to the exact GMM path on the
        training sample before being persisted (a failed proof
        registers the model without a table; an unproven table is
        never stored).  Registration also writes the mmap-able
        ``.arrays`` sidecar that :meth:`load_shared` serves worker
        processes from.
        """
        payload = bst_result_to_dict(result)
        blob = json.dumps(
            payload, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        digest = hashlib.sha256(blob).hexdigest()
        training_stats: dict[str, dict[str, float]] = {}
        if downloads is not None:
            training_stats["download_mbps"] = _direction_stats(downloads)
        if uploads is not None:
            training_stats["upload_mbps"] = _direction_stats(uploads)
        record = ModelRecord(
            key=key,
            digest=digest,
            # lint: allow[DET002] registration timestamp is provenance
            created_utc=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            created_s=time.time(),  # lint: allow[DET002] provenance
            train_size=len(result),
            schema_version=SCHEMA_VERSION,
            training_stats=training_stats,
            lookup=self._build_lookup(key, result, downloads, uploads),
        )
        with span("serve.registry.register", key=key.slug) as sp:
            with self._lock:
                self.objects_dir.mkdir(parents=True, exist_ok=True)
                obj_path = self.object_path(digest)
                if not obj_path.exists():
                    _atomic_write(obj_path, blob)
                self._write_shared(digest, payload)
                index = self._read_index()
                index[key.slug] = record.to_dict()
                self._write_index(index)
                self._cache_put(digest, result)
            sp.set(digest=digest[:16], train_size=record.train_size)
        obs_metrics.counter("serve.registry.registered").inc()
        log.info(
            "registered model",
            extra=kv(
                key=key.slug,
                digest=digest[:16],
                train_size=record.train_size,
            ),
        )
        return record

    def lookup(self, key: ModelKey) -> ModelRecord | None:
        """The record registered under ``key``, or None."""
        with self._lock:
            row = self._read_index().get(key.slug)
        return ModelRecord.from_dict(row) if row is not None else None

    def load(self, key: ModelKey) -> tuple[BSTResult, ModelRecord]:
        """Load the model registered under ``key`` (LRU-cached).

        Raises ``KeyError`` when the key is unregistered and
        ``ValueError`` when the stored object is corrupt.
        """
        record = self.lookup(key)
        if record is None:
            obs_metrics.counter("serve.registry.misses").inc()
            raise KeyError(f"no model registered for {key.slug!r}")
        with self._lock:
            cached = self._cache.get(record.digest)
            if cached is not None:
                self._cache.move_to_end(record.digest)
                obs_metrics.counter("serve.registry.hits").inc()
                return cached, record
        with span("serve.registry.load", key=key.slug):
            obj_path = self.object_path(record.digest)
            try:
                text = obj_path.read_text(encoding="utf-8")
            except FileNotFoundError:
                raise ValueError(
                    f"registry index references missing object "
                    f"{record.digest[:16]} for {key.slug!r}"
                ) from None
            try:
                data = json.loads(text)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"corrupt model object {obj_path}: {exc}"
                ) from exc
            result = bst_result_from_dict(data)
        with self._lock:
            self._cache_put(record.digest, result)
        obs_metrics.counter("serve.registry.loads").inc()
        return result, record

    def load_shared(self, key: ModelKey) -> tuple[BSTResult, ModelRecord]:
        """Load via the mmap'd ``.arrays`` sidecar (LRU-cached).

        The returned result's big per-row arrays (``group_indices``,
        ``tiers``) are read-only zero-copy views into a shared
        read-only mapping of the content-addressed sidecar file, so N
        worker processes loading the same model share one page-cache
        copy instead of each parsing the multi-megabyte JSON object.
        The sidecar is created on first use when registration predates
        it.  Raises the same errors as :meth:`load`.
        """
        record = self.lookup(key)
        if record is None:
            obs_metrics.counter("serve.registry.misses").inc()
            raise KeyError(f"no model registered for {key.slug!r}")
        with self._lock:
            cached = self._cache.get(record.digest)
            if cached is not None:
                self._cache.move_to_end(record.digest)
                obs_metrics.counter("serve.registry.hits").inc()
                return cached, record
        path = self.shared_path(record.digest)
        if not path.exists():
            # Sidecar missing (registered by an older build): build it
            # from the JSON object once, then fall through to the map.
            result, _ = self.load(key)
            self._write_shared(record.digest, bst_result_to_dict(result))
        with span("serve.registry.load_shared", key=key.slug):
            result = _read_shared(path)
        with self._lock:
            self._cache_put(record.digest, result)
        obs_metrics.counter("serve.registry.shared_loads").inc()
        return result, record

    def shared_path(self, digest: str) -> Path:
        """The mmap sidecar path for a content digest."""
        return self.objects_dir / f"{digest}.arrays"

    def _write_shared(self, digest: str, payload: dict) -> None:
        """Write the binary sidecar for a serialized fit (idempotent).

        Content-addressed and deterministic, so concurrent writers
        race benignly: both produce identical bytes and the atomic
        rename keeps readers consistent.
        """
        path = self.shared_path(digest)
        if path.exists():
            return
        self.objects_dir.mkdir(parents=True, exist_ok=True)
        head = dict(payload)
        arrays = [
            ("group_indices", np.asarray(head.pop("group_indices"),
                                         dtype="<i8")),
            ("tiers", np.asarray(head.pop("tiers"), dtype="<i8")),
        ]
        header = {
            "shared_schema": 1,
            "dict": head,
            "arrays": [
                {"name": name, "dtype": "<i8", "count": int(arr.size)}
                for name, arr in arrays
            ],
        }
        header_bytes = json.dumps(
            header, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        buf = bytearray()
        buf += _SHARED_MAGIC
        buf += len(header_bytes).to_bytes(8, "little")
        buf += header_bytes
        buf += b" " * (_pad16(len(buf)) - len(buf))
        for _, arr in arrays:
            buf += arr.tobytes()
            buf += b"\0" * (_pad16(len(buf)) - len(buf))
        _atomic_write(path, bytes(buf))

    def _build_lookup(
        self, key: ModelKey, result: BSTResult, downloads, uploads
    ) -> dict[str, Any] | None:
        """Compile + prove the quantized table; None when not possible."""
        if downloads is None or uploads is None:
            return None
        from repro.serve.engine import QuantizedLookup, TierAssigner

        try:
            table = QuantizedLookup.build(
                TierAssigner(result), downloads, uploads
            )
        except ValueError as exc:
            log.warning(
                "quantized lookup not persisted for model",
                extra=kv(key=key.slug, reason=str(exc)),
            )
            return None
        return table.to_dict()

    def records(self) -> list[ModelRecord]:
        """Every registered model's record, sorted by key slug."""
        with self._lock:
            index = self._read_index()
        return [
            ModelRecord.from_dict(index[slug]) for slug in sorted(index)
        ]

    def evict_cache(self) -> None:
        """Drop every cached model (records and objects stay on disk)."""
        with self._lock:
            self._cache.clear()

    @property
    def cached_digests(self) -> list[str]:
        """Digests currently in the LRU cache, oldest first."""
        with self._lock:
            return list(self._cache)

    # ------------------------------------------------------------------
    def _cache_put(self, digest: str, result: BSTResult) -> None:
        self._cache[digest] = result
        self._cache.move_to_end(digest)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)

    def _read_index(self) -> dict[str, Any]:
        try:
            text = self.index_path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return {}
        if not text.strip():
            return {}
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"corrupt registry index {self.index_path}: {exc}"
            ) from exc
        if not isinstance(data, dict):
            raise ValueError(
                f"corrupt registry index {self.index_path}: expected a "
                "JSON object"
            )
        schema = data.get("index_schema", INDEX_SCHEMA)
        if schema != INDEX_SCHEMA:
            raise ValueError(
                f"unknown registry index schema {schema!r} in "
                f"{self.index_path}; this build reads {INDEX_SCHEMA}"
            )
        entries = data.get("entries", {})
        if not isinstance(entries, dict):
            raise ValueError(
                f"corrupt registry index {self.index_path}: 'entries' "
                "must be an object"
            )
        return entries

    def _write_index(self, entries: dict[str, Any]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {
            "index_schema": INDEX_SCHEMA,
            "entries": entries,
        }
        _atomic_write(
            self.index_path,
            json.dumps(payload, sort_keys=True, indent=2).encode("utf-8"),
        )
